package astrasim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testSweepSpec() SweepSpec {
	return SweepSpec{
		Name: "test",
		Machines: []SweepMachine{
			{Name: "ring", Config: MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{300}}},
			{Name: "switch", Config: MachineConfig{Topology: "SW(4)", BandwidthsGBps: []float64{300}}},
		},
		Workloads: []WorkloadSpec{
			{Kind: "all_reduce", SizeBytes: 64 << 20},
			{Kind: "all_gather", SizeBytes: 64 << 20},
		},
	}
}

func TestRunSweepGrid(t *testing.T) {
	res, err := RunSweep(testSweepSpec(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 4 || len(res.Rows) != 4 {
		t.Fatalf("got %d cells / %d rows, want 4 / 4", res.Cells, len(res.Rows))
	}
	if res.Executed != 4 {
		t.Errorf("executed %d, want 4 (all cells distinct)", res.Executed)
	}
	// Machine-major order.
	wantOrder := []string{"ring", "ring", "switch", "switch"}
	for i, row := range res.Rows {
		if row.Machine != wantOrder[i] {
			t.Errorf("row %d machine = %q, want %q", i, row.Machine, wantOrder[i])
		}
		if row.Report == nil || row.Report.Makespan <= 0 {
			t.Errorf("row %d has no report", i)
		}
	}
	// Every cell matches a direct single run.
	m, err := NewMachine(MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{300}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Run(Collective("all_reduce", 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Report.Makespan != direct.Makespan {
		t.Errorf("sweep cell makespan %v != direct run %v", res.Rows[0].Report.Makespan, direct.Makespan)
	}
}

func TestRunSweepDeterministicAndDeduplicated(t *testing.T) {
	spec := testSweepSpec()
	// Duplicate the first machine under another name: same content, so it
	// must be simulated once and share results.
	spec.Machines = append(spec.Machines, SweepMachine{Name: "ring-again", Config: spec.Machines[0].Config})

	serial, err := RunSweep(spec, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cells != 6 || serial.Executed != 4 {
		t.Errorf("cells=%d executed=%d, want 6 cells with 4 simulated", serial.Cells, serial.Executed)
	}
	for i := 0; i < 2; i++ {
		if serial.Rows[i].Report.Makespan != serial.Rows[4+i].Report.Makespan {
			t.Errorf("duplicate machine row %d differs from original", i)
		}
	}

	var want bytes.Buffer
	if err := serial.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := RunSweep(spec, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := par.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d: CSV differs from serial", workers)
		}
	}
}

func TestRunSweepProgressAndErrors(t *testing.T) {
	var last int
	spec := testSweepSpec()
	if _, err := RunSweep(spec, SweepOptions{Progress: func(done, total int) { last = done }}); err != nil {
		t.Fatal(err)
	}
	if last != 4 {
		t.Errorf("final progress = %d, want 4", last)
	}

	spec.Machines[1].Config.Topology = "NOPE(4)"
	if _, err := RunSweep(spec, SweepOptions{}); err == nil {
		t.Error("bad machine config accepted")
	}
	spec = testSweepSpec()
	spec.Workloads[0].Kind = "nope"
	if _, err := RunSweep(spec, SweepOptions{}); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := RunSweep(SweepSpec{}, SweepOptions{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestLoadSweepSpec(t *testing.T) {
	doc := `{
	  "name": "bw-scan",
	  "machines": [
	    {"name": "conv", "config": {"Topology": "R(4)_SW(2)", "BandwidthsGBps": [200, 100]}}
	  ],
	  "workloads": [{"kind": "all_reduce", "size_bytes": 1048576}]
	}`
	spec, err := LoadSweepSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "bw-scan" || len(spec.Machines) != 1 || len(spec.Workloads) != 1 {
		t.Fatalf("parsed spec %+v", spec)
	}
	res, err := RunSweep(spec, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}

	if _, err := LoadSweepSpec(strings.NewReader(`{"machiness": []}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestWorkloadSpecKinds(t *testing.T) {
	good := []WorkloadSpec{
		{Kind: "all_reduce"},
		{Kind: "reduce_scatter", SizeBytes: 1 << 20},
		{Kind: "gpt3"},
		{Kind: "t1t"},
		{Kind: "dlrm"},
		{Kind: "moe"},
		{Kind: "moe_inswitch"},
		{Kind: "transformer", Params: 1e9, Layers: 2, Hidden: 1024, SeqLen: 128, MicroBatch: 1, BytesPerElem: 2, MP: 4},
		{Kind: "fsdp", Params: 1e9, Layers: 2, Hidden: 1024, SeqLen: 128, MicroBatch: 1, BytesPerElem: 2},
		{Kind: "pipeline", Stages: 4, MicroBatches: 8, FlopsPerStage: 1e12, ActivationBytes: 1 << 20, GradBytes: 1 << 20},
		{Kind: "all_to_all", Iterations: 3},
	}
	for _, ws := range good {
		if _, err := ws.Workload(); err != nil {
			t.Errorf("%s: %v", ws.Kind, err)
		}
	}
	bad := []WorkloadSpec{
		{Kind: "nope"},
		{Kind: "trace"}, // no path
		{},
	}
	for _, ws := range bad {
		if _, err := ws.Workload(); err == nil {
			t.Errorf("%q accepted", ws.Kind)
		}
	}
	// Iterations wrap the name.
	w, err := WorkloadSpec{Kind: "all_reduce", SizeBytes: 1 << 20, Iterations: 3}.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(w.Name(), "3x ") {
		t.Errorf("iterated workload name = %q", w.Name())
	}
}

func TestSweepResultJSONRoundTrips(t *testing.T) {
	res, err := RunSweep(testSweepSpec(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || back.Rows[0].Report.Makespan != res.Rows[0].Report.Makespan {
		t.Error("JSON round-trip lost data")
	}
}
