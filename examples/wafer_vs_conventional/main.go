// Wafer-scale vs conventional systems: a pocket version of the paper's
// Section V-A case study. A 512-NPU wafer (one flat 600 GB/s dimension)
// races the paper's Conv-4D hierarchical system (250/200/100/50 GB/s over
// four dimensions) on a single collective and on GPT-3 training
// iterations, with and without the Themis collective scheduler.
package main

import (
	"fmt"
	"log"

	"repro"
)

type system struct {
	name string
	topo string
	bw   []float64
}

func main() {
	systems := []system{
		{"W-1D-600", "SW(512)", []float64{600}},
		{"Conv-4D", "R(2)_FC(8)_R(8)_SW(4)", []float64{250, 200, 100, 50}},
	}
	workloads := []astrasim.Workload{
		astrasim.AllReduce(1 << 30),
		astrasim.GPT3(),
	}

	fmt.Printf("%-18s %-10s %-9s %12s %12s %12s\n",
		"Workload", "System", "Scheduler", "Compute", "ExposedComm", "Makespan")
	for _, w := range workloads {
		for _, s := range systems {
			for _, sched := range []string{"baseline", "themis"} {
				m, err := astrasim.NewMachine(astrasim.MachineConfig{
					Topology:       s.topo,
					BandwidthsGBps: s.bw,
					PeakTFLOPS:     234,
					Scheduler:      sched,
				})
				if err != nil {
					log.Fatal(err)
				}
				rep, err := m.Run(w)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-18s %-10s %-9s %12v %12v %12v\n",
					rep.Workload, s.name, sched, rep.Compute, rep.ExposedComm, rep.Makespan)
			}
		}
	}
	fmt.Println("\nBoth systems drive 600 GB/s per NPU. With Themis, the hierarchical")
	fmt.Println("system closes most of the gap on pure collectives; on GPT-3 the wafer")
	fmt.Println("keeps its lead because hybrid parallelism confines each communicator")
	fmt.Println("to a subset of the dimensions (Section V-A of the paper).")
}
