// Pipeline parallelism: the workload class that motivated ASTRA-sim 2.0's
// graph-based execution engine — different NPUs execute different
// operations at the same time, which the original frontend could not
// express. This example runs a GPipe-style pipeline at several depths and
// shows how the fill/drain bubble (idle time) grows with depth while the
// per-stage compute shrinks.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	m, err := astrasim.NewMachine(astrasim.MachineConfig{
		Topology:       "R(16)",
		BandwidthsGBps: []float64{300},
		PeakTFLOPS:     234,
	})
	if err != nil {
		log.Fatal(err)
	}

	const (
		totalFlops   = 64e12 // one iteration's forward compute, whole model
		microBatches = 8
		activation   = int64(16 << 20)
	)

	fmt.Printf("%-8s %12s %12s %12s %12s\n", "Stages", "Compute", "ExposedComm", "Idle", "Makespan")
	for _, stages := range []int{2, 4, 8, 16} {
		flopsPerStage := totalFlops / float64(stages) / float64(microBatches)
		rep, err := m.Run(astrasim.Pipeline(stages, microBatches, flopsPerStage, activation, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12v %12v %12v %12v\n",
			stages, rep.Compute, rep.ExposedComm, rep.Idle, rep.Makespan)
	}
	fmt.Println("\nDeeper pipelines shrink per-stage compute but pay a growing bubble:")
	fmt.Println("the idle column is the classic GPipe fill/drain cost, visible per NPU")
	fmt.Println("because every rank runs its own execution-trace graph.")
}
