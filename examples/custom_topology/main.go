// Custom topologies and first-order design-space exploration: the paper's
// topology taxonomy lets any multi-dimensional hierarchical network be
// written as a one-line notation. This example sweeps bandwidth splits for
// a fixed 1024-NPU budget across different shapes and ranks them with the
// closed-form collective estimator, then verifies the winner with a full
// event simulation.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

type candidate struct {
	topo string
	bw   []float64
	est  time.Duration
}

func main() {
	// Every candidate drives 600 GB/s per NPU in total.
	candidates := []candidate{
		{topo: "SW(1024)", bw: []float64{600}},
		{topo: "R(32)_R(32)", bw: []float64{400, 200}},
		{topo: "SW(32)_SW(32)", bw: []float64{300, 300}},
		{topo: "R(4)_FC(16)_SW(16)", bw: []float64{300, 200, 100}},
		{topo: "R(2)_FC(8)_R(8)_SW(8)", bw: []float64{250, 200, 100, 50}},
		{topo: "FC(16)_SW(64)", bw: []float64{450, 150}},
	}

	const size = int64(1) << 30
	for i := range candidates {
		m, err := astrasim.NewMachine(astrasim.MachineConfig{
			Topology:       candidates[i].topo,
			BandwidthsGBps: candidates[i].bw,
			Scheduler:      "themis",
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := m.EstimateCollective("all_reduce", size)
		if err != nil {
			log.Fatal(err)
		}
		candidates[i].est = est
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].est < candidates[j].est })

	fmt.Printf("1 GB All-Reduce estimates (Themis) at 600 GB/s per NPU, 1024 NPUs:\n")
	fmt.Printf("%-24s %-22s %14s\n", "Topology", "BW split (GB/s)", "Estimate")
	for _, c := range candidates {
		fmt.Printf("%-24s %-22v %14v\n", c.topo, c.bw, c.est)
	}

	// Verify the winner with the event-driven simulation.
	best := candidates[0]
	m, err := astrasim.NewMachine(astrasim.MachineConfig{
		Topology:       best.topo,
		BandwidthsGBps: best.bw,
		Scheduler:      "themis",
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.Run(astrasim.AllReduce(size))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwinner %s simulated: %v (estimate %v)\n", best.topo, rep.Makespan, best.est)
}
