// Multi-job cluster simulation: co-scheduled training jobs space-sharing
// one hierarchical fabric and one disaggregated memory pool. Each job owns
// a disjoint slice of the cluster (inner dimensions whole, switch ports
// sliced), all jobs interleave on one shared timeline, and the levels
// where jobs co-reside — an oversubscribed spine switch, the memory pool —
// are arbitrated with first-order fair sharing. A single-job cluster is
// byte-identical to the isolated run, so the Slowdown column is a real
// interference metric.
//
// The example co-schedules tensor-parallel GPT-3 tenants, DLRM tenants
// (All-to-All heavy) and pool-streaming MoE tenants on a 128-NPU cluster
// with a 4:1 tapered spine, then reruns the same tenants on a flat spine
// to show the interference disappear.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func runOn(name, spine string) {
	spec := astrasim.ClusterSpec{
		Name: name,
		Fabric: astrasim.MachineConfig{
			Topology:       spine,
			BandwidthsGBps: []float64{250, 250},
			Memory: &astrasim.MemoryConfig{
				Pool: &astrasim.PoolConfig{
					Design: "hierarchical", Nodes: 16, GPUsPerNode: 8,
					OutSwitches: 4, RemoteGroups: 8,
					RemoteGroupGBps: 100, GPUSideGBps: 100, InNodeGBps: 256,
				},
			},
		},
		Placement: "packed",
		Jobs: []astrasim.ClusterJobSpec{
			{Name: "gpt", NPUs: 16, Count: 2, Workload: astrasim.WorkloadSpec{Kind: "gpt3"}},
			{Name: "ads", NPUs: 16, Count: 4, Workload: astrasim.WorkloadSpec{Kind: "dlrm"}},
			{Name: "moe", NPUs: 16, Count: 2, Workload: astrasim.WorkloadSpec{Kind: "moe"}},
		},
	}
	res, err := astrasim.RunCluster(spec, astrasim.ClusterOptions{Slowdowns: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Eight tenants on a 4:1 oversubscribed spine (shared switch core + shared pool):")
	runOn("tapered-spine", "SW(8)_SW(16,4)")

	fmt.Println("The same tenants on a fully-provisioned spine (only the pool still contends):")
	runOn("flat-spine", "SW(8)_SW(16)")
}
