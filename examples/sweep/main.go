// Example sweep: a declarative design-space exploration — three network
// bandwidth provisions of the paper's Conv-4D shape against a wafer-style
// switch, each running two collectives and a GPT-3 iteration, executed in
// parallel with deterministic output.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	conv := func(name string, scale float64) astrasim.SweepMachine {
		return astrasim.SweepMachine{
			Name: name,
			Config: astrasim.MachineConfig{
				Topology: "R(2)_FC(8)_R(8)_SW(4)",
				BandwidthsGBps: []float64{
					250 * scale, 200 * scale, 100 * scale, 50 * scale,
				},
			},
		}
	}
	spec := astrasim.SweepSpec{
		Name: "bandwidth-scan",
		Machines: []astrasim.SweepMachine{
			conv("conv-4d-0.5x", 0.5),
			conv("conv-4d-1x", 1),
			conv("conv-4d-2x", 2),
			{Name: "wafer-600", Config: astrasim.MachineConfig{
				Topology: "SW(512)", BandwidthsGBps: []float64{600},
			}},
		},
		Workloads: []astrasim.WorkloadSpec{
			{Kind: "all_reduce", SizeBytes: 1 << 30},
			{Kind: "all_to_all", SizeBytes: 1 << 28},
			{Kind: "gpt3"},
		},
	}
	res, err := astrasim.RunSweep(spec, astrasim.SweepOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
