// Example search: a budgeted multi-fidelity design-space search. The
// candidate space crosses four 512-NPU fabric shapes with four bandwidth
// provisioning vectors (16 candidates; pairings whose vector length does
// not match the shape's dimension count are pruned, leaving 8 feasible
// machines); the halving strategy screens the survivors with the
// closed-form All-Reduce estimator and promotes only the top quartile to
// full event-engine simulation of a GPT-3 training iteration — then a
// cost-capped variant repeats the search allowing at most 500 GB/s of
// configured per-NPU bandwidth.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	spec := astrasim.SearchSpec{
		Name:     "fabric-hunt",
		Strategy: "halving",
		Seed:     1,
		Topologies: []string{
			"T2D(16,32)",
			"R(16)_R(32)",
			"SW(16)_SW(32)",
			"SW(16)_SW(32,4)",
		},
		Bandwidths: [][]float64{
			{500}, {1000}, // single-fabric provisions (the torus)
			{250, 250}, {500, 500}, // two-dimension provisions
		},
		Workloads: []astrasim.WorkloadSpec{{Kind: "gpt3"}},
	}
	// The search-wide total grows as rungs are committed, so done == total
	// mid-run does not mean finished; terminate the counter line only once
	// Optimize returns.
	opts := astrasim.SearchOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
		},
	}
	res, err := astrasim.Optimize(spec, opts)
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The same hunt under a provisioning budget: over-provisioned
	// candidates are pruned before any evaluation.
	spec.Name = "fabric-hunt-capped"
	spec.MaxAggregateGBps = 500
	capped, err := astrasim.Optimize(spec, opts)
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := capped.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
