// TPU-style 2D torus pods through the pluggable dimension-model layer: a
// Torus2D(a,b) block packs an a x b bidirectional torus into one stacked
// dimension and pairs it with per-axis ring collective phases, the shape
// of a TPU pod. This example compares a 256-chip torus pod against the
// equivalent stacked-ring machine (TPUv2/v3 style) and a tapered switch
// fabric on a GPT-3 iteration, then shows the closed-form estimator
// screening the same designs without event simulation.
package main

import (
	"fmt"
	"log"

	"repro"
)

type design struct {
	name string
	topo string
	bw   []float64
}

func main() {
	// All designs connect 256 NPUs with 600 GB/s configured per NPU.
	designs := []design{
		{"torus-pod", "T2D(16,16)", []float64{600}},
		{"ring-stack", "R(16)_R(16)", []float64{300, 300}},
		{"switch-tapered", "SW(16)_SW(16,4)", []float64{300, 300}},
	}

	fmt.Println("GPT-3 iteration on 256 NPUs (tensor-parallel 16):")
	for _, d := range designs {
		m, err := astrasim.NewMachine(astrasim.MachineConfig{
			Topology:       d.topo,
			BandwidthsGBps: d.bw,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.Run(astrasim.GPT3())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %-16s makespan %-14v exposed comm %v\n",
			d.name, m.TopologySpec(), rep.Makespan, rep.ExposedComm)
	}

	fmt.Println("\nClosed-form 1 GB All-Reduce screening (no event simulation):")
	for _, d := range designs {
		m, err := astrasim.NewMachine(astrasim.MachineConfig{
			Topology:       d.topo,
			BandwidthsGBps: d.bw,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := m.EstimateCollective("all_reduce", 1<<30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %v\n", d.name, est)
	}
}
