// Disaggregated memory: a pocket version of the paper's Section V-B case
// study. A 256-GPU machine trains a 1T-parameter Mixture-of-Experts model
// whose parameters live beyond local HBM, comparing a ZeRO-Infinity-style
// system (private CPU+NVMe path per GPU, network collectives) against a
// hierarchical memory pool with in-switch collectives (parameters gathered
// by the fabric while being loaded), at two pool provisioning points.
package main

import (
	"fmt"
	"log"

	"repro"
)

func machine(pool *astrasim.PoolConfig) *astrasim.Machine {
	m, err := astrasim.NewMachine(astrasim.MachineConfig{
		Topology:       "SW(16)_SW(16)", // 16 GPUs per node, 16 nodes
		BandwidthsGBps: []float64{460, 100},
		PeakTFLOPS:     2048, // Table V's future GPU
		HBMGBps:        4096,
		Efficiency:     0.5,
		Memory:         &astrasim.MemoryConfig{Pool: pool},
	})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func hierPool(inNodeGBps, remoteGBps float64) *astrasim.PoolConfig {
	return &astrasim.PoolConfig{
		Design: "hierarchical", Nodes: 16, GPUsPerNode: 16,
		OutSwitches: 16, RemoteGroups: 256,
		RemoteGroupGBps: remoteGBps, GPUSideGBps: 8192, InNodeGBps: inNodeGBps,
		ChunkBytes: 256 << 10, LatencyUs: 2,
	}
}

func main() {
	cases := []struct {
		name     string
		pool     *astrasim.PoolConfig
		inSwitch bool
	}{
		{"ZeRO-Infinity", &astrasim.PoolConfig{
			Design: "private", Nodes: 16, GPUsPerNode: 16,
			RemoteGroups: 256, RemoteGroupGBps: 100, LatencyUs: 10,
		}, false},
		{"HierMem baseline", hierPool(256, 100), true},
		{"HierMem provisioned", hierPool(2048, 500), true},
	}

	fmt.Printf("%-20s %10s %12s %12s %12s\n", "System", "Compute", "ExposedComm", "ExposedRem", "Makespan")
	var baseline, provisioned float64
	for _, c := range cases {
		m := machine(c.pool)
		rep, err := m.Run(astrasim.MoE1T(c.inSwitch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10v %12v %12v %12v\n",
			c.name, rep.Compute, rep.ExposedComm, rep.ExposedRemoteMem, rep.Makespan)
		switch c.name {
		case "HierMem baseline":
			baseline = rep.Makespan.Seconds()
		case "HierMem provisioned":
			provisioned = rep.Makespan.Seconds()
		}
	}
	fmt.Printf("\nprovisioned pool speedup over baseline: %.2fx (paper reports 4.6x\n", baseline/provisioned)
	fmt.Println("for its swept optimum; exposed communication dominates the baselines)")
}
