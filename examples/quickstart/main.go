// Quickstart: simulate a 1 GB All-Reduce on a DGX-A100-class cluster —
// 8 GPUs per node over NVSwitch, 16 nodes over an InfiniBand fabric —
// and compare the baseline collective scheduler against Themis.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, scheduler := range []string{"baseline", "themis"} {
		m, err := astrasim.NewMachine(astrasim.MachineConfig{
			Topology:       "SW(8)_SW(16)", // NVSwitch in-node, IB scale-out
			BandwidthsGBps: []float64{600, 50},
			PeakTFLOPS:     234, // A100, as measured in the paper
			Scheduler:      scheduler,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := m.Run(astrasim.AllReduce(1 << 30))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s scheduler: All-Reduce(1GB) on %s (%d NPUs) takes %v\n",
			scheduler, m.TopologySpec(), m.NumNPUs(), report.Makespan)
		fmt.Printf("          per-dim traffic (MB, sent+recv per NPU): %.1f\n",
			report.TrafficPerDimMB)
	}

	// The closed-form estimator answers "what if" questions without
	// running the event simulation at all.
	m, err := astrasim.NewMachine(astrasim.MachineConfig{
		Topology:       "SW(8)_SW(16)",
		BandwidthsGBps: []float64{600, 100}, // double the scale-out fabric
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := m.EstimateCollective("all_reduce", 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate with a 100 GB/s scale-out fabric instead: %v\n", est)
}
