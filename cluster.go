package astrasim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/et"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/units"
)

// This file is the multi-tenancy facade: declarative cluster specs of N
// co-scheduled training jobs space-sharing one hierarchical fabric and
// memory pool, simulated on one shared timeline with runtime fair-sharing
// arbitration (internal/cluster). A single-job cluster reproduces the
// isolated run of the same carved-out machine byte for byte, which makes
// the per-job Slowdown column a well-defined interference metric.

// ClusterJobSpec describes one co-scheduled job (or Count identical ones).
type ClusterJobSpec struct {
	// Name labels the job; replicated jobs get "name#i" suffixes. Defaults
	// to the workload name.
	Name string `json:"name,omitempty"`
	// NPUs is the job's allocation. It must decompose along the fabric's
	// dimensions: inner dimensions whole, optionally times a slice of the
	// next dimension — which must be a switch (any subset of switch ports
	// is a switch; a subset of a ring or torus is not that fabric).
	NPUs int `json:"npus"`
	// Count replicates the job spec (default 1).
	Count int `json:"count,omitempty"`
	// ArrivalUs releases the job's trace at this simulated time.
	ArrivalUs float64 `json:"arrival_us,omitempty"`
	// Workload is the job's training workload, generated for the job's
	// carved-out local topology.
	Workload WorkloadSpec `json:"workload"`
}

// ClusterSpec is a declarative multi-job cluster: a shared fabric machine
// plus the jobs co-scheduled onto it.
type ClusterSpec struct {
	Name string `json:"name,omitempty"`
	// Fabric configures the shared machine: cluster topology, bandwidths,
	// NPU model, scheduler and (pooled) memory system.
	Fabric MachineConfig `json:"fabric"`
	// Placement is the allocation policy: "packed" (default), "strided"
	// or "random".
	Placement string `json:"placement,omitempty"`
	// Seed drives the random placement's shuffle; results are fully
	// reproducible for a fixed seed.
	Seed int64            `json:"seed,omitempty"`
	Jobs []ClusterJobSpec `json:"jobs"`
	// Scenario optionally injects fabric-relative perturbations: link
	// events name fabric dimensions, NPU events name fabric ranks; each
	// event is applied to the jobs it touches. Isolated-baseline runs (the
	// Slowdowns option) stay clean, so the slowdown column then measures
	// interference plus perturbation.
	Scenario []ScenarioEventSpec `json:"scenario,omitempty"`
}

// ClusterPlacements lists the placement policy names.
func ClusterPlacements() []string { return cluster.Placements() }

// LoadClusterSpec reads a ClusterSpec JSON document, rejecting unknown
// fields so spec typos fail loudly.
func LoadClusterSpec(r io.Reader) (ClusterSpec, error) {
	var s ClusterSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("astrasim: parse cluster spec: %w", err)
	}
	return s, nil
}

// ClusterOptions controls cluster execution.
type ClusterOptions struct {
	// Slowdowns additionally runs each distinct job type in isolation on
	// its carved-out machine and fills the per-job Slowdown column
	// (cluster span / isolated makespan). One extra run per distinct
	// (allocation, workload) pair.
	Slowdowns bool
}

// RunClusterFile loads a cluster spec from a JSON file and simulates it —
// the entry point of the CLIs' -cluster flag.
func RunClusterFile(path string, opt ClusterOptions) (*ClusterResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := LoadClusterSpec(f)
	if err != nil {
		return nil, err
	}
	return RunCluster(spec, opt)
}

// ClusterJobRow is one job's outcome.
type ClusterJobRow struct {
	Job      string `json:"job"`
	Workload string `json:"workload"`
	NPUs     int    `json:"npus"`
	// Local is the job's carved-out topology in shape notation; FirstRank
	// is the lowest fabric NPU of its allocation.
	Local     string `json:"local"`
	FirstRank int    `json:"first_rank"`
	// Arrival and Finish bound the job's span on the shared timeline.
	Arrival time.Duration `json:"arrival_ns"`
	Finish  time.Duration `json:"finish_ns"`
	// Slowdown is the job's span divided by its isolated makespan on the
	// same carved-out machine (1.0 = no interference); 0 when baselines
	// were not requested.
	Slowdown float64 `json:"slowdown,omitempty"`
	// Report is the job's runtime report; Makespan is the job's own span.
	Report *Report `json:"report"`
}

// ClusterResult is a completed multi-job simulation.
type ClusterResult struct {
	Name      string          `json:"name,omitempty"`
	Fabric    string          `json:"fabric"`
	Placement string          `json:"placement"`
	Seed      int64           `json:"seed,omitempty"`
	Jobs      []ClusterJobRow `json:"jobs"`
	// Makespan is when the last job finished; Events the total discrete
	// events fired across all jobs.
	Makespan time.Duration `json:"makespan_ns"`
	Events   uint64        `json:"events"`
}

// clusterJob is one expanded (replicated) job with its validated workload.
type clusterJob struct {
	spec     ClusterJobSpec
	name     string
	workload Workload
	fp       string // baseline-dedup key: allocation size + workload JSON
}

// expandClusterJobs validates and replicates the job specs.
func expandClusterJobs(specs []ClusterJobSpec) ([]clusterJob, error) {
	var out []clusterJob
	for i, js := range specs {
		if js.Count < 0 {
			return nil, fmt.Errorf("astrasim: cluster job %d: negative count", i)
		}
		w, err := js.Workload.Workload()
		if err != nil {
			return nil, fmt.Errorf("astrasim: cluster job %d: %w", i, err)
		}
		wsJSON, err := json.Marshal(js.Workload)
		if err != nil {
			return nil, err
		}
		name := js.Name
		if name == "" {
			name = w.Name()
		}
		count := js.Count
		if count == 0 {
			count = 1
		}
		for c := 0; c < count; c++ {
			j := clusterJob{
				spec: js,
				name: name,
				fp:   fmt.Sprintf("%d|%s", js.NPUs, wsJSON),
			}
			if count > 1 {
				j.name = fmt.Sprintf("%s#%d", name, c)
			}
			// Each replica materializes its own workload so trace
			// generators are never shared.
			j.workload, err = js.Workload.Workload()
			if err != nil {
				return nil, err
			}
			out = append(out, j)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("astrasim: cluster has no jobs")
	}
	return out, nil
}

// clusterConfig assembles the internal cluster config from a validated
// fabric machine and expanded jobs.
func clusterConfig(m *Machine, placement cluster.Placement, seed int64, jobs []clusterJob) cluster.Config {
	cfg := cluster.Config{
		Fabric:                 m.core.Topology,
		Compute:                m.core.Compute,
		Memory:                 m.core.Memory,
		Policy:                 m.core.Policy,
		Chunks:                 m.core.Chunks,
		ModelTransitCongestion: m.core.ModelTransitCongestion,
		Placement:              placement,
		Seed:                   seed,
	}
	for _, j := range jobs {
		w := j.workload
		cfg.Jobs = append(cfg.Jobs, cluster.JobConfig{
			Name:    j.name,
			NPUs:    j.spec.NPUs,
			Arrival: units.FromMicros(j.spec.ArrivalUs),
			Trace:   func(top *topology.Topology) (*et.Trace, error) { return w.trace(top) },
		})
	}
	return cfg
}

// RunCluster simulates the spec's co-scheduled jobs on the shared fabric.
// Results are deterministic: same spec and seed, same bytes. A single-job
// cluster reproduces the isolated run of the job's carved-out machine
// exactly.
func RunCluster(spec ClusterSpec, opt ClusterOptions) (*ClusterResult, error) {
	m, err := NewMachine(spec.Fabric)
	if err != nil {
		return nil, fmt.Errorf("astrasim: cluster fabric: %w", err)
	}
	placement, err := cluster.ParsePlacement(spec.Placement)
	if err != nil {
		return nil, err
	}
	jobs, err := expandClusterJobs(spec.Jobs)
	if err != nil {
		return nil, err
	}
	ccfg := clusterConfig(m, placement, spec.Seed, jobs)
	if len(spec.Scenario) > 0 {
		events, err := scenarioEvents(spec.Scenario)
		if err != nil {
			return nil, err
		}
		name := spec.Name
		if name == "" {
			name = "cluster"
		}
		ccfg.Scenario = &scenario.Scenario{Name: name, Events: events}
	}
	res, err := cluster.Run(ccfg)
	if err != nil {
		return nil, err
	}

	// Isolated baselines: one single-job cluster per distinct job type on
	// the same fabric — byte-identical to the job's isolated machine run.
	baselines := map[string]time.Duration{}
	if opt.Slowdowns {
		for _, j := range jobs {
			if _, ok := baselines[j.fp]; ok {
				continue
			}
			solo, err := expandClusterJobs([]ClusterJobSpec{{
				Name: j.name, NPUs: j.spec.NPUs, Workload: j.spec.Workload,
			}})
			if err != nil {
				return nil, err
			}
			iso, err := cluster.Run(clusterConfig(m, cluster.Packed, spec.Seed, solo))
			if err != nil {
				return nil, fmt.Errorf("astrasim: isolated baseline for %s: %w", j.name, err)
			}
			baselines[j.fp] = toDuration(iso.Jobs[0].Stats.Makespan)
		}
	}

	out := clusterResultFromInternal(spec.Name, m, placement, spec.Seed, jobs, res)
	for i := range out.Jobs {
		if iso := baselines[jobs[i].fp]; iso > 0 {
			out.Jobs[i].Slowdown = float64(out.Jobs[i].Report.Makespan) / float64(iso)
		}
	}
	return out, nil
}

// WriteJSON writes the result as an indented JSON document.
func (r *ClusterResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes a human-readable per-job summary.
func (r *ClusterResult) WriteTable(w io.Writer) error {
	name := r.Name
	if name == "" {
		name = "cluster"
	}
	if _, err := fmt.Fprintf(w, "cluster %s: fabric %s, %d jobs, %s placement\n",
		name, r.Fabric, len(r.Jobs), r.Placement); err != nil {
		return err
	}
	jobW, localW := len("Job"), len("Local")
	for _, row := range r.Jobs {
		if len(row.Job) > jobW {
			jobW = len(row.Job)
		}
		if len(row.Local) > localW {
			localW = len(row.Local)
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if _, err := fmt.Fprintf(w, "%-*s %-*s %6s %6s %12s %12s %9s\n",
		jobW, "Job", localW, "Local", "NPUs", "@rank", "Makespan", "Exp.Comm", "Slowdown"); err != nil {
		return err
	}
	for _, row := range r.Jobs {
		slow := "-"
		if row.Slowdown > 0 {
			slow = fmt.Sprintf("%.3fx", row.Slowdown)
		}
		if _, err := fmt.Fprintf(w, "%-*s %-*s %6d %6d %10.3fms %10.3fms %9s\n",
			jobW, row.Job, localW, row.Local, row.NPUs, row.FirstRank,
			ms(row.Report.Makespan), ms(row.Report.ExposedComm), slow); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\ncluster makespan %v, %d events\n",
		r.Makespan, r.Events)
	return err
}

// WriteCSV writes one record per job with the headline metrics in
// microseconds. Deterministic for a given result.
func (r *ClusterResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "job,workload,npus,local,first_rank,arrival_us,finish_us,makespan_us,exposed_comm_us,exposed_remote_mem_us,slowdown"); err != nil {
		return err
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, row := range r.Jobs {
		if _, err := fmt.Fprintf(w, "%q,%q,%d,%q,%d,%g,%g,%g,%g,%g,%g\n",
			row.Job, row.Workload, row.NPUs, row.Local, row.FirstRank,
			us(row.Arrival), us(row.Finish), us(row.Report.Makespan),
			us(row.Report.ExposedComm), us(row.Report.ExposedRemoteMem), row.Slowdown); err != nil {
			return err
		}
	}
	return nil
}
