package astrasim_test

import (
	"fmt"
	"log"

	astrasim "repro"
)

// Example_quickstart builds the paper's Conv-4D system and times a 1 GB
// All-Reduce under both collective schedulers. The simulation is fully
// deterministic, so the output is stable.
func Example_quickstart() {
	for _, scheduler := range []string{"baseline", "themis"} {
		m, err := astrasim.NewMachine(astrasim.MachineConfig{
			Topology:       "R(2)_FC(8)_R(8)_SW(4)",
			BandwidthsGBps: []float64{250, 200, 100, 50},
			Scheduler:      scheduler,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := m.Run(astrasim.AllReduce(1 << 30))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %v NPUs=%d\n", scheduler, report.Makespan, m.NumNPUs())
	}
	// Output:
	// baseline: 9.530958ms NPUs=512
	// themis: 8.056777ms NPUs=512
}

// Example_estimator uses the closed-form path for first-order design-space
// exploration: no event simulation runs at all.
func Example_estimator() {
	m, err := astrasim.NewMachine(astrasim.MachineConfig{
		Topology:       "SW(512)",
		BandwidthsGBps: []float64{600},
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := m.EstimateCollective("all_reduce", 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(est)
	// Output:
	// 7.162297ms
}
