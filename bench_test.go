package astrasim

// One benchmark per reproduced table/figure of the paper (see DESIGN.md's
// experiment index), plus ablation benches for the design choices the
// implementation makes. Each benchmark runs the same driver that
// regenerates the artifact via cmd/paper, so `go test -bench` doubles as a
// performance regression harness for the simulator itself.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/experiments"
	"repro/internal/garnet"
	"repro/internal/network"
	"repro/internal/sweep"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// BenchmarkFig4Validation regenerates the analytical-backend validation
// sweep (E1): 12 All-Reduce configurations against the reference system.
func BenchmarkFig4Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanAbsErrorPct > 8 {
			b.Fatalf("mean error drifted to %.2f%%", res.MeanAbsErrorPct)
		}
	}
}

// BenchmarkSpeedupAnalytical measures the analytical backend on the
// speedup study's small torus (E2) — the "fast" side of the comparison.
func BenchmarkSpeedupAnalytical(b *testing.B) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(32), Latency: units.Nanosecond},
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(32), Latency: units.Nanosecond},
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(32), Latency: units.Nanosecond},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := timeline.New()
		net := network.NewBackend(eng, top)
		ce := collective.NewEngine(net, collective.WithChunks(1))
		if err := ce.Start(collective.AllReduce, units.MB, collective.FullMachine(top), nil); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedupGarnet measures the cycle-level backend on the same
// configuration (E2) — the "slow" side. The ratio of these two benchmarks
// is the reproduced headline of Section IV-C.
func BenchmarkSpeedupGarnet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := garnet.New(garnet.Config{Shape: []int{4, 4, 4}, FlitBytes: 16, LinkLatency: 1, ClockGHz: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := g.AllReduce(units.MB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV regenerates the seven-row wafer-scaling table (E3).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 7 {
			b.Fatal("row count drifted")
		}
	}
}

// BenchmarkFig9a regenerates the 512-NPU case-study grid (E4) with
// reduced layer counts.
func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9a(experiments.Options{Reduced: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9b regenerates the scaling grid (E5) with reduced layers.
func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9b(experiments.Options{Reduced: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 regenerates the disaggregated-memory comparison (E6)
// with the sweep's corner points.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(experiments.Options{Reduced: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierMemSweep regenerates the full 8x5 design-space sweep (E7).
func BenchmarkHierMemSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sweep) != 40 {
			b.Fatalf("sweep has %d points, want 40", len(res.Sweep))
		}
	}
}

// --- Sweep engine: serial vs parallel execution ---

// benchSweepWorkers regenerates a bundle of experiment grids (Fig. 4,
// Table IV, the ablation) through the sweep engine at a fixed worker
// count. The Serial/Parallel pair tracks the engine's wall-clock speedup
// in the perf trajectory; on an N-core host the parallel variant should
// approach Nx (>2x on 4 cores) with byte-identical results.
func benchSweepWorkers(b *testing.B, workers int) {
	o := experiments.Options{Exec: sweep.Exec{Workers: workers}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.TableIV(o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Ablation(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) { benchSweepWorkers(b, 1) }

func BenchmarkSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) } // all cores

// --- Search engine: fidelity-gated search vs exhaustive sweep ---

// BenchmarkSearchVsSweep measures the multi-fidelity payoff on a 24-point
// machine space (6 fabric shapes x 4 bandwidth provisions, one 256 MB
// All-Reduce): the exhaustive strategy event-simulates every candidate,
// the halving strategy estimate-screens the space and simulates the top
// quartile. After both sub-benchmarks run it writes BENCH_search.json
// with wall time, evaluation counts and the fidelity-gated speedup, and
// fails if the budgeted search misses the exhaustive optimum.
func BenchmarkSearchVsSweep(b *testing.B) {
	spec := func(strategy string) SearchSpec {
		return SearchSpec{
			Name:       "bench-search",
			Strategy:   strategy,
			Seed:       1,
			Topologies: []string{"R(64)", "SW(64)", "M(64)", "FC(64)", "T2D(8,8)", "SW(64,4)"},
			Bandwidths: [][]float64{{50}, {100}, {200}, {400}},
			Workloads:  []WorkloadSpec{{Kind: "all_reduce", SizeBytes: 256 << 20}},
		}
	}
	type record struct {
		Strategy    string  `json:"strategy"`
		Space       int     `json:"space"`
		Estimates   int     `json:"estimates"`
		Simulations int     `json:"simulations"`
		NsPerOp     float64 `json:"ns_per_op"`
		Best        string  `json:"best"`
	}
	records := make([]record, 2)
	for si, strategy := range []string{"exhaustive", "halving"} {
		b.Run(strategy, func(b *testing.B) {
			var res *SearchResult
			start := time.Now()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Optimize(spec(strategy), SearchOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Simulations), "sims")
			records[si] = record{
				Strategy:    strategy,
				Space:       res.Feasible,
				Estimates:   res.Estimates,
				Simulations: res.Simulations,
				NsPerOp:     float64(time.Since(start).Nanoseconds()) / float64(b.N),
				Best:        res.Best.Machine,
			}
		})
	}
	// Sub-benchmarks can be filtered away; only write the artifact (and
	// judge recovery) when both strategies actually ran.
	for _, r := range records {
		if r.Strategy == "" {
			return
		}
	}
	if records[0].Best != records[1].Best {
		b.Fatalf("halving best %q != exhaustive best %q", records[1].Best, records[0].Best)
	}
	doc, err := json.MarshalIndent(struct {
		Workload  string   `json:"workload"`
		Records   []record `json:"records"`
		Speedup   float64  `json:"speedup"`
		Recovered bool     `json:"recovered"`
	}{
		Workload:  "all_reduce(256MB)",
		Records:   records,
		Speedup:   records[0].NsPerOp / records[1].NsPerOp,
		Recovered: true,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_search.json", append(doc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Ablations for DESIGN.md's modeling choices ---

// BenchmarkAblationChunks quantifies chunk-pipelining depth: collective
// runtime and simulation cost as the chunk count grows (1 disables
// pipelining; the paper's bottleneck behaviour emerges from ~16 on).
func BenchmarkAblationChunks(b *testing.B) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(1000)},
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		topology.Dim{Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	for _, chunks := range []int{1, 16, 64, 256} {
		b.Run(benchName("chunks", chunks), func(b *testing.B) {
			var last units.Time
			for i := 0; i < b.N; i++ {
				eng := timeline.New()
				net := network.NewBackend(eng, top)
				ce := collective.NewEngine(net, collective.WithChunks(chunks))
				var res collective.Result
				if err := ce.Start(collective.AllGather, 1024*units.MB, collective.FullMachine(top), func(r collective.Result) { res = r }); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				last = res.Duration()
			}
			b.ReportMetric(last.Micros(), "sim_us")
		})
	}
}

// BenchmarkAblationScheduler compares the two chunk schedulers on the
// paper's Conv-3D system, reporting the simulated collective time so the
// Themis gain is visible next to the scheduling overhead.
func BenchmarkAblationScheduler(b *testing.B) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 16, Bandwidth: units.GBps(200)},
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	for _, policy := range []collective.Policy{collective.Baseline, collective.Themis} {
		b.Run(policy.String(), func(b *testing.B) {
			var last units.Time
			for i := 0; i < b.N; i++ {
				eng := timeline.New()
				net := network.NewBackend(eng, top)
				ce := collective.NewEngine(net, collective.WithChunks(64), collective.WithPolicy(policy))
				var res collective.Result
				if err := ce.Start(collective.AllReduce, 1024*units.MB, collective.FullMachine(top), func(r collective.Result) { res = r }); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				last = res.Duration()
			}
			b.ReportMetric(last.Micros(), "sim_us")
		})
	}
}

// BenchmarkEngineEventThroughput measures raw discrete-event throughput,
// the simulator's fundamental cost driver.
func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := timeline.New()
	b.ReportAllocs()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			eng.Schedule(units.Nanosecond, tick)
		}
	}
	eng.Schedule(0, tick)
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEndToEndGPT3 measures a full GPT-3 iteration simulation on the
// Conv-4D system — the representative heavy workload-layer run.
func BenchmarkEndToEndGPT3(b *testing.B) {
	m, err := NewMachine(MachineConfig{
		Topology:       "R(2)_FC(8)_R(8)_SW(4)",
		BandwidthsGBps: []float64{250, 200, 100, 50},
		Chunks:         16,
	})
	if err != nil {
		b.Fatal(err)
	}
	// A reduced-depth GPT-3 keeps per-iteration benches tractable.
	w := Transformer(175e9/8, 12, 12288, 2048, 1, 2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(w); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkCollectiveByBlock measures event-driven simulation throughput
// per registered building block: a 256 MB All-Reduce over one 64-NPU
// dimension of each block. After the sub-benchmarks run it writes
// BENCH_topology.json with per-block wall time, event counts and simulated
// time, so CI tracks the dimension-model layer's cost per block.
func BenchmarkCollectiveByBlock(b *testing.B) {
	mk := func(kind topology.DimModel, size int) topology.Dim {
		return topology.Dim{Kind: kind, Size: size, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond}
	}
	cases := []struct {
		name string
		dim  topology.Dim
	}{
		{"Ring", mk(topology.Ring, 64)},
		{"FullyConnected", mk(topology.FullyConnected, 64)},
		{"Switch", mk(topology.Switch, 64)},
		{"Mesh", mk(topology.Mesh, 64)},
		{"Torus2D", mk(topology.Torus2D(8, 8), 64)},
		{"OversubSwitch", mk(topology.OversubscribedSwitch(4), 64)},
	}
	type record struct {
		Block     string  `json:"block"`
		Notation  string  `json:"notation"`
		NPUs      int     `json:"npus"`
		NsPerOp   float64 `json:"ns_per_op"`
		Events    uint64  `json:"events_per_op"`
		SimTimeUs float64 `json:"sim_time_us"`
	}
	const size = 256 * units.MB
	records := make([]record, len(cases))
	for ci, c := range cases {
		top := topology.MustNew(c.dim)
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(size))
			var events uint64
			var simTime units.Time
			start := time.Now()
			for i := 0; i < b.N; i++ {
				eng := timeline.New()
				net := network.NewBackend(eng, top)
				ce := collective.NewEngine(net, collective.WithChunks(64))
				if err := ce.Start(collective.AllReduce, size, collective.FullMachine(top), nil); err != nil {
					b.Fatal(err)
				}
				end, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				events, simTime = eng.Fired(), end
			}
			// The closure runs once per auto-scaling round; the last round
			// (largest N) leaves the steadiest estimate in the record.
			records[ci] = record{
				Block:     c.name,
				Notation:  c.dim.Format(),
				NPUs:      c.dim.Size,
				NsPerOp:   float64(time.Since(start).Nanoseconds()) / float64(b.N),
				Events:    events,
				SimTimeUs: simTime.Micros(),
			}
		})
	}
	// Sub-benchmarks can be filtered away (-bench 'ByBlock/Ring'); only
	// write the artifact when every block actually ran, so a partial run
	// never replaces a complete capture with zeroed rows.
	for _, r := range records {
		if r.Block == "" {
			return
		}
	}
	doc, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_topology.json", append(doc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
