package astrasim

// Engine hot-path benchmarks (E8): the discrete-event core's cost per event
// on the chunked All-Reduce path, the workload that dominates every paper
// figure. BenchmarkEngineHotPath sweeps the NPU count from 64 to 32768 on
// both the serial and the sharded engine and writes BENCH_engine.json with
// ns/event, allocs/event and events/sec per series. Two historical series
// are preserved across runs so the artifact always carries the full
// before/after story: "baseline" (before the zero-allocation rework) and
// "previous" (before the dimension-aggregate + sharded-engine rework,
// whose per-event cost grew ~13x from 64 to 1024 NPUs).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// engineBenchRecord is one row of BENCH_engine.json.
type engineBenchRecord struct {
	NPUs           int     `json:"npus"`
	Topology       string  `json:"topology"`
	Shards         int     `json:"shards,omitempty"`
	EventsPerOp    uint64  `json:"events_per_op"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

type engineBenchDoc struct {
	Workload string              `json:"workload"`
	Baseline []engineBenchRecord `json:"baseline"`
	Previous []engineBenchRecord `json:"previous,omitempty"`
	Current  []engineBenchRecord `json:"current"`
	Sharded  []engineBenchRecord `json:"sharded,omitempty"`
}

// engineHotPathTopology builds the benchmark machine at a given scale:
// a three-level hierarchy (intra-board ring, board fully-connected,
// scale-out switch) shaped like the paper's Conv systems.
func engineHotPathTopology(npus int) *topology.Topology {
	return topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(250), Latency: 50 * units.Nanosecond},
		topology.Dim{Kind: topology.FullyConnected, Size: 4, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond},
		topology.Dim{Kind: topology.Switch, Size: npus / 16, Bandwidth: units.GBps(50), Latency: 2 * units.Microsecond},
	)
}

// benchShards is the shard count of the "sharded" series: the machine's
// cores, capped so the artifact stays comparable across runners.
func benchShards() int {
	k := runtime.NumCPU()
	if k > 8 {
		k = 8
	}
	if k < 2 {
		k = 2
	}
	return k
}

// BenchmarkEngineHotPath drives the production chunk-phase collective path
// (64-chunk 64 MB All-Reduce) at 64-32768 NPUs on the serial and sharded
// engines and records per-event cost.
func BenchmarkEngineHotPath(b *testing.B) {
	const (
		size   = 64 * units.MB
		chunks = 64
	)
	scales := []int{64, 256, 1024, 4096, 32768}
	serial := make([]engineBenchRecord, len(scales))
	sharded := make([]engineBenchRecord, len(scales))
	for si, npus := range scales {
		top := engineHotPathTopology(npus)
		for _, shards := range []int{0, benchShards()} {
			shards := shards
			name := fmt.Sprintf("npus=%d", npus)
			if shards > 0 {
				name = fmt.Sprintf("npus=%d/shards=%d", npus, shards)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var events uint64
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				for i := 0; i < b.N; i++ {
					eng := timeline.ForShards(shards)
					core.ApplyLookahead(eng, top)
					net := network.NewBackend(eng, top)
					ce := collective.NewEngine(net, collective.WithChunks(chunks))
					if err := ce.Start(collective.AllReduce, size, collective.FullMachine(top), nil); err != nil {
						b.Fatal(err)
					}
					if _, err := eng.Run(); err != nil {
						b.Fatal(err)
					}
					events = eng.Fired()
				}
				elapsed := time.Since(start)
				runtime.ReadMemStats(&ms1)
				totalEvents := float64(events) * float64(b.N)
				nsPerEvent := float64(elapsed.Nanoseconds()) / totalEvents
				b.ReportMetric(nsPerEvent, "ns/event")
				// Mallocs includes per-op setup (engine, backend, stats
				// arrays); on a multi-thousand-event run that fixed cost
				// amortizes to noise, so the quotient tracks the hot path.
				allocsPerEvent := float64(ms1.Mallocs-ms0.Mallocs) / totalEvents
				b.ReportMetric(allocsPerEvent, "allocs/event")
				rec := engineBenchRecord{
					NPUs:           npus,
					Topology:       top.String(),
					Shards:         shards,
					EventsPerOp:    events,
					NsPerEvent:     nsPerEvent,
					AllocsPerEvent: allocsPerEvent,
					EventsPerSec:   1e9 / nsPerEvent,
				}
				if shards > 0 {
					sharded[si] = rec
				} else {
					serial[si] = rec
				}
			})
		}
	}
	// Sub-benchmarks can be filtered away; only write the artifact when
	// every scale ran, so a partial run never clobbers a full capture.
	for i := range serial {
		if serial[i].NPUs == 0 || sharded[i].NPUs == 0 {
			return
		}
	}
	doc := engineBenchDoc{
		Workload: fmt.Sprintf("all_reduce(%v), %d chunks, R(4)_FC(4)_SW(n/16)", size, chunks),
		Current:  serial,
		Sharded:  sharded,
	}
	// Preserve the historical series: "baseline" survives from the first
	// capture, and the first run after the sharded-engine rework retires
	// the prior "current" into "previous" so the speedup this PR claims
	// stays measurable in the artifact itself.
	if prev, err := os.ReadFile("BENCH_engine.json"); err == nil {
		var old engineBenchDoc
		if json.Unmarshal(prev, &old) == nil {
			doc.Baseline = old.Baseline
			doc.Previous = old.Previous
			if doc.Previous == nil && len(old.Sharded) == 0 && len(old.Current) > 0 {
				doc.Previous = old.Current
			}
		}
	}
	if doc.Baseline == nil {
		doc.Baseline = serial
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
