// Package astrasim is the public API of the ASTRA-sim 2.0 reproduction: a
// simulator for distributed deep-learning training platforms that models
// arbitrary parallelization strategies (as execution-trace graphs),
// multi-dimensional hierarchical networks (as stacked building blocks —
// Ring, FullyConnected, Switch, oversubscribed Switch, Mesh, 2D Torus, or
// any registered dimension model — with an analytical performance model),
// and memory systems from local HBM to disaggregated pools with in-switch
// collectives.
//
// Quick start:
//
//	m, err := astrasim.NewMachine(astrasim.MachineConfig{
//	    Topology:       "R(2)_FC(8)_R(8)_SW(4)",
//	    BandwidthsGBps: []float64{250, 200, 100, 50},
//	    PeakTFLOPS:     234,
//	})
//	report, err := m.Run(astrasim.AllReduce(1 << 30))
//	fmt.Println(report.Makespan, report.ExposedComm)
//
// Durations are reported as time.Duration (nanosecond resolution; the
// simulator computes at picosecond resolution internally).
package astrasim

import (
	"fmt"
	"io"
	"time"

	"repro/internal/chrometrace"
	"repro/internal/collective"
	"repro/internal/compute"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/et"
	"repro/internal/etgen"
	"repro/internal/memory"
	"repro/internal/topology"
	"repro/internal/units"
)

// MachineConfig describes a simulated training platform.
type MachineConfig struct {
	// Topology is the paper's shape notation, e.g. "R(4)_SW(2)",
	// "Ring(16)_FullyConnected(8)_Switch(4)", "T2D(16,16)" (a 16x16
	// torus), "M(8)" (a wrap-free mesh), or "SW(32,4)" (a 4:1
	// oversubscribed switch). Block names resolve through the topology
	// model registry.
	Topology string
	// BandwidthsGBps gives each dimension's per-NPU shared bandwidth in
	// GB/s, positionally (Table II convention).
	BandwidthsGBps []float64
	// HopLatencyNs is the per-hop link latency (default 500 ns).
	HopLatencyNs float64

	// PeakTFLOPS is the NPU's peak compute rate (default 234, the
	// paper's A100 measurement). HBMGBps is the local memory bandwidth
	// bounding memory-bound operators (default 2039). Efficiency derates
	// sustained FLOPS (default 1.0).
	PeakTFLOPS float64
	HBMGBps    float64
	Efficiency float64

	// Scheduler selects the collective chunk scheduler: "baseline"
	// (default) or "themis".
	Scheduler string
	// Chunks is the collective pipelining depth (default 64).
	Chunks int
	// ModelTransitCongestion enables first-order congestion: ring
	// point-to-point messages occupy every transit link, making strided
	// pipeline traffic contend with its neighbours.
	ModelTransitCongestion bool

	// Shards partitions the event engine's pending-event set across that
	// many timeline shards, synchronized with conservative lookahead
	// (the topology's minimum link latency). Simulated output is
	// byte-identical for every value — sharding trades a small
	// synchronization overhead for flat per-event cost at large NPU
	// counts. <= 1 (the default) runs the serial engine.
	Shards int

	// Memory optionally configures local-memory timing and a
	// disaggregated pool.
	Memory *MemoryConfig
}

// MemoryConfig configures the memory system.
type MemoryConfig struct {
	LocalLatencyNs float64 // default 1000
	LocalGBps      float64 // default = HBMGBps

	// Pool, when non-nil, attaches a disaggregated memory pool.
	Pool *PoolConfig
}

// PoolConfig mirrors the paper's Table V parameters.
type PoolConfig struct {
	// Design: "hierarchical" (default), "multi-level-switch", "ring",
	// "mesh", or "private" (ZeRO-Infinity-style per-GPU paths).
	Design          string
	Nodes           int
	GPUsPerNode     int
	OutSwitches     int
	RemoteGroups    int
	RemoteGroupGBps float64
	GPUSideGBps     float64
	InNodeGBps      float64
	ChunkBytes      int64
	LatencyUs       float64
}

// Machine is a configured platform ready to run workloads.
type Machine struct {
	top  *topology.Topology
	core core.Config
	// memo caches whole-machine collective sub-results across this
	// machine's runs (and across goroutines — sweeps share machines), so
	// repeated workloads replay identical collectives instead of
	// re-simulating them. Results are byte-identical either way.
	memo *collective.Memo
}

// NewMachine validates the configuration and builds a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.HopLatencyNs == 0 {
		cfg.HopLatencyNs = 500
	}
	top, err := topology.ParseWithBandwidth(cfg.Topology, cfg.BandwidthsGBps, units.FromNanos(cfg.HopLatencyNs))
	if err != nil {
		return nil, err
	}
	if cfg.PeakTFLOPS == 0 {
		cfg.PeakTFLOPS = 234
	}
	if cfg.HBMGBps == 0 {
		cfg.HBMGBps = 2039
	}
	comp := compute.Model{
		Peak:         units.TFLOPS(cfg.PeakTFLOPS),
		MemBandwidth: units.GBps(cfg.HBMGBps),
		Efficiency:   cfg.Efficiency,
	}
	var policy collective.Policy
	switch cfg.Scheduler {
	case "", "baseline":
		policy = collective.Baseline
	case "themis":
		policy = collective.Themis
	default:
		return nil, fmt.Errorf("astrasim: unknown scheduler %q (want baseline or themis)", cfg.Scheduler)
	}
	mem, err := buildMemory(cfg)
	if err != nil {
		return nil, err
	}
	c := core.Config{
		Topology:               top,
		Compute:                comp,
		Memory:                 mem,
		Policy:                 policy,
		Chunks:                 cfg.Chunks,
		Shards:                 cfg.Shards,
		ModelTransitCongestion: cfg.ModelTransitCongestion,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Machine{top: top, core: c, memo: collective.NewMemo()}, nil
}

func buildMemory(cfg MachineConfig) (memory.System, error) {
	mc := cfg.Memory
	if mc == nil {
		mc = &MemoryConfig{}
	}
	localLat := mc.LocalLatencyNs
	if localLat == 0 {
		localLat = 1000
	}
	localBW := mc.LocalGBps
	if localBW == 0 {
		localBW = cfg.HBMGBps
		if localBW == 0 {
			localBW = 2039
		}
	}
	sys := memory.System{
		Local: memory.LocalModel{
			Latency:   units.FromNanos(localLat),
			Bandwidth: units.GBps(localBW),
		},
	}
	if mc.Pool == nil {
		return sys, nil
	}
	p := mc.Pool
	var design memory.PoolDesign
	switch p.Design {
	case "", "hierarchical":
		design = memory.Hierarchical
	case "multi-level-switch":
		design = memory.MultiLevelSwitch
	case "ring":
		design = memory.RingPool
	case "mesh":
		design = memory.MeshPool
	case "private":
		design = memory.PrivatePerGPU
	default:
		return sys, fmt.Errorf("astrasim: unknown pool design %q", p.Design)
	}
	sys.HasPool = true
	sys.Pool = memory.PoolConfig{
		Design:             design,
		NumNodes:           p.Nodes,
		GPUsPerNode:        p.GPUsPerNode,
		NumOutSwitches:     p.OutSwitches,
		NumRemoteGroups:    p.RemoteGroups,
		RemoteGroupBW:      units.GBps(p.RemoteGroupGBps),
		GPUSideOutFabricBW: units.GBps(p.GPUSideGBps),
		InNodeFabricBW:     units.GBps(p.InNodeGBps),
		ChunkSize:          units.ByteSize(p.ChunkBytes),
		Latency:            units.FromMicros(p.LatencyUs),
	}
	return sys, nil
}

// RegisteredBlocks lists the shape-notation names of every registered
// topology building block, sorted — the vocabulary MachineConfig.Topology
// accepts. External DimModel registrations appear here too, so CLI help
// and error messages never hard-code the block set.
func RegisteredBlocks() []string { return topology.RegisteredBlocks() }

// NumNPUs returns the machine size.
func (m *Machine) NumNPUs() int { return m.top.NumNPUs() }

// TopologySpec returns the canonical shape notation.
func (m *Machine) TopologySpec() string { return m.top.String() }

// AggregateBandwidthGBps returns the per-NPU total network bandwidth.
func (m *Machine) AggregateBandwidthGBps() float64 {
	return m.top.AggregateBandwidth().GBpsValue()
}

// Workload is anything that can generate an execution trace for a machine.
type Workload interface {
	trace(top *topology.Topology) (*et.Trace, error)
	// Name labels the workload in reports.
	Name() string
}

type workloadFunc struct {
	name string
	fn   func(*topology.Topology) (*et.Trace, error)
}

func (w workloadFunc) trace(top *topology.Topology) (*et.Trace, error) { return w.fn(top) }
func (w workloadFunc) Name() string                                    { return w.name }

// AllReduce is a single whole-machine All-Reduce of the given byte size.
func AllReduce(sizeBytes int64) Workload {
	return workloadFunc{
		name: fmt.Sprintf("AllReduce(%d)", sizeBytes),
		fn: func(top *topology.Topology) (*et.Trace, error) {
			return etgen.SingleCollective(top, et.CollAllReduce, units.ByteSize(sizeBytes)), nil
		},
	}
}

// collectiveOp resolves a collective name — the single source of truth
// for the op vocabulary shared by workload construction, the estimator
// and search proxy validation.
func collectiveOp(op string) (et.CollectiveType, collective.Op, error) {
	switch op {
	case "all_reduce":
		return et.CollAllReduce, collective.AllReduce, nil
	case "all_gather":
		return et.CollAllGather, collective.AllGather, nil
	case "reduce_scatter":
		return et.CollReduceScatter, collective.ReduceScatter, nil
	case "all_to_all":
		return et.CollAllToAll, collective.AllToAll, nil
	default:
		return "", 0, fmt.Errorf("astrasim: unknown collective %q", op)
	}
}

// Collective is a single whole-machine collective: op is one of
// "all_reduce", "all_gather", "reduce_scatter", "all_to_all".
func Collective(op string, sizeBytes int64) Workload {
	return workloadFunc{
		name: fmt.Sprintf("%s(%d)", op, sizeBytes),
		fn: func(top *topology.Topology) (*et.Trace, error) {
			c, _, err := collectiveOp(op)
			if err != nil {
				return nil, err
			}
			return etgen.SingleCollective(top, c, units.ByteSize(sizeBytes)), nil
		},
	}
}

// GPT3 is one training iteration of the paper's GPT-3 configuration
// (175B parameters, tensor-parallel degree 16).
func GPT3() Workload {
	return workloadFunc{name: "GPT-3", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.Transformer(top, etgen.GPT3())
	}}
}

// Transformer1T is one training iteration of the paper's 1T-parameter
// transformer (tensor-parallel degree 128).
func Transformer1T() Workload {
	return workloadFunc{name: "Transformer-1T", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.Transformer(top, etgen.Transformer1T())
	}}
}

// Transformer is a custom hybrid-parallel transformer iteration.
func Transformer(params float64, layers, hidden, seqLen, microBatch, bytesPerElem, mp int) Workload {
	return workloadFunc{name: "Transformer", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.Transformer(top, etgen.TransformerConfig{
			Name: "Transformer", Params: params, Layers: layers, Hidden: hidden,
			SeqLen: seqLen, MicroBatch: microBatch, BytesPerElem: bytesPerElem, MP: mp,
		})
	}}
}

// DLRM is one training iteration of the paper's DLRM configuration.
func DLRM() Workload {
	return workloadFunc{name: "DLRM", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.DLRMTrace(top, etgen.DLRM())
	}}
}

// MoE1T is one iteration of the 1T-parameter Mixture-of-Experts model of
// the disaggregated-memory study; inSwitch selects fused in-switch
// collectives through the memory pool.
func MoE1T(inSwitch bool) Workload {
	return workloadFunc{name: "MoE-1T", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.MoETrace(top, etgen.MoE1T(inSwitch))
	}}
}

// FSDP is one fully-sharded data-parallel (ZeRO-3-style) iteration of a
// custom transformer: per-layer All-Gathers materialize weights, gradients
// leave as Reduce-Scatters, with layer-granular prefetch overlap.
func FSDP(params float64, layers, hidden, seqLen, microBatch, bytesPerElem int) Workload {
	return workloadFunc{name: "FSDP", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.FSDP(top, etgen.FSDPConfig{Model: etgen.TransformerConfig{
			Name: "FSDP", Params: params, Layers: layers, Hidden: hidden,
			SeqLen: seqLen, MicroBatch: microBatch, BytesPerElem: bytesPerElem, MP: 1,
		}})
	}}
}

// ThreeD is one 3D-parallel (pipeline x tensor x data) iteration of a
// custom transformer: mp*dp*stages must equal the machine size and layers
// must divide by stages.
func ThreeD(params float64, layers, hidden, seqLen, microBatch, bytesPerElem, mp, stages, microBatches int) Workload {
	return workloadFunc{name: "3D-Parallel", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.ThreeD(top, etgen.ThreeDConfig{
			Model: etgen.TransformerConfig{
				Name: "3D", Params: params, Layers: layers, Hidden: hidden,
				SeqLen: seqLen, MicroBatch: microBatch, BytesPerElem: bytesPerElem, MP: mp,
			},
			Stages:       stages,
			MicroBatches: microBatches,
		})
	}}
}

// Pipeline is a GPipe-style pipeline-parallel iteration.
func Pipeline(stages, microBatches int, flopsPerStage float64, activationBytes, gradBytes int64) Workload {
	return workloadFunc{name: "Pipeline", fn: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.Pipeline(top, etgen.PipelineConfig{
			Name: "Pipeline", Stages: stages, MicroBatches: microBatches,
			FlopsPerStage:   flopsPerStage,
			ActivationBytes: units.ByteSize(activationBytes),
			GradBytes:       units.ByteSize(gradBytes),
		})
	}}
}

// Iterations repeats a workload's trace n times back-to-back with
// synchronous iteration boundaries — a multi-iteration training run.
func Iterations(w Workload, n int) Workload {
	return workloadFunc{
		name: fmt.Sprintf("%dx %s", n, w.Name()),
		fn: func(top *topology.Topology) (*et.Trace, error) {
			tr, err := w.trace(top)
			if err != nil {
				return nil, err
			}
			return et.Repeat(tr, n)
		},
	}
}

// TraceJSON runs a native ASTRA-sim execution trace read from r.
func TraceJSON(r io.Reader) Workload {
	return workloadFunc{name: "Trace", fn: func(*topology.Topology) (*et.Trace, error) {
		return et.Decode(r)
	}}
}

// PyTorchTraceJSON runs a PARAM-style PyTorch execution graph read from r,
// converting it to the native format first.
func PyTorchTraceJSON(r io.Reader) Workload {
	return workloadFunc{name: "PyTorchTrace", fn: func(*topology.Topology) (*et.Trace, error) {
		src, err := convert.DecodePyTorch(r)
		if err != nil {
			return nil, err
		}
		return convert.Convert(src)
	}}
}

// Report is the outcome of one simulated run.
type Report struct {
	Workload string
	// Makespan is the end-to-end simulated time.
	Makespan time.Duration
	// Mean per-NPU exposed-time breakdown (the five categories of the
	// paper's Fig. 11). They sum to Makespan.
	Compute          time.Duration
	ExposedComm      time.Duration
	ExposedRemoteMem time.Duration
	ExposedLocalMem  time.Duration
	Idle             time.Duration
	// TrafficPerDimMB is the mean per-NPU sent+received megabytes per
	// topology dimension.
	TrafficPerDimMB []float64
	// Collectives is the number of collectives logged; Events the number
	// of simulation events executed.
	Collectives int
	Events      uint64
}

func toDuration(t units.Time) time.Duration {
	return time.Duration(t / units.Nanosecond)
}

// Run generates the workload's trace and simulates it.
func (m *Machine) Run(w Workload) (*Report, error) {
	rep, _, err := m.run(w, false)
	return rep, err
}

// RunWithTimeline simulates the workload and writes the per-NPU activity
// timeline to out in the Chrome Trace Event Format, viewable in
// chrome://tracing or Perfetto.
func (m *Machine) RunWithTimeline(w Workload, out io.Writer) (*Report, error) {
	rep, stats, err := m.run(w, true)
	if err != nil {
		return nil, err
	}
	events := make([]chrometrace.Event, 0, len(stats.Timeline))
	for _, iv := range stats.Timeline {
		events = append(events, chrometrace.Event{
			Name:     string(iv.Activity),
			Category: "npu",
			TID:      iv.NPU,
			StartUs:  iv.Start.Micros(),
			DurUs:    (iv.End - iv.Start).Micros(),
		})
	}
	if err := chrometrace.Write(out, events, m.NumNPUs()); err != nil {
		return nil, err
	}
	return rep, nil
}

func (m *Machine) run(w Workload, timeline bool) (*Report, *core.RunStats, error) {
	trace, err := w.trace(m.top)
	if err != nil {
		return nil, nil, err
	}
	cfg := m.core
	cfg.RecordTimeline = timeline
	cfg.Memo = m.memo
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return nil, nil, err
	}
	stats, err := sim.Run(trace)
	if err != nil {
		return nil, nil, err
	}
	return reportFromStats(w.Name(), stats), stats, nil
}

// reportFromStats converts engine run statistics to the public Report —
// shared by single runs, sweeps and the cluster layer's per-job rows.
func reportFromStats(workload string, stats *core.RunStats) *Report {
	mean := stats.MeanBreakdown()
	rep := &Report{
		Workload:         workload,
		Makespan:         toDuration(stats.Makespan),
		Compute:          toDuration(mean.Compute),
		ExposedComm:      toDuration(mean.ExposedComm),
		ExposedRemoteMem: toDuration(mean.ExposedRemoteMem),
		ExposedLocalMem:  toDuration(mean.ExposedLocalMem),
		Idle:             toDuration(mean.Idle),
		Collectives:      len(stats.Collectives),
		Events:           stats.Events,
	}
	for _, b := range stats.TrafficPerDim {
		rep.TrafficPerDimMB = append(rep.TrafficPerDimMB, float64(b)/1e6)
	}
	return rep
}

// EstimateCollective returns the closed-form runtime prediction for a
// whole-machine collective without event simulation — the first-order
// design-space-exploration path.
func (m *Machine) EstimateCollective(op string, sizeBytes int64) (time.Duration, error) {
	_, o, err := collectiveOp(op)
	if err != nil {
		return 0, err
	}
	chunks := m.core.Chunks
	if chunks == 0 {
		chunks = 64
	}
	t := collective.Estimate(m.top, o, units.ByteSize(sizeBytes),
		collective.FullMachine(m.top), m.core.Policy, chunks)
	return toDuration(t), nil
}
