package astrasim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/search"
	"repro/internal/sweep"
)

// This file is the design-space optimization facade: a declarative search
// over candidate machines x workloads that finds the best design under a
// simulation budget. It is the public face of internal/search — the
// multi-fidelity engine that screens candidates with the closed-form
// collective estimator and promotes only the survivors to full
// event-engine simulation, all through the sweep worker pool with
// deterministic, worker-count-independent results.

// SearchSpec is a declarative design-space search: candidate machines (an
// explicit list, a topologies x bandwidths cross product, or both), the
// workloads to optimize over, and the strategy plus its budget. The
// candidate space is the machines x workloads cross product; the
// objective is minimized over it.
type SearchSpec struct {
	Name string `json:"name,omitempty"`
	// Strategy selects the optimizer: exhaustive | random | halving
	// (default halving — estimate-screen everything, simulate the top
	// 1/eta survivors).
	Strategy string `json:"strategy,omitempty"`
	// Seed drives every stochastic choice; results are fully reproducible
	// for a fixed seed at any worker count.
	Seed int64 `json:"seed,omitempty"`
	// MaxSimulations bounds full event-engine runs; 0 means
	// ceil(feasible/eta) — with multiple workloads (and no explicit
	// Population), rounded so whole machines are promoted: the screening
	// estimate is machine-level, so a budget cutting through a machine's
	// workload block would select workloads by candidate order, not
	// merit. Exhaustive ignores it.
	MaxSimulations int `json:"max_simulations,omitempty"`
	// Population is the random strategy's sample size (0 = eta *
	// MaxSimulations).
	Population int `json:"population,omitempty"`
	// Eta is the promotion ratio (default 4).
	Eta int `json:"eta,omitempty"`
	// Objective selects what to minimize: "makespan" (default) or "comm"
	// (exposed communication time).
	Objective string `json:"objective,omitempty"`
	// MaxAggregateGBps, when > 0, prunes machines whose configured
	// per-NPU network bandwidth (the sum of BandwidthsGBps — what the
	// fabric provisions, before oversubscription or embedding derating)
	// exceeds the budget — search under a cost cap.
	MaxAggregateGBps float64 `json:"max_aggregate_gbps,omitempty"`
	// ProxyOp and ProxySizeBytes configure the closed-form screening
	// estimate (default: a 1 GiB all_reduce).
	ProxyOp        string `json:"proxy_op,omitempty"`
	ProxySizeBytes int64  `json:"proxy_size_bytes,omitempty"`

	// Base seeds every generated machine's non-topology fields (scheduler,
	// TFLOPS, chunks, memory); Topology and BandwidthsGBps are overridden
	// per candidate.
	Base MachineConfig `json:"base,omitempty"`
	// Machines are explicit candidates, evaluated before the generated
	// ones.
	Machines []SweepMachine `json:"machines,omitempty"`
	// Topologies x Bandwidths generates candidates: every shape notation
	// paired with every per-dimension bandwidth vector. Pairs whose vector
	// length does not match the topology's dimension count are infeasible
	// and recorded as pruned, not errors — heterogeneous spaces are the
	// point.
	Topologies []string    `json:"topologies,omitempty"`
	Bandwidths [][]float64 `json:"bandwidths,omitempty"`

	// Workloads to optimize over; each machine candidate is paired with
	// each workload. Ignored in cluster mode.
	Workloads []WorkloadSpec `json:"workloads"`

	// Cluster, when non-nil, switches the search to multi-tenant mode:
	// every machine candidate is a shared cluster fabric, the placement
	// policies become a second search axis, and each evaluation
	// co-simulates the cluster's jobs (RunCluster) instead of a single
	// workload.
	Cluster *ClusterSearchSpec `json:"cluster,omitempty"`
}

// ClusterSearchSpec configures a cluster-mode search: the co-scheduled
// jobs every fabric candidate must host, and the placement policies to
// optimize over.
type ClusterSearchSpec struct {
	Jobs []ClusterJobSpec `json:"jobs"`
	// Placements lists the policies to search (default: all registered).
	Placements []string `json:"placements,omitempty"`
	// Seed drives the random placement's shuffle.
	Seed int64 `json:"seed,omitempty"`
}

// LoadSearchSpec reads a SearchSpec JSON document, rejecting unknown
// fields so spec typos fail loudly.
func LoadSearchSpec(r io.Reader) (SearchSpec, error) {
	var s SearchSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("astrasim: parse search spec: %w", err)
	}
	return s, nil
}

// SearchOptions controls search execution.
type SearchOptions struct {
	// Workers is the parallel worker count; <= 0 means GOMAXPROCS.
	// Results are identical for any value.
	Workers int
	// Progress, when non-nil, is called as evaluations complete (per
	// evaluation batch).
	Progress func(done, total int)
}

// RunSearchFile loads a search spec from a JSON file and optimizes it —
// the shared entry point of the CLIs' -optimize flag.
func RunSearchFile(path string, opt SearchOptions) (*SearchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := LoadSearchSpec(f)
	if err != nil {
		return nil, err
	}
	return Optimize(spec, opt)
}

// SearchEval is one scored candidate: (machine, workload) in single-job
// searches, (fabric, placement) in cluster mode.
type SearchEval struct {
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	// Placement is the cluster-mode placement policy (empty otherwise).
	Placement string `json:"placement,omitempty"`
	// Score is the fidelity's value as a duration: the closed-form proxy
	// estimate on screening rungs, the simulated objective on full rungs.
	Score time.Duration `json:"score_ns"`
	// Promoted marks candidates advanced to the next rung.
	Promoted bool `json:"promoted,omitempty"`
}

// SearchGeneration is one rung of the search history.
type SearchGeneration struct {
	Index    int          `json:"index"`
	Fidelity string       `json:"fidelity"`
	Evals    []SearchEval `json:"evals"`
}

// SearchPruned records one infeasible candidate.
type SearchPruned struct {
	Machine   string `json:"machine"`
	Workload  string `json:"workload,omitempty"`
	Placement string `json:"placement,omitempty"`
	Reason    string `json:"reason"`
}

// SearchResult holds a completed search. Everything but Wall is
// deterministic for a fixed spec: identical winner and history at any
// worker count (Wall is therefore excluded from the JSON form).
type SearchResult struct {
	Name       string `json:"name,omitempty"`
	Strategy   string `json:"strategy"`
	Seed       int64  `json:"seed"`
	Objective  string `json:"objective"`
	Candidates int    `json:"candidates"`
	Feasible   int    `json:"feasible"`
	// Estimates and Simulations count candidate evaluations at each
	// fidelity; Simulations/Feasible is the fraction of the space that ran
	// the full event engine.
	Estimates   int `json:"estimates"`
	Simulations int `json:"simulations"`
	// Best is the winner: the lowest full-fidelity objective.
	Best    SearchEval         `json:"best"`
	History []SearchGeneration `json:"history"`
	Pruned  []SearchPruned     `json:"pruned,omitempty"`
	// Wall is the search's wall-clock duration.
	Wall time.Duration `json:"-"`
}

// SearchStrategies lists the registered strategy names, sorted — for CLI
// help and validation.
func SearchStrategies() []string { return search.Strategies() }

// searchCandidates is the enumerated machine axis of a search space.
type searchCandidates struct {
	names   []string
	mach    []*Machine // nil when infeasible
	reasons []string   // non-empty when infeasible
	fps     []string   // canonical config JSON
}

// buildSearchMachines enumerates explicit then generated machine
// candidates, building each up front; construction failures become
// pruning reasons rather than errors so heterogeneous topology x
// bandwidth grids work naturally.
func buildSearchMachines(spec SearchSpec) (*searchCandidates, error) {
	type cand struct {
		name string
		cfg  MachineConfig
	}
	var cands []cand
	for _, sm := range spec.Machines {
		cands = append(cands, cand{name: sm.Name, cfg: sm.Config})
	}
	for _, topo := range spec.Topologies {
		for _, bw := range spec.Bandwidths {
			cfg := spec.Base
			cfg.Topology = topo
			cfg.BandwidthsGBps = bw
			parts := make([]string, len(bw))
			for i, v := range bw {
				parts[i] = sweep.FormatFloat(v)
			}
			name := fmt.Sprintf("%s @ %s GB/s", topo, strings.Join(parts, ","))
			cands = append(cands, cand{name: name, cfg: cfg})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("astrasim: search %q has no machine candidates", spec.Name)
	}
	out := &searchCandidates{
		names:   make([]string, len(cands)),
		mach:    make([]*Machine, len(cands)),
		reasons: make([]string, len(cands)),
		fps:     make([]string, len(cands)),
	}
	for i, c := range cands {
		cfgJSON, err := json.Marshal(c.cfg)
		if err != nil {
			return nil, err
		}
		out.fps[i] = string(cfgJSON)
		// The cost cap depends only on the configured bandwidths; apply it
		// before paying for machine construction.
		if spec.MaxAggregateGBps > 0 {
			var provisioned float64
			for _, v := range c.cfg.BandwidthsGBps {
				provisioned += v
			}
			if provisioned > spec.MaxAggregateGBps {
				out.names[i] = c.name
				if out.names[i] == "" {
					out.names[i] = c.cfg.Topology
				}
				out.reasons[i] = fmt.Sprintf("configured bandwidth %g GB/s exceeds budget %g GB/s",
					provisioned, spec.MaxAggregateGBps)
				continue
			}
		}
		m, err := NewMachine(c.cfg)
		name := c.name
		if err != nil {
			if name == "" {
				name = c.cfg.Topology
			}
			out.names[i] = name
			out.reasons[i] = err.Error()
			continue
		}
		if name == "" {
			name = m.TopologySpec()
		}
		out.names[i] = name
		out.mach[i] = m
	}
	return out, nil
}

// searchObjective maps the spec's objective name to a report metric.
func searchObjective(name string) (string, func(*Report) time.Duration, error) {
	switch name {
	case "", "makespan":
		return "makespan", func(r *Report) time.Duration { return r.Makespan }, nil
	case "comm", "exposed_comm":
		return "comm", func(r *Report) time.Duration { return r.ExposedComm }, nil
	default:
		return "", nil, fmt.Errorf("astrasim: unknown objective %q (want makespan or comm)", name)
	}
}

// Optimize searches the spec's machine x workload space (or, in cluster
// mode, fabric x placement space) for the candidate minimizing the
// objective. Candidates are screened with the closed-form collective
// estimator; only strategy-promoted survivors run the full event engine.
// The result is byte-identical for any worker count.
func Optimize(spec SearchSpec, opt SearchOptions) (*SearchResult, error) {
	if spec.Cluster != nil {
		return optimizeCluster(spec, opt)
	}
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("astrasim: search %q has no workloads", spec.Name)
	}
	machines, err := buildSearchMachines(spec)
	if err != nil {
		return nil, err
	}
	name := spec.Name
	if name == "" {
		name = "search"
	}
	nW := len(spec.Workloads)
	workloadNames, workloadFPs, err := workloadTable(spec.Workloads)
	if err != nil {
		return nil, fmt.Errorf("astrasim: search %s: %w", name, err)
	}
	objName, objFn, err := searchObjective(spec.Objective)
	if err != nil {
		return nil, err
	}
	proxyOp := spec.ProxyOp
	if proxyOp == "" {
		proxyOp = "all_reduce"
	}
	if _, _, err := collectiveOp(proxyOp); err != nil {
		return nil, fmt.Errorf("astrasim: proxy op: %w", err)
	}
	proxySize := spec.ProxySizeBytes
	if proxySize == 0 {
		proxySize = 1 << 30
	}

	strat, err := search.StrategyFor(spec.Strategy)
	if err != nil {
		return nil, err
	}
	// The screening estimate is machine-level: every workload paired with
	// one machine ties, and ties rank by candidate id. With multiple
	// workloads the default budget therefore promotes whole machines —
	// ceil(feasibleMachines/eta) of them, all pairs — so no workload is
	// dropped by id order. An explicit MaxSimulations is respected as-is,
	// and Population only affects the random strategy, whose explicit
	// sample keeps its own derived budget (ceil(Population/Eta)).
	maxSims := spec.MaxSimulations
	if maxSims <= 0 && nW > 1 && !(strat.Name() == "random" && spec.Population > 0) {
		eta := spec.Eta
		if eta <= 0 {
			eta = 4
		}
		feasibleMachines := 0
		for _, r := range machines.reasons {
			if r == "" {
				feasibleMachines++
			}
		}
		if feasibleMachines > 0 {
			maxSims = (feasibleMachines + eta - 1) / eta * nW
		}
	}
	// Candidate id = machine-major (workload fastest), matching the sweep
	// engine's row-major convention.
	problem := search.Problem{
		Name:       name,
		Candidates: len(machines.names) * nW,
		Label: func(i int) string {
			return machines.names[i/nW] + " / " + workloadNames[i%nW]
		},
		Feasible: func(i int) error {
			if r := machines.reasons[i/nW]; r != "" {
				return fmt.Errorf("%s", r)
			}
			return nil
		},
		Estimate: func(i int) (float64, error) {
			d, err := machines.mach[i/nW].EstimateCollective(proxyOp, proxySize)
			return float64(d), err
		},
		Simulate: func(i int) (float64, error) {
			// Each run materializes its own workload so trace readers and
			// generators are never shared between goroutines.
			w, err := spec.Workloads[i%nW].Workload()
			if err != nil {
				return 0, err
			}
			rep, err := machines.mach[i/nW].Run(w)
			if err != nil {
				return 0, err
			}
			return float64(objFn(rep)), nil
		},
		Fingerprint: func(i int, f search.Fidelity) string {
			if f == search.FidelityEstimate {
				// The estimate is machine-level: every workload paired with
				// the same machine shares one closed-form evaluation.
				return fmt.Sprintf("astrasim-search-est|%s|%d|%s", proxyOp, proxySize, machines.fps[i/nW])
			}
			return fmt.Sprintf("astrasim-search-sim|%s|%s|%s", objName, machines.fps[i/nW], workloadFPs[i%nW])
		},
	}
	res, err := search.Optimize(problem, search.Options{
		Strategy:       spec.Strategy,
		Seed:           spec.Seed,
		MaxSimulations: maxSims,
		Population:     spec.Population,
		Eta:            spec.Eta,
		Exec: sweep.Exec{
			Workers:  opt.Workers,
			Cache:    sweep.NewCache(),
			Progress: opt.Progress,
		},
	})
	if err != nil {
		return nil, err
	}

	conv := func(e search.Eval) SearchEval {
		return SearchEval{
			Machine:  machines.names[e.Candidate/nW],
			Workload: workloadNames[e.Candidate%nW],
			Score:    time.Duration(e.Score),
			Promoted: e.Promoted,
		}
	}
	out := &SearchResult{
		Name:        spec.Name,
		Strategy:    res.Strategy,
		Seed:        res.Seed,
		Objective:   objName,
		Candidates:  res.Candidates,
		Feasible:    res.Feasible,
		Estimates:   res.Estimates,
		Simulations: res.Simulations,
		Best:        conv(res.Best),
		Wall:        res.Wall,
	}
	for _, g := range res.History {
		gen := SearchGeneration{Index: g.Index, Fidelity: g.Fidelity}
		for _, e := range g.Evals {
			gen.Evals = append(gen.Evals, conv(e))
		}
		out.History = append(out.History, gen)
	}
	for _, p := range res.PrunedCandidates {
		out.Pruned = append(out.Pruned, SearchPruned{
			Machine:  machines.names[p.Candidate/nW],
			Workload: workloadNames[p.Candidate%nW],
			Reason:   p.Reason,
		})
	}
	return out, nil
}

// clusterObjective maps the objective name to a cluster-result metric.
func clusterObjective(name string) (string, func(*ClusterResult) time.Duration, error) {
	switch name {
	case "", "makespan":
		// The cluster makespan: when the last job finishes.
		return "makespan", func(r *ClusterResult) time.Duration { return r.Makespan }, nil
	case "comm", "exposed_comm":
		// Mean exposed communication across jobs — fabric-interference
		// sensitivity without the compute floor.
		return "comm", func(r *ClusterResult) time.Duration {
			var sum time.Duration
			for _, j := range r.Jobs {
				sum += j.Report.ExposedComm
			}
			return sum / time.Duration(len(r.Jobs))
		}, nil
	default:
		return "", nil, fmt.Errorf("astrasim: unknown objective %q (want makespan or comm)", name)
	}
}

// optimizeCluster is the cluster-mode search: candidates are (fabric,
// placement) pairs hosting the spec's co-scheduled jobs. Screening stays
// machine-level (the closed-form proxy on the fabric); promoted survivors
// run the full multi-job co-simulation.
func optimizeCluster(spec SearchSpec, opt SearchOptions) (*SearchResult, error) {
	cs := spec.Cluster
	if len(cs.Jobs) == 0 {
		return nil, fmt.Errorf("astrasim: cluster search %q has no jobs", spec.Name)
	}
	placements := cs.Placements
	if len(placements) == 0 {
		placements = cluster.Placements()
	}
	placed := make([]cluster.Placement, len(placements))
	for i, name := range placements {
		p, err := cluster.ParsePlacement(name)
		if err != nil {
			return nil, err
		}
		placed[i] = p
	}
	// Validate the job specs once up front.
	if _, err := expandClusterJobs(cs.Jobs); err != nil {
		return nil, err
	}
	jobsJSON, err := json.Marshal(cs.Jobs)
	if err != nil {
		return nil, err
	}

	machines, err := buildSearchMachines(spec)
	if err != nil {
		return nil, err
	}
	name := spec.Name
	if name == "" {
		name = "cluster-search"
	}
	objName, objFn, err := clusterObjective(spec.Objective)
	if err != nil {
		return nil, err
	}
	proxyOp := spec.ProxyOp
	if proxyOp == "" {
		proxyOp = "all_reduce"
	}
	if _, _, err := collectiveOp(proxyOp); err != nil {
		return nil, fmt.Errorf("astrasim: proxy op: %w", err)
	}
	proxySize := spec.ProxySizeBytes
	if proxySize == 0 {
		proxySize = 1 << 30
	}
	strat, err := search.StrategyFor(spec.Strategy)
	if err != nil {
		return nil, err
	}

	// feasible pre-plans each (fabric, placement) pair so ill-fitting job
	// sizes and placement-incompatible layouts become pruned candidates,
	// not evaluation errors.
	nP := len(placements)
	feasible := func(i int) error {
		mi, pi := i/nP, i%nP
		if r := machines.reasons[mi]; r != "" {
			return fmt.Errorf("%s", r)
		}
		m := machines.mach[mi]
		jobs, err := expandClusterJobs(cs.Jobs)
		if err != nil {
			return err
		}
		cfg := clusterConfig(m, placed[pi], cs.Seed, jobs)
		_, err = cluster.Plan(cfg.Fabric, cfg.Jobs, cfg.Placement, cfg.Seed)
		return err
	}

	// Like the multi-workload default, promote whole machines: the proxy
	// is machine-level, so placements of one fabric tie and are ranked by
	// candidate id, not merit.
	maxSims := spec.MaxSimulations
	if maxSims <= 0 && nP > 1 && !(strat.Name() == "random" && spec.Population > 0) {
		eta := spec.Eta
		if eta <= 0 {
			eta = 4
		}
		feasibleMachines := 0
		for mi, r := range machines.reasons {
			if r != "" {
				continue
			}
			// A machine counts if any placement lays the jobs out — the
			// policies genuinely differ (strided can split blocks packed
			// keeps whole).
			for pi := range placed {
				if feasible(mi*nP+pi) == nil {
					feasibleMachines++
					break
				}
			}
		}
		if feasibleMachines > 0 {
			maxSims = (feasibleMachines + eta - 1) / eta * nP
		}
	}

	problem := search.Problem{
		Name:       name,
		Candidates: len(machines.names) * nP,
		Label: func(i int) string {
			return machines.names[i/nP] + " / " + placements[i%nP]
		},
		Feasible: feasible,
		Estimate: func(i int) (float64, error) {
			d, err := machines.mach[i/nP].EstimateCollective(proxyOp, proxySize)
			return float64(d), err
		},
		Simulate: func(i int) (float64, error) {
			mi, pi := i/nP, i%nP
			// Each run materializes its own workloads so trace generators
			// are never shared between goroutines.
			jobs, err := expandClusterJobs(cs.Jobs)
			if err != nil {
				return 0, err
			}
			res, err := cluster.Run(clusterConfig(machines.mach[mi], placed[pi], cs.Seed, jobs))
			if err != nil {
				return 0, err
			}
			rep := clusterResultFromInternal(spec.Name, machines.mach[mi], placed[pi], cs.Seed, jobs, res)
			return float64(objFn(rep)), nil
		},
		Fingerprint: func(i int, f search.Fidelity) string {
			if f == search.FidelityEstimate {
				return fmt.Sprintf("astrasim-search-est|%s|%d|%s", proxyOp, proxySize, machines.fps[i/nP])
			}
			return fmt.Sprintf("astrasim-cluster-sim|%s|%s|%d|%s|%s",
				objName, placements[i%nP], cs.Seed, jobsJSON, machines.fps[i/nP])
		},
	}
	res, err := search.Optimize(problem, search.Options{
		Strategy:       spec.Strategy,
		Seed:           spec.Seed,
		MaxSimulations: maxSims,
		Population:     spec.Population,
		Eta:            spec.Eta,
		Exec: sweep.Exec{
			Workers:  opt.Workers,
			Cache:    sweep.NewCache(),
			Progress: opt.Progress,
		},
	})
	if err != nil {
		return nil, err
	}

	workload := fmt.Sprintf("cluster(%d jobs)", countClusterJobs(cs.Jobs))
	conv := func(e search.Eval) SearchEval {
		return SearchEval{
			Machine:   machines.names[e.Candidate/nP],
			Workload:  workload,
			Placement: placements[e.Candidate%nP],
			Score:     time.Duration(e.Score),
			Promoted:  e.Promoted,
		}
	}
	out := &SearchResult{
		Name:        spec.Name,
		Strategy:    res.Strategy,
		Seed:        res.Seed,
		Objective:   objName,
		Candidates:  res.Candidates,
		Feasible:    res.Feasible,
		Estimates:   res.Estimates,
		Simulations: res.Simulations,
		Best:        conv(res.Best),
		Wall:        res.Wall,
	}
	for _, g := range res.History {
		gen := SearchGeneration{Index: g.Index, Fidelity: g.Fidelity}
		for _, e := range g.Evals {
			gen.Evals = append(gen.Evals, conv(e))
		}
		out.History = append(out.History, gen)
	}
	for _, p := range res.PrunedCandidates {
		out.Pruned = append(out.Pruned, SearchPruned{
			Machine:   machines.names[p.Candidate/nP],
			Placement: placements[p.Candidate%nP],
			Reason:    p.Reason,
		})
	}
	return out, nil
}

// countClusterJobs sums the job specs' replica counts.
func countClusterJobs(specs []ClusterJobSpec) int {
	n := 0
	for _, js := range specs {
		c := js.Count
		if c == 0 {
			c = 1
		}
		n += c
	}
	return n
}

// clusterResultFromInternal wraps an internal cluster result in the public
// form (without isolated baselines) so objectives read one type.
func clusterResultFromInternal(name string, m *Machine, p cluster.Placement, seed int64, jobs []clusterJob, res *cluster.Result) *ClusterResult {
	out := &ClusterResult{
		Name:      name,
		Fabric:    m.TopologySpec(),
		Placement: p.String(),
		Seed:      seed,
		Makespan:  toDuration(res.Makespan),
		Events:    res.Events,
	}
	for i, jr := range res.Jobs {
		out.Jobs = append(out.Jobs, ClusterJobRow{
			Job:       jr.Name,
			Workload:  jobs[i].workload.Name(),
			NPUs:      jr.NPUs,
			Local:     jr.Local.String(),
			FirstRank: jr.Ranks[0],
			Arrival:   toDuration(jr.Arrival),
			Finish:    toDuration(jr.Finish),
			Report:    reportFromStats(jobs[i].workload.Name(), jr.Stats),
		})
	}
	return out
}

// WriteJSON writes the result as an indented JSON document — byte-
// identical for any worker count.
func (r *SearchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the full history flat: one record per evaluation, in
// rung order. Deterministic for a given result.
func (r *SearchResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"generation", "fidelity", "machine", "workload", "placement", "score_us", "promoted"}); err != nil {
		return err
	}
	for _, g := range r.History {
		for _, e := range g.Evals {
			rec := []string{
				strconv.Itoa(g.Index),
				g.Fidelity,
				e.Machine,
				e.Workload,
				e.Placement,
				strconv.FormatFloat(float64(e.Score)/float64(time.Microsecond), 'g', -1, 64),
				strconv.FormatBool(e.Promoted),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable writes a human-readable run summary: rung structure, budget
// accounting and the winner.
func (r *SearchResult) WriteTable(w io.Writer) error {
	name := r.Name
	if name == "" {
		name = "search"
	}
	if _, err := fmt.Fprintf(w, "search %s: strategy=%s objective=%s seed=%d\n",
		name, r.Strategy, r.Objective, r.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "space: %d candidates (%d feasible, %d pruned)\n",
		r.Candidates, r.Feasible, len(r.Pruned)); err != nil {
		return err
	}
	for _, g := range r.History {
		promoted := 0
		for _, e := range g.Evals {
			if e.Promoted {
				promoted++
			}
		}
		line := fmt.Sprintf("  rung %d: %-8s %3d candidates", g.Index, g.Fidelity, len(g.Evals))
		if promoted > 0 {
			line += fmt.Sprintf(", %d promoted", promoted)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	frac := 0.0
	if r.Feasible > 0 {
		frac = 100 * float64(r.Simulations) / float64(r.Feasible)
	}
	if _, err := fmt.Fprintf(w, "simulated %d/%d candidates (%.0f%% of the feasible space) in %v\n",
		r.Simulations, r.Feasible, frac, r.Wall.Round(time.Millisecond)); err != nil {
		return err
	}
	best := r.Best.Machine + " / " + r.Best.Workload
	if r.Best.Placement != "" {
		best += " / " + r.Best.Placement
	}
	_, err := fmt.Fprintf(w, "best: %s  %s = %v\n", best, r.Objective, r.Best.Score)
	return err
}
