package astrasim

import (
	"bytes"
	"strings"
	"testing"
)

// testSearchSpec is a cheap 4-topology x 2-bandwidth x 1-workload space
// (8 machine candidates) whose collectives simulate in microseconds.
func testSearchSpec() SearchSpec {
	return SearchSpec{
		Name:       "test-search",
		Topologies: []string{"R(8)", "SW(8)", "M(8)", "FC(8)"},
		Bandwidths: [][]float64{{100}, {400}},
		Workloads:  []WorkloadSpec{{Kind: "all_reduce", SizeBytes: 64 << 20}},
	}
}

func TestOptimizeHalvingMatchesExhaustive(t *testing.T) {
	spec := testSearchSpec()
	spec.Strategy = "exhaustive"
	ex, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Simulations != 8 || ex.Feasible != 8 {
		t.Fatalf("exhaustive ran %d/%d, want 8/8", ex.Simulations, ex.Feasible)
	}
	spec.Strategy = "halving"
	ha, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ha.Simulations >= ex.Simulations {
		t.Errorf("halving simulated %d cells, not fewer than exhaustive's %d", ha.Simulations, ex.Simulations)
	}
	if ha.Estimates != 8 {
		t.Errorf("halving estimated %d candidates, want the whole space (8)", ha.Estimates)
	}
	if ha.Best.Machine != ex.Best.Machine || ha.Best.Workload != ex.Best.Workload {
		t.Errorf("halving best %s/%s != exhaustive best %s/%s",
			ha.Best.Machine, ha.Best.Workload, ex.Best.Machine, ex.Best.Workload)
	}
	if ha.Best.Score != ex.Best.Score {
		t.Errorf("winner scores differ: %v vs %v", ha.Best.Score, ex.Best.Score)
	}
	if ha.Best.Score <= 0 {
		t.Errorf("non-positive best score %v", ha.Best.Score)
	}
}

// TestOptimizeDeterministicAcrossWorkers mirrors the sweep engine's
// serial-parity guarantee: same seed + budget => byte-identical
// SearchResult at any -parallel worker count.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	for _, strategy := range []string{"halving", "random"} {
		spec := testSearchSpec()
		spec.Strategy = strategy
		spec.Seed = 99
		spec.MaxSimulations = 2
		var want bytes.Buffer
		for i, workers := range []int{1, 2, 8} {
			res, err := Optimize(spec, SearchOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := res.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			var csv bytes.Buffer
			if err := res.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			got.Write(csv.Bytes())
			if i == 0 {
				want = got
				continue
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%s: workers=%d result differs from serial", strategy, workers)
			}
		}
	}
}

func TestOptimizePrunesInfeasibleCandidates(t *testing.T) {
	spec := testSearchSpec()
	// A 2-dimension topology in a space with 1-element bandwidth vectors:
	// both pairings are infeasible and must be pruned, not fatal.
	spec.Topologies = append(spec.Topologies, "R(4)_SW(2)")
	res, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 10 || res.Feasible != 8 {
		t.Errorf("candidates=%d feasible=%d, want 10/8", res.Candidates, res.Feasible)
	}
	if len(res.Pruned) != 2 {
		t.Fatalf("%d pruned, want 2", len(res.Pruned))
	}
	for _, p := range res.Pruned {
		if !strings.Contains(p.Machine, "R(4)_SW(2)") || p.Reason == "" {
			t.Errorf("pruned entry %+v", p)
		}
	}

	// A bandwidth cost cap prunes the over-provisioned half of the space.
	spec = testSearchSpec()
	spec.MaxAggregateGBps = 200
	res, err = Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != 4 {
		t.Errorf("feasible=%d under 200 GB/s cap, want 4 (the 100 GB/s half)", res.Feasible)
	}
	for _, p := range res.Pruned {
		if !strings.Contains(p.Reason, "exceeds budget") {
			t.Errorf("pruned reason %q", p.Reason)
		}
	}
	if !strings.Contains(res.Best.Machine, "@ 100 GB/s") {
		t.Errorf("best %q should come from the feasible 100 GB/s half", res.Best.Machine)
	}
}

func TestOptimizeExplicitMachinesAndObjective(t *testing.T) {
	spec := SearchSpec{
		Strategy:  "exhaustive",
		Objective: "comm",
		Machines: []SweepMachine{
			{Name: "slow", Config: MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{50}}},
			{Name: "fast", Config: MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{500}}},
		},
		Workloads: []WorkloadSpec{{Kind: "all_reduce", SizeBytes: 64 << 20}},
	}
	res, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "comm" {
		t.Errorf("objective = %q", res.Objective)
	}
	if res.Best.Machine != "fast" {
		t.Errorf("best machine = %q, want fast", res.Best.Machine)
	}
}

// TestOptimizeMultiWorkloadPromotesWholeMachines guards the default
// budget with several workloads: the screening estimate is machine-level,
// so every workload of a promoted machine must reach simulation — the
// optimum may be any of them, and cutting the block by candidate id would
// deterministically miss it.
func TestOptimizeMultiWorkloadPromotesWholeMachines(t *testing.T) {
	spec := SearchSpec{
		Machines: []SweepMachine{
			{Name: "slow", Config: MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{50}}},
			{Name: "fast", Config: MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{400}}},
		},
		Workloads: []WorkloadSpec{
			{Kind: "all_reduce", SizeBytes: 256 << 20},
			{Kind: "all_reduce", SizeBytes: 1 << 20}, // the true optimum
		},
	}
	spec.Strategy = "exhaustive"
	ex, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Strategy = "halving"
	ha, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One machine promoted => both its workloads simulated.
	if ha.Simulations != 2 {
		t.Errorf("halving ran %d simulations, want 2 (one whole machine)", ha.Simulations)
	}
	if ha.Best != ex.Best {
		t.Errorf("halving best %+v != exhaustive best %+v", ha.Best, ex.Best)
	}
	if ex.Best.Machine != "fast" || !strings.Contains(ex.Best.Workload, "1048576") {
		t.Errorf("unexpected exhaustive optimum %+v", ex.Best)
	}

	// An explicit population keeps the random strategy's sample-derived
	// budget even with multiple workloads: 2 sampled, ceil(2/4)=1
	// simulated — the whole-machine default must not override it.
	spec.Strategy = "random"
	spec.Seed = 3
	spec.Population = 2
	rnd, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Estimates != 2 || rnd.Simulations != 1 {
		t.Errorf("random population 2: %d estimates / %d simulations, want 2 / 1",
			rnd.Estimates, rnd.Simulations)
	}

	// Halving ignores Population, so a stray Population value must not
	// disable the whole-machine default budget.
	spec.Strategy = "halving"
	h2, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Simulations != 2 || h2.Best != ex.Best {
		t.Errorf("halving with stray population: %d simulations, best %+v; want 2, %+v",
			h2.Simulations, h2.Best, ex.Best)
	}
}

// TestOptimizeProgressMonotonic checks the rung-spanning progress
// adapter: the halving search runs two sweeps (estimate, simulate), but
// the reported counters must never reset.
func TestOptimizeProgressMonotonic(t *testing.T) {
	spec := testSearchSpec()
	lastDone, lastTotal, calls := -1, -1, 0
	_, err := Optimize(spec, SearchOptions{Workers: 1, Progress: func(done, total int) {
		calls++
		if done < lastDone {
			t.Errorf("progress done reset: %d after %d", done, lastDone)
		}
		if total < lastTotal {
			t.Errorf("progress total shrank: %d after %d", total, lastTotal)
		}
		lastDone, lastTotal = done, total
	}})
	if err != nil {
		t.Fatal(err)
	}
	// 8 estimates + 2 simulations, reported cumulatively.
	if calls == 0 || lastDone != lastTotal || lastDone != 10 {
		t.Errorf("final progress %d/%d after %d calls, want 10/10", lastDone, lastTotal, calls)
	}
}

func TestLoadSearchSpec(t *testing.T) {
	doc := `{
	  "name": "fabric-hunt",
	  "strategy": "halving",
	  "topologies": ["R(8)", "SW(8)"],
	  "bandwidths": [[100]],
	  "workloads": [{"kind": "all_reduce", "size_bytes": 1048576}]
	}`
	spec, err := LoadSearchSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", res.Candidates)
	}
	if _, err := LoadSearchSpec(strings.NewReader(`{"topologiez": []}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestOptimizeSpecErrors(t *testing.T) {
	base := testSearchSpec()

	spec := base
	spec.Workloads = nil
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("no workloads accepted")
	}

	spec = base
	spec.Topologies = nil
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("empty machine space accepted")
	}

	spec = base
	spec.Workloads = []WorkloadSpec{{Kind: "nope"}}
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("bad workload accepted")
	}

	spec = base
	spec.Strategy = "annealing"
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("unknown strategy accepted")
	}

	spec = base
	spec.Objective = "dollars"
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("unknown objective accepted")
	}

	spec = base
	spec.ProxyOp = "broadcast"
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("unknown proxy op accepted")
	}

	// All candidates infeasible is an error (nothing to search).
	spec = base
	spec.MaxAggregateGBps = 1
	if _, err := Optimize(spec, SearchOptions{}); err == nil {
		t.Error("fully pruned space accepted")
	}
}

func TestSearchResultWriters(t *testing.T) {
	spec := testSearchSpec()
	res, err := Optimize(spec, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strategy=halving", "rung 0: estimate", "rung 1: simulate", "best:"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "generation,fidelity,machine,workload,placement,score_us,promoted\n") {
		t.Errorf("CSV header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
}

func TestRegisteredBlocksExported(t *testing.T) {
	blocks := RegisteredBlocks()
	have := strings.Join(blocks, " ")
	for _, want := range []string{"r", "ring", "sw", "switch", "fc", "m", "mesh", "t2d", "torus"} {
		found := false
		for _, b := range blocks {
			if b == want {
				found = true
			}
		}
		if !found {
			t.Errorf("RegisteredBlocks missing %q (have: %s)", want, have)
		}
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1] >= blocks[i] {
			t.Errorf("blocks not sorted: %v", blocks)
		}
	}
}
