package astrasim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func scenarioTestMachineConfig() MachineConfig {
	return MachineConfig{Topology: "R(8)", BandwidthsGBps: []float64{300}}
}

// TestRunScenarioZeroEvents locks in the facade-level byte-identity
// contract: a scenario with no events reproduces the clean run exactly.
func TestRunScenarioZeroEvents(t *testing.T) {
	res, err := RunScenario(ScenarioSpec{
		Name:     "noop",
		Machine:  scenarioTestMachineConfig(),
		Workload: WorkloadSpec{Kind: "all_reduce", SizeBytes: 64 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown != 1 {
		t.Errorf("zero-event slowdown = %g, want exactly 1", res.Slowdown)
	}
	clean, _ := json.Marshal(res.Clean)
	perturbed, _ := json.Marshal(res.Perturbed)
	if string(clean) != string(perturbed) {
		t.Errorf("zero-event runs diverged:\nclean     %s\nperturbed %s", clean, perturbed)
	}
}

// TestRunScenarioDegrade checks that a from-the-start bandwidth halving of
// the only dimension doubles a pure collective's makespan.
func TestRunScenarioDegrade(t *testing.T) {
	res, err := RunScenario(ScenarioSpec{
		Name:     "halve",
		Machine:  scenarioTestMachineConfig(),
		Workload: WorkloadSpec{Kind: "all_reduce", SizeBytes: 64 << 20},
		Events:   []ScenarioEventSpec{{Kind: "degrade_link", Dim: 0, Factor: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown < 1.9 || res.Slowdown > 2.1 {
		t.Errorf("halved-bandwidth slowdown = %g, want ~2", res.Slowdown)
	}
}

// TestRunScenarioStraggler checks that slowing a single NPU's compute
// stretches a compute-bearing workload, and that restoring the factor to 1
// via a later event clears it.
func TestRunScenarioStraggler(t *testing.T) {
	res, err := RunScenario(ScenarioSpec{
		Machine:  scenarioTestMachineConfig(),
		Workload: WorkloadSpec{Kind: "dlrm"},
		Events:   []ScenarioEventSpec{{Kind: "straggle_npu", NPU: 3, Factor: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown <= 1 {
		t.Errorf("straggler slowdown = %g, want > 1", res.Slowdown)
	}
}

// TestScenarioMemoByteIdentity runs the same perturbed workload on a
// memoized and a memo-free machine: the collective memo's rollback across
// scenario events must keep the two reports byte-identical.
func TestScenarioMemoByteIdentity(t *testing.T) {
	spec := ScenarioSpec{
		// GPT-3's model-parallel group needs 16 NPUs.
		Machine:  MachineConfig{Topology: "R(4)_SW(4)", BandwidthsGBps: []float64{300, 100}},
		Workload: WorkloadSpec{Kind: "gpt3"},
		Events: []ScenarioEventSpec{
			{Kind: "degrade_link", AtUs: 500, Dim: 0, Factor: 0.25},
			{Kind: "straggle_npu", NPU: 5, Factor: 1.5},
			{Kind: "restore_link", AtUs: 2000, Dim: 0},
		},
	}
	w, err := spec.Workload.Workload()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.buildScenario()
	if err != nil {
		t.Fatal(err)
	}
	run := func(memoized bool) (*Report, *Report) {
		m := testMachine(t, spec.Machine)
		if !memoized {
			m.memo = nil
		}
		clean, err := m.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		perturbed, err := m.runScenario(w, sc)
		if err != nil {
			t.Fatal(err)
		}
		return clean, perturbed
	}
	mClean, mPert := run(true)
	pClean, pPert := run(false)
	if !reflect.DeepEqual(mClean, pClean) {
		t.Errorf("clean run diverged under memo:\nmemo  %+v\nplain %+v", mClean, pClean)
	}
	if !reflect.DeepEqual(mPert, pPert) {
		t.Errorf("perturbed run diverged under memo:\nmemo  %+v\nplain %+v", mPert, pPert)
	}
	if mPert.Makespan <= mClean.Makespan {
		t.Errorf("perturbation cost nothing: clean %v, perturbed %v", mClean.Makespan, mPert.Makespan)
	}
}

// TestLoadScenarioSpecErrors checks that malformed documents fail loudly at
// load time instead of surfacing mid-simulation.
func TestLoadScenarioSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"malformed_json", `{"events":`},
		{"unknown_field", `{"bogus":1}`},
		{"unknown_kind", `{"events":[{"kind":"explode"}]}`},
		{"missing_kind", `{"events":[{"at_us":5}]}`},
		{"negative_time", `{"events":[{"kind":"degrade_link","at_us":-1,"factor":0.5}]}`},
		{"negative_factor", `{"events":[{"kind":"degrade_link","factor":-0.5}]}`},
		{"zero_factor", `{"events":[{"kind":"degrade_link"}]}`},
		{"negative_recovery", `{"events":[{"kind":"fail_link","recovery_us":-3}]}`},
		{"negative_dim", `{"events":[{"kind":"fail_link","dim":-1}]}`},
		{"negative_npu", `{"events":[{"kind":"straggle_npu","npu":-2,"factor":2}]}`},
		{"fail_npu_no_recovery", `{"events":[{"kind":"fail_npu","npu":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadScenarioSpec(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("invalid spec accepted: %s", tc.doc)
			}
		})
	}
}

// TestRunScenarioBounds checks machine-relative validation: events naming
// dimensions or NPUs the machine does not have are rejected at run time.
func TestRunScenarioBounds(t *testing.T) {
	base := ScenarioSpec{
		Machine:  scenarioTestMachineConfig(),
		Workload: WorkloadSpec{Kind: "all_reduce", SizeBytes: 1 << 20},
	}
	outOfDim := base
	outOfDim.Events = []ScenarioEventSpec{{Kind: "degrade_link", Dim: 3, Factor: 0.5}}
	if _, err := RunScenario(outOfDim); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	outOfNPU := base
	outOfNPU.Events = []ScenarioEventSpec{{Kind: "straggle_npu", NPU: 64, Factor: 2}}
	if _, err := RunScenario(outOfNPU); err == nil {
		t.Error("out-of-range NPU accepted")
	}
}
