package astrasim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/convert"
	"repro/internal/et"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// This file is the design-space-exploration facade: declarative sweep
// grids of machines x workloads, executed in parallel with deterministic
// output and content-hash result sharing. It is the public face of
// internal/sweep, which also drives every reproduced paper artifact.

// WorkloadSpec is a declarative, JSON-serializable workload description —
// the sweep-grid counterpart of the Workload constructors.
type WorkloadSpec struct {
	// Kind selects the workload: all_reduce | all_gather | reduce_scatter
	// | all_to_all | gpt3 | t1t | dlrm | moe | moe_inswitch | transformer
	// | fsdp | threed | pipeline | trace | pytorch_trace.
	Kind string `json:"kind"`
	// SizeBytes is the collective payload (collective kinds; default 1 GB).
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// Path locates the trace file (trace kinds).
	Path string `json:"path,omitempty"`

	// Transformer-family parameters (transformer, fsdp, threed).
	Params       float64 `json:"params,omitempty"`
	Layers       int     `json:"layers,omitempty"`
	Hidden       int     `json:"hidden,omitempty"`
	SeqLen       int     `json:"seq_len,omitempty"`
	MicroBatch   int     `json:"micro_batch,omitempty"`
	BytesPerElem int     `json:"bytes_per_elem,omitempty"`
	MP           int     `json:"mp,omitempty"`

	// Pipeline-family parameters (pipeline, threed).
	Stages          int     `json:"stages,omitempty"`
	MicroBatches    int     `json:"micro_batches,omitempty"`
	FlopsPerStage   float64 `json:"flops_per_stage,omitempty"`
	ActivationBytes int64   `json:"activation_bytes,omitempty"`
	GradBytes       int64   `json:"grad_bytes,omitempty"`

	// Iterations > 1 repeats the workload with synchronous iteration
	// boundaries.
	Iterations int `json:"iterations,omitempty"`
}

// Workload materializes the description. Trace kinds re-open the file
// each time the trace is generated, so one spec can serve many sweep
// cells.
func (s WorkloadSpec) Workload() (Workload, error) {
	size := s.SizeBytes
	if size == 0 {
		size = 1 << 30
	}
	var w Workload
	switch s.Kind {
	case "all_reduce", "all_gather", "reduce_scatter", "all_to_all":
		w = Collective(s.Kind, size)
	case "gpt3":
		w = GPT3()
	case "t1t":
		w = Transformer1T()
	case "dlrm":
		w = DLRM()
	case "moe":
		w = MoE1T(false)
	case "moe_inswitch":
		w = MoE1T(true)
	case "transformer":
		w = Transformer(s.Params, s.Layers, s.Hidden, s.SeqLen, s.MicroBatch, s.BytesPerElem, s.MP)
	case "fsdp":
		w = FSDP(s.Params, s.Layers, s.Hidden, s.SeqLen, s.MicroBatch, s.BytesPerElem)
	case "threed":
		w = ThreeD(s.Params, s.Layers, s.Hidden, s.SeqLen, s.MicroBatch, s.BytesPerElem, s.MP, s.Stages, s.MicroBatches)
	case "pipeline":
		w = Pipeline(s.Stages, s.MicroBatches, s.FlopsPerStage, s.ActivationBytes, s.GradBytes)
	case "trace", "pytorch_trace":
		if s.Path == "" {
			return nil, fmt.Errorf("astrasim: workload kind %q needs a path", s.Kind)
		}
		path, pytorch := s.Path, s.Kind == "pytorch_trace"
		name := fmt.Sprintf("Trace(%s)", path)
		w = workloadFunc{name: name, fn: func(*topology.Topology) (*et.Trace, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if pytorch {
				src, err := convert.DecodePyTorch(f)
				if err != nil {
					return nil, err
				}
				return convert.Convert(src)
			}
			return et.Decode(f)
		}}
	default:
		return nil, fmt.Errorf("astrasim: unknown workload kind %q", s.Kind)
	}
	if s.Iterations > 1 {
		w = Iterations(w, s.Iterations)
	}
	return w, nil
}

// label names the workload in sweep rows.
func (s WorkloadSpec) label() string {
	w, err := s.Workload()
	if err != nil {
		return s.Kind
	}
	return w.Name()
}

// workloadTable validates every workload spec up front (so grid errors
// name the workload, not a mid-run cell) and returns the display names
// and canonical JSON fingerprints sweeps and searches key their caches
// on.
func workloadTable(specs []WorkloadSpec) (names, fps []string, err error) {
	names = make([]string, len(specs))
	fps = make([]string, len(specs))
	for i, ws := range specs {
		if _, err := ws.Workload(); err != nil {
			return nil, nil, fmt.Errorf("workload %d: %w", i, err)
		}
		names[i] = ws.label()
		wsJSON, err := json.Marshal(ws)
		if err != nil {
			return nil, nil, err
		}
		fps[i] = string(wsJSON)
	}
	return names, fps, nil
}

// SweepMachine is one named machine of a sweep grid.
type SweepMachine struct {
	// Name labels the machine in results; it defaults to the topology
	// notation.
	Name   string        `json:"name,omitempty"`
	Config MachineConfig `json:"config"`
}

// SweepSpec is a declarative sweep grid: every machine runs every
// workload.
type SweepSpec struct {
	Name      string         `json:"name,omitempty"`
	Machines  []SweepMachine `json:"machines"`
	Workloads []WorkloadSpec `json:"workloads"`
}

// LoadSweepSpec reads a SweepSpec JSON document, rejecting unknown fields
// so grid typos fail loudly.
func LoadSweepSpec(r io.Reader) (SweepSpec, error) {
	var s SweepSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("astrasim: parse sweep spec: %w", err)
	}
	return s, nil
}

// SweepOptions controls sweep execution.
type SweepOptions struct {
	// Workers is the parallel worker count; <= 0 means GOMAXPROCS.
	// Results are identical for any value.
	Workers int
	// Progress, when non-nil, is called as cells complete.
	Progress func(done, total int)
}

// RunSweepFile loads a sweep spec from a JSON file and runs it — the
// shared entry point of the CLIs' -sweep flag.
func RunSweepFile(path string, opt SweepOptions) (*SweepResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := LoadSweepSpec(f)
	if err != nil {
		return nil, err
	}
	return RunSweep(spec, opt)
}

// ProgressLine returns a Progress callback rendering an in-place
// "done/total" counter to w, ending with a newline on completion.
func ProgressLine(w io.Writer) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(w, "\rsweep: %d/%d cells", done, total)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}

// SweepRow is one simulated cell.
type SweepRow struct {
	Machine  string  `json:"machine"`
	Workload string  `json:"workload"`
	Report   *Report `json:"report"`
}

// SweepResult holds a completed sweep in deterministic (machine-major)
// order.
type SweepResult struct {
	Name string     `json:"name,omitempty"`
	Rows []SweepRow `json:"rows"`
	// Cells is the grid size; Executed counts simulations actually run —
	// cells with identical machine + workload content share one run.
	Cells    int `json:"cells"`
	Executed int `json:"executed"`
	// Wall is the sweep's wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
}

// RunSweep simulates every machine x workload cell of the grid across a
// worker pool. Output order and content are independent of the worker
// count; duplicate cells (same machine config and workload description)
// are simulated once.
func RunSweep(spec SweepSpec, opt SweepOptions) (*SweepResult, error) {
	if len(spec.Machines) == 0 {
		return nil, fmt.Errorf("astrasim: sweep %q has no machines", spec.Name)
	}
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("astrasim: sweep %q has no workloads", spec.Name)
	}

	// Build and validate every machine up front so configuration errors
	// name the machine rather than a mid-sweep cell.
	machines := make([]*Machine, len(spec.Machines))
	machineNames := make([]string, len(spec.Machines))
	machineFPs := make([]string, len(spec.Machines))
	for i, sm := range spec.Machines {
		m, err := NewMachine(sm.Config)
		if err != nil {
			return nil, fmt.Errorf("astrasim: sweep machine %d (%s): %w", i, sm.Name, err)
		}
		machines[i] = m
		machineNames[i] = sm.Name
		if machineNames[i] == "" {
			machineNames[i] = m.TopologySpec()
		}
		cfgJSON, err := json.Marshal(sm.Config)
		if err != nil {
			return nil, err
		}
		machineFPs[i] = string(cfgJSON)
	}
	name := spec.Name
	if name == "" {
		name = "sweep"
	}
	workloadNames, workloadFPs, err := workloadTable(spec.Workloads)
	if err != nil {
		return nil, fmt.Errorf("astrasim: sweep %s: %w", name, err)
	}
	inner := sweep.Spec[*Report]{
		Name: name,
		Axes: []sweep.Axis{
			{Name: "machine", Values: machineNames},
			{Name: "workload", Values: workloadNames},
		},
		Cell: func(pt sweep.Point) (*Report, error) {
			m := machines[pt.Index("machine")]
			// Each cell materializes its own workload so trace readers and
			// generators are never shared between goroutines.
			w, err := spec.Workloads[pt.Index("workload")].Workload()
			if err != nil {
				return nil, err
			}
			return m.Run(w)
		},
		Fingerprint: func(pt sweep.Point) string {
			return "astrasim|" + machineFPs[pt.Index("machine")] + "|" + workloadFPs[pt.Index("workload")]
		},
	}
	res, err := sweep.Run(inner, sweep.Exec{
		Workers:  opt.Workers,
		Cache:    sweep.NewCache(),
		Progress: opt.Progress,
	})
	if err != nil {
		return nil, err
	}
	out := &SweepResult{
		Name:     spec.Name,
		Cells:    res.Stats.Cells,
		Executed: res.Stats.Executed,
		Wall:     res.Stats.Wall,
	}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, SweepRow{
			Machine:  row.Point[0],
			Workload: row.Point[1],
			Report:   row.Value,
		})
	}
	return out, nil
}

// WriteJSON writes the result as an indented JSON document.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes a human-readable summary table.
func (r *SweepResult) WriteTable(w io.Writer) error {
	machineW, workloadW := len("Machine"), len("Workload")
	for _, row := range r.Rows {
		if len(row.Machine) > machineW {
			machineW = len(row.Machine)
		}
		if len(row.Workload) > workloadW {
			workloadW = len(row.Workload)
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if _, err := fmt.Fprintf(w, "%-*s %-*s %12s %12s %12s %12s\n",
		machineW, "Machine", workloadW, "Workload", "Makespan", "Compute", "Exp.Comm", "Idle"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rep := row.Report
		if _, err := fmt.Fprintf(w, "%-*s %-*s %10.3fms %10.3fms %10.3fms %10.3fms\n",
			machineW, row.Machine, workloadW, row.Workload,
			ms(rep.Makespan), ms(rep.Compute), ms(rep.ExposedComm), ms(rep.Idle)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n%d cells, %d simulated (%d shared), wall %v\n",
		r.Cells, r.Executed, r.Cells-r.Executed, r.Wall.Round(time.Millisecond))
	return err
}

// WriteCSV writes one row per cell with the report's headline metrics in
// microseconds. Deterministic for a given result.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "machine,workload,makespan_us,compute_us,exposed_comm_us,exposed_remote_mem_us,exposed_local_mem_us,idle_us,collectives,events"); err != nil {
		return err
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, row := range r.Rows {
		rep := row.Report
		if _, err := fmt.Fprintf(w, "%q,%q,%g,%g,%g,%g,%g,%g,%d,%d\n",
			row.Machine, row.Workload,
			us(rep.Makespan), us(rep.Compute), us(rep.ExposedComm),
			us(rep.ExposedRemoteMem), us(rep.ExposedLocalMem), us(rep.Idle),
			rep.Collectives, rep.Events); err != nil {
			return err
		}
	}
	return nil
}
