package topology

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/units"
)

// Parse builds a Topology from the paper's shape notation, e.g.
//
//	"Ring(4)_Ring(2)"            (Google TPUv2/v3)
//	"SW(3)_SW(2)"                (NVIDIA DGX-2 / DGX-A100 style)
//	"FC(4)_FC(2)_FC(2)"          (fully-populated DragonFly)
//	"R(4)_FC(2)_SW(2)"
//	"T2D(4,4)_SW(8)"             (TPU-style 2D torus pods under a switch)
//	"M(8)_SW(16,4)"              (NoC mesh under a 4:1 tapered switch)
//
// Block names are case-insensitive and resolved through the model registry;
// both short (R, FC, SW, M, T2D) and long (Ring, FullyConnected, Switch,
// Mesh, Torus2D) spellings are registered. Multi-argument blocks take
// comma-separated arguments: Torus2D(a,b) spans a*b NPUs, SW(k,o) is a
// k-port switch whose uplinks are oversubscribed o:1. Bandwidths and
// latencies are zero; set them afterwards or use ParseWithBandwidth.
func Parse(spec string) (*Topology, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("topology: empty spec")
	}
	parts := strings.Split(spec, "_")
	dims := make([]Dim, 0, len(parts))
	for i, p := range parts {
		d, err := parseBlock(p)
		if err != nil {
			return nil, fmt.Errorf("topology: dim %d %q: %w", i+1, p, err)
		}
		dims = append(dims, d)
	}
	return New(dims...)
}

// ParseWithBandwidth parses a shape spec and assigns per-dimension
// bandwidths (GB/s) positionally, matching the paper's "BW (GB/s)" columns
// in Table II. The number of bandwidths must equal the number of dims.
func ParseWithBandwidth(spec string, gbps []float64, hopLatency units.Time) (*Topology, error) {
	t, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if len(gbps) != len(t.Dims) {
		return nil, fmt.Errorf("topology: spec %q has %d dims but %d bandwidths given", spec, len(t.Dims), len(gbps))
	}
	for i := range t.Dims {
		if gbps[i] < 0 {
			return nil, fmt.Errorf("topology: dim %d negative bandwidth %v", i+1, gbps[i])
		}
		t.Dims[i].Bandwidth = units.GBps(gbps[i])
		t.Dims[i].Latency = hopLatency
	}
	return t, nil
}

func parseBlock(s string) (Dim, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Dim{}, fmt.Errorf("expected Block(args) form")
	}
	name := strings.TrimSpace(s[:open])
	var args []int
	for _, a := range strings.Split(s[open+1:len(s)-1], ",") {
		v, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return Dim{}, fmt.Errorf("bad argument %q: %w", a, err)
		}
		args = append(args, v)
	}
	model, size, err := ModelFor(name, args)
	if err != nil {
		return Dim{}, err
	}
	if err := model.Validate(size); err != nil {
		return Dim{}, err
	}
	return Dim{Kind: model, Size: size}, nil
}
