package topology

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/units"
)

// Parse builds a Topology from the paper's shape notation, e.g.
//
//	"Ring(4)_Ring(2)"            (Google TPUv2/v3)
//	"SW(3)_SW(2)"                (NVIDIA DGX-2 / DGX-A100 style)
//	"FC(4)_FC(2)_FC(2)"          (fully-populated DragonFly)
//	"R(4)_FC(2)_SW(2)"
//
// Block names are case-insensitive and accept both short (R, FC, SW) and
// long (Ring, FullyConnected, Switch) spellings. Bandwidths and latencies
// are zero; set them afterwards or use ParseWithBandwidth.
func Parse(spec string) (*Topology, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("topology: empty spec")
	}
	parts := strings.Split(spec, "_")
	dims := make([]Dim, 0, len(parts))
	for i, p := range parts {
		d, err := parseBlock(p)
		if err != nil {
			return nil, fmt.Errorf("topology: dim %d %q: %w", i+1, p, err)
		}
		dims = append(dims, d)
	}
	return New(dims...)
}

// ParseWithBandwidth parses a shape spec and assigns per-dimension
// bandwidths (GB/s) positionally, matching the paper's "BW (GB/s)" columns
// in Table II. The number of bandwidths must equal the number of dims.
func ParseWithBandwidth(spec string, gbps []float64, hopLatency units.Time) (*Topology, error) {
	t, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if len(gbps) != len(t.Dims) {
		return nil, fmt.Errorf("topology: spec %q has %d dims but %d bandwidths given", spec, len(t.Dims), len(gbps))
	}
	for i := range t.Dims {
		if gbps[i] < 0 {
			return nil, fmt.Errorf("topology: dim %d negative bandwidth %v", i+1, gbps[i])
		}
		t.Dims[i].Bandwidth = units.GBps(gbps[i])
		t.Dims[i].Latency = hopLatency
	}
	return t, nil
}

func parseBlock(s string) (Dim, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Dim{}, fmt.Errorf("expected Block(k) form")
	}
	name := strings.TrimSpace(s[:open])
	arg := s[open+1 : len(s)-1]
	k, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil {
		return Dim{}, fmt.Errorf("bad size %q: %w", arg, err)
	}
	if k < 2 {
		return Dim{}, fmt.Errorf("size %d; building blocks need k >= 2", k)
	}
	kind, err := parseKind(name)
	if err != nil {
		return Dim{}, err
	}
	return Dim{Kind: kind, Size: k}, nil
}

func parseKind(name string) (BlockKind, error) {
	switch strings.ToLower(name) {
	case "r", "ring":
		return Ring, nil
	case "fc", "fullyconnected", "fully-connected":
		return FullyConnected, nil
	case "sw", "switch":
		return Switch, nil
	default:
		return 0, fmt.Errorf("unknown building block %q (want Ring/FC/Switch)", name)
	}
}
