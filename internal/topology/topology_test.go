package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestBlockKindStrings(t *testing.T) {
	cases := []struct {
		k          BlockKind
		short, alg string
	}{
		{Ring, "R", "Ring"},
		{FullyConnected, "FC", "Direct"},
		{Switch, "SW", "HalvingDoubling"},
	}
	for _, c := range cases {
		if c.k.String() != c.short {
			t.Errorf("%v.String() = %q, want %q", c.k, c.k.String(), c.short)
		}
		if c.k.CollectiveName() != c.alg {
			t.Errorf("%v.CollectiveName() = %q, want %q (Table I)", c.k, c.k.CollectiveName(), c.alg)
		}
	}
}

func TestDimHops(t *testing.T) {
	ring8 := Dim{Kind: Ring, Size: 8}
	if got := ring8.Hops(0, 1); got != 1 {
		t.Errorf("ring hops(0,1) = %d", got)
	}
	if got := ring8.Hops(0, 7); got != 1 {
		t.Errorf("ring hops(0,7) = %d, want 1 (wraparound)", got)
	}
	if got := ring8.Hops(0, 4); got != 4 {
		t.Errorf("ring hops(0,4) = %d, want 4", got)
	}
	if got := ring8.Hops(3, 3); got != 0 {
		t.Errorf("ring hops(3,3) = %d, want 0", got)
	}
	fc := Dim{Kind: FullyConnected, Size: 16}
	if got := fc.Hops(2, 9); got != 1 {
		t.Errorf("fc hops = %d, want 1", got)
	}
	sw := Dim{Kind: Switch, Size: 16}
	if got := sw.Hops(2, 9); got != 2 {
		t.Errorf("switch hops = %d, want 2", got)
	}
}

func TestDimSteps(t *testing.T) {
	cases := []struct {
		d    Dim
		want int
	}{
		{Dim{Kind: Ring, Size: 8}, 7},
		{Dim{Kind: FullyConnected, Size: 8}, 1},
		{Dim{Kind: Switch, Size: 8}, 3},
		{Dim{Kind: Switch, Size: 5}, 3}, // ceil(log2(5))
		{Dim{Kind: Ring, Size: 2}, 1},
	}
	for _, c := range cases {
		if got := c.d.Steps(); got != c.want {
			t.Errorf("%v(%d).Steps() = %d, want %d", c.d.Kind, c.d.Size, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("expected error for empty topology")
	}
	if _, err := New(Dim{Kind: Ring, Size: 1}); err == nil {
		t.Error("expected error for k=1")
	}
	if _, err := New(Dim{Kind: Ring, Size: 4, Bandwidth: -1}); err == nil {
		t.Error("expected error for negative bandwidth")
	}
	if _, err := New(Dim{Kind: Ring, Size: 4, Latency: -1}); err == nil {
		t.Error("expected error for negative latency")
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	top := MustNew(
		Dim{Kind: Ring, Size: 2},
		Dim{Kind: FullyConnected, Size: 8},
		Dim{Kind: Ring, Size: 8},
		Dim{Kind: Switch, Size: 4},
	)
	if top.NumNPUs() != 512 {
		t.Fatalf("NumNPUs = %d, want 512", top.NumNPUs())
	}
	for rank := 0; rank < top.NumNPUs(); rank++ {
		if got := top.Rank(top.Coord(rank)); got != rank {
			t.Fatalf("round trip failed: rank %d -> %v -> %d", rank, top.Coord(rank), got)
		}
	}
}

// randomDim draws a valid dimension using any of the registered building
// blocks (parameterized blocks get matching sizes).
func randomDim(rng *rand.Rand) Dim {
	switch rng.Intn(6) {
	case 0:
		return Dim{Kind: Ring, Size: rng.Intn(7) + 2}
	case 1:
		return Dim{Kind: FullyConnected, Size: rng.Intn(7) + 2}
	case 2:
		return Dim{Kind: Switch, Size: rng.Intn(7) + 2}
	case 3:
		return Dim{Kind: Mesh, Size: rng.Intn(7) + 2}
	case 4:
		a, b := rng.Intn(3)+2, rng.Intn(3)+2
		return Dim{Kind: Torus2D(a, b), Size: a * b}
	default:
		return Dim{Kind: OversubscribedSwitch(rng.Intn(4) + 1), Size: rng.Intn(7) + 2}
	}
}

func TestCoordRankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := rng.Intn(4) + 1
		dims := make([]Dim, nd)
		for i := range dims {
			dims[i] = randomDim(rng)
		}
		top := MustNew(dims...)
		rank := rng.Intn(top.NumNPUs())
		return top.Rank(top.Coord(rank)) == rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDimGroupMembershipProperty: for random topologies over all registered
// blocks, every rank's dim-group contains the rank, has exactly the
// dimension's size members, and all members share every other coordinate.
func TestDimGroupMembershipProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := rng.Intn(3) + 1
		dims := make([]Dim, nd)
		for i := range dims {
			dims[i] = randomDim(rng)
		}
		top := MustNew(dims...)
		rank := rng.Intn(top.NumNPUs())
		dim := rng.Intn(top.NumDims())
		group := top.DimGroup(rank, dim)
		if len(group) != top.Dims[dim].Size {
			return false
		}
		self := false
		rc := top.Coord(rank)
		for i, m := range group {
			if m == rank {
				self = true
			}
			mc := top.Coord(m)
			if mc[dim] != i { // ordered by position in the dimension
				return false
			}
			for d := range mc {
				if d != dim && mc[d] != rc[d] {
					return false
				}
			}
		}
		return self
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDimGroup(t *testing.T) {
	top := MustNew(
		Dim{Kind: Ring, Size: 4},
		Dim{Kind: Switch, Size: 2},
	)
	// Rank 5 has coords (1, 1). Its dim-0 group is ranks 4..7; its dim-1
	// group is {1, 5}.
	g0 := top.DimGroup(5, 0)
	want0 := []int{4, 5, 6, 7}
	for i := range want0 {
		if g0[i] != want0[i] {
			t.Fatalf("DimGroup(5,0) = %v, want %v", g0, want0)
		}
	}
	g1 := top.DimGroup(5, 1)
	want1 := []int{1, 5}
	for i := range want1 {
		if g1[i] != want1[i] {
			t.Fatalf("DimGroup(5,1) = %v, want %v", g1, want1)
		}
	}
}

func TestDimGroupPartitionProperty(t *testing.T) {
	// For every dim, the dim-groups partition the NPU set.
	top := MustNew(
		Dim{Kind: Ring, Size: 2},
		Dim{Kind: FullyConnected, Size: 8},
		Dim{Kind: Switch, Size: 4},
	)
	for dim := 0; dim < top.NumDims(); dim++ {
		seen := make(map[int]int)
		for rank := 0; rank < top.NumNPUs(); rank++ {
			group := top.DimGroup(rank, dim)
			found := false
			for _, m := range group {
				seen[m]++
				if m == rank {
					found = true
				}
			}
			if !found {
				t.Fatalf("dim %d: rank %d not in its own group %v", dim, rank, group)
			}
		}
		// Each rank appears exactly Size times (once per member's call).
		for rank, n := range seen {
			if n != top.Dims[dim].Size {
				t.Fatalf("dim %d: rank %d appeared %d times, want %d", dim, rank, n, top.Dims[dim].Size)
			}
		}
	}
}

func TestHopsAcrossDims(t *testing.T) {
	top := MustNew(
		Dim{Kind: Ring, Size: 4},
		Dim{Kind: Switch, Size: 2},
	)
	// (0,0) -> (2,1): 2 ring hops + 2 switch hops.
	src := top.Rank([]int{0, 0})
	dst := top.Rank([]int{2, 1})
	if got := top.Hops(src, dst); got != 4 {
		t.Errorf("Hops = %d, want 4", got)
	}
	if got := top.Hops(src, src); got != 0 {
		t.Errorf("Hops(self) = %d, want 0", got)
	}
}

func TestAggregateBandwidth(t *testing.T) {
	top := MustNew(
		Dim{Kind: Ring, Size: 2, Bandwidth: units.GBps(250)},
		Dim{Kind: FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		Dim{Kind: Ring, Size: 8, Bandwidth: units.GBps(100)},
		Dim{Kind: Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	// Conv-4D from Table II drives 600 GB/s per NPU.
	if got := top.AggregateBandwidth(); got != units.GBps(600) {
		t.Errorf("AggregateBandwidth = %v, want 600GB/s", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	top := MustNew(Dim{Kind: Ring, Size: 4, Bandwidth: units.GBps(100)})
	c := top.Clone()
	c.Dims[0].Bandwidth = units.GBps(999)
	if top.Dims[0].Bandwidth != units.GBps(100) {
		t.Error("Clone shares dim storage with original")
	}
}

func TestStringNotation(t *testing.T) {
	top := MustNew(
		Dim{Kind: Ring, Size: 4},
		Dim{Kind: FullyConnected, Size: 2},
		Dim{Kind: Switch, Size: 2},
	)
	if got := top.String(); got != "R(4)_FC(2)_SW(2)" {
		t.Errorf("String() = %q", got)
	}
}
