package topology

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestRegisteredBlockNotationRoundTrips(t *testing.T) {
	cases := []string{
		"R(4)_FC(2)_SW(2)",
		"M(8)",
		"T2D(4,2)",
		"SW(16,4)",
		"T2D(4,4)_SW(8,2)",
		"M(4)_T2D(2,2)_SW(8)",
	}
	for _, spec := range cases {
		top, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := top.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q, want round trip", spec, got)
		}
	}
}

func TestParseLongNamesAndSizes(t *testing.T) {
	top, err := Parse("Mesh(6)_Torus2D(3,4)_Switch(8,2)")
	if err != nil {
		t.Fatal(err)
	}
	if top.Dims[0].Kind != Mesh || top.Dims[0].Size != 6 {
		t.Errorf("dim 1 = %v(%d)", top.Dims[0].Kind, top.Dims[0].Size)
	}
	if top.Dims[1].Kind != Torus2D(3, 4) || top.Dims[1].Size != 12 {
		t.Errorf("dim 2 = %v(%d), want T2D(3,4) size 12", top.Dims[1].Kind, top.Dims[1].Size)
	}
	if top.Dims[2].Kind != OversubscribedSwitch(2) || top.Dims[2].Size != 8 {
		t.Errorf("dim 3 = %v(%d), want SW(8,2)", top.Dims[2].Kind, top.Dims[2].Size)
	}
	if top.NumNPUs() != 6*12*8 {
		t.Errorf("NumNPUs = %d", top.NumNPUs())
	}
}

func TestUnknownBlockIsConstructorError(t *testing.T) {
	if _, err := Parse("Hypercube(8)"); err == nil {
		t.Error("Parse accepted unregistered block")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("error should list registered blocks, got %v", err)
	}
	if _, _, err := ModelFor("nope", []int{4}); err == nil {
		t.Error("ModelFor accepted unregistered block")
	}
	if _, err := New(Dim{Kind: nil, Size: 4}); err == nil {
		t.Error("New accepted a dim with no model")
	}
}

func TestBlockArgumentValidation(t *testing.T) {
	bad := []string{
		"T2D(4)",      // torus needs two axes
		"T2D(1,4)",    // axis < 2
		"SW(8,0)",     // oversubscription < 1
		"SW(8,2,3)",   // too many args
		"R(4,4)",      // ring takes one arg
		"M(1)",        // k < 2
		"T2D(2,2,2)",  // too many args
		"Torus2D(,2)", // malformed
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted invalid block", spec)
		}
	}
	// A torus dim whose Size disagrees with its axes is rejected by New.
	if _, err := New(Dim{Kind: Torus2D(4, 4), Size: 8}); err == nil {
		t.Error("New accepted torus with mismatched size")
	}
}

func TestMeshHopsAndSteps(t *testing.T) {
	m := Dim{Kind: Mesh, Size: 8}
	if got := m.Hops(0, 7); got != 7 {
		t.Errorf("mesh hops(0,7) = %d, want 7 (no wraparound)", got)
	}
	if got := m.Hops(7, 0); got != 7 {
		t.Errorf("mesh hops(7,0) = %d, want 7", got)
	}
	if got := m.Hops(2, 5); got != 3 {
		t.Errorf("mesh hops(2,5) = %d, want 3", got)
	}
	if got := m.Steps(); got != 7 {
		t.Errorf("mesh steps = %d, want 7", got)
	}
	// Dilation-2 embedding: k-1 steps of at most 2 hops each.
	m.Latency = units.Nanosecond
	if got := m.PhaseLatency(8); got != 14*units.Nanosecond {
		t.Errorf("mesh phase latency = %v, want 14ns", got)
	}
}

func TestMeshEmbeddingDilation(t *testing.T) {
	for k := 2; k <= 9; k++ {
		order := meshOrder(k)
		if len(order) != k {
			t.Fatalf("k=%d: order %v has wrong length", k, order)
		}
		seen := make(map[int]bool)
		maxHop := 0
		for i, p := range order {
			if seen[p] {
				t.Fatalf("k=%d: order %v repeats %d", k, order, p)
			}
			seen[p] = true
			q := order[(i+1)%k]
			h := p - q
			if h < 0 {
				h = -h
			}
			if h > maxHop {
				maxHop = h
			}
		}
		if maxHop > meshDilation(k) {
			t.Errorf("k=%d: embedding %v has dilation %d, want <= %d", k, order, maxHop, meshDilation(k))
		}
	}
}

func TestTorusHopsAndSteps(t *testing.T) {
	d := Dim{Kind: Torus2D(4, 4), Size: 16}
	// Position p = x + 4y. (0,0) -> (2,3): 2 x-hops + 1 y-hop (wraparound).
	if got := d.Hops(0, 2+4*3); got != 3 {
		t.Errorf("torus hops = %d, want 3", got)
	}
	if got := d.Hops(0, 1); got != 1 {
		t.Errorf("torus hops(0,1) = %d, want 1", got)
	}
	if got := d.Steps(); got != 6 {
		t.Errorf("torus steps = %d, want (4-1)+(4-1)=6", got)
	}
}

func TestOversubscribedSwitchBandwidth(t *testing.T) {
	plain := Dim{Kind: Switch, Size: 8, Bandwidth: units.GBps(400)}
	tapered := Dim{Kind: OversubscribedSwitch(4), Size: 8, Bandwidth: units.GBps(400)}
	if plain.EffectiveBandwidth() != units.GBps(400) {
		t.Errorf("plain switch derated: %v", plain.EffectiveBandwidth())
	}
	if tapered.EffectiveBandwidth() != units.GBps(100) {
		t.Errorf("SW(8,4) effective = %v, want 100GB/s", tapered.EffectiveBandwidth())
	}
	if got := tapered.TransferTime(100 * units.MB); got != 4*plain.TransferTime(100*units.MB) {
		t.Errorf("tapered transfer %v, want 4x plain %v", got, plain.TransferTime(100*units.MB))
	}
	top := MustNew(plain, tapered)
	if got := top.AggregateBandwidth(); got != units.GBps(500) {
		t.Errorf("aggregate = %v, want 500GB/s (derated)", got)
	}
}

func TestMeshBandwidthPaysDilation(t *testing.T) {
	// The line's bisection is half the ring's: at k >= 3 the embedded-ring
	// collective sees half the configured bandwidth. A 2-NPU mesh is just
	// an adjacent pair and is not derated.
	mesh := Dim{Kind: Mesh, Size: 8, Bandwidth: units.GBps(200)}
	if got := mesh.EffectiveBandwidth(); got != units.GBps(100) {
		t.Errorf("M(8) effective = %v, want 100GB/s (dilation 2)", got)
	}
	pair := Dim{Kind: Mesh, Size: 2, Bandwidth: units.GBps(200)}
	if got := pair.EffectiveBandwidth(); got != units.GBps(200) {
		t.Errorf("M(2) effective = %v, want undeprecated 200GB/s", got)
	}
	ring := Dim{Kind: Ring, Size: 8, Bandwidth: units.GBps(200)}
	if 2*ring.TransferTime(100*units.MB) != mesh.TransferTime(100*units.MB) {
		t.Errorf("mesh transfer %v, want 2x ring %v", mesh.TransferTime(100*units.MB), ring.TransferTime(100*units.MB))
	}
}

func TestTransitPositions(t *testing.T) {
	ring := Ring.TransitPositions(6, 1, 8) // wrap: 6 -> 7 -> 0 -> 1
	want := []int{6, 7, 0, 1}
	if len(ring) != len(want) {
		t.Fatalf("ring transit = %v, want %v", ring, want)
	}
	for i := range want {
		if ring[i] != want[i] {
			t.Fatalf("ring transit = %v, want %v", ring, want)
		}
	}
	mesh := Mesh.TransitPositions(5, 2, 8) // line: 5 -> 4 -> 3 -> 2
	wantM := []int{5, 4, 3, 2}
	for i := range wantM {
		if mesh[i] != wantM[i] {
			t.Fatalf("mesh transit = %v, want %v", mesh, wantM)
		}
	}
	if p := Switch.TransitPositions(0, 3, 8); p != nil {
		t.Errorf("switch transit = %v, want nil", p)
	}
	// Torus transit is dimension-ordered (x ring then y ring) and its
	// length matches Hops+1.
	tor := Torus2D(4, 4)
	path := tor.TransitPositions(0, 2+4*3, 16)
	if len(path) != tor.Hops(0, 2+4*3, 16)+1 {
		t.Errorf("torus transit %v length %d, want hops+1 = %d", path, len(path), tor.Hops(0, 2+4*3, 16)+1)
	}
	if path[0] != 0 || path[len(path)-1] != 2+4*3 {
		t.Errorf("torus transit %v must start/end at the endpoints", path)
	}
}

// TestPhaseScheduleTrafficConservation: for every block, the message-level
// schedule's total per-member sent bytes must equal the aggregate model's
// per-phase traffic (half of sent+received), so the two execution paths
// serialize identical byte counts.
func TestPhaseScheduleTrafficConservation(t *testing.T) {
	const d = units.ByteSize(1 << 20)
	for _, m := range BuiltinModels() {
		k := 8
		if tm, ok := m.(torus2DModel); ok {
			k = tm.A * tm.B
		}
		for _, op := range []PhaseKind{PhaseReduceScatter, PhaseAllGather} {
			sched := m.PhaseSchedule(op, k, d)
			sent := make([]units.ByteSize, k)
			recv := make([]units.ByteSize, k)
			for _, step := range sched {
				for _, x := range step {
					if x.Src == x.Dst {
						t.Fatalf("%v/%v: self transfer %+v", m, op, x)
					}
					if x.Src < 0 || x.Src >= k || x.Dst < 0 || x.Dst >= k {
						t.Fatalf("%v/%v: transfer out of range %+v", m, op, x)
					}
					sent[x.Src] += x.Bytes
					recv[x.Dst] += x.Bytes
				}
			}
			want := m.PhaseTraffic(op, d, k)
			for i := 0; i < k; i++ {
				if got := sent[i] + recv[i]; got != want {
					t.Errorf("%v %v member %d: schedule moves %d bytes, aggregate model says %d",
						m, op, i, got, want)
				}
			}
		}
	}
}
