package topology

import (
	"testing"

	"repro/internal/units"
)

// TestParsePaperExamples parses every example topology of Fig. 3(c).
func TestParsePaperExamples(t *testing.T) {
	cases := []struct {
		spec  string
		kinds []BlockKind
		sizes []int
		npus  int
	}{
		// 2D examples.
		{"R(4)_R(2)", []BlockKind{Ring, Ring}, []int{4, 2}, 8},               // TPUv2/v3 torus
		{"SW(3)_SW(2)", []BlockKind{Switch, Switch}, []int{3, 2}, 6},         // DGX-2 / DGX-A100
		{"FC(4)_SW(2)", []BlockKind{FullyConnected, Switch}, []int{4, 2}, 8}, // Intel Habana
		{"R(4)_SW(2)", []BlockKind{Ring, Switch}, []int{4, 2}, 8},            // Meta Zion / DGX-1
		// 3D examples.
		{"FC(4)_FC(2)_FC(2)", []BlockKind{FullyConnected, FullyConnected, FullyConnected}, []int{4, 2, 2}, 16}, // DragonFly
		{"R(4)_R(2)_R(2)", []BlockKind{Ring, Ring, Ring}, []int{4, 2, 2}, 16},                                  // TPUv4 3D torus
	}
	for _, c := range cases {
		top, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if top.NumNPUs() != c.npus {
			t.Errorf("%q: NumNPUs = %d, want %d", c.spec, top.NumNPUs(), c.npus)
		}
		for i, d := range top.Dims {
			if d.Kind != c.kinds[i] || d.Size != c.sizes[i] {
				t.Errorf("%q dim %d = %v(%d), want %v(%d)", c.spec, i+1, d.Kind, d.Size, c.kinds[i], c.sizes[i])
			}
		}
	}
}

func TestParseLongNames(t *testing.T) {
	top, err := Parse("Ring(4)_FullyConnected(2)_Switch(2)")
	if err != nil {
		t.Fatal(err)
	}
	if top.String() != "R(4)_FC(2)_SW(2)" {
		t.Errorf("canonical form = %q", top.String())
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	if _, err := Parse("ring(4)_fc(2)_sw(2)"); err != nil {
		t.Errorf("case-insensitive parse failed: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{"R(4)_R(2)", "SW(3)_SW(2)", "FC(4)_FC(2)_FC(2)", "R(2)_FC(8)_R(8)_SW(4)"}
	for _, s := range specs {
		top, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(top.String())
		if err != nil {
			t.Fatalf("reparse(%q): %v", top.String(), err)
		}
		if again.String() != top.String() {
			t.Errorf("round trip %q -> %q -> %q", s, top.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"R4",
		"R(4",
		"R()",
		"R(one)",
		"R(1)",         // k < 2
		"Hypercube(4)", // unknown block
		"R(4)__SW(2)",  // empty segment
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseWithBandwidth(t *testing.T) {
	// Conv-4D from Table II: 2x8x8x4 with 250/200/100/50 GB/s.
	top, err := ParseWithBandwidth("R(2)_FC(8)_R(8)_SW(4)", []float64{250, 200, 100, 50}, 700*units.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumNPUs() != 512 {
		t.Errorf("NumNPUs = %d, want 512", top.NumNPUs())
	}
	if top.Dims[0].Bandwidth != units.GBps(250) || top.Dims[3].Bandwidth != units.GBps(50) {
		t.Errorf("bandwidths not assigned positionally: %+v", top.Dims)
	}
	for i, d := range top.Dims {
		if d.Latency != 700*units.Nanosecond {
			t.Errorf("dim %d latency = %v", i+1, d.Latency)
		}
	}
}

func TestParseWithBandwidthArityMismatch(t *testing.T) {
	if _, err := ParseWithBandwidth("R(2)_R(2)", []float64{100}, 0); err == nil {
		t.Error("expected arity mismatch error")
	}
	if _, err := ParseWithBandwidth("R(2)", []float64{-1}, 0); err == nil {
		t.Error("expected negative bandwidth error")
	}
}
