package topology

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/units"
)

// This file is the pluggable dimension-model layer. A DimModel describes one
// hierarchical building block's complete behavior — notation, hop costs,
// collective step structure, phase latency and traffic, bandwidth derating,
// transit paths and message-level schedules — so that the rest of the
// simulator (parser, analytical estimator, event-driven engine, network
// backend) never dispatches on block identity. New fabrics are added by
// implementing the interface and registering a factory; every layer picks
// them up without modification.
//
// Five blocks ship registered:
//
//	R(k)      Ring            Ring collective (Table I)
//	FC(k)     FullyConnected  Direct collective (Table I)
//	SW(k)     Switch          Halving-Doubling collective (Table I)
//	SW(k,o)   Switch          Halving-Doubling, o:1 oversubscribed uplinks
//	M(k)      Mesh            Ring-like collective over a dilation-2 line
//	                          embedding, non-wraparound hop costs
//	T2D(a,b)  Torus2D         per-axis bidirectional-ring phases (TPU shape)

// PhaseKind identifies the primitive phase semantics a model schedules.
// (All-Reduce is composite: a Reduce-Scatter pass then an All-Gather pass.)
type PhaseKind int

// The three primitive phases of hierarchical collectives.
const (
	PhaseReduceScatter PhaseKind = iota
	PhaseAllGather
	PhaseAllToAll
)

// String names the phase.
func (p PhaseKind) String() string {
	switch p {
	case PhaseReduceScatter:
		return "reduce-scatter"
	case PhaseAllGather:
		return "all-gather"
	case PhaseAllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(p))
	}
}

// Xfer is one point-to-point transfer of a message-level schedule. Src and
// Dst are member indices (0..k-1) within the communicator group, not ranks.
type Xfer struct {
	Src, Dst int
	Bytes    units.ByteSize
}

// DimModel is the behavior of one building block. Position arguments are
// coordinates within the dimension (0..size-1).
type DimModel interface {
	// Short is the canonical shape-notation token, e.g. "R" or "T2D";
	// String returns the same token (models print as their notation).
	Short() string
	String() string
	// LongName is the spelled-out name used in prose, e.g. "Ring".
	LongName() string
	// CollectiveName is the topology-aware collective algorithm the block
	// pairs with (Table I of the paper).
	CollectiveName() string
	// Format renders the block at a given size in shape notation,
	// e.g. "R(8)", "T2D(4,2)", "SW(8,4)".
	Format(size int) string
	// Validate checks that the block supports a dimension of this size;
	// it is called at topology-construction time.
	Validate(size int) error
	// Hops is the number of link traversals between two distinct
	// positions.
	Hops(a, b, size int) int
	// Steps is the number of communication steps the block's collective
	// uses on a group of the given size.
	Steps(size int) int
	// PhaseLatency is the latency component of one collective phase over k
	// members with the given per-hop link latency.
	PhaseLatency(k int, link units.Time) units.Time
	// PhaseTraffic is the per-NPU sent+received bytes of one phase with
	// per-NPU input size d over k members.
	PhaseTraffic(op PhaseKind, d units.ByteSize, k int) units.ByteSize
	// EffectiveBandwidth derates the configured per-NPU bandwidth to what
	// the block actually delivers to collectives at the given dimension
	// size (e.g. switch oversubscription, mesh embedding dilation).
	EffectiveBandwidth(bw units.Bandwidth, size int) units.Bandwidth
	// TransitPositions returns the ordered positions (both endpoints
	// inclusive) a message crosses travelling from a to b, for first-order
	// transit-congestion charging — or nil if the block has no NPU transit
	// path (fabric hops are folded into the hop latency).
	TransitPositions(a, b, size int) []int
	// PhaseSchedule is the message-level schedule of the block's
	// collective: one slice per bulk-synchronous step, each holding that
	// step's transfers. d is the per-NPU input size (the full input for
	// Reduce-Scatter, the shard for All-Gather). Only PhaseReduceScatter
	// and PhaseAllGather are scheduled; All-to-All is block-agnostic.
	PhaseSchedule(op PhaseKind, k int, d units.ByteSize) [][]Xfer
}

// Subdividable is implemented by blocks that remain structurally valid on
// any subset of their members — switches, whose ports are interchangeable.
// Slice returns the model a k-member slice of the block behaves as when a
// job owns only k of the block's ports. The multi-job cluster layer uses
// it to carve per-job sub-fabrics out of a shared dimension; blocks
// without it (rings, meshes, tori) can only be given to a job whole,
// because a subset of their members is not the same fabric.
type Subdividable interface {
	Slice(k int) (DimModel, error)
}

// CeilLog2 returns ceil(log2(n)) for n >= 1 — the step count of
// halving-doubling-style algorithms.
func CeilLog2(n int) int {
	s, v := 0, 1
	for v < n {
		v <<= 1
		s++
	}
	return s
}

// genericPhaseTraffic is the per-phase traffic shared by every registered
// block (bytes moved depend on the phase semantics, not the fabric):
//
//	Reduce-Scatter: 2·D·(k−1)/k  (send and receive D/k per peer)
//	All-Gather:     2·D·(k−1)    (data grows k-fold)
//	All-to-All:     2·D·(k−1)/k  (reshuffle the (k−1)/k remote fraction)
func genericPhaseTraffic(op PhaseKind, d units.ByteSize, k int) units.ByteSize {
	switch op {
	case PhaseReduceScatter, PhaseAllToAll:
		return 2 * d * units.ByteSize(k-1) / units.ByteSize(k)
	case PhaseAllGather:
		return 2 * d * units.ByteSize(k-1)
	default:
		panic("topology: PhaseTraffic on composite phase")
	}
}

// baseModel supplies the defaults most blocks share; concrete models embed
// it and override what differs.
type baseModel struct{}

func (baseModel) Validate(size int) error {
	if size < 2 {
		return fmt.Errorf("building blocks need k >= 2, got %d", size)
	}
	return nil
}

func (baseModel) PhaseTraffic(op PhaseKind, d units.ByteSize, k int) units.ByteSize {
	return genericPhaseTraffic(op, d, k)
}

func (baseModel) EffectiveBandwidth(bw units.Bandwidth, size int) units.Bandwidth { return bw }

func (baseModel) TransitPositions(a, b, size int) []int { return nil }

// ringSchedule is the ring algorithm's message-level schedule over an
// arbitrary logical member order: k−1 steps, each member forwarding per
// bytes to its successor in the order.
func ringSchedule(order []int, per units.ByteSize) [][]Xfer {
	k := len(order)
	steps := make([][]Xfer, 0, k-1)
	for s := 0; s < k-1; s++ {
		step := make([]Xfer, 0, k)
		for i := 0; i < k; i++ {
			step = append(step, Xfer{Src: order[i], Dst: order[(i+1)%k], Bytes: per})
		}
		steps = append(steps, step)
	}
	return steps
}

// identityOrder returns [0, 1, ..., k-1].
func identityOrder(k int) []int {
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	return order
}

// ringPer returns the ring algorithm's per-step transfer size: D/k chunks
// for Reduce-Scatter, the member's whole shard for All-Gather.
func ringPer(op PhaseKind, d units.ByteSize, k int) units.ByteSize {
	if op == PhaseReduceScatter {
		return d / units.ByteSize(k)
	}
	return d
}

// directSchedule is the direct algorithm: one step in which every ordered
// pair exchanges per bytes.
func directSchedule(k int, per units.ByteSize) [][]Xfer {
	step := make([]Xfer, 0, k*(k-1))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				step = append(step, Xfer{Src: i, Dst: j, Bytes: per})
			}
		}
	}
	return [][]Xfer{step}
}

// ---------------------------------------------------------------- Ring ----

type ringModel struct{ baseModel }

func (ringModel) Short() string          { return "R" }
func (m ringModel) String() string       { return m.Short() }
func (ringModel) LongName() string       { return "Ring" }
func (ringModel) CollectiveName() string { return "Ring" }
func (m ringModel) Format(size int) string {
	return fmt.Sprintf("%s(%d)", m.Short(), size)
}

func (ringModel) Hops(a, b, size int) int {
	fwd := (b - a + size) % size
	bwd := (a - b + size) % size
	if fwd < bwd {
		return fwd
	}
	return bwd
}

func (ringModel) Steps(size int) int {
	if size <= 1 {
		return 0
	}
	return size - 1
}

func (m ringModel) PhaseLatency(k int, link units.Time) units.Time {
	return units.Time(m.Steps(k)) * link
}

func (m ringModel) TransitPositions(a, b, size int) []int {
	fwd := (b - a + size) % size
	bwd := (a - b + size) % size
	dir, hops := 1, fwd
	if bwd < fwd {
		dir, hops = -1, bwd
	}
	path := make([]int, 0, hops+1)
	for h, p := 0, a; h <= hops; h++ {
		path = append(path, p)
		p = (p + dir + size) % size
	}
	return path
}

func (ringModel) PhaseSchedule(op PhaseKind, k int, d units.ByteSize) [][]Xfer {
	return ringSchedule(identityOrder(k), ringPer(op, d, k))
}

// ------------------------------------------------------ FullyConnected ----

type fcModel struct{ baseModel }

func (fcModel) Short() string          { return "FC" }
func (m fcModel) String() string       { return m.Short() }
func (fcModel) LongName() string       { return "FullyConnected" }
func (fcModel) CollectiveName() string { return "Direct" }
func (m fcModel) Format(size int) string {
	return fmt.Sprintf("%s(%d)", m.Short(), size)
}

func (fcModel) Hops(a, b, size int) int { return 1 }

func (fcModel) Steps(size int) int {
	if size <= 1 {
		return 0
	}
	return 1
}

func (fcModel) PhaseLatency(k int, link units.Time) units.Time {
	if k <= 1 {
		return 0
	}
	return link
}

func (fcModel) PhaseSchedule(op PhaseKind, k int, d units.ByteSize) [][]Xfer {
	return directSchedule(k, ringPer(op, d, k))
}

// -------------------------------------------------------------- Switch ----

// switchModel is the Switch block; Oversub > 1 models a tapered uplink
// fabric delivering 1/Oversub of the configured per-NPU bandwidth.
type switchModel struct {
	baseModel
	Oversub int
}

func (switchModel) Short() string          { return "SW" }
func (m switchModel) String() string       { return m.Short() }
func (switchModel) LongName() string       { return "Switch" }
func (switchModel) CollectiveName() string { return "HalvingDoubling" }

func (m switchModel) Format(size int) string {
	if m.Oversub > 1 {
		return fmt.Sprintf("%s(%d,%d)", m.Short(), size, m.Oversub)
	}
	return fmt.Sprintf("%s(%d)", m.Short(), size)
}

func (m switchModel) Validate(size int) error {
	if err := m.baseModel.Validate(size); err != nil {
		return err
	}
	if m.Oversub < 1 {
		return fmt.Errorf("switch oversubscription factor must be >= 1, got %d", m.Oversub)
	}
	return nil
}

func (switchModel) Hops(a, b, size int) int { return 2 } // NPU -> switch -> NPU

func (switchModel) Steps(size int) int {
	if size <= 1 {
		return 0
	}
	return CeilLog2(size)
}

func (m switchModel) PhaseLatency(k int, link units.Time) units.Time {
	// Halving-Doubling crosses the switch — two links — per step.
	return units.Time(2*m.Steps(k)) * link
}

func (m switchModel) EffectiveBandwidth(bw units.Bandwidth, size int) units.Bandwidth {
	if m.Oversub <= 1 {
		return bw
	}
	return bw / units.Bandwidth(m.Oversub)
}

// Slice implements Subdividable: any k ports of a switch are themselves a
// switch. The slice drops the oversubscription factor — o:1 tapering caps
// the switch core's aggregate uplink capacity at size·BW/o, so a job
// owning only a few ports can still drive each of them at line rate while
// the core is otherwise idle. Charging the shared core when several jobs
// are active is the cluster layer's runtime arbitration, not a static
// property of the slice.
func (m switchModel) Slice(k int) (DimModel, error) {
	if k < 2 {
		return nil, fmt.Errorf("switch slice needs k >= 2, got %d", k)
	}
	return Switch, nil
}

func (switchModel) PhaseSchedule(op PhaseKind, k int, d units.ByteSize) [][]Xfer {
	if k&(k-1) != 0 {
		// Non-power-of-two groups fall back to direct exchange, matching
		// collective-library behaviour for irregular sizes.
		return directSchedule(k, ringPer(op, d, k))
	}
	steps := CeilLog2(k)
	out := make([][]Xfer, 0, steps)
	cur := d
	for s := 0; s < steps; s++ {
		// Reduce-Scatter halves the exchanged data each step starting at
		// D/2 and pairs at shrinking distances; All-Gather doubles it
		// starting at the shard D at growing distances.
		var per units.ByteSize
		var dist int
		if op == PhaseReduceScatter {
			per = cur / 2
			dist = k >> (s + 1)
			cur /= 2
		} else {
			per = cur
			dist = 1 << s
			cur *= 2
		}
		step := make([]Xfer, 0, k)
		for i := 0; i < k; i++ {
			step = append(step, Xfer{Src: i, Dst: i ^ dist, Bytes: per})
		}
		out = append(out, step)
	}
	return out
}

// ---------------------------------------------------------------- Mesh ----

// meshModel is a non-wraparound linear mesh (NoC-style). Its collective is
// the ring algorithm run over the classic dilation-2 line embedding (evens
// ascending, then odds descending), so every logical ring edge spans at
// most two physical links while hop costs between arbitrary positions are
// the wrap-free distance |a−b|. The dilation is paid in both cost terms:
// each step crosses up to two links (latency), and interior links carry
// two logical ring edges — the line's bisection is half the ring's — so
// the effective collective bandwidth is the configured bandwidth divided
// by the dilation.
type meshModel struct{ baseModel }

func (meshModel) Short() string          { return "M" }
func (m meshModel) String() string       { return m.Short() }
func (meshModel) LongName() string       { return "Mesh" }
func (meshModel) CollectiveName() string { return "EmbeddedRing" }
func (m meshModel) Format(size int) string {
	return fmt.Sprintf("%s(%d)", m.Short(), size)
}

func (meshModel) Hops(a, b, size int) int {
	if a > b {
		a, b = b, a
	}
	return b - a
}

func (meshModel) Steps(size int) int {
	if size <= 1 {
		return 0
	}
	return size - 1
}

// meshDilation is the worst logical-edge length of the line embedding: 1
// for k=2 (adjacent pair), 2 otherwise.
func meshDilation(k int) int {
	if k <= 2 {
		return 1
	}
	return 2
}

func (m meshModel) PhaseLatency(k int, link units.Time) units.Time {
	return units.Time(m.Steps(k)*meshDilation(k)) * link
}

func (m meshModel) EffectiveBandwidth(bw units.Bandwidth, size int) units.Bandwidth {
	return bw / units.Bandwidth(meshDilation(size))
}

func (meshModel) TransitPositions(a, b, size int) []int {
	dir := 1
	if b < a {
		dir = -1
	}
	path := make([]int, 0, (b-a)*dir+1)
	for p := a; ; p += dir {
		path = append(path, p)
		if p == b {
			return path
		}
	}
}

// meshOrder is the dilation-2 ring embedding in a line: evens ascending,
// odds descending (0,2,4,...,5,3,1).
func meshOrder(k int) []int {
	order := make([]int, 0, k)
	for i := 0; i < k; i += 2 {
		order = append(order, i)
	}
	for i := k - 1 - (k % 2); i >= 1; i -= 2 {
		order = append(order, i)
	}
	return order
}

func (meshModel) PhaseSchedule(op PhaseKind, k int, d units.ByteSize) [][]Xfer {
	return ringSchedule(meshOrder(k), ringPer(op, d, k))
}

// ------------------------------------------------------------- Torus2D ----

// torus2DModel is a 2-D torus of a x b NPUs inside a single stacked
// dimension — the TPU pod shape. Its collective runs bidirectional-ring
// phases per axis (rows then columns for Reduce-Scatter, reversed for
// All-Gather), and hop costs are the per-axis ring distances summed.
type torus2DModel struct {
	baseModel
	A, B int
}

func (torus2DModel) Short() string          { return "T2D" }
func (m torus2DModel) String() string       { return m.Short() }
func (torus2DModel) LongName() string       { return "Torus2D" }
func (torus2DModel) CollectiveName() string { return "PerAxisRing" }

func (m torus2DModel) Format(size int) string {
	return fmt.Sprintf("%s(%d,%d)", m.Short(), m.A, m.B)
}

func (m torus2DModel) Validate(size int) error {
	if m.A < 2 || m.B < 2 {
		return fmt.Errorf("torus axes must each be >= 2, got %dx%d", m.A, m.B)
	}
	if size != m.A*m.B {
		return fmt.Errorf("torus %dx%d holds %d NPUs, dimension declares %d", m.A, m.B, m.A*m.B, size)
	}
	return nil
}

// xy splits a dimension position into torus coordinates (x varies fastest).
func (m torus2DModel) xy(p int) (int, int) { return p % m.A, p / m.A }

func (m torus2DModel) Hops(a, b, size int) int {
	ax, ay := m.xy(a)
	bx, by := m.xy(b)
	r := ringModel{}
	return r.Hops(ax, bx, m.A) + r.Hops(ay, by, m.B)
}

func (m torus2DModel) axisSteps() int { return (m.A - 1) + (m.B - 1) }

func (m torus2DModel) Steps(size int) int {
	if size <= 1 {
		return 0
	}
	if size == m.A*m.B {
		return m.axisSteps()
	}
	return size - 1 // irregular subgroup: ring fallback
}

func (m torus2DModel) PhaseLatency(k int, link units.Time) units.Time {
	return units.Time(m.Steps(k)) * link
}

func (m torus2DModel) TransitPositions(a, b, size int) []int {
	// Dimension-ordered within the block: resolve the x ring, then the y
	// ring, concatenating the per-axis ring paths.
	ax, ay := m.xy(a)
	bx, _ := m.xy(b)
	r := ringModel{}
	path := []int{}
	for _, x := range r.TransitPositions(ax, bx, m.A) {
		path = append(path, ay*m.A+x)
	}
	corner := path[len(path)-1]
	ypath := r.TransitPositions(corner/m.A, b/m.A, m.B)
	for _, y := range ypath[1:] {
		path = append(path, y*m.A+bx)
	}
	return path
}

func (m torus2DModel) PhaseSchedule(op PhaseKind, k int, d units.ByteSize) [][]Xfer {
	if k != m.A*m.B {
		return ringSchedule(identityOrder(k), ringPer(op, d, k))
	}
	rowRings := func(per units.ByteSize) [][]Xfer {
		steps := make([][]Xfer, m.A-1)
		for s := range steps {
			step := make([]Xfer, 0, k)
			for p := 0; p < k; p++ {
				x, y := m.xy(p)
				step = append(step, Xfer{Src: p, Dst: y*m.A + (x+1)%m.A, Bytes: per})
			}
			steps[s] = step
		}
		return steps
	}
	colRings := func(per units.ByteSize) [][]Xfer {
		steps := make([][]Xfer, m.B-1)
		for s := range steps {
			step := make([]Xfer, 0, k)
			for p := 0; p < k; p++ {
				x, y := m.xy(p)
				step = append(step, Xfer{Src: p, Dst: ((y+1)%m.B)*m.A + x, Bytes: per})
			}
			steps[s] = step
		}
		return steps
	}
	if op == PhaseReduceScatter {
		// Rows reduce D to D/A (D/A per step), then columns reduce to
		// D/(A·B) (D/(A·B) per step).
		rows := rowRings(d / units.ByteSize(m.A))
		cols := colRings(d / units.ByteSize(m.A*m.B))
		return append(rows, cols...)
	}
	// All-Gather mirrors in reverse: columns grow the shard d to d·B
	// (forwarding d per step), then rows grow to d·A·B (d·B per step).
	cols := colRings(d)
	rows := rowRings(d * units.ByteSize(m.B))
	return append(cols, rows...)
}

// ------------------------------------------------------------ registry ----

// Exported block models. Ring, FullyConnected, Switch and Mesh are
// stateless singletons usable directly in Dim literals; Torus2D and
// OversubscribedSwitch construct parameterized instances. Two instances
// with equal parameters compare equal.
var (
	Ring           DimModel = ringModel{}
	FullyConnected DimModel = fcModel{}
	Switch         DimModel = switchModel{Oversub: 1}
	Mesh           DimModel = meshModel{}
)

// Torus2D returns the a x b torus block; the owning Dim's Size must be a*b.
func Torus2D(a, b int) DimModel { return torus2DModel{A: a, B: b} }

// OversubscribedSwitch returns a Switch block whose uplink fabric is
// oversubscribed o:1 — the effective per-NPU bandwidth is Bandwidth/o.
func OversubscribedSwitch(o int) DimModel { return switchModel{Oversub: o} }

// BlockKind is the legacy name for a block identity; it is now simply a
// DimModel value.
//
// Deprecated: use DimModel.
type BlockKind = DimModel

// factory builds a model (and the dimension size) from notation arguments.
type factory struct {
	minArgs, maxArgs int
	build            func(args []int) (DimModel, int, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]factory{}
)

// RegisterModel associates shape-notation names (case-insensitive) with a
// model factory taking between minArgs and maxArgs integer arguments and
// returning the model plus the dimension size. Built-in blocks are
// registered at init; external packages may add their own.
func RegisterModel(minArgs, maxArgs int, build func(args []int) (DimModel, int, error), names ...string) {
	if len(names) == 0 {
		panic("topology: RegisterModel needs at least one name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, n := range names {
		registry[strings.ToLower(n)] = factory{minArgs: minArgs, maxArgs: maxArgs, build: build}
	}
}

// ModelFor resolves a shape-notation block name and arguments to a model
// and dimension size. Unknown names and malformed arguments are errors —
// there is no default block.
func ModelFor(name string, args []int) (DimModel, int, error) {
	registryMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("unknown building block %q (registered: %s)", name, strings.Join(RegisteredBlocks(), ", "))
	}
	if len(args) < f.minArgs || len(args) > f.maxArgs {
		if f.minArgs == f.maxArgs {
			return nil, 0, fmt.Errorf("block %q takes %d argument(s), got %d", name, f.minArgs, len(args))
		}
		return nil, 0, fmt.Errorf("block %q takes %d to %d arguments, got %d", name, f.minArgs, f.maxArgs, len(args))
	}
	return f.build(args)
}

// RegisteredBlocks lists the registered notation names, sorted.
func RegisteredBlocks() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuiltinModels returns one representative instance of every built-in
// block, for tests that iterate the whole block set. The torus instance is
// sized a=4, b=2 (Dim.Size must be 8); the oversubscribed switch is 4:1.
func BuiltinModels() []DimModel {
	return []DimModel{Ring, FullyConnected, Switch, Mesh, Torus2D(4, 2), OversubscribedSwitch(4)}
}

func init() {
	single := func(m DimModel) func(args []int) (DimModel, int, error) {
		return func(args []int) (DimModel, int, error) { return m, args[0], nil }
	}
	RegisterModel(1, 1, single(Ring), "r", "ring")
	RegisterModel(1, 1, single(FullyConnected), "fc", "fullyconnected", "fully-connected")
	RegisterModel(1, 2, func(args []int) (DimModel, int, error) {
		if len(args) == 2 {
			if args[1] < 1 {
				return nil, 0, fmt.Errorf("switch oversubscription factor must be >= 1, got %d", args[1])
			}
			return OversubscribedSwitch(args[1]), args[0], nil
		}
		return Switch, args[0], nil
	}, "sw", "switch")
	RegisterModel(1, 1, single(Mesh), "m", "mesh")
	RegisterModel(2, 2, func(args []int) (DimModel, int, error) {
		return Torus2D(args[0], args[1]), args[0] * args[1], nil
	}, "t2d", "torus2d", "torus")
}
