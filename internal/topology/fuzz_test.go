package topology

import (
	"strings"
	"testing"
)

// fuzzSeedSpecs covers every registered block notation (short and long
// spellings, single- and multi-argument forms), plus malformed inputs the
// parser must reject gracefully.
func fuzzSeedSpecs() []string {
	return []string{
		// Every registered block, both spellings.
		"R(4)", "Ring(16)",
		"FC(8)", "FullyConnected(4)", "Fully-Connected(2)",
		"SW(16)", "Switch(512)", "SW(16,4)", "sw(32,2)",
		"M(8)", "Mesh(4)",
		"T2D(4,4)", "Torus2D(16,32)", "torus(2,2)",
		// Stacked shapes from the paper and the case studies.
		"R(2)_FC(8)_R(8)_SW(4)",
		"R(16)_FC(8)_SW(4)",
		"T2D(4,4)_SW(8,4)",
		"M(16)_M(32)",
		"r(4)_fc(2)_sw(2)",
		// Whitespace and case variations.
		" R(4) _ SW(2) ", "RING(4)",
		// Malformed: must error, never panic.
		"", "_", "R", "R()", "R(", "R)4(", "R(x)", "R(-4)", "R(0)", "R(1)",
		"Q(4)", "R(4)__SW(2)", "R(4)_", "SW(4,0)", "SW(4,-1)", "SW(1,2,3)",
		"T2D(4)", "T2D(0,4)", "T2D(4,1000000000)", "R(4294967296)",
		"R(99999999999999999999)", "R(4)_Q(2)", "R(2)_R(2)_R(2)_R(2)_R(2)_R(2)",
	}
}

// FuzzParseTopology asserts the parser's contract: any input either
// produces a valid topology or an error — it never panics — and every
// accepted topology round-trips through its canonical notation.
func FuzzParseTopology(f *testing.F) {
	for _, s := range fuzzSeedSpecs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		top, err := Parse(spec)
		if err != nil {
			return
		}
		if top.NumNPUs() < 2 {
			t.Fatalf("Parse(%q) accepted a %d-NPU topology", spec, top.NumNPUs())
		}
		// The canonical notation must re-parse to the same shape.
		canon := top.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q of accepted %q does not re-parse: %v", canon, spec, err)
		}
		if again.String() != canon {
			t.Fatalf("round-trip drift: %q -> %q", canon, again.String())
		}
	})
}

// FuzzParseWithBandwidth exercises the bandwidth-assignment wrapper with
// derived vectors of the right and wrong lengths.
func FuzzParseWithBandwidth(f *testing.F) {
	for _, s := range fuzzSeedSpecs() {
		f.Add(s, 250.0, 1)
	}
	f.Fuzz(func(t *testing.T, spec string, gbps float64, extra int) {
		dims := strings.Count(spec, "_") + 1
		if extra < 0 {
			extra = -extra
		}
		bw := make([]float64, 0, dims+extra%3)
		for i := 0; i < dims+extra%3; i++ {
			bw = append(bw, gbps)
		}
		top, err := ParseWithBandwidth(spec, bw, 500)
		if err != nil {
			return
		}
		if len(top.Dims) != len(bw) {
			t.Fatalf("ParseWithBandwidth(%q) accepted %d bandwidths for %d dims", spec, len(bw), len(top.Dims))
		}
	})
}
