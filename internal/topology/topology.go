// Package topology implements the paper's multi-dimensional hierarchical
// network representation (Section IV-B): arbitrary topologies are assembled
// by stacking building blocks, each of which has a known congestion-free
// topology-aware collective algorithm (Table I):
//
//	Ring           -> Ring collective
//	FullyConnected -> Direct collective
//	Switch         -> Halving-Doubling collective
//	Mesh           -> Ring collective over a dilation-2 line embedding
//	Torus2D        -> per-axis bidirectional-ring phases
//
// Block behavior lives behind the DimModel interface (model.go) with a
// notation registry, so new fabrics plug in without touching the parser,
// the estimator, or the event-driven engine.
//
// NPUs are addressed by mixed-radix coordinates: dimension 1 varies fastest,
// matching the paper's convention that Dim 1 is the innermost (e.g. on-chip
// or on-wafer) network.
package topology

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// Dim is one dimension of a multi-dimensional topology: a building block of
// a given size with a per-NPU bandwidth and a per-hop link latency.
type Dim struct {
	// Kind is the dimension's building-block model (Ring, FullyConnected,
	// Switch, Mesh, Torus2D(a,b), OversubscribedSwitch(o), ...).
	Kind DimModel
	// Size is the number of NPUs connected by this block (k in Ring(k)).
	Size int
	// Bandwidth is the network bandwidth available to each NPU on this
	// dimension, in the paper's per-dimension GB/s convention (Table II).
	// Blocks may derate it (see EffectiveBandwidth).
	Bandwidth units.Bandwidth
	// Latency is the per-hop link traversal latency.
	Latency units.Time
}

// Hops returns the number of link traversals for a message between two
// distinct positions a and b within this dimension.
func (d Dim) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return d.Kind.Hops(a, b, d.Size)
}

// Steps returns the number of communication steps the block's topology-aware
// collective algorithm uses on a group of this size (used for latency terms).
func (d Dim) Steps() int {
	if d.Size <= 1 {
		return 0
	}
	return d.Kind.Steps(d.Size)
}

// EffectiveBandwidth is the bandwidth the block actually delivers per NPU
// after any model-level derating (e.g. switch oversubscription).
func (d Dim) EffectiveBandwidth() units.Bandwidth {
	return d.Kind.EffectiveBandwidth(d.Bandwidth, d.Size)
}

// TransferTime is the serialization time of size bytes at the dimension's
// effective bandwidth.
func (d Dim) TransferTime(size units.ByteSize) units.Time {
	return d.EffectiveBandwidth().TransferTime(size)
}

// PhaseLatency is the latency component of one collective phase over k
// members of this dimension.
func (d Dim) PhaseLatency(k int) units.Time {
	if k <= 1 {
		return 0
	}
	return d.Kind.PhaseLatency(k, d.Latency)
}

// PhaseTraffic is the per-NPU sent+received bytes of one collective phase
// with per-NPU input size dataSize over k members of this dimension.
func (d Dim) PhaseTraffic(op PhaseKind, dataSize units.ByteSize, k int) units.ByteSize {
	return d.Kind.PhaseTraffic(op, dataSize, k)
}

// Format renders the dimension in shape notation, e.g. "R(8)" or "T2D(4,2)".
func (d Dim) Format() string { return d.Kind.Format(d.Size) }

// Topology is an ordered stack of dimensions; Dim 1 is index 0.
type Topology struct {
	Dims []Dim
}

// New validates and constructs a topology from its dimensions. Every
// dimension must carry a registered block model; nil or invalid blocks are
// construction-time errors (there is no default block).
func New(dims ...Dim) (*Topology, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: at least one dimension required")
	}
	total := 1
	for i, d := range dims {
		if d.Kind == nil {
			return nil, fmt.Errorf("topology: dim %d has no building-block model (registered: %s)",
				i+1, strings.Join(RegisteredBlocks(), ", "))
		}
		if d.Size < 2 {
			return nil, fmt.Errorf("topology: dim %d size %d; building blocks need k >= 2", i+1, d.Size)
		}
		if err := d.Kind.Validate(d.Size); err != nil {
			return nil, fmt.Errorf("topology: dim %d %s: %w", i+1, d.Kind.LongName(), err)
		}
		if d.Bandwidth < 0 {
			return nil, fmt.Errorf("topology: dim %d has negative bandwidth", i+1)
		}
		if d.Latency < 0 {
			return nil, fmt.Errorf("topology: dim %d has negative latency", i+1)
		}
		total *= d.Size
		if total > 1<<24 {
			return nil, fmt.Errorf("topology: more than %d NPUs is not supported", 1<<24)
		}
	}
	t := &Topology{Dims: append([]Dim(nil), dims...)}
	return t, nil
}

// MustNew is New for statically known-good topologies; it panics on error.
func MustNew(dims ...Dim) *Topology {
	t, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNPUs returns the total number of NPUs (the product of dim sizes).
func (t *Topology) NumNPUs() int {
	n := 1
	for _, d := range t.Dims {
		n *= d.Size
	}
	return n
}

// NumDims returns the number of stacked dimensions.
func (t *Topology) NumDims() int { return len(t.Dims) }

// Shape returns the dimension sizes, Dim 1 first.
func (t *Topology) Shape() []int {
	s := make([]int, len(t.Dims))
	for i, d := range t.Dims {
		s[i] = d.Size
	}
	return s
}

// String returns the paper's shape notation, e.g. "R(4)_FC(2)_SW(2)" or
// "T2D(4,4)_SW(8,2)".
func (t *Topology) String() string {
	parts := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		parts[i] = d.Format()
	}
	return strings.Join(parts, "_")
}

// Coord converts a linear NPU rank to mixed-radix coordinates (Dim 1
// varies fastest).
func (t *Topology) Coord(rank int) []int {
	c := make([]int, len(t.Dims))
	for i, d := range t.Dims {
		c[i] = rank % d.Size
		rank /= d.Size
	}
	return c
}

// Rank converts mixed-radix coordinates back to a linear NPU rank.
func (t *Topology) Rank(coord []int) int {
	rank, stride := 0, 1
	for i, d := range t.Dims {
		rank += coord[i] * stride
		stride *= d.Size
	}
	return rank
}

// DimStride returns the rank distance between neighbours along dim (0-based).
func (t *Topology) DimStride(dim int) int {
	stride := 1
	for i := 0; i < dim; i++ {
		stride *= t.Dims[i].Size
	}
	return stride
}

// DimPos returns rank's position along dim (0-based) — the allocation-free
// point lookup matching Coord(rank)[dim].
func (t *Topology) DimPos(rank, dim int) int {
	for i := 0; i < dim; i++ {
		rank /= t.Dims[i].Size
	}
	return rank % t.Dims[dim].Size
}

// PosWalker iterates two ranks' mixed-radix positions dimension by
// dimension without allocating coordinate slices. It is the canonical
// digit-order encoding (Dim 1 least significant, matching Coord/Rank);
// hot paths that compare or route between ranks walk it instead of
// re-deriving the radix convention.
type PosWalker struct {
	t    *Topology
	a, b int
	dim  int
}

// WalkPositions returns a walker over the per-dimension positions of
// ranks a and b. The zero-cost value type lives on the caller's stack.
func (t *Topology) WalkPositions(a, b int) PosWalker {
	return PosWalker{t: t, a: a, b: b}
}

// Next yields the next dimension index and both ranks' positions in it,
// or ok=false when all dimensions are consumed.
func (w *PosWalker) Next() (dim, pa, pb int, ok bool) {
	if w.dim >= len(w.t.Dims) {
		return 0, 0, 0, false
	}
	k := w.t.Dims[w.dim].Size
	dim, pa, pb = w.dim, w.a%k, w.b%k
	w.a, w.b, w.dim = w.a/k, w.b/k, w.dim+1
	return dim, pa, pb, true
}

// DimGroup returns the ranks of all NPUs that share every coordinate with
// rank except along dim (0-based) — i.e. the communicator group for a
// collective phase on that dimension. The result is ordered by position in
// the dimension and always includes rank itself.
func (t *Topology) DimGroup(rank, dim int) []int {
	stride := t.DimStride(dim)
	size := t.Dims[dim].Size
	pos := (rank / stride) % size
	base := rank - pos*stride
	group := make([]int, size)
	for i := 0; i < size; i++ {
		group[i] = base + i*stride
	}
	return group
}

// Hops returns the total link traversals between two NPUs under
// dimension-ordered routing: per-dimension hop counts are summed.
func (t *Topology) Hops(src, dst int) int {
	a, b := t.Coord(src), t.Coord(dst)
	hops := 0
	for i, d := range t.Dims {
		hops += d.Hops(a[i], b[i])
	}
	return hops
}

// AggregateBandwidth returns the total effective per-NPU network bandwidth
// summed over all dimensions, the paper's "BW/NPU" figure of merit.
// Oversubscribed blocks contribute their derated bandwidth.
func (t *Topology) AggregateBandwidth() units.Bandwidth {
	var bw units.Bandwidth
	for _, d := range t.Dims {
		bw += d.EffectiveBandwidth()
	}
	return bw
}

// Clone returns a deep copy; mutating the copy's dims leaves t unchanged.
func (t *Topology) Clone() *Topology {
	return &Topology{Dims: append([]Dim(nil), t.Dims...)}
}
