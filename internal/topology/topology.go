// Package topology implements the paper's multi-dimensional hierarchical
// network representation (Section IV-B): arbitrary topologies are assembled
// by stacking three building blocks — Ring(k), FullyConnected(k), and
// Switch(k) — each of which has a known congestion-free topology-aware
// collective algorithm (Table I):
//
//	Ring           -> Ring collective
//	FullyConnected -> Direct collective
//	Switch         -> Halving-Doubling collective
//
// NPUs are addressed by mixed-radix coordinates: dimension 1 varies fastest,
// matching the paper's convention that Dim 1 is the innermost (e.g. on-chip
// or on-wafer) network.
package topology

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// BlockKind identifies one of the three hierarchical building blocks.
type BlockKind int

// The three building blocks of Fig. 3(a).
const (
	Ring BlockKind = iota
	FullyConnected
	Switch
)

// String returns the canonical short notation for the block.
func (k BlockKind) String() string {
	switch k {
	case Ring:
		return "R"
	case FullyConnected:
		return "FC"
	case Switch:
		return "SW"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// LongName returns the spelled-out block name used in the paper's prose.
func (k BlockKind) LongName() string {
	switch k {
	case Ring:
		return "Ring"
	case FullyConnected:
		return "FullyConnected"
	case Switch:
		return "Switch"
	default:
		return k.String()
	}
}

// CollectiveName returns the topology-aware collective algorithm associated
// with the block by Table I of the paper.
func (k BlockKind) CollectiveName() string {
	switch k {
	case Ring:
		return "Ring"
	case FullyConnected:
		return "Direct"
	case Switch:
		return "HalvingDoubling"
	default:
		return "Unknown"
	}
}

// Dim is one dimension of a multi-dimensional topology: a building block of
// a given size with a per-NPU bandwidth and a per-hop link latency.
type Dim struct {
	Kind BlockKind
	// Size is the number of NPUs connected by this block (k in Ring(k)).
	Size int
	// Bandwidth is the network bandwidth available to each NPU on this
	// dimension, in the paper's per-dimension GB/s convention (Table II).
	Bandwidth units.Bandwidth
	// Latency is the per-hop link traversal latency.
	Latency units.Time
}

// Hops returns the number of link traversals for a message between two
// distinct positions a and b within this dimension.
func (d Dim) Hops(a, b int) int {
	if a == b {
		return 0
	}
	switch d.Kind {
	case Ring:
		fwd := (b - a + d.Size) % d.Size
		bwd := (a - b + d.Size) % d.Size
		if fwd < bwd {
			return fwd
		}
		return bwd
	case FullyConnected:
		return 1
	case Switch:
		return 2 // NPU -> switch -> NPU
	default:
		return 1
	}
}

// Steps returns the number of communication steps the block's topology-aware
// collective algorithm uses on a group of this size (used for latency terms).
func (d Dim) Steps() int {
	if d.Size <= 1 {
		return 0
	}
	switch d.Kind {
	case Ring:
		return d.Size - 1
	case FullyConnected:
		return 1
	case Switch:
		return ceilLog2(d.Size)
	default:
		return d.Size - 1
	}
}

func ceilLog2(n int) int {
	s, v := 0, 1
	for v < n {
		v <<= 1
		s++
	}
	return s
}

// Topology is an ordered stack of dimensions; Dim 1 is index 0.
type Topology struct {
	Dims []Dim
}

// New validates and constructs a topology from its dimensions.
func New(dims ...Dim) (*Topology, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: at least one dimension required")
	}
	total := 1
	for i, d := range dims {
		if d.Size < 2 {
			return nil, fmt.Errorf("topology: dim %d size %d; building blocks need k >= 2", i+1, d.Size)
		}
		if d.Bandwidth < 0 {
			return nil, fmt.Errorf("topology: dim %d has negative bandwidth", i+1)
		}
		if d.Latency < 0 {
			return nil, fmt.Errorf("topology: dim %d has negative latency", i+1)
		}
		total *= d.Size
		if total > 1<<24 {
			return nil, fmt.Errorf("topology: more than %d NPUs is not supported", 1<<24)
		}
	}
	t := &Topology{Dims: append([]Dim(nil), dims...)}
	return t, nil
}

// MustNew is New for statically known-good topologies; it panics on error.
func MustNew(dims ...Dim) *Topology {
	t, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNPUs returns the total number of NPUs (the product of dim sizes).
func (t *Topology) NumNPUs() int {
	n := 1
	for _, d := range t.Dims {
		n *= d.Size
	}
	return n
}

// NumDims returns the number of stacked dimensions.
func (t *Topology) NumDims() int { return len(t.Dims) }

// Shape returns the dimension sizes, Dim 1 first.
func (t *Topology) Shape() []int {
	s := make([]int, len(t.Dims))
	for i, d := range t.Dims {
		s[i] = d.Size
	}
	return s
}

// String returns the paper's shape notation, e.g. "R(4)_FC(2)_SW(2)".
func (t *Topology) String() string {
	parts := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		parts[i] = fmt.Sprintf("%s(%d)", d.Kind, d.Size)
	}
	return strings.Join(parts, "_")
}

// Coord converts a linear NPU rank to mixed-radix coordinates (Dim 1
// varies fastest).
func (t *Topology) Coord(rank int) []int {
	c := make([]int, len(t.Dims))
	for i, d := range t.Dims {
		c[i] = rank % d.Size
		rank /= d.Size
	}
	return c
}

// Rank converts mixed-radix coordinates back to a linear NPU rank.
func (t *Topology) Rank(coord []int) int {
	rank, stride := 0, 1
	for i, d := range t.Dims {
		rank += coord[i] * stride
		stride *= d.Size
	}
	return rank
}

// DimStride returns the rank distance between neighbours along dim (0-based).
func (t *Topology) DimStride(dim int) int {
	stride := 1
	for i := 0; i < dim; i++ {
		stride *= t.Dims[i].Size
	}
	return stride
}

// DimGroup returns the ranks of all NPUs that share every coordinate with
// rank except along dim (0-based) — i.e. the communicator group for a
// collective phase on that dimension. The result is ordered by position in
// the dimension and always includes rank itself.
func (t *Topology) DimGroup(rank, dim int) []int {
	stride := t.DimStride(dim)
	size := t.Dims[dim].Size
	pos := (rank / stride) % size
	base := rank - pos*stride
	group := make([]int, size)
	for i := 0; i < size; i++ {
		group[i] = base + i*stride
	}
	return group
}

// Hops returns the total link traversals between two NPUs under
// dimension-ordered routing: per-dimension hop counts are summed.
func (t *Topology) Hops(src, dst int) int {
	a, b := t.Coord(src), t.Coord(dst)
	hops := 0
	for i, d := range t.Dims {
		hops += d.Hops(a[i], b[i])
	}
	return hops
}

// AggregateBandwidth returns the total per-NPU network bandwidth summed
// over all dimensions, the paper's "BW/NPU" figure of merit.
func (t *Topology) AggregateBandwidth() units.Bandwidth {
	var bw units.Bandwidth
	for _, d := range t.Dims {
		bw += d.Bandwidth
	}
	return bw
}

// Clone returns a deep copy; mutating the copy's dims leaves t unchanged.
func (t *Topology) Clone() *Topology {
	return &Topology{Dims: append([]Dim(nil), t.Dims...)}
}
