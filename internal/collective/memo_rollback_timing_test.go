package collective

import (
	"fmt"
	"testing"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/units"
)

// runProbeRun executes one memoizable All-Reduce with foreign probe traffic
// around it: an optional pre-start send (posted before the collective, so a
// replay must never arm) and a set of deferred sends scheduled at the given
// delays after the collective starts. It returns the collective's result,
// the engine's final clock and its fired-event count — the three
// observables the byte-identity contract covers.
func runProbeRun(t *testing.T, shards int, m *Memo, preStart bool, probes []units.Time) (Result, units.Time, uint64) {
	t.Helper()
	top := memoTestTopology()
	eng := timeline.ForShards(shards)
	net := network.NewBackend(eng, top)
	opts := []Option{WithChunks(8)}
	if m != nil {
		opts = append(opts, WithMemo(m))
	}
	ce := NewEngine(net, opts...)
	if preStart {
		net.SimRecv(0, 1, 9, units.MB, func(network.Message) {})
		net.SimSend(0, 1, 9, units.MB, nil)
	}
	var res Result
	if err := ce.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	for _, d := range probes {
		d := d
		eng.Schedule(d, func() { net.SimSend(0, 1, 7, 2*units.MB, nil) })
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return res, eng.Now(), eng.Fired()
}

// TestMemoRollbackTimingMatrix locks in rollback correctness across the
// whole probe-timing spectrum — before the replay starts, mid-replay,
// exactly at the cached end instant, after the window (where the replay
// must SURVIVE), and several probes at once — on both the serial and the
// sharded engine. Every cell must be byte-identical to the equivalent
// memo-free run: same result, same final clock, same fired-event total.
func TestMemoRollbackTimingMatrix(t *testing.T) {
	plain, _, _ := runChain(t, 1, nil)
	dur := plain[0].End - plain[0].Start // the cached entry's duration

	cases := []struct {
		name     string
		preStart bool
		probes   []units.Time
	}{
		{"probe_before_start", true, nil},
		{"probe_mid_replay", false, []units.Time{10 * units.Microsecond}},
		{"probe_at_cached_end", false, []units.Time{dur}},
		{"probe_after_cached_end", false, []units.Time{dur + units.Microsecond}},
		{"multiple_probes", false, []units.Time{5 * units.Microsecond, 15 * units.Microsecond, dur}},
	}
	for _, shards := range []int{1, 4} {
		memo := NewMemo()
		runChain(t, 1, memo) // warm the table on a quiet machine
		for _, tc := range cases {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, tc.name), func(t *testing.T) {
				pRes, pEnd, pFired := runProbeRun(t, shards, nil, tc.preStart, tc.probes)
				mRes, mEnd, mFired := runProbeRun(t, shards, memo, tc.preStart, tc.probes)
				if !sameResult(mRes, pRes) {
					t.Errorf("result diverged: memo %+v, plain %+v", mRes, pRes)
				}
				if mEnd != pEnd {
					t.Errorf("final clock diverged: memo %v, plain %v", mEnd, pEnd)
				}
				if mFired != pFired {
					t.Errorf("fired-event count diverged: memo %d, plain %d", mFired, pFired)
				}
			})
		}
	}
}

// TestMemoTwoEnginesSharedBackend drives the hook-registry audit: two
// collective engines over ONE backend both start a memoizable collective at
// the same instant. The first arms a replay; the second is ineligible (the
// queue is not empty) and runs live, and its very first backend observation
// must cancel the first engine's replay without either engine clobbering
// the other's armed hook. Output must match two memo-free engines exactly.
func TestMemoTwoEnginesSharedBackend(t *testing.T) {
	memo := NewMemo()
	runChain(t, 1, memo) // warm the table on a quiet machine

	run := func(m *Memo) ([2]Result, units.Time, uint64) {
		top := memoTestTopology()
		eng := timeline.New()
		net := network.NewBackend(eng, top)
		mk := func() *Engine {
			opts := []Option{WithChunks(8)}
			if m != nil {
				opts = append(opts, WithMemo(m))
			}
			return NewEngine(net, opts...)
		}
		a, b := mk(), mk()
		var out [2]Result
		if err := a.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) { out[0] = r }); err != nil {
			t.Fatal(err)
		}
		if err := b.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) { out[1] = r }); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return out, eng.Now(), eng.Fired()
	}

	plain, pEnd, pFired := run(nil)
	memoed, mEnd, mFired := run(memo)
	for i := range plain {
		if !sameResult(memoed[i], plain[i]) {
			t.Errorf("engine %d result diverged: memo %+v, plain %+v", i, memoed[i], plain[i])
		}
	}
	if mEnd != pEnd {
		t.Errorf("final clock diverged: memo %v, plain %v", mEnd, pEnd)
	}
	if mFired != pFired {
		t.Errorf("fired-event count diverged: memo %d, plain %d", mFired, pFired)
	}
}

// TestMemoChainedReplayWithLateProbe exercises disarm-on-completion: the
// first collective replays to completion, its done callback chains a second
// replay, and a probe then lands inside the SECOND replay's window. Only
// the second replay must roll back; the totals must match memo-free.
func TestMemoChainedReplayWithLateProbe(t *testing.T) {
	memo := NewMemo()
	runChain(t, 1, memo)

	run := func(m *Memo) ([]Result, units.Time, uint64) {
		top := memoTestTopology()
		eng := timeline.ForShards(1)
		net := network.NewBackend(eng, top)
		opts := []Option{WithChunks(8)}
		if m != nil {
			opts = append(opts, WithMemo(m))
		}
		ce := NewEngine(net, opts...)
		var results []Result
		var probe units.Time
		if err := ce.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) {
			results = append(results, r)
			if len(results) == 1 {
				// Chain the second collective and aim a probe at the
				// middle of its span.
				probe = (r.End - r.Start) / 2
				if err := ce.Start(AllReduce, 4*units.MB, FullMachine(top), func(r2 Result) {
					results = append(results, r2)
				}); err != nil {
					t.Error(err)
				}
				eng.Schedule(probe, func() { net.SimSend(0, 1, 7, 2*units.MB, nil) })
			}
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return results, eng.Now(), eng.Fired()
	}

	plain, pEnd, pFired := run(nil)
	memoed, mEnd, mFired := run(memo)
	if len(plain) != 2 || len(memoed) != 2 {
		t.Fatalf("completed %d/%d collectives, want 2/2", len(plain), len(memoed))
	}
	for i := range plain {
		if !sameResult(memoed[i], plain[i]) {
			t.Errorf("collective %d diverged: memo %+v, plain %+v", i, memoed[i], plain[i])
		}
	}
	if mEnd != pEnd || mFired != pFired {
		t.Errorf("totals diverged: memo (end=%v fired=%d), plain (end=%v fired=%d)", mEnd, mFired, pEnd, pFired)
	}
}
