package collective

import (
	"fmt"
	"sync"

	"repro/internal/network"
	"repro/internal/units"
)

// Memo is a cross-run cache of whole-machine collective sub-results, keyed
// by a content hash of everything that determines the run: the topology
// (dimension kinds, sizes, bandwidths, latencies), the chunk plan (policy
// and chunk count) and the collective (op and size). Re-evaluations in
// sweeps and searches replay a cached collective in one event instead of
// re-simulating its full chunk wave.
//
// Safety. A collective is recorded only when it starts on a quiet engine
// (no pending events, idle dimension aggregates, no flow controller) and is
// stored only if the run fired exactly its own events — any interleaved
// foreign event aborts the recording. A hit fast-forwards the backend's
// dimension ledger and schedules one completion event; if anything observes
// the network before that event fires (a concurrent collective, a
// point-to-point send), the backend's activity hook cancels the replay,
// rolls the ledger back and re-runs the collective live at the same
// instant, in the same order. Observations need not be synchronous: a
// foreign event merely *scheduled* into the replay's window — due after the
// replay's start but at or before its cached end — trips the engine's
// schedule watch and cancels the replay at schedule time, while the clock
// still stands at the start instant. Either way simulated output is
// byte-identical with the memo on or off, for every workload.
//
// Both triggers are sound because a replay only starts on an otherwise
// empty engine: while one is armed the engine holds exactly one pending
// event (the completion), so no third-party event can fire first — all
// foreign scheduling happens synchronously at the replay's start instant,
// which is exactly where the live re-run resumes.
//
// A Memo is safe for concurrent use by machines running on different
// goroutines (the sweep worker pool); entries are immutable once stored.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	hits    uint64
	misses  uint64
}

// NewMemo returns an empty memo table.
func NewMemo() *Memo { return &Memo{entries: make(map[string]*memoEntry)} }

// memoEntry is a recorded collective's net effect, relative to its start.
type memoEntry struct {
	duration units.Time
	events   uint64 // timeline events the live run fired
	chunks   int
	// floorDelta[d] is the dimension-floor advance over the start instant;
	// negative marks a dimension the run never reserved.
	floorDelta []units.Time
	sent       []units.ByteSize // phase-sent accumulator deltas
	recv       []units.ByteSize // phase-recv accumulator deltas
	bytes      []units.ByteSize // BytesPerDim deltas
	traffic    []units.ByteSize // Result.TrafficPerDim
}

func (m *Memo) lookup(key string) *memoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.entries[key]
	if ent != nil {
		m.hits++
	} else {
		m.misses++
	}
	return ent
}

func (m *Memo) store(key string, ent *memoEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[key]; ok {
		return // first recording wins; duplicates are identical by key
	}
	m.entries[key] = ent
}

// Stats reports the memo's hit and miss counts and table size.
func (m *Memo) Stats() (hits, misses uint64, entries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, len(m.entries)
}

// WithMemo attaches a phase-memoization table (nil disables memoization,
// the default). The same Memo may be shared by many engines — and many
// goroutines — as long as they agree on what a key means, which the
// topology-qualified key construction guarantees.
func WithMemo(m *Memo) Option { return func(e *Engine) { e.memo = m } }

// memoRec tracks an in-flight recording: a live collective whose effects
// will be stored if the run proves pure.
type memoRec struct {
	run        *collectiveRun
	key        string
	start      units.Time
	startFired uint64
	scheduled  uint64 // events this run itself scheduled
	ledger     network.Ledger
}

// memoReplay is the single completion event of a replayed collective. It
// doubles as the rollback record: if the replay is cancelled before firing,
// saved restores the backend and the original Start re-runs live.
type memoReplay struct {
	e         *Engine
	cancelled bool
	op        Op
	size      units.ByteSize
	group     Group
	done      func(Result)
	res       Result
	saved     network.Ledger
	events    uint64
}

// Act implements timeline.Actor: the replayed collective completes.
func (r *memoReplay) Act() {
	if r.cancelled {
		// A rollback neutered this event; it fires as a no-op so the
		// engine's fired count matches the live run's total exactly.
		return
	}
	e := r.e
	e.active = nil
	// Disarm before delivering the result: done may chain the next
	// collective, which can arm a fresh replay of its own.
	e.disarmReplay()
	if r.done != nil {
		r.done(r.res)
	}
}

// memoKeyPrefix canonically describes everything about the engine that
// shapes a whole-machine collective: the topology (String() round-trips
// through the parser, so it is canonical), per-dimension bandwidths and
// latencies, and the chunk plan.
func (e *Engine) memoKeyPrefix() string {
	if e.keyPrefix == "" {
		bws := make([]float64, e.top.NumDims())
		lats := make([]units.Time, e.top.NumDims())
		for i, d := range e.top.Dims {
			bws[i] = d.EffectiveBandwidth().GBpsValue()
			lats[i] = d.Latency
		}
		e.keyPrefix = fmt.Sprintf("%s|%v|%v|%v|%d", e.top.String(), bws, lats, e.policy, e.chunks)
	}
	return e.keyPrefix
}

func (e *Engine) memoKey(op Op, size units.ByteSize) string {
	return fmt.Sprintf("%s|%d|%d", e.memoKeyPrefix(), op, size)
}

// memoEligible reports whether a whole-machine collective started right now
// is a pure function of its key: nothing queued on the engine and the
// backend's aggregates idle.
func (e *Engine) memoEligible() bool {
	return e.net.PendingEvents() == 0 && e.net.QuietDims()
}

// disarmReplay removes the engine's armed rollback triggers: its registered
// activity hook and the engine-wide schedule watch. At most one replay can
// be armed per timeline engine at any instant (a replay requires an empty
// event queue to start), so clearing the shared watch never drops another
// collective engine's.
func (e *Engine) disarmReplay() {
	e.net.RemoveActivityHook(e.hookID)
	e.net.SetScheduleWatch(0, nil)
}

// replayMemo fast-forwards a cached collective: the ledger advances to its
// recorded end state, the skipped events are credited, and one completion
// event delivers the result. Two triggers arm the rollback path: the
// backend activity hook (synchronous observations at the start instant) and
// the engine's schedule watch (foreign events scheduled into the replay's
// window, due later than its start). The watch limit is the cached end
// instant, inclusive: in a live run an event landing exactly then was
// scheduled before the collective's final chunk events and fires before
// them, but a replay's single completion event would fire first — so such
// an event must cancel too.
func (e *Engine) replayMemo(ent *memoEntry, op Op, size units.ByteSize, g Group, done func(Result)) {
	now := e.net.Now()
	r := &memoReplay{e: e, op: op, size: size, group: g, done: done, events: ent.events}
	e.net.SnapshotLedger(&r.saved)
	e.net.ApplyLedgerDeltas(now, ent.floorDelta, ent.sent, ent.recv, ent.bytes)
	e.net.CreditEvents(int64(ent.events) - 1)
	r.res = Result{
		Op:            op,
		Size:          size,
		Start:         now,
		End:           now + ent.duration,
		Chunks:        ent.chunks,
		TrafficPerDim: append([]units.ByteSize(nil), ent.traffic...),
	}
	e.active = r
	// Schedule the completion BEFORE arming the watch: the watch must not
	// trip on the replay's own completion event at the window's end.
	e.net.ScheduleActor(ent.duration, r)
	if e.hookFn == nil {
		e.hookFn = e.cancelReplay
	}
	e.hookID = e.net.AddActivityHook(e.hookFn)
	e.net.SetScheduleWatch(r.res.End, e.hookFn)
}

// cancelReplay rolls back the active replay: restore the ledger, revoke the
// event credit, neuter the scheduled completion event, and re-run the
// collective live at the same instant. The cancelled event still fires as a
// no-op, so the credit revocation includes the one event the replay really
// scheduled — the totals match the live run exactly.
func (e *Engine) cancelReplay() {
	r := e.active
	if r == nil {
		return
	}
	e.active = nil
	e.disarmReplay()
	r.cancelled = true
	e.net.RestoreLedger(&r.saved)
	e.net.CreditEvents(-int64(r.events))
	if err := e.Start(r.op, r.size, r.group, r.done); err != nil {
		panic(fmt.Sprintf("collective: replay fallback failed: %v", err))
	}
}

// maybeStoreMemo validates and stores a completed recording. The run is
// pure exactly when the engine fired only the events the run scheduled; a
// mid-run Stats() materialization would drain the phase accumulators, which
// the negative-delta guard rejects.
func (e *Engine) maybeStoreMemo(run *collectiveRun) {
	rec := e.rec
	e.rec = nil
	if e.net.EventsFired()-rec.startFired != rec.scheduled {
		return
	}
	var end network.Ledger
	e.net.SnapshotLedger(&end)
	dims := len(end.Floor)
	ent := &memoEntry{
		duration:   e.net.Now() - rec.start,
		events:     rec.scheduled,
		chunks:     run.chunks,
		floorDelta: make([]units.Time, dims),
		sent:       make([]units.ByteSize, dims),
		recv:       make([]units.ByteSize, dims),
		bytes:      make([]units.ByteSize, dims),
		traffic:    append([]units.ByteSize(nil), run.traffic...),
	}
	for d := 0; d < dims; d++ {
		if end.Floor[d] != rec.ledger.Floor[d] {
			ent.floorDelta[d] = end.Floor[d] - rec.start
		} else {
			ent.floorDelta[d] = -1
		}
		ent.sent[d] = end.PhaseSent[d] - rec.ledger.PhaseSent[d]
		ent.recv[d] = end.PhaseRecv[d] - rec.ledger.PhaseRecv[d]
		ent.bytes[d] = end.Bytes[d] - rec.ledger.Bytes[d]
		if ent.sent[d] < 0 || ent.recv[d] < 0 || ent.bytes[d] < 0 || ent.floorDelta[d] < -1 {
			return
		}
	}
	e.memo.store(rec.key, ent)
}
