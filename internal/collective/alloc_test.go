package collective

import (
	"testing"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// The chunk-phase hot path must not allocate per phase event: chunks are
// typed timeline actors re-scheduling themselves, fixed-order plans are
// shared across the whole wave, and phase reservations are pure arithmetic
// on the backend's link ledger. What remains is per-run setup — the run
// record, its per-span bookkeeping, the member list, and one chunkState per
// chunk — so the guard bounds allocations per collective at a small
// constant plus ~1 object per chunk, far below one per event.
func TestChunkPathAllocsPerEvent(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(250), Latency: 50 * units.Nanosecond},
		topology.Dim{Kind: topology.FullyConnected, Size: 4, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50), Latency: 2 * units.Microsecond},
	)
	const chunks = 64
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	ce := NewEngine(net, WithChunks(chunks))
	group := FullMachine(top)

	run := func() {
		if err := ce.Start(AllReduce, 16*units.MB, group, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm engine arena and backend pools
	before := eng.Fired()
	run()
	events := float64(eng.Fired() - before)
	allocs := testing.AllocsPerRun(20, run)

	perEvent := allocs / events
	if perEvent > 0.5 {
		t.Errorf("chunk path allocates %.2f objects/event (%.0f allocs over %.0f events), want <= 0.5",
			perEvent, allocs, events)
	}
	// Absolute guard: setup plus at most ~1.5 objects per chunk. A
	// per-phase allocation regression (6 phases/chunk here) would blow
	// straight through this.
	if limit := 32 + 1.5*chunks; allocs > limit {
		t.Errorf("collective run allocates %.0f objects, want <= %.0f", allocs, limit)
	}
}

// Themis plans per chunk (its balancing state evolves between chunks), but
// planning must stay cheap: scratch is reused, so the only per-chunk cost
// is the chunk's own phase plan.
func TestThemisChunkPathAllocsPerEvent(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(200), Latency: 50 * units.Nanosecond},
		topology.Dim{Kind: topology.Switch, Size: 8, Bandwidth: units.GBps(50), Latency: 2 * units.Microsecond},
	)
	const chunks = 64
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	ce := NewEngine(net, WithChunks(chunks), WithPolicy(Themis))
	group := FullMachine(top)

	run := func() {
		if err := ce.Start(AllReduce, 16*units.MB, group, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	before := eng.Fired()
	run()
	events := float64(eng.Fired() - before)
	allocs := testing.AllocsPerRun(20, run)

	if perEvent := allocs / events; perEvent > 1.0 {
		t.Errorf("Themis chunk path allocates %.2f objects/event (%.0f allocs over %.0f events), want <= 1.0",
			perEvent, allocs, events)
	}
}
