package collective

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/units"
)

// This file executes the blocks' topology-aware collective algorithms at
// message granularity — every point-to-point transfer is issued through the
// network backend individually. The per-step schedules come from the
// dimension models' PhaseSchedule hook (Table I: Ring on Ring dims, Direct
// on FullyConnected dims, Halving-Doubling on Switch dims, plus the
// embedded-ring Mesh and per-axis-ring Torus2D schedules), so this executor
// contains no block-specific logic.
//
// The chunk-phase model in collective.go is the production path (it scales
// to thousands of NPUs); the message-level path exists to validate that the
// aggregate model reproduces the per-message algorithms exactly, and to
// drive the cycle-level backend comparison.

// RunMessageLevel executes a single-dimension collective at message
// granularity over the group formed by varying dimension dim from base.
// It returns the completion time via the done callback. Only single-dim
// groups are supported; multi-dim collectives compose these phases.
func RunMessageLevel(net *network.Backend, op Op, size units.ByteSize, dim, base int, tagBase int, done func(units.Time)) error {
	top := net.Topology()
	if dim < 0 || dim >= top.NumDims() {
		return fmt.Errorf("collective: dim %d out of range", dim)
	}
	members := top.DimGroup(base, dim)
	k := len(members)
	if k < 2 {
		return fmt.Errorf("collective: message-level group too small")
	}
	switch op {
	case AllGather:
		shard := size / units.ByteSize(k)
		runMsgPhase(net, top, members, dim, AllGather, shard, tagBase, done)
	case ReduceScatter:
		runMsgPhase(net, top, members, dim, ReduceScatter, size, tagBase, done)
	case AllReduce:
		runMsgPhase(net, top, members, dim, ReduceScatter, size, tagBase, func(units.Time) {
			runMsgPhase(net, top, members, dim, AllGather, size/units.ByteSize(k), tagBase+1<<20, done)
		})
	case AllToAll:
		runMsgAllToAll(net, top, members, dim, size, tagBase, done)
	default:
		return fmt.Errorf("collective: unsupported message-level op %v", op)
	}
	return nil
}

// runMsgPhase executes the dimension model's message-level schedule:
// bulk-synchronous steps of point-to-point transfers, each step barriered
// on all of its deliveries.
func runMsgPhase(net *network.Backend, top *topology.Topology, members []int, dim int, op Op, d units.ByteSize, tagBase int, done func(units.Time)) {
	k := len(members)
	sched := top.Dims[dim].Kind.PhaseSchedule(phaseKind(op), k, d)
	var step func(s int)
	step = func(s int) {
		if s >= len(sched) {
			done(net.Now())
			return
		}
		xfers := sched[s]
		if len(xfers) == 0 {
			step(s + 1)
			return
		}
		bar := newBarrier(len(xfers), func() { step(s + 1) })
		for i, x := range xfers {
			net.SendOnDim(members[x.Src], members[x.Dst], dim, x.Bytes,
				tagBase+s*k*k+i, nil, func(network.Message) { bar.arrive() })
		}
	}
	step(0)
}

// barrier invokes done once count completions have been reported.
type barrier struct {
	remaining int
	fn        func()
}

func newBarrier(count int, fn func()) *barrier { return &barrier{remaining: count, fn: fn} }

func (b *barrier) arrive() {
	b.remaining--
	if b.remaining == 0 {
		b.fn()
	}
}

// runMsgAllToAll exchanges size/k bytes between every ordered pair; the
// pattern is block-agnostic, so no model schedule is involved.
func runMsgAllToAll(net *network.Backend, top *topology.Topology, members []int, dim int, size units.ByteSize, tagBase int, done func(units.Time)) {
	k := len(members)
	per := size / units.ByteSize(k)
	bar := newBarrier(k*(k-1), func() { done(net.Now()) })
	tag := tagBase
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			net.SendOnDim(members[i], members[j], dim, per, tag, nil, func(network.Message) { bar.arrive() })
			tag++
		}
	}
}
