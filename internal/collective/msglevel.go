package collective

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/units"
)

// This file implements the three topology-aware collective algorithms of
// Table I at message granularity — every point-to-point transfer is issued
// through the network backend individually:
//
//	Ring            (Chan et al., PPoPP 2006)  on Ring dims
//	Direct          (Thakur et al., IJHPCA)    on FullyConnected dims
//	Halving-Doubling (Thakur et al., IJHPCA)   on Switch dims
//
// The chunk-phase model in collective.go is the production path (it scales
// to thousands of NPUs); the message-level path exists to validate that the
// aggregate model reproduces the per-message algorithms exactly, and to
// drive the cycle-level backend comparison.

// RunMessageLevel executes a single-dimension collective at message
// granularity over the group formed by varying dimension dim from base.
// It returns the completion time via the done callback. Only single-dim
// groups are supported; multi-dim collectives compose these phases.
func RunMessageLevel(net *network.Backend, op Op, size units.ByteSize, dim, base int, tagBase int, done func(units.Time)) error {
	top := net.Topology()
	if dim < 0 || dim >= top.NumDims() {
		return fmt.Errorf("collective: dim %d out of range", dim)
	}
	members := top.DimGroup(base, dim)
	k := len(members)
	if k < 2 {
		return fmt.Errorf("collective: message-level group too small")
	}
	switch op {
	case AllGather:
		shard := size / units.ByteSize(k)
		runMsgPhase(net, top, members, dim, AllGather, shard, tagBase, done)
	case ReduceScatter:
		runMsgPhase(net, top, members, dim, ReduceScatter, size, tagBase, done)
	case AllReduce:
		runMsgPhase(net, top, members, dim, ReduceScatter, size, tagBase, func(units.Time) {
			runMsgPhase(net, top, members, dim, AllGather, size/units.ByteSize(k), tagBase+1<<20, done)
		})
	case AllToAll:
		runMsgAllToAll(net, top, members, dim, size, tagBase, done)
	default:
		return fmt.Errorf("collective: unsupported message-level op %v", op)
	}
	return nil
}

// runMsgPhase dispatches on the dimension's building block per Table I.
func runMsgPhase(net *network.Backend, top *topology.Topology, members []int, dim int, op Op, d units.ByteSize, tagBase int, done func(units.Time)) {
	switch top.Dims[dim].Kind {
	case topology.Ring:
		runRing(net, members, dim, op, d, tagBase, done)
	case topology.FullyConnected:
		runDirect(net, members, dim, op, d, tagBase, done)
	case topology.Switch:
		runHalvingDoubling(net, members, dim, op, d, tagBase, done)
	}
}

// barrier invokes done once count completions have been reported.
type barrier struct {
	remaining int
	fn        func()
}

func newBarrier(count int, fn func()) *barrier { return &barrier{remaining: count, fn: fn} }

func (b *barrier) arrive() {
	b.remaining--
	if b.remaining == 0 {
		b.fn()
	}
}

// runRing runs the ring algorithm: k−1 steps; at each step member i sends
// its current chunk to member (i+1) and receives from (i−1). For
// Reduce-Scatter the chunk is D/k; for All-Gather it is the member's shard
// D (growing the held data each step).
func runRing(net *network.Backend, members []int, dim int, op Op, d units.ByteSize, tagBase int, done func(units.Time)) {
	k := len(members)
	per := d
	if op == ReduceScatter {
		per = d / units.ByteSize(k)
	}
	var step func(s int)
	step = func(s int) {
		if s == k-1 {
			done(net.Now())
			return
		}
		bar := newBarrier(k, func() { step(s + 1) })
		for i := 0; i < k; i++ {
			src, dst := members[i], members[(i+1)%k]
			net.SendOnDim(src, dst, dim, per, tagBase+s*k+i, nil, func(network.Message) { bar.arrive() })
		}
	}
	step(0)
}

// runDirect runs the direct algorithm on a fully-connected dimension: a
// single step in which every member exchanges with every other member
// simultaneously (D/k per peer for Reduce-Scatter, the full shard D per
// peer for All-Gather).
func runDirect(net *network.Backend, members []int, dim int, op Op, d units.ByteSize, tagBase int, done func(units.Time)) {
	k := len(members)
	per := d
	if op == ReduceScatter {
		per = d / units.ByteSize(k)
	}
	bar := newBarrier(k*(k-1), func() { done(net.Now()) })
	tag := tagBase
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			net.SendOnDim(members[i], members[j], dim, per, tag, nil, func(network.Message) { bar.arrive() })
			tag++
		}
	}
}

// runHalvingDoubling runs the recursive halving (Reduce-Scatter) or
// doubling (All-Gather) algorithm across a switch: log2(k) steps of
// pairwise exchange at power-of-two distances. k must be a power of two;
// non-power-of-two switch groups fall back to direct exchange, matching
// collective-library behaviour for irregular sizes.
func runHalvingDoubling(net *network.Backend, members []int, dim int, op Op, d units.ByteSize, tagBase int, done func(units.Time)) {
	k := len(members)
	if k&(k-1) != 0 {
		runDirect(net, members, dim, op, d, tagBase, done)
		return
	}
	steps := 0
	for v := 1; v < k; v <<= 1 {
		steps++
	}
	var step func(s int, cur units.ByteSize)
	step = func(s int, cur units.ByteSize) {
		if s == steps {
			done(net.Now())
			return
		}
		// Reduce-Scatter halves the exchanged data each step starting at
		// D/2; All-Gather doubles it starting at the shard D.
		var per units.ByteSize
		var dist int
		if op == ReduceScatter {
			per = cur / 2
			dist = k >> (s + 1)
		} else {
			per = cur
			dist = 1 << s
		}
		bar := newBarrier(k, func() {
			next := per
			if op == ReduceScatter {
				next = cur / 2
			} else {
				next = cur * 2
			}
			step(s+1, next)
		})
		for i := 0; i < k; i++ {
			peer := i ^ dist
			net.SendOnDim(members[i], members[peer], dim, per, tagBase+s*k+i, nil, func(network.Message) { bar.arrive() })
		}
	}
	step(0, d)
}

// runMsgAllToAll exchanges size/k bytes between every ordered pair.
func runMsgAllToAll(net *network.Backend, top *topology.Topology, members []int, dim int, size units.ByteSize, tagBase int, done func(units.Time)) {
	k := len(members)
	per := size / units.ByteSize(k)
	bar := newBarrier(k*(k-1), func() { done(net.Now()) })
	tag := tagBase
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			net.SendOnDim(members[i], members[j], dim, per, tag, nil, func(network.Message) { bar.arrive() })
			tag++
		}
	}
}
