package collective

import (
	"testing"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/units"
)

// Probe: foreign traffic that first observes the backend at a LATER
// simulated instant than the replay's start. Live baseline vs memo run.
func TestMemoDeferredObservationProbe(t *testing.T) {
	memo := NewMemo()
	runChain(t, 1, memo) // warm

	run := func(m *Memo) (Result, units.Time) {
		top := memoTestTopology()
		eng := timeline.New()
		net := network.NewBackend(eng, top)
		opts := []Option{WithChunks(8)}
		if m != nil {
			opts = append(opts, WithMemo(m))
		}
		ce := NewEngine(net, opts...)
		var res Result
		if err := ce.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		// Foreign send at t=10us, well before the collective completes.
		eng.Schedule(10*units.Microsecond, func() {
			net.SimSend(0, 1, 7, 2*units.MB, nil)
		})
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return res, eng.Now()
	}

	plainRes, plainEnd := run(nil)
	memoRes, memoEnd := run(memo)
	t.Logf("plain: start=%v end=%v finalclock=%v", plainRes.Start, plainRes.End, plainEnd)
	t.Logf("memo:  start=%v end=%v finalclock=%v", memoRes.Start, memoRes.End, memoEnd)
	if !sameResult(memoRes, plainRes) || memoEnd != plainEnd {
		t.Errorf("DIVERGED")
	}
}
