package collective

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/units"
)

func wafer512() *topology.Topology {
	return topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 512, Bandwidth: units.GBps(350),
	})
}

func TestSpanGroupContiguous(t *testing.T) {
	top := wafer512()
	// A model-parallel group of 16 adjacent NPUs starting at rank 32.
	g, err := NewSpanGroup(top, []Span{{Phys: 0, K: 16, Stride: 1}}, 32)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Members(top)
	if len(m) != 16 || m[0] != 32 || m[15] != 47 {
		t.Fatalf("members = %v", m)
	}
	if g.Size() != 16 {
		t.Errorf("Size = %d", g.Size())
	}
}

func TestSpanGroupStrided(t *testing.T) {
	top := wafer512()
	// The data-parallel counterpart: 32 members with stride 16, from any
	// base inside the group.
	g, err := NewSpanGroup(top, []Span{{Phys: 0, K: 32, Stride: 16}}, 48)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Members(top)
	if len(m) != 32 {
		t.Fatalf("len(members) = %d", len(m))
	}
	for i, r := range m {
		if r != i*16 {
			t.Fatalf("members[%d] = %d, want %d", i, r, i*16)
		}
	}
}

func TestSpanGroupBaseNormalization(t *testing.T) {
	top := wafer512()
	// Any member should produce the same group instance.
	a, err := NewSpanGroup(top, []Span{{Phys: 0, K: 16, Stride: 1}}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSpanGroup(top, []Span{{Phys: 0, K: 16, Stride: 1}}, 45)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature(top) != b.Signature(top) {
		t.Errorf("signatures differ: %q vs %q", a.Signature(top), b.Signature(top))
	}
	// Different instances must differ.
	c, err := NewSpanGroup(top, []Span{{Phys: 0, K: 16, Stride: 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature(top) == c.Signature(top) {
		t.Error("distinct instances share a signature")
	}
}

func TestSpanGroupValidation(t *testing.T) {
	top := wafer512()
	cases := []struct {
		name  string
		spans []Span
		base  int
	}{
		{"no spans", nil, 0},
		{"bad phys", []Span{{Phys: 3, K: 2, Stride: 1}}, 0},
		{"k too small", []Span{{Phys: 0, K: 1, Stride: 1}}, 0},
		{"zero stride", []Span{{Phys: 0, K: 2, Stride: 0}}, 0},
		{"overflow", []Span{{Phys: 0, K: 64, Stride: 16}}, 0}, // 63*16 >= 512
		{"bad base", []Span{{Phys: 0, K: 2, Stride: 1}}, 9999},
	}
	for _, c := range cases {
		if _, err := NewSpanGroup(top, c.spans, c.base); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestHybridGroupsPartitionTheWafer(t *testing.T) {
	top := wafer512()
	const mp, dp = 16, 32
	// The MP groups (one per DP position crossed with base offsets) and DP
	// groups must each partition the 512 NPUs.
	seen := make(map[int]bool)
	for base := 0; base < 512; base += mp {
		g, err := NewSpanGroup(top, []Span{{Phys: 0, K: mp, Stride: 1}}, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range g.Members(top) {
			if seen[m] {
				t.Fatalf("rank %d in two MP groups", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 512 {
		t.Errorf("MP groups covered %d ranks", len(seen))
	}
	seen = make(map[int]bool)
	for base := 0; base < mp; base++ {
		g, err := NewSpanGroup(top, []Span{{Phys: 0, K: dp, Stride: mp}}, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range g.Members(top) {
			if seen[m] {
				t.Fatalf("rank %d in two DP groups", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 512 {
		t.Errorf("DP groups covered %d ranks", len(seen))
	}
}

func TestStridedCollectiveRuns(t *testing.T) {
	top := topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 64, Bandwidth: units.GBps(100),
	})
	eng, _, ce := newRig(t, top, WithChunks(4))
	g, err := NewSpanGroup(top, []Span{{Phys: 0, K: 8, Stride: 8}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := runCollective(t, eng, ce, AllReduce, 8*units.MB, g)
	// All-Reduce over 8 logical members: traffic 2*2*S*(7/8) = 28 MB at
	// 100 GB/s = 280 us.
	want := units.FromMicros(280)
	if res.Duration() != want {
		t.Errorf("strided All-Reduce = %v, want %v", res.Duration(), want)
	}
}

func TestMultiSpanSamePhysicalDim(t *testing.T) {
	// A 2D logical decomposition of one physical dimension: 4x4 over a
	// 16-ring. Legal and useful for logical-topology studies.
	top := topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 16, Bandwidth: units.GBps(100),
	})
	g, err := NewSpanGroup(top, []Span{
		{Phys: 0, K: 4, Stride: 1},
		{Phys: 0, K: 4, Stride: 4},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Members(top)
	if len(m) != 16 {
		t.Fatalf("members = %v", m)
	}
	for i, r := range m {
		if r != i {
			t.Fatalf("members[%d] = %d", i, r)
		}
	}
}
