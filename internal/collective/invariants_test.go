package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Property tests for the collective model's structural invariants.

func randomTopo(rng *rand.Rand) *topology.Topology {
	nd := rng.Intn(3) + 2
	kinds := []topology.DimModel{
		topology.Ring, topology.FullyConnected, topology.Switch,
		topology.Mesh, topology.Torus2D(2, 4), topology.OversubscribedSwitch(2),
	}
	dims := make([]topology.Dim, nd)
	for i := range dims {
		kind := kinds[rng.Intn(len(kinds))]
		size := []int{2, 4, 8}[rng.Intn(3)]
		if kind == topology.Torus2D(2, 4) {
			size = 8
		}
		dims[i] = topology.Dim{
			Kind:      kind,
			Size:      size,
			Bandwidth: units.GBps(float64(rng.Intn(400) + 50)),
		}
	}
	return topology.MustNew(dims...)
}

// TestTotalTrafficOrderInvariant: for Reduce-Scatter / All-Gather /
// All-Reduce, the total per-NPU traffic summed over dimensions does not
// depend on the scheduler's ordering choices — the telescoping identity
// sum(D_i - D_i/k_i) = S - S/N. This is the property that makes the
// Themis planner's balanced target achievable in the first place.
func TestTotalTrafficOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top := randomTopo(rng)
		size := units.ByteSize(rng.Intn(512)+64) * units.MiB
		g := FullMachine(top)
		n := g.Size()

		for _, op := range []Op{ReduceScatter, AllGather, AllReduce} {
			for _, policy := range []Policy{Baseline, Themis} {
				eng := timeline.New()
				net := network.NewBackend(eng, top)
				ce := NewEngine(net, WithChunks(16), WithPolicy(policy))
				var res Result
				if err := ce.Start(op, size, g, func(r Result) { res = r }); err != nil {
					return false
				}
				if _, err := eng.Run(); err != nil {
					return false
				}
				var total units.ByteSize
				for _, b := range res.TrafficPerDim {
					total += b
				}
				shard := InitialShard(op, size, n)
				var expect units.ByteSize
				switch op {
				case ReduceScatter:
					expect = 2 * (shard - shard/units.ByteSize(n))
				case AllGather:
					expect = 2 * (shard*units.ByteSize(n) - shard)
				case AllReduce:
					expect = 4 * (shard - shard/units.ByteSize(n))
				}
				// Integer chunk rounding loses at most a few bytes per
				// chunk per phase.
				slack := units.ByteSize(16 * 2 * top.NumDims() * 8)
				diff := total - expect
				if diff < 0 {
					diff = -diff
				}
				if diff > slack {
					return false
				}
			}
		}
		return true
	}
	// Deterministic generator seed: property failures must reproduce.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestThemisNeverSlowerOnIdleNetwork: on an otherwise idle network, Themis
// must never lose to the baseline by more than pipeline-packing noise
// (empirically bounded at ~12% on adversarial random topologies).
func TestThemisNeverSlowerOnIdleNetwork(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top := randomTopo(rng)
		size := units.ByteSize(rng.Intn(512)+64) * units.MiB
		run := func(p Policy) units.Time {
			eng := timeline.New()
			net := network.NewBackend(eng, top)
			ce := NewEngine(net, WithChunks(64), WithPolicy(p))
			var res Result
			if err := ce.Start(AllReduce, size, FullMachine(top), func(r Result) { res = r }); err != nil {
				return 0
			}
			if _, err := eng.Run(); err != nil {
				return 0
			}
			return res.Duration()
		}
		base, themis := run(Baseline), run(Themis)
		if base == 0 || themis == 0 {
			return false
		}
		return float64(themis) <= 1.15*float64(base)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDurationScalesLinearlyWithSize: for bandwidth-bound collectives with
// zero latency, doubling the payload doubles the runtime.
func TestDurationScalesLinearlyWithSize(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	run := func(size units.ByteSize) units.Time {
		eng := timeline.New()
		net := network.NewBackend(eng, top)
		ce := NewEngine(net, WithChunks(16))
		var res Result
		if err := ce.Start(AllReduce, size, FullMachine(top), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return res.Duration()
	}
	small, big := run(64*units.MiB), run(128*units.MiB)
	ratio := float64(big) / float64(small)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubling size scaled runtime by %.4f, want 2.0", ratio)
	}
}

// TestProjectedLedgerDrainsToZero: after all collectives complete, the
// engine's projected-load ledger must return to zero (no leaks).
func TestProjectedLedgerDrainsToZero(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(50)},
	)
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	ce := NewEngine(net, WithChunks(8), WithPolicy(Themis))
	for i := 0; i < 5; i++ {
		if err := ce.Start(AllReduce, 32*units.MiB, FullMachine(top), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for npu := range ce.projected {
		for d, v := range ce.projected[npu] {
			if v < -1e-9 || v > 1e-9 {
				t.Fatalf("projected[%d][%d] = %g after drain, want 0", npu, d, v)
			}
		}
	}
}

// TestManyConcurrentSubgroupCollectives: every dim-0 group runs its own
// collective; all must complete and the makespan must equal a single
// group's runtime (disjoint resources).
func TestManyConcurrentSubgroupCollectives(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(100)},
	)
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	ce := NewEngine(net, WithChunks(8))
	done := 0
	var first units.Time
	for base := 0; base < 64; base += 8 {
		g, err := NewGroup(top, []int{0}, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := ce.Start(AllReduce, 16*units.MiB, g, func(r Result) {
			done++
			if first == 0 {
				first = r.Duration()
			} else if r.Duration() != first {
				t.Errorf("group durations diverge: %v vs %v", r.Duration(), first)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done != 8 {
		t.Fatalf("%d groups completed, want 8", done)
	}
	if end != first {
		t.Errorf("makespan %v != single-group duration %v (groups are disjoint)", end, first)
	}
}
