package collective

import (
	"testing"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

func newRig(t *testing.T, top *topology.Topology, opts ...Option) (*timeline.Engine, *network.Backend, *Engine) {
	t.Helper()
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	return eng, net, NewEngine(net, opts...)
}

func runCollective(t *testing.T, eng *timeline.Engine, ce *Engine, op Op, size units.ByteSize, g Group) Result {
	t.Helper()
	var res Result
	got := false
	if err := ce.Start(op, size, g, func(r Result) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("collective never completed")
	}
	return res
}

func ringDim(k int, gbps float64, lat units.Time) topology.Dim {
	return topology.Dim{Kind: topology.Ring, Size: k, Bandwidth: units.GBps(gbps), Latency: lat}
}

func TestOpAndPolicyStrings(t *testing.T) {
	if AllReduce.String() != "All-Reduce" || AllToAll.String() != "All-to-All" {
		t.Error("op names wrong")
	}
	if Baseline.String() != "Baseline" || Themis.String() != "Themis" {
		t.Error("policy names wrong")
	}
}

func TestGroupMembers(t *testing.T) {
	top := topology.MustNew(ringDim(4, 100, 0), ringDim(2, 100, 0))
	g, err := NewGroup(top, []int{0}, 5) // rank 5 = coords (1,1); dim-0 group
	if err != nil {
		t.Fatal(err)
	}
	m := g.Members(top)
	want := []int{4, 5, 6, 7}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Members = %v, want %v", m, want)
		}
	}
	full := FullMachine(top)
	if full.Size() != 8 || len(full.Members(top)) != 8 {
		t.Error("FullMachine group wrong")
	}
}

func TestNewGroupValidation(t *testing.T) {
	top := topology.MustNew(ringDim(4, 100, 0))
	if _, err := NewGroup(top, nil, 0); err == nil {
		t.Error("expected error for empty dims")
	}
	if _, err := NewGroup(top, []int{1}, 0); err == nil {
		t.Error("expected error for out-of-range dim")
	}
	if _, err := NewGroup(top, []int{0, 0}, 0); err == nil {
		t.Error("expected error for duplicate dim")
	}
	if _, err := NewGroup(top, []int{0}, 99); err == nil {
		t.Error("expected error for bad base")
	}
}

// TestRingAllGatherSingleChunk checks the chunk-phase model against hand
// arithmetic: All-Gather of 8 MB over Ring(4) @100 GB/s. Shard D = 2 MB,
// traffic = 2*D*(k-1) = 12 MB -> 120 us serialization + 3 steps * 1 us.
func TestRingAllGatherSingleChunk(t *testing.T) {
	top := topology.MustNew(ringDim(4, 100, units.Microsecond))
	eng, _, ce := newRig(t, top, WithChunks(1))
	res := runCollective(t, eng, ce, AllGather, 8*units.MB, FullMachine(top))
	want := units.FromMicros(120) + 3*units.Microsecond
	if res.Duration() != want {
		t.Errorf("duration = %v, want %v", res.Duration(), want)
	}
	if res.TrafficPerDim[0] != 12*units.MB {
		t.Errorf("traffic = %v, want 12MB", res.TrafficPerDim[0])
	}
}

// TestChunkModelMatchesMessageLevel cross-validates the aggregate
// chunk-phase model against the per-message Table I algorithms for all
// three building blocks and all four ops on a single dimension.
func TestChunkModelMatchesMessageLevel(t *testing.T) {
	kinds := []topology.BlockKind{topology.Ring, topology.FullyConnected, topology.Switch}
	ops := []Op{ReduceScatter, AllGather, AllReduce, AllToAll}
	for _, kind := range kinds {
		for _, op := range ops {
			top := topology.MustNew(topology.Dim{Kind: kind, Size: 4, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond})

			// Message level.
			engM := timeline.New()
			netM := network.NewBackend(engM, top)
			var msgTime units.Time
			if err := RunMessageLevel(netM, op, 8*units.MB, 0, 0, 0, func(at units.Time) { msgTime = at }); err != nil {
				t.Fatal(err)
			}
			if _, err := engM.Run(); err != nil {
				t.Fatal(err)
			}

			// Chunk-phase model, single chunk.
			engC := timeline.New()
			netC := network.NewBackend(engC, top)
			ce := NewEngine(netC, WithChunks(1))
			var res Result
			if err := ce.Start(op, 8*units.MB, FullMachine(top), func(r Result) { res = r }); err != nil {
				t.Fatal(err)
			}
			if _, err := engC.Run(); err != nil {
				t.Fatal(err)
			}

			// The models must agree within 1% (rounding of uneven chunk
			// splits aside, they compute the same arithmetic).
			diff := res.Duration() - msgTime
			if diff < 0 {
				diff = -diff
			}
			if msgTime == 0 {
				t.Fatalf("%v/%v: message-level time is zero", kind, op)
			}
			if float64(diff)/float64(msgTime) > 0.01 {
				t.Errorf("%v %v: chunk model %v vs message level %v", kind, op, res.Duration(), msgTime)
			}
		}
	}
}

// TestAllReduceEqualsRSPlusAG: an All-Reduce should cost the sum of its
// Reduce-Scatter and All-Gather halves on a single dimension.
func TestAllReduceEqualsRSPlusAG(t *testing.T) {
	top := topology.MustNew(ringDim(8, 150, 0))
	eng1, _, ce1 := newRig(t, top, WithChunks(1))
	ar := runCollective(t, eng1, ce1, AllReduce, 64*units.MB, FullMachine(top))

	eng2, _, ce2 := newRig(t, top, WithChunks(1))
	rs := runCollective(t, eng2, ce2, ReduceScatter, 64*units.MB, FullMachine(top))
	eng3, _, ce3 := newRig(t, top, WithChunks(1))
	ag := runCollective(t, eng3, ce3, AllGather, 64*units.MB, FullMachine(top))

	if ar.Duration() != rs.Duration()+ag.Duration() {
		t.Errorf("AllReduce %v != RS %v + AG %v", ar.Duration(), rs.Duration(), ag.Duration())
	}
}

// TestPipeliningConvergesToBottleneck: with many chunks, a multi-dim
// collective's runtime approaches the bottleneck dimension's serialization
// time (the key behaviour behind Table IV).
func TestPipeliningConvergesToBottleneck(t *testing.T) {
	// 2_8 topology: dim1 fast, dim2 slow.
	top := topology.MustNew(ringDim(2, 1000, 0), ringDim(8, 100, 0))
	eng, _, ce := newRig(t, top, WithChunks(128))
	size := units.ByteSize(1024 * units.MB)
	res := runCollective(t, eng, ce, AllGather, size, FullMachine(top))

	traffic := TrafficPerDim(top, AllGather, size, FullMachine(top))
	bottleneck := top.Dims[1].Bandwidth.TransferTime(traffic[1])
	other := top.Dims[0].Bandwidth.TransferTime(traffic[0])
	if other >= bottleneck {
		t.Fatal("test misconfigured: dim1 should not be the bottleneck")
	}
	ratio := float64(res.Duration()) / float64(bottleneck)
	if ratio < 1.0 || ratio > 1.05 {
		t.Errorf("duration/bottleneck = %.3f, want within [1, 1.05] (pipelined)", ratio)
	}
}

// TestTrafficMatchesClosedForm: the engine's measured per-dim traffic must
// equal the closed-form TrafficPerDim for every op.
func TestTrafficMatchesClosedForm(t *testing.T) {
	top := topology.MustNew(
		ringDim(2, 1000, 0),
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		ringDim(8, 100, 0),
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	size := units.ByteSize(1024 * units.MB)
	for _, op := range []Op{ReduceScatter, AllGather, AllReduce, AllToAll} {
		eng, _, ce := newRig(t, top, WithChunks(64))
		res := runCollective(t, eng, ce, op, size, FullMachine(top))
		want := TrafficPerDim(top, op, size, FullMachine(top))
		for d := range want {
			diff := res.TrafficPerDim[d] - want[d]
			if diff < 0 {
				diff = -diff
			}
			// Integer chunk rounding may shed a few bytes per chunk.
			if diff > units.ByteSize(res.Chunks)*units.ByteSize(top.NumDims()*8) {
				t.Errorf("%v dim %d: engine traffic %v, closed form %v", op, d, res.TrafficPerDim[d], want[d])
			}
		}
	}
}

// TestEstimateMatchesEngine: the closed-form Estimate tracks the
// event-driven engine within a few percent for baseline scheduling.
func TestEstimateMatchesEngine(t *testing.T) {
	top := topology.MustNew(
		ringDim(2, 1000, 0),
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		ringDim(8, 100, 0),
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	size := units.ByteSize(1024 * units.MB)
	for _, op := range []Op{ReduceScatter, AllGather, AllReduce, AllToAll} {
		eng, _, ce := newRig(t, top, WithChunks(64))
		res := runCollective(t, eng, ce, op, size, FullMachine(top))
		est := Estimate(top, op, size, FullMachine(top), Baseline, 64)
		ratio := float64(res.Duration()) / float64(est)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%v: engine %v vs estimate %v (ratio %.3f)", op, res.Duration(), est, ratio)
		}
	}
}

// TestThemisNoGainOn1D: a single-dimension topology offers Themis nothing
// to balance (Fig. 9a, W-1D columns).
func TestThemisNoGainOn1D(t *testing.T) {
	top := topology.MustNew(ringDim(512, 350, 0))
	engB, _, ceB := newRig(t, top, WithChunks(64), WithPolicy(Baseline))
	base := runCollective(t, engB, ceB, AllReduce, units.GB, FullMachine(top))
	engT, _, ceT := newRig(t, top, WithChunks(64), WithPolicy(Themis))
	them := runCollective(t, engT, ceT, AllReduce, units.GB, FullMachine(top))
	if base.Duration() != them.Duration() {
		t.Errorf("1D Themis %v != baseline %v", them.Duration(), base.Duration())
	}
}

// TestThemisBeatsBaselineOnMultiDim: on an unbalanced multi-dim topology,
// Themis's greedy balancing must beat the fixed dim order substantially
// (Fig. 9a shows heavy gains for Conv-3D/Conv-4D).
func TestThemisBeatsBaselineOnMultiDim(t *testing.T) {
	top := topology.MustNew(
		ringDim(2, 250, 0),
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		ringDim(8, 100, 0),
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	engB, _, ceB := newRig(t, top, WithChunks(64), WithPolicy(Baseline))
	base := runCollective(t, engB, ceB, AllReduce, units.GB, FullMachine(top))
	engT, _, ceT := newRig(t, top, WithChunks(64), WithPolicy(Themis))
	them := runCollective(t, engT, ceT, AllReduce, units.GB, FullMachine(top))
	gain := float64(base.Duration()) / float64(them.Duration())
	// Conv-4D's bandwidth profile is the mildest of the paper's multi-dim
	// systems (balanced-ideal gain is 1.34x); steeper profiles like
	// Conv-3D reach ~1.6x and are asserted in the experiment tests.
	if gain < 1.15 {
		t.Errorf("Themis gain %.2fx on Conv-4D-like topology, want >= 1.15x (base %v, themis %v)",
			gain, base.Duration(), them.Duration())
	}
}

// TestThemisApproachesAggregateBandwidth: with balancing, a multi-dim
// All-Reduce should approach total-traffic/aggregate-BW — the mechanism
// behind the paper's "conventional + Themis matches wafer-scale at equal
// BW/NPU" observation.
func TestThemisApproachesAggregateBandwidth(t *testing.T) {
	top := topology.MustNew(
		ringDim(2, 250, 0),
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		ringDim(8, 100, 0),
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	size := units.ByteSize(1024 * units.MB)
	engT, _, ceT := newRig(t, top, WithChunks(128), WithPolicy(Themis))
	them := runCollective(t, engT, ceT, AllReduce, size, FullMachine(top))

	traffic := TrafficPerDim(top, AllReduce, size, FullMachine(top))
	var total units.ByteSize
	for _, b := range traffic {
		total += b
	}
	ideal := units.FromSeconds(float64(total) / float64(top.AggregateBandwidth()))
	ratio := float64(them.Duration()) / float64(ideal)
	if ratio > 1.30 {
		t.Errorf("Themis %v vs balanced ideal %v (ratio %.3f), want <= 1.30", them.Duration(), ideal, ratio)
	}
	if ratio < 0.99 {
		t.Errorf("Themis %v beat the physical lower bound %v; model broken", them.Duration(), ideal)
	}
}

func TestSubsetDimGroups(t *testing.T) {
	// Hybrid parallelism: MP over dim 0, DP over dim 1. Two MP groups run
	// concurrently and must not contend (disjoint links).
	top := topology.MustNew(ringDim(4, 100, 0), ringDim(2, 100, 0))
	eng, _, ce := newRig(t, top, WithChunks(1))
	g0, _ := NewGroup(top, []int{0}, 0)
	g1, _ := NewGroup(top, []int{0}, 4)
	var d0, d1 units.Time
	if err := ce.Start(AllReduce, 8*units.MB, g0, func(r Result) { d0 = r.Duration() }); err != nil {
		t.Fatal(err)
	}
	if err := ce.Start(AllReduce, 8*units.MB, g1, func(r Result) { d1 = r.Duration() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d0 == 0 || d0 != d1 {
		t.Errorf("concurrent disjoint groups: %v vs %v, want equal and nonzero", d0, d1)
	}
}

func TestStartValidation(t *testing.T) {
	top := topology.MustNew(ringDim(4, 100, 0))
	_, _, ce := newRig(t, top)
	if err := ce.Start(AllReduce, 0, FullMachine(top), nil); err == nil {
		t.Error("expected error for zero size")
	}
	if err := ce.Start(AllGather, 2, FullMachine(top), nil); err == nil {
		t.Error("expected error for shard smaller than one byte")
	}
}

func TestInitialShard(t *testing.T) {
	if InitialShard(AllGather, 1024, 4) != 256 {
		t.Error("AllGather shard wrong")
	}
	if InitialShard(AllReduce, 1024, 4) != 1024 {
		t.Error("AllReduce shard wrong")
	}
}
