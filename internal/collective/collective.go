// Package collective implements the system layer's collective communication
// machinery: the four collective patterns of Fig. 2 (Reduce-Scatter,
// All-Gather, All-Reduce, All-to-All) executed as multi-rail hierarchical
// collectives over multi-dimensional topologies (Section II-B), with
// chunk-level pipelining across dimension phases and two chunk schedulers —
// the baseline fixed-order scheduler and the Themis greedy load-balancing
// scheduler of the paper's case studies.
//
// Execution model. A collective over a group with logical spans s1..sn is
// split into chunks. Each chunk flows through one phase per span
// (Reduce-Scatter ascending then All-Gather descending for All-Reduce), and
// every phase reserves the group members' per-dimension links on the shared
// analytical network backend for the phase's sent+received traffic. Chunks
// therefore pipeline: while chunk 0 runs its second phase, chunk 1 occupies
// the first span's links. With enough chunks the collective's runtime
// converges to the bottleneck dimension's total serialization time, which
// is exactly the behaviour the paper's Table IV exhibits.
package collective

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/units"
)

// Op identifies a collective communication pattern (Fig. 2).
type Op int

// The four collective patterns used in distributed training.
const (
	ReduceScatter Op = iota
	AllGather
	AllReduce
	AllToAll
)

// String returns the conventional name of the pattern.
func (o Op) String() string {
	switch o {
	case ReduceScatter:
		return "Reduce-Scatter"
	case AllGather:
		return "All-Gather"
	case AllReduce:
		return "All-Reduce"
	case AllToAll:
		return "All-to-All"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Policy selects the chunk scheduler.
type Policy int

// Scheduling policies evaluated in Fig. 9(a).
const (
	// Baseline runs every chunk through spans in fixed order:
	// Reduce-Scatter ascending (Dim 1 first), All-Gather descending.
	Baseline Policy = iota
	// Themis plans each chunk's span permutation to balance projected
	// load across dimensions (Rashidi et al., ISCA 2022).
	Themis
)

// String names the policy.
func (p Policy) String() string {
	if p == Themis {
		return "Themis"
	}
	return "Baseline"
}

// Result summarizes one completed collective.
type Result struct {
	Op     Op
	Size   units.ByteSize
	Start  units.Time
	End    units.Time
	Chunks int
	// TrafficPerDim[d] is the sent+received bytes per NPU on physical
	// topology dimension d for this collective — the paper's Table IV
	// metric.
	TrafficPerDim []units.ByteSize
}

// Duration returns the collective's elapsed simulated time.
func (r Result) Duration() units.Time { return r.End - r.Start }

// Engine executes collectives over a shared analytical network backend.
type Engine struct {
	net    *network.Backend
	top    *topology.Topology
	policy Policy
	chunks int
	// projected[npu][dim] is the estimated remaining busy seconds that
	// in-flight collectives will still place on each NPU's dimension link
	// beyond what is already reserved. The Themis planner seeds its load
	// accumulators from it so concurrent collectives balance against each
	// other, not just against the queue state at issue time. Only Themis
	// engines carry the ledger; under the fixed scheduler it is nil and
	// collectives skip the O(members × spans) bookkeeping entirely.
	projected [][]float64

	// Planner scratch, reused across chunks (planning is synchronous).
	identScratch []int
	orderScratch []int
	usedScratch  []bool

	// Phase memoization (see memo.go). memo is the shared cross-run cache;
	// rec tracks the collective currently being recorded; active is the
	// in-flight replayed collective, if any.
	memo      *Memo
	keyPrefix string
	rec       *memoRec
	active    *memoReplay
	hookFn    func() // cached cancelReplay closure (hook + schedule watch)
	hookID    int    // registry id of the armed activity hook
}

// Option configures an Engine.
type Option func(*Engine)

// WithPolicy selects the chunk scheduler (default Baseline).
func WithPolicy(p Policy) Option { return func(e *Engine) { e.policy = p } }

// WithChunks sets the number of chunks collectives are split into
// (default 64). More chunks deepen the cross-dimension pipeline.
func WithChunks(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.chunks = n
		}
	}
}

// NewEngine builds a collective engine over the given backend.
func NewEngine(net *network.Backend, opts ...Option) *Engine {
	e := &Engine{net: net, top: net.Topology(), policy: Baseline, chunks: 64}
	for _, o := range opts {
		o(e)
	}
	if e.policy == Themis {
		n, d := e.top.NumNPUs(), e.top.NumDims()
		e.projected = make([][]float64, n)
		backing := make([]float64, n*d) // one allocation for all rows
		for i := range e.projected {
			e.projected[i] = backing[i*d : (i+1)*d : (i+1)*d]
		}
	}
	return e
}

// Policy returns the engine's scheduling policy.
func (e *Engine) Policy() Policy { return e.policy }

// Network returns the engine's backend.
func (e *Engine) Network() *network.Backend { return e.net }

// phase is one span traversal of one chunk.
type phase struct {
	span int // index into run.spans
	op   Op  // ReduceScatter, AllGather, or AllToAll phase semantics
}

// chunkState tracks one chunk's progress through its phases. It doubles as
// the chunk's timeline event (timeline.Actor): each phase completion
// re-schedules the chunk itself, so a collective's whole chunk wave costs
// one allocation per chunk, not one closure per phase hop.
type chunkState struct {
	size   units.ByteSize // current per-NPU data size D
	done   int            // completed phases
	phases []phase        // planned phase sequence (shared across chunks when fixed)
	eng    *Engine
	run    *collectiveRun
}

// Act implements timeline.Actor: advance this chunk to its next phase.
func (cs *chunkState) Act() { cs.eng.advance(cs.run, cs) }

// collectiveRun is the in-flight state of one collective.
type collectiveRun struct {
	op    Op
	size  units.ByteSize
	group Group
	// members lists the member ranks — nil for a fixed-scheduler
	// whole-machine run, which never needs them (its phases reserve whole
	// dimensions and full is set instead).
	members []int
	full    bool // group spans the entire machine
	spans   []Span
	start   units.Time
	pending int
	traffic []units.ByteSize
	// loads accumulates each span's projected busy seconds for the Themis
	// planner's balancing decisions.
	loads []float64
	// contrib is this collective's registration in the engine's projected
	// ledger, keyed by span, removed at completion.
	contrib []float64
	done    func(Result)
	chunks  int
}

// Start launches a collective of the given total size over a group and
// invokes done with the result when it completes. Size semantics follow
// ASTRA-sim's conventions:
//
//   - AllReduce(S):      every member starts with S bytes; ends with S.
//   - ReduceScatter(S):  every member starts with S; ends with S/|group|.
//   - AllGather(S):      every member starts with S/|group|; ends with S.
//   - AllToAll(S):       every member exchanges a total of S bytes.
func (e *Engine) Start(op Op, size units.ByteSize, g Group, done func(Result)) error {
	if e.active != nil {
		// A second collective is starting while a replay is in flight: its
		// phases would observe the fast-forwarded ledger. Fall back to live.
		e.cancelReplay()
	}
	if e.rec != nil {
		// A concurrent collective makes the in-flight recording impure.
		e.rec = nil
	}
	if size <= 0 {
		return fmt.Errorf("collective: non-positive size %d", size)
	}
	if len(g.Spans) == 0 {
		return fmt.Errorf("collective: group has no spans")
	}
	n := g.Size()
	full := n == e.top.NumNPUs()
	// A fixed-scheduler whole-machine collective — the dominant case for
	// training workloads — never consults individual member ranks: its
	// phases reserve whole dimensions through the backend's O(1) aggregate
	// path. Only subset groups and the Themis ledger materialize members.
	var members []int
	if !full || e.policy == Themis {
		members = g.Members(e.top)
		n = len(members)
	}
	if n < 2 {
		return fmt.Errorf("collective: group of size %d; need at least 2 members", n)
	}
	// Memoization: a whole-machine fixed-scheduler collective starting on a
	// quiet engine is a pure function of its key. Replay a cached result,
	// or record this run for the next identical one. (Themis is excluded:
	// its planning reads the floating-point projected ledger, whose residue
	// could perturb tie-breaks across contexts.)
	var rec *memoRec
	if e.memo != nil && full && e.policy != Themis && e.memoEligible() {
		key := e.memoKey(op, size)
		if ent := e.memo.lookup(key); ent != nil {
			e.replayMemo(ent, op, size, g, done)
			return nil
		}
		rec = &memoRec{key: key, start: e.net.Now(), startFired: e.net.EventsFired()}
		e.net.SnapshotLedger(&rec.ledger)
	}
	run := &collectiveRun{
		op:      op,
		size:    size,
		group:   g,
		members: members,
		full:    full,
		spans:   g.Spans,
		start:   e.net.Now(),
		traffic: make([]units.ByteSize, e.top.NumDims()),
		loads:   make([]float64, len(g.Spans)),
		done:    done,
		chunks:  e.chunks,
	}
	startSize := InitialShard(op, size, n)
	if startSize <= 0 {
		return fmt.Errorf("collective: %v of %v over %d members leaves an empty shard", op, size, n)
	}
	if e.policy == Themis {
		// Seed the planner with each dimension's congestion: the larger
		// of the already-reserved backlog and the projected remaining
		// work of concurrent collectives. Without this, a collective
		// would happily dump its heavy phases onto a dimension another
		// collective is about to saturate (e.g. an MP All-Reduce onto the
		// DP dimension).
		now := e.net.Now()
		for si, sp := range run.spans {
			backlog := (e.net.PhaseAvailability(members, sp.Phys) - now).Seconds()
			proj := 0.0
			for _, m := range members {
				if p := e.projected[m][sp.Phys]; p > proj {
					proj = p
				}
			}
			if backlog > proj {
				run.loads[si] = backlog
			} else {
				run.loads[si] = proj
			}
		}
	}
	// Register this collective's expected per-dimension load in the
	// projected ledger, using the balanced distribution (equal busy time on
	// every spanned dimension) Themis will actually schedule — except for
	// All-to-All, whose per-dim traffic is ordering-invariant and keeps the
	// fixed-order busy-time estimate. The ledger only exists under Themis;
	// the fixed scheduler never reads it, so those runs skip the
	// O(members × spans) registration entirely.
	if e.policy == Themis {
		run.contrib = make([]float64, len(run.spans))
		if op != AllToAll {
			traffic := spanTraffic(e.top, op, size, g)
			var totalBytes float64
			var aggBW float64
			for _, sp := range run.spans {
				aggBW += float64(e.top.Dims[sp.Phys].EffectiveBandwidth())
			}
			for _, b := range traffic {
				totalBytes += float64(b)
			}
			if aggBW > 0 {
				balanced := totalBytes / aggBW
				for si := range run.spans {
					run.contrib[si] = balanced
				}
			}
		} else {
			busy := spanBusyTimes(e.top, op, size, g)
			for si := range run.spans {
				run.contrib[si] = busy[si].Seconds()
			}
		}
		for si, sp := range run.spans {
			for _, m := range members {
				e.projected[m][sp.Phys] += run.contrib[si]
			}
		}
	}
	if units.ByteSize(run.chunks) > startSize {
		run.chunks = int(startSize) // never create sub-byte chunks
	}
	run.pending = run.chunks
	if rec != nil {
		rec.run = run
		e.rec = rec
	}
	// Under the fixed scheduler every chunk follows the same phase order,
	// so the whole wave shares one read-only plan; only Themis plans per
	// chunk (its load accumulators evolve between chunks).
	var shared []phase
	if e.policy != Themis || op == AllToAll {
		shared = e.basePlan(run)
	}
	for c := 0; c < run.chunks; c++ {
		cs := &chunkState{size: e.chunkSize(startSize, run.chunks, c), eng: e, run: run}
		if shared != nil {
			cs.phases = shared
		} else {
			e.planChunk(run, cs)
		}
		e.advance(run, cs)
	}
	return nil
}

// chunkSize splits size into chunks as evenly as possible.
func (e *Engine) chunkSize(size units.ByteSize, chunks, idx int) units.ByteSize {
	base := size / units.ByteSize(chunks)
	rem := size % units.ByteSize(chunks)
	if units.ByteSize(idx) < rem {
		return base + 1
	}
	return base
}

// basePlan builds the fixed multi-rail phase order shared by every chunk:
// Reduce-Scatter ascending (Dim 1 first), All-Gather descending. All-to-all
// keeps D constant through every phase, so per-dim traffic is
// ordering-invariant and the fixed ascending order applies under every
// scheduler (per-chunk order shuffling would only roughen the pipeline).
func (e *Engine) basePlan(run *collectiveRun) []phase {
	all := e.spanIdentity(len(run.spans))
	switch run.op {
	case ReduceScatter:
		return phasesFor(nil, all, ReduceScatter, false)
	case AllGather:
		return phasesFor(nil, all, AllGather, true)
	case AllToAll:
		return phasesFor(nil, all, AllToAll, false)
	case AllReduce:
		rs := phasesFor(make([]phase, 0, 2*len(all)), all, ReduceScatter, false)
		return phasesFor(rs, all, AllGather, true)
	}
	panic("collective: unknown op in basePlan")
}

// spanIdentity returns the reusable identity span permutation [0..n).
func (e *Engine) spanIdentity(n int) []int {
	if cap(e.identScratch) < n {
		e.identScratch = make([]int, n)
		for i := range e.identScratch {
			e.identScratch[i] = i
		}
	}
	return e.identScratch[:n]
}

// planChunk builds a Themis chunk's phase plan: a per-chunk span
// permutation that balances projected load across dimensions.
func (e *Engine) planChunk(run *collectiveRun, cs *chunkState) {
	switch run.op {
	case ReduceScatter:
		order := e.themisPlan(run, run.op, cs.size)
		cs.phases = phasesFor(nil, order, run.op, false)
	case AllGather:
		// All-Gather phase costs grow with position, so greedy assignment
		// must fix the most expensive (last) position first. Planning the
		// order backward is cost-identical to planning a Reduce-Scatter
		// forward from the final gathered size, so reuse that planner and
		// reverse its order.
		final := cs.size
		for _, s := range run.spans {
			final *= units.ByteSize(s.K)
		}
		order := reverseInts(e.themisPlan(run, ReduceScatter, final))
		cs.phases = phasesFor(nil, order, AllGather, false)
	case AllReduce:
		// The Reduce-Scatter and All-Gather halves are planned
		// independently: once every span has been reduce-scattered, each
		// NPU holds a 1/N shard and the gather may traverse spans in any
		// order, which roughly doubles the planner's balancing freedom.
		// The All-Gather half regrows the chunk to cs.size, so its
		// backward plan starts there. The planner's order scratch is
		// consumed into the phase plan before the second planning call
		// reuses it.
		cs.phases = phasesFor(make([]phase, 0, 2*len(run.spans)),
			e.themisPlan(run, ReduceScatter, cs.size), ReduceScatter, false)
		agOrder := reverseInts(e.themisPlan(run, ReduceScatter, cs.size))
		cs.phases = phasesFor(cs.phases, agOrder, AllGather, false)
	default:
		panic("collective: unexpected op in planChunk")
	}
}

func reverseInts(s []int) []int {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// themisPlan greedily assigns a span permutation for one half (or all) of
// the chunk's phases: positions are planned in execution order (largest
// Reduce-Scatter input first), and each position takes the span whose
// projected load after absorbing the phase cost is smallest. This is the
// load-balancing core of the Themis scheduler (Rashidi et al., ISCA 2022),
// legal because multi-rail hierarchical collectives admit any per-chunk
// span permutation. chunkSize is the per-NPU data size entering the first
// planned phase. The returned slice holds span indices.
func (e *Engine) themisPlan(run *collectiveRun, op Op, chunkSize units.ByteSize) []int {
	d := float64(chunkSize)
	// Planning is synchronous, so the per-engine scratch is safe to reuse;
	// callers copy the order into their phase plan before planning again.
	if cap(e.orderScratch) < len(run.spans) {
		e.orderScratch = make([]int, 0, len(run.spans))
		e.usedScratch = make([]bool, len(run.spans))
	}
	order := e.orderScratch[:0]
	used := e.usedScratch[:len(run.spans)]
	for i := range used {
		used[i] = false
	}
	for pos := 0; pos < len(run.spans); pos++ {
		best, bestLoad := -1, 0.0
		var bestCost float64
		for si, s := range run.spans {
			if used[si] {
				continue
			}
			k := float64(s.K)
			bw := float64(e.top.Dims[s.Phys].EffectiveBandwidth())
			if bw <= 0 {
				bw = 1 // treat unset bandwidth as uncosted
			}
			var cost float64
			switch op {
			case ReduceScatter, AllToAll:
				cost = 2 * d * (k - 1) / k / bw
			case AllGather:
				cost = 2 * d * (k - 1) / bw
			}
			if nl := run.loads[si] + cost; best == -1 || nl < bestLoad {
				best, bestLoad, bestCost = si, nl, cost
			}
		}
		used[best] = true
		run.loads[best] += bestCost
		order = append(order, best)
		switch op {
		case ReduceScatter:
			d /= float64(run.spans[best].K)
		case AllGather:
			d *= float64(run.spans[best].K)
		}
	}
	return order
}

// phasesFor appends one phase per span index onto dst (which may be nil).
func phasesFor(dst []phase, spanIdx []int, op Op, descending bool) []phase {
	out := dst
	if out == nil {
		out = make([]phase, 0, len(spanIdx))
	}
	if descending {
		for i := len(spanIdx) - 1; i >= 0; i-- {
			out = append(out, phase{span: spanIdx[i], op: op})
		}
		return out
	}
	for _, s := range spanIdx {
		out = append(out, phase{span: s, op: op})
	}
	return out
}

// advance issues the chunk's next phase, or completes the chunk.
func (e *Engine) advance(run *collectiveRun, cs *chunkState) {
	if cs.done >= len(cs.phases) {
		run.pending--
		if run.pending == 0 {
			e.finish(run)
		}
		return
	}
	ph := cs.phases[cs.done]
	sp := run.spans[ph.span]
	dim := e.top.Dims[sp.Phys]
	traffic := dim.PhaseTraffic(phaseKind(ph.op), cs.size, sp.K)
	var serEnd units.Time
	if run.full {
		_, serEnd = e.net.ReservePhaseAll(sp.Phys, traffic)
	} else {
		_, serEnd = e.net.ReservePhase(run.members, sp.Phys, traffic)
	}
	run.traffic[sp.Phys] += traffic
	cs.size = phaseOutput(ph.op, cs.size, sp.K)
	cs.done++
	completion := serEnd + dim.PhaseLatency(sp.K)
	// The chunk is its own timeline event: no closure per phase hop.
	e.net.ScheduleActor(completion-e.net.Now(), cs)
	if e.rec != nil && e.rec.run == run {
		e.rec.scheduled++
	}
}

func (e *Engine) finish(run *collectiveRun) {
	if run.contrib != nil {
		for si, sp := range run.spans {
			for _, m := range run.members {
				e.projected[m][sp.Phys] -= run.contrib[si]
			}
		}
	}
	if e.rec != nil && e.rec.run == run {
		e.maybeStoreMemo(run)
	}
	res := Result{
		Op:            run.op,
		Size:          run.size,
		Start:         run.start,
		End:           e.net.Now(),
		Chunks:        run.chunks,
		TrafficPerDim: run.traffic,
	}
	if run.done != nil {
		run.done(res)
	}
}

// phaseKind maps a primitive collective op to the model layer's phase
// identity. Composite ops (All-Reduce) have no single phase kind.
func phaseKind(op Op) topology.PhaseKind {
	switch op {
	case ReduceScatter:
		return topology.PhaseReduceScatter
	case AllGather:
		return topology.PhaseAllGather
	case AllToAll:
		return topology.PhaseAllToAll
	default:
		panic("collective: phaseKind on composite op")
	}
}

// phaseOutput returns the chunk's per-NPU size after the phase.
func phaseOutput(op Op, d units.ByteSize, k int) units.ByteSize {
	switch op {
	case ReduceScatter:
		return d / units.ByteSize(k)
	case AllGather:
		return d * units.ByteSize(k)
	case AllToAll:
		return d
	default:
		panic("collective: phaseOutput on composite op")
	}
}

// InitialShard returns the per-NPU starting data size for an op of total
// size S on a group with n members (see Start for the size conventions).
func InitialShard(op Op, size units.ByteSize, n int) units.ByteSize {
	if op == AllGather {
		return size / units.ByteSize(n)
	}
	return size
}
