package collective

import (
	"testing"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

func memoTestTopology() *topology.Topology {
	return topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(250), Latency: 50 * units.Nanosecond},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50), Latency: 2 * units.Microsecond},
	)
}

// runChain executes n back-to-back identical All-Reduces (each launched from
// the previous one's completion callback, the shape a training loop or a
// sweep re-evaluation produces) and returns the per-collective results plus
// the engine's final clock and event count.
func runChain(t *testing.T, n int, memo *Memo) ([]Result, units.Time, uint64) {
	t.Helper()
	top := memoTestTopology()
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	opts := []Option{WithChunks(8)}
	if memo != nil {
		opts = append(opts, WithMemo(memo))
	}
	ce := NewEngine(net, opts...)
	var results []Result
	var launch func()
	launch = func() {
		err := ce.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) {
			results = append(results, r)
			if len(results) < n {
				launch()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	launch()
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("completed %d collectives, want %d", len(results), n)
	}
	return results, eng.Now(), eng.Fired()
}

func sameResult(a, b Result) bool {
	if a.Op != b.Op || a.Size != b.Size || a.Start != b.Start || a.End != b.End || a.Chunks != b.Chunks {
		return false
	}
	if len(a.TrafficPerDim) != len(b.TrafficPerDim) {
		return false
	}
	for d := range a.TrafficPerDim {
		if a.TrafficPerDim[d] != b.TrafficPerDim[d] {
			return false
		}
	}
	return true
}

// TestMemoHitsAndByteIdentity locks in the memoization contract: repeated
// identical collectives on a quiet machine replay from the cache (n-1 hits
// after the first miss), and every observable — per-collective results, the
// final clock, and the fired-event count — matches a memo-less run exactly.
func TestMemoHitsAndByteIdentity(t *testing.T) {
	const n = 5
	plain, plainEnd, plainFired := runChain(t, n, nil)
	memo := NewMemo()
	memoed, memoEnd, memoFired := runChain(t, n, memo)

	if memoEnd != plainEnd {
		t.Errorf("final clock diverged: memo %v, plain %v", memoEnd, plainEnd)
	}
	if memoFired != plainFired {
		t.Errorf("fired-event count diverged: memo %d, plain %d", memoFired, plainFired)
	}
	for i := range plain {
		if !sameResult(memoed[i], plain[i]) {
			t.Errorf("collective %d diverged: memo %+v, plain %+v", i, memoed[i], plain[i])
		}
	}
	hits, misses, entries := memo.Stats()
	if hits != n-1 || misses != 1 || entries != 1 {
		t.Errorf("Stats = (%d hits, %d misses, %d entries), want (%d, 1, 1)", hits, misses, entries, n-1)
	}

	// The table is content-addressed across engines: a fresh engine over an
	// identical machine hits the warm entry on its very first collective.
	fresh, freshEnd, freshFired := runChain(t, 1, memo)
	if freshEnd != plain[0].End || freshFired == 0 || !sameResult(fresh[0], plain[0]) {
		t.Errorf("cross-engine replay diverged: %+v, want %+v", fresh[0], plain[0])
	}
	if hits2, _, _ := memo.Stats(); hits2 != hits+1 {
		t.Errorf("cross-engine run recorded %d hits, want %d", hits2, hits+1)
	}
}

// TestMemoRollbackOnObservation drives the unconditional-correctness path:
// a replay is armed from a warm memo, then foreign traffic observes the
// network at the same instant. The replay must roll back and re-run live,
// so the output stays byte-identical to a memo-less engine under the same
// interference.
func TestMemoRollbackOnObservation(t *testing.T) {
	memo := NewMemo()
	runChain(t, 1, memo) // warm the table on a quiet machine

	run := func(m *Memo) (Result, units.Time, units.Time) {
		top := memoTestTopology()
		eng := timeline.New()
		net := network.NewBackend(eng, top)
		opts := []Option{WithChunks(8)}
		if m != nil {
			opts = append(opts, WithMemo(m))
		}
		ce := NewEngine(net, opts...)
		var res Result
		if err := ce.Start(AllReduce, 4*units.MB, FullMachine(top), func(r Result) { res = r }); err != nil {
			t.Fatal(err)
		}
		// Foreign point-to-point traffic sharing the collective's links:
		// the memo entry was recorded on a quiet machine, so replaying it
		// here would be wrong — the backend observation must cancel it.
		var recvAt units.Time
		net.SimRecv(0, 1, 7, 2*units.MB, func(network.Message) { recvAt = eng.Now() })
		net.SimSend(0, 1, 7, 2*units.MB, nil)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return res, eng.Now(), recvAt
	}

	plainRes, plainEnd, plainRecv := run(nil)
	memoRes, memoEnd, memoRecv := run(memo)
	if !sameResult(memoRes, plainRes) || memoEnd != plainEnd || memoRecv != plainRecv {
		t.Errorf("rollback output diverged: memo (%+v end=%v recv=%v), plain (%+v end=%v recv=%v)",
			memoRes, memoEnd, memoRecv, plainRes, plainEnd, plainRecv)
	}
	// The quiet entry must survive the rollback untouched and keep serving
	// quiet engines.
	quiet, _, _ := runChain(t, 1, memo)
	base, _, _ := runChain(t, 1, nil)
	if !sameResult(quiet[0], base[0]) {
		t.Errorf("entry corrupted by rollback: %+v, want %+v", quiet[0], base[0])
	}
}
