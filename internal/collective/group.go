package collective

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Span is one logical dimension of a communicator group, mapped onto a
// physical topology dimension. A dimension-aligned group uses one span per
// physical dimension with K equal to the dimension size. Strided spans
// express subgroups inside a physical dimension — e.g. on a 1-D wafer of
// 512 NPUs, a model-parallel group of 16 is Span{Phys: 0, K: 16, Stride: 1}
// and its data-parallel counterpart is Span{Phys: 0, K: 32, Stride: 16}.
// The logical collective algorithm runs over K members and consumes the
// physical dimension's bandwidth.
type Span struct {
	// Phys is the physical topology dimension this span communicates on.
	Phys int
	// K is the number of group members along this logical dimension.
	K int
	// Stride is the member-to-member distance in physical-dimension
	// coordinates (1 = adjacent).
	Stride int
}

// Group is a communicator: the set of NPUs reached from Base by varying
// each span's logical coordinate.
type Group struct {
	Spans []Span
	// Base is a member rank; its coordinates outside the spans identify
	// the communicator instance.
	Base int
}

// NewGroup builds a dimension-aligned group spanning the given physical
// dimensions in full, the common case for hybrid-parallel mappings.
func NewGroup(top *topology.Topology, dims []int, base int) (Group, error) {
	if len(dims) == 0 {
		return Group{}, fmt.Errorf("collective: group must span at least one dimension")
	}
	sorted := append([]int(nil), dims...)
	sort.Ints(sorted)
	spans := make([]Span, 0, len(sorted))
	for i, d := range sorted {
		if i > 0 && sorted[i-1] == d {
			return Group{}, fmt.Errorf("collective: duplicate dim %d", d)
		}
		if d < 0 || d >= top.NumDims() {
			return Group{}, fmt.Errorf("collective: dim %d out of range [0,%d)", d, top.NumDims())
		}
		spans = append(spans, Span{Phys: d, K: top.Dims[d].Size, Stride: 1})
	}
	return NewSpanGroup(top, spans, base)
}

// NewSpanGroup builds a group from explicit spans, validating that every
// member lands inside the topology without wrapping.
func NewSpanGroup(top *topology.Topology, spans []Span, base int) (Group, error) {
	if len(spans) == 0 {
		return Group{}, fmt.Errorf("collective: group must have at least one span")
	}
	if base < 0 || base >= top.NumNPUs() {
		return Group{}, fmt.Errorf("collective: base rank %d out of range", base)
	}
	baseCoord := top.Coord(base)
	for i, s := range spans {
		if s.Phys < 0 || s.Phys >= top.NumDims() {
			return Group{}, fmt.Errorf("collective: span %d physical dim %d out of range", i, s.Phys)
		}
		if s.K < 2 {
			return Group{}, fmt.Errorf("collective: span %d needs K >= 2, got %d", i, s.K)
		}
		if s.Stride < 1 {
			return Group{}, fmt.Errorf("collective: span %d needs stride >= 1, got %d", i, s.Stride)
		}
		reach := baseCoord[s.Phys]%s.Stride + (s.K-1)*s.Stride
		if reach >= top.Dims[s.Phys].Size {
			return Group{}, fmt.Errorf("collective: span %d (K=%d, stride=%d) exceeds dim %d size %d",
				i, s.K, s.Stride, s.Phys, top.Dims[s.Phys].Size)
		}
	}
	return Group{Spans: append([]Span(nil), spans...), Base: base}, nil
}

// FullMachine returns the group spanning every physical dimension in full.
func FullMachine(top *topology.Topology) Group {
	spans := make([]Span, top.NumDims())
	for i := range spans {
		spans[i] = Span{Phys: i, K: top.Dims[i].Size, Stride: 1}
	}
	return Group{Spans: spans, Base: 0}
}

// Size returns the number of group members.
func (g Group) Size() int {
	n := 1
	for _, s := range g.Spans {
		n *= s.K
	}
	return n
}

// Members enumerates the member ranks in ascending order. The group's
// logical origin along each span is the base rank's coordinate modulo the
// span's stride footprint (so any member can serve as Base).
func (g Group) Members(top *topology.Topology) []int {
	coord := top.Coord(g.Base)
	for _, s := range g.Spans {
		// Reset the span's coordinate to the group's origin: the base
		// member's position minus however many whole strides it sits in.
		coord[s.Phys] -= (coord[s.Phys] / s.Stride % s.K) * s.Stride
	}
	members := []int{top.Rank(coord)}
	for _, s := range g.Spans {
		step := top.DimStride(s.Phys) * s.Stride
		grown := make([]int, 0, len(members)*s.K)
		for i := 0; i < s.K; i++ {
			for _, m := range members {
				grown = append(grown, m+i*step)
			}
		}
		members = grown
	}
	if !sort.IntsAreSorted(members) {
		sort.Ints(members)
	}
	return members
}

// Signature returns a canonical identity for the communicator instance:
// two NPUs issuing "the same" collective produce equal signatures exactly
// when they belong to the same group instance. It is the lowest member
// rank — the group origin, computed arithmetically — plus the span layout,
// so signing costs O(dims) rather than materializing the member list.
func (g Group) Signature(top *topology.Topology) string {
	coord := top.Coord(g.Base)
	for _, s := range g.Spans {
		coord[s.Phys] -= (coord[s.Phys] / s.Stride % s.K) * s.Stride
	}
	return fmt.Sprintf("%d/%v", top.Rank(coord), g.Spans)
}
