package collective

import (
	"repro/internal/topology"
	"repro/internal/units"
)

// Estimate is the closed-form counterpart of the event-driven engine: it
// predicts a collective's runtime on an otherwise-idle network without
// simulating chunk events. It exists for fast first-order sweeps and as an
// independent cross-check of the event-driven model (the two are asserted
// to agree in tests).
//
// Under chunk pipelining, each span acts as a pipeline stage whose total
// busy time is traffic / BW of its physical dimension. With C chunks the
// makespan is the bottleneck stage's busy time plus the ramp through the
// other stages at single-chunk granularity, plus per-phase latency:
//
//	T ≈ max_s busy_s + Σ_{s≠bottleneck} busy_s/C + Σ_phases latency
//
// For the Themis policy the per-dimension loads are balanced, so the bound
// becomes total traffic over aggregate bandwidth (floored by the least
// load any legal ordering must still place on each dimension).
//
// All per-span costs come from the dimension-model hooks (phase traffic,
// phase latency, effective bandwidth), so the estimator prices every
// registered block — including derated oversubscribed switches — with the
// same arithmetic the engine executes.
func Estimate(top *topology.Topology, op Op, size units.ByteSize, g Group, policy Policy, chunks int) units.Time {
	if chunks <= 0 {
		chunks = 64
	}
	n := g.Size()
	shard := InitialShard(op, size, n)

	var latency units.Time
	for _, s := range g.Spans {
		dim := top.Dims[s.Phys]
		latency += dim.PhaseLatency(s.K)
		if op == AllReduce {
			latency += dim.PhaseLatency(s.K) // RS and AG each traverse the span
		}
	}

	busyPerSpan := spanBusyTimes(top, op, size, g)

	if policy == Themis {
		var totalSec float64
		var aggBW units.Bandwidth
		for _, s := range g.Spans {
			aggBW += top.Dims[s.Phys].EffectiveBandwidth()
		}
		var total units.Time
		for _, b := range busyPerSpan {
			total += b
		}
		// Total traffic time re-expressed against aggregate bandwidth:
		// traffic bytes are order-invariant, so baseline per-span traffic
		// serves for the total.
		var totalBytes float64
		traffic := TrafficPerDim(top, op, size, g)
		for _, b := range traffic {
			totalBytes += float64(b)
		}
		if aggBW > 0 {
			totalSec = totalBytes / float64(aggBW)
		}
		t := units.FromSeconds(totalSec)
		if floor := minMandatoryBusy(top, op, shard, g); floor > t {
			t = floor
		}
		return t + latency
	}

	// Baseline: bottleneck + ramp.
	var bottleneck, ramp units.Time
	for _, b := range busyPerSpan {
		if b > bottleneck {
			bottleneck = b
		}
	}
	for _, b := range busyPerSpan {
		if b != bottleneck {
			ramp += b / units.Time(chunks)
		}
	}
	return bottleneck + ramp + latency
}

// spanBusyTimes returns each span's serialization time under the baseline
// fixed ordering, at the dimensions' effective bandwidths.
func spanBusyTimes(top *topology.Topology, op Op, size units.ByteSize, g Group) []units.Time {
	traffic := spanTraffic(top, op, size, g)
	out := make([]units.Time, len(g.Spans))
	for i, s := range g.Spans {
		out[i] = top.Dims[s.Phys].TransferTime(traffic[i])
	}
	return out
}

// spanTraffic returns the per-NPU sent+received bytes on each span under
// the baseline ordering (Reduce-Scatter ascending, All-Gather descending),
// as priced by each span's dimension model.
func spanTraffic(top *topology.Topology, op Op, size units.ByteSize, g Group) []units.ByteSize {
	n := g.Size()
	out := make([]units.ByteSize, len(g.Spans))
	dim := func(i int) topology.Dim { return top.Dims[g.Spans[i].Phys] }
	switch op {
	case ReduceScatter:
		d := size
		for i, s := range g.Spans {
			out[i] = dim(i).PhaseTraffic(topology.PhaseReduceScatter, d, s.K)
			d /= units.ByteSize(s.K)
		}
	case AllGather:
		d := InitialShard(AllGather, size, n)
		for i := len(g.Spans) - 1; i >= 0; i-- {
			out[i] = dim(i).PhaseTraffic(topology.PhaseAllGather, d, g.Spans[i].K)
			d *= units.ByteSize(g.Spans[i].K)
		}
	case AllReduce:
		d := size
		after := make([]units.ByteSize, len(g.Spans))
		for i, s := range g.Spans {
			out[i] += dim(i).PhaseTraffic(topology.PhaseReduceScatter, d, s.K)
			d /= units.ByteSize(s.K)
			after[i] = d
		}
		for i := len(g.Spans) - 1; i >= 0; i-- {
			out[i] += dim(i).PhaseTraffic(topology.PhaseAllGather, after[i], g.Spans[i].K)
		}
	case AllToAll:
		for i, s := range g.Spans {
			out[i] = dim(i).PhaseTraffic(topology.PhaseAllToAll, size, s.K)
		}
	}
	return out
}

// TrafficPerDim returns the per-NPU sent+received bytes accumulated on each
// physical topology dimension for the collective under baseline ordering —
// Table IV's "message size per dimension". The slice is indexed by physical
// dimension.
func TrafficPerDim(top *topology.Topology, op Op, size units.ByteSize, g Group) []units.ByteSize {
	perSpan := spanTraffic(top, op, size, g)
	out := make([]units.ByteSize, top.NumDims())
	for i, s := range g.Spans {
		out[s.Phys] += perSpan[i]
	}
	return out
}

// minMandatoryBusy returns the largest per-span busy time achievable under
// the most favourable per-chunk ordering — every phase on span s run at the
// smallest D any legal ordering allows. It lower-bounds what Themis
// balancing can reach.
func minMandatoryBusy(top *topology.Topology, op Op, shard units.ByteSize, g Group) units.Time {
	var worst units.Time
	for i, s := range g.Spans {
		k := s.K
		dim := top.Dims[s.Phys]
		// Smallest reduce-scatter input for this span: run it last, after
		// every other span has divided D down.
		rsMin := shard
		for j, o := range g.Spans {
			if j != i {
				rsMin /= units.ByteSize(o.K)
			}
		}
		var traffic units.ByteSize
		switch op {
		case ReduceScatter:
			traffic = dim.PhaseTraffic(topology.PhaseReduceScatter, rsMin, k)
		case AllToAll:
			// All-to-all phases keep D constant; no ordering freedom.
			traffic = dim.PhaseTraffic(topology.PhaseAllToAll, shard, k)
		case AllGather:
			// Smallest all-gather input: run this span first, before growth.
			traffic = dim.PhaseTraffic(topology.PhaseAllGather, shard, k)
		case AllReduce:
			// RS at its minimum plus AG at the post-RS minimum (shard/N).
			traffic = dim.PhaseTraffic(topology.PhaseReduceScatter, rsMin, k) +
				dim.PhaseTraffic(topology.PhaseAllGather, rsMin/units.ByteSize(k), k)
		}
		if t := dim.TransferTime(traffic); t > worst {
			worst = t
		}
	}
	return worst
}
