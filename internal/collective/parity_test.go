package collective

import (
	"fmt"
	"testing"

	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Estimate-vs-event-sim parity: the closed-form Estimate and the
// event-driven engine share the dimension-model hooks, so for every
// registered block they must agree on All-Reduce and All-Gather runtimes.

// parityDims returns one single-dimension topology per registered block,
// all at 100 GB/s with a 500 ns hop latency.
func parityDims() []topology.Dim {
	mk := func(kind topology.DimModel, size int) topology.Dim {
		return topology.Dim{Kind: kind, Size: size, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond}
	}
	return []topology.Dim{
		mk(topology.Ring, 8),
		mk(topology.FullyConnected, 8),
		mk(topology.Switch, 8),
		mk(topology.Mesh, 8),
		mk(topology.Torus2D(4, 2), 8),
		mk(topology.OversubscribedSwitch(4), 8),
	}
}

func runEngineOnce(t *testing.T, top *topology.Topology, op Op, size units.ByteSize, chunks int, policy Policy) units.Time {
	t.Helper()
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	ce := NewEngine(net, WithChunks(chunks), WithPolicy(policy))
	var res Result
	if err := ce.Start(op, size, FullMachine(top), func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return res.Duration()
}

// TestEstimateMatchesEngineSingleDim: on a single dimension the baseline
// estimate is exact for every block (one pipeline stage, no ramp term).
func TestEstimateMatchesEngineSingleDim(t *testing.T) {
	for _, d := range parityDims() {
		top := topology.MustNew(d)
		for _, op := range []Op{AllReduce, AllGather} {
			t.Run(fmt.Sprintf("%s/%v", d.Format(), op), func(t *testing.T) {
				const size = 64 * units.MB
				got := runEngineOnce(t, top, op, size, 1, Baseline)
				want := Estimate(top, op, size, FullMachine(top), Baseline, 1)
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				if float64(diff) > 0.001*float64(want) {
					t.Errorf("engine %v vs estimate %v", got, want)
				}
			})
		}
	}
}

// TestEstimateMatchesEngineStacked: a three-dim stack mixing new and
// classic blocks must agree within the pipelining approximation for both
// schedulers.
func TestEstimateMatchesEngineStacked(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Torus2D(2, 2), Size: 4, Bandwidth: units.GBps(200), Latency: 500 * units.Nanosecond},
		topology.Dim{Kind: topology.Mesh, Size: 4, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond},
		topology.Dim{Kind: topology.OversubscribedSwitch(2), Size: 4, Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond},
	)
	for _, op := range []Op{AllReduce, AllGather} {
		for _, policy := range []Policy{Baseline, Themis} {
			t.Run(fmt.Sprintf("%v/%v", op, policy), func(t *testing.T) {
				const size = 256 * units.MB
				got := runEngineOnce(t, top, op, size, 64, policy)
				want := Estimate(top, op, size, FullMachine(top), policy, 64)
				ratio := float64(got) / float64(want)
				// The Themis estimate is a balanced-load lower bound; on
				// dimension stacks with very uneven effective bandwidths
				// (the derated mesh here) the engine's greedy packing can
				// sit up to ~25% above it. Baseline is a direct model of
				// the fixed schedule and stays within 15%.
				hi := 1.15
				if policy == Themis {
					hi = 1.3
				}
				if ratio < 0.85 || ratio > hi {
					t.Errorf("engine %v vs estimate %v (ratio %.3f)", got, want, ratio)
				}
			})
		}
	}
}

// TestOversubscriptionSlowsCollective: SW(k,o) must run exactly o times
// slower than SW(k) on a bandwidth-bound collective (zero latency), in
// both the engine and the estimator.
func TestOversubscriptionSlowsCollective(t *testing.T) {
	mk := func(kind topology.DimModel) *topology.Topology {
		return topology.MustNew(topology.Dim{Kind: kind, Size: 8, Bandwidth: units.GBps(200)})
	}
	plain, tapered := mk(topology.Switch), mk(topology.OversubscribedSwitch(4))
	const size = 128 * units.MB
	pe := runEngineOnce(t, plain, AllReduce, size, 16, Baseline)
	te := runEngineOnce(t, tapered, AllReduce, size, 16, Baseline)
	if te != 4*pe {
		t.Errorf("engine: tapered %v, want exactly 4x plain %v", te, pe)
	}
	pc := Estimate(plain, AllReduce, size, FullMachine(plain), Baseline, 16)
	tc := Estimate(tapered, AllReduce, size, FullMachine(tapered), Baseline, 16)
	if tc != 4*pc {
		t.Errorf("estimate: tapered %v, want exactly 4x plain %v", tc, pc)
	}
}

// TestMessageLevelMatchesChunkModelNewBlocks extends the Table I
// cross-validation to the Mesh and Torus2D blocks: the aggregate
// chunk-phase model must agree with the model-scheduled per-message
// algorithms on bandwidth-dominated collectives.
func TestMessageLevelMatchesChunkModelNewBlocks(t *testing.T) {
	kinds := []topology.Dim{
		{Kind: topology.Mesh, Size: 8, Bandwidth: units.GBps(100)},
		{Kind: topology.Torus2D(4, 2), Size: 8, Bandwidth: units.GBps(100)},
		{Kind: topology.OversubscribedSwitch(2), Size: 8, Bandwidth: units.GBps(100)},
	}
	for _, d := range kinds {
		top := topology.MustNew(d)
		for _, op := range []Op{ReduceScatter, AllGather, AllReduce} {
			t.Run(fmt.Sprintf("%s/%v", d.Format(), op), func(t *testing.T) {
				engM := timeline.New()
				netM := network.NewBackend(engM, top)
				var msgTime units.Time
				if err := RunMessageLevel(netM, op, 8*units.MB, 0, 0, 0, func(at units.Time) { msgTime = at }); err != nil {
					t.Fatal(err)
				}
				if _, err := engM.Run(); err != nil {
					t.Fatal(err)
				}
				chunk := runEngineOnce(t, top, op, 8*units.MB, 1, Baseline)
				if msgTime == 0 {
					t.Fatal("message-level time is zero")
				}
				diff := chunk - msgTime
				if diff < 0 {
					diff = -diff
				}
				if float64(diff)/float64(msgTime) > 0.01 {
					t.Errorf("chunk model %v vs message level %v", chunk, msgTime)
				}
			})
		}
	}
}
