package convert

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/et"
)

func raw(t *testing.T, v interface{}) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sampleTrace(t *testing.T) *PyTorchTrace {
	t.Helper()
	mk := func(rank, peer int, sendFirst bool) PyTorchGraph {
		kind := "nccl:send"
		other := "nccl:recv"
		if !sendFirst {
			kind, other = other, kind
		}
		_ = other
		return PyTorchGraph{
			Rank: rank,
			Nodes: []PyTorchNode{
				{ID: 1, Name: "aten::matmul", Attrs: map[string]json.RawMessage{
					"flops": raw(t, 1e9), "mem_bytes": raw(t, 1<<20),
				}},
				{ID: 2, Name: "nccl:all_reduce", CtrlDeps: []int{1}, Attrs: map[string]json.RawMessage{
					"comm_bytes": raw(t, 1<<22),
				}},
				{ID: 3, Name: "mem::store", CtrlDeps: []int{2}, Attrs: map[string]json.RawMessage{
					"tensor_bytes": raw(t, 4096), "remote": raw(t, true),
				}},
				{ID: 4, Name: kind, CtrlDeps: []int{3}, Attrs: map[string]json.RawMessage{
					"comm_bytes": raw(t, 8192), "peer": raw(t, peer), "tag": raw(t, 5),
				}},
			},
		}
	}
	return &PyTorchTrace{
		Name:    "sample",
		NumNPUs: 2,
		Graphs:  []PyTorchGraph{mk(0, 1, true), mk(1, 0, false)},
	}
}

func TestConvertClassifiesOperators(t *testing.T) {
	out, err := Convert(sampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	nodes := out.Graphs[0].Nodes
	if nodes[0].Kind != et.KindCompute || nodes[0].FLOPs != 1e9 {
		t.Errorf("compute node = %+v", nodes[0])
	}
	if nodes[1].Kind != et.KindComm || nodes[1].Collective != et.CollAllReduce || nodes[1].CommBytes != 1<<22 {
		t.Errorf("collective node = %+v", nodes[1])
	}
	if nodes[2].Kind != et.KindMemory || nodes[2].MemLocation != et.MemRemote || nodes[2].MemOp != et.MemStore {
		t.Errorf("memory node = %+v", nodes[2])
	}
	if nodes[3].Kind != et.KindSend || nodes[3].Peer != 1 || nodes[3].Tag != 5 {
		t.Errorf("send node = %+v", nodes[3])
	}
	if out.Graphs[1].Nodes[3].Kind != et.KindRecv {
		t.Errorf("recv node = %+v", out.Graphs[1].Nodes[3])
	}
}

func TestConvertPreservesDeps(t *testing.T) {
	out, err := Convert(sampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Graphs[0].Nodes[1].Deps; len(got) != 1 || got[0] != 1 {
		t.Errorf("deps = %v", got)
	}
}

func TestConvertGroupSpans(t *testing.T) {
	tr := &PyTorchTrace{
		NumNPUs: 4,
		Graphs: []PyTorchGraph{
			{Rank: 0, Nodes: []PyTorchNode{{ID: 1, Name: "nccl:all_gather", Attrs: map[string]json.RawMessage{
				"comm_bytes":  raw(t, 4096),
				"group_spans": raw(t, []et.SpanRef{{Phys: 0, K: 2, Stride: 1}}),
				"in_switch":   raw(t, true),
			}}}},
			{Rank: 1, Nodes: []PyTorchNode{{ID: 1, Name: "aten::relu"}}},
			{Rank: 2, Nodes: []PyTorchNode{{ID: 1, Name: "aten::relu"}}},
			{Rank: 3, Nodes: []PyTorchNode{{ID: 1, Name: "aten::relu"}}},
		},
	}
	out, err := Convert(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := out.Graphs[0].Nodes[0]
	if n.Group == nil || len(n.Group.Spans) != 1 || n.Group.Spans[0].K != 2 {
		t.Errorf("group = %+v", n.Group)
	}
	if !n.InSwitch {
		t.Error("in_switch lost")
	}
}

func TestConvertRejectsUnknownOps(t *testing.T) {
	cases := []string{"mysterious_op", "nccl:broadcast", "mem::flush"}
	for _, name := range cases {
		tr := &PyTorchTrace{
			NumNPUs: 1,
			Graphs:  []PyTorchGraph{{Rank: 0, Nodes: []PyTorchNode{{ID: 1, Name: name}}}},
		}
		if _, err := Convert(tr); err == nil {
			t.Errorf("operator %q accepted", name)
		}
	}
}

func TestConvertValidatesResult(t *testing.T) {
	// An orphan send must be caught by ET validation after conversion.
	tr := &PyTorchTrace{
		NumNPUs: 2,
		Graphs: []PyTorchGraph{
			{Rank: 0, Nodes: []PyTorchNode{{ID: 1, Name: "nccl:send", Attrs: map[string]json.RawMessage{
				"comm_bytes": raw(t, 64), "peer": raw(t, 1),
			}}}},
			{Rank: 1, Nodes: []PyTorchNode{{ID: 1, Name: "aten::relu"}}},
		},
	}
	if _, err := Convert(tr); err == nil {
		t.Error("orphan send accepted")
	}
	if _, err := Convert(&PyTorchTrace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestDecodePyTorchRoundTrip(t *testing.T) {
	src := sampleTrace(t)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(src); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePyTorch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNPUs != 2 || len(got.Graphs) != 2 || got.Graphs[0].Nodes[0].Name != "aten::matmul" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodePyTorch(strings.NewReader("nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestConvertedTraceRunsEndToEnd(t *testing.T) {
	out, err := Convert(sampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NodeCount() != 8 {
		t.Errorf("NodeCount = %d", out.NodeCount())
	}
}
