// Package convert translates framework-native execution graphs into the
// ASTRA-sim ET format, mirroring the paper's converter pipeline
// (Section IV-A): "we provide a converter from any ET (e.g., PyTorch ET)
// to ASTRA-sim ET". The input format implemented here is a PARAM-style
// PyTorch execution graph — the JSON produced by PyTorch's
// ExecutionGraphObserver (the paper's Snippet 1) — reduced to the fields
// the simulator needs. Operator names drive the node classification:
//
//	aten::*                          -> compute nodes
//	nccl:all_reduce / nccl:all_gather
//	nccl:reduce_scatter / nccl:all_to_all -> collective nodes
//	nccl:send / nccl:recv            -> point-to-point nodes
//	mem::load / mem::store           -> memory nodes
package convert

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/et"
)

// PyTorchGraph is the per-rank PARAM-style execution graph.
type PyTorchGraph struct {
	// SchemaVersion matches the PyTorch execution-graph observer output.
	SchemaVersion string        `json:"schema,omitempty"`
	Rank          int           `json:"rank"`
	Nodes         []PyTorchNode `json:"nodes"`
}

// PyTorchNode is one recorded operator.
type PyTorchNode struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// CtrlDeps lists the operator's control/data dependencies.
	CtrlDeps []int `json:"ctrl_deps,omitempty"`
	// Attrs carries operator metadata; recognized keys: "flops",
	// "mem_bytes", "tensor_bytes", "comm_bytes", "peer", "tag",
	// "in_switch", "group_spans".
	Attrs map[string]json.RawMessage `json:"attrs,omitempty"`
}

// PyTorchTrace is a whole-job capture: one graph per rank.
type PyTorchTrace struct {
	Name    string         `json:"name,omitempty"`
	NumNPUs int            `json:"num_npus"`
	Graphs  []PyTorchGraph `json:"graphs"`
}

// DecodePyTorch reads a PARAM-style trace from JSON.
func DecodePyTorch(r io.Reader) (*PyTorchTrace, error) {
	var t PyTorchTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("convert: decode pytorch trace: %w", err)
	}
	return &t, nil
}

// Convert translates a PyTorch-style trace into a validated ASTRA-sim ET.
func Convert(src *PyTorchTrace) (*et.Trace, error) {
	if src.NumNPUs <= 0 {
		return nil, fmt.Errorf("convert: trace needs a positive NPU count")
	}
	out := &et.Trace{Name: src.Name, NumNPUs: src.NumNPUs}
	for i := range src.Graphs {
		g, err := convertGraph(&src.Graphs[i])
		if err != nil {
			return nil, err
		}
		out.Graphs = append(out.Graphs, g)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("convert: converted trace invalid: %w", err)
	}
	return out, nil
}

func convertGraph(src *PyTorchGraph) (*et.Graph, error) {
	g := &et.Graph{NPU: src.Rank}
	for i := range src.Nodes {
		n, err := convertNode(&src.Nodes[i])
		if err != nil {
			return nil, fmt.Errorf("convert: rank %d node %d (%s): %w", src.Rank, src.Nodes[i].ID, src.Nodes[i].Name, err)
		}
		g.Nodes = append(g.Nodes, n)
	}
	return g, nil
}

func convertNode(src *PyTorchNode) (*et.Node, error) {
	n := &et.Node{
		ID:   src.ID,
		Name: src.Name,
		Deps: append([]int(nil), src.CtrlDeps...),
	}
	switch {
	case strings.HasPrefix(src.Name, "aten::"):
		n.Kind = et.KindCompute
		n.FLOPs = attrFloat(src.Attrs, "flops")
		n.MemBytes = attrInt(src.Attrs, "mem_bytes")
	case strings.HasPrefix(src.Name, "mem::"):
		n.Kind = et.KindMemory
		switch src.Name {
		case "mem::load":
			n.MemOp = et.MemLoad
		case "mem::store":
			n.MemOp = et.MemStore
		default:
			return nil, fmt.Errorf("unknown memory op %q", src.Name)
		}
		n.MemLocation = et.MemLocal
		if attrBool(src.Attrs, "remote") {
			n.MemLocation = et.MemRemote
		}
		n.TensorBytes = attrInt(src.Attrs, "tensor_bytes")
	case strings.HasPrefix(src.Name, "nccl:"):
		op := strings.TrimPrefix(src.Name, "nccl:")
		switch op {
		case "all_reduce":
			n.Kind, n.Collective = et.KindComm, et.CollAllReduce
		case "all_gather":
			n.Kind, n.Collective = et.KindComm, et.CollAllGather
		case "reduce_scatter":
			n.Kind, n.Collective = et.KindComm, et.CollReduceScatter
		case "all_to_all":
			n.Kind, n.Collective = et.KindComm, et.CollAllToAll
		case "send":
			n.Kind = et.KindSend
			n.Peer = int(attrInt(src.Attrs, "peer"))
			n.Tag = int(attrInt(src.Attrs, "tag"))
		case "recv":
			n.Kind = et.KindRecv
			n.Peer = int(attrInt(src.Attrs, "peer"))
			n.Tag = int(attrInt(src.Attrs, "tag"))
		default:
			return nil, fmt.Errorf("unknown nccl op %q", op)
		}
		n.CommBytes = attrInt(src.Attrs, "comm_bytes")
		if n.Kind == et.KindComm {
			n.InSwitch = attrBool(src.Attrs, "in_switch")
			spans, err := attrSpans(src.Attrs, "group_spans")
			if err != nil {
				return nil, err
			}
			if len(spans) > 0 {
				n.Group = &et.GroupRef{Spans: spans}
			}
		}
	default:
		return nil, fmt.Errorf("unclassifiable operator %q", src.Name)
	}
	return n, nil
}

func attrFloat(attrs map[string]json.RawMessage, key string) float64 {
	var v float64
	if raw, ok := attrs[key]; ok {
		_ = json.Unmarshal(raw, &v)
	}
	return v
}

func attrInt(attrs map[string]json.RawMessage, key string) int64 {
	var v int64
	if raw, ok := attrs[key]; ok {
		_ = json.Unmarshal(raw, &v)
	}
	return v
}

func attrBool(attrs map[string]json.RawMessage, key string) bool {
	var v bool
	if raw, ok := attrs[key]; ok {
		_ = json.Unmarshal(raw, &v)
	}
	return v
}

func attrSpans(attrs map[string]json.RawMessage, key string) ([]et.SpanRef, error) {
	raw, ok := attrs[key]
	if !ok {
		return nil, nil
	}
	var spans []et.SpanRef
	if err := json.Unmarshal(raw, &spans); err != nil {
		return nil, fmt.Errorf("bad %s attribute: %w", key, err)
	}
	return spans, nil
}
