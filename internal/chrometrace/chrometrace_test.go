package chrometrace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteFormat(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{Name: "compute", Category: "npu", TID: 0, StartUs: 0, DurUs: 10},
		{Name: "comm", Category: "npu", TID: 1, StartUs: 5, DurUs: 2.5},
	}
	if err := Write(&buf, events, 2); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	// 2 thread-name metadata rows + 2 complete events.
	if len(decoded) != 4 {
		t.Fatalf("decoded %d entries, want 4", len(decoded))
	}
	if decoded[0]["ph"] != "M" || decoded[0]["name"] != "thread_name" {
		t.Errorf("first entry should be thread metadata: %v", decoded[0])
	}
	ev := decoded[2]
	if ev["ph"] != "X" || ev["name"] != "compute" || ev["dur"] != 10.0 {
		t.Errorf("complete event malformed: %v", ev)
	}
	if decoded[3]["ts"] != 5.0 || decoded[3]["dur"] != 2.5 {
		t.Errorf("timing lost: %v", decoded[3])
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	var decoded []interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 0 {
		t.Errorf("empty write produced %d entries", len(decoded))
	}
}
