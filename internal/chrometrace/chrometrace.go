// Package chrometrace writes simulation timelines in the Chrome Trace
// Event Format (the JSON consumed by chrome://tracing and Perfetto), so a
// simulated run's per-NPU activity — compute, communication, memory, idle
// — can be inspected on a zoomable timeline exactly like a profiler
// capture of a real training job.
package chrometrace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event is one "complete" (phase X) trace event.
type Event struct {
	// Name is the visible label (e.g. "compute", "comm").
	Name string
	// Category groups events for filtering.
	Category string
	// PID/TID place the event on a track; we use PID 0 and one TID per
	// NPU so each NPU renders as its own row.
	PID, TID int
	// StartUs and DurUs are in microseconds (the format's time unit).
	StartUs, DurUs float64
}

// completeEvent is the wire format.
type completeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// metadataEvent names a thread (an NPU row).
type metadataEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// Write emits the events plus per-NPU thread names as a JSON array.
// npuCount controls how many thread-name rows are emitted; pass 0 to skip
// naming.
func Write(w io.Writer, events []Event, npuCount int) error {
	out := make([]interface{}, 0, len(events)+npuCount)
	for tid := 0; tid < npuCount; tid++ {
		out = append(out, metadataEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  0,
			TID:  tid,
			Args: map[string]string{"name": fmt.Sprintf("NPU %d", tid)},
		})
	}
	for _, e := range events {
		out = append(out, completeEvent{
			Name: e.Name,
			Cat:  e.Category,
			Ph:   "X",
			PID:  e.PID,
			TID:  e.TID,
			Ts:   e.StartUs,
			Dur:  e.DurUs,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
