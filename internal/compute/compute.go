// Package compute models NPU execution time with the roofline model the
// paper's graph-based execution engine uses for compute nodes: an operator
// with F floating-point operations and B bytes of memory traffic runs in
//
//	time = max(F / PeakFLOPS, B / MemoryBandwidth) + LaunchOverhead
//
// i.e. it is either compute-bound or memory-bandwidth-bound, whichever is
// slower. The paper's case studies assume 234 TFLOPS per NPU, measured on
// an A100 (Section V).
package compute

import (
	"fmt"

	"repro/internal/units"
)

// Model is a roofline NPU model.
type Model struct {
	// Peak is the NPU's peak compute throughput.
	Peak units.FLOPS
	// MemBandwidth is the local memory (HBM) bandwidth that bounds
	// memory-bound operators.
	MemBandwidth units.Bandwidth
	// LaunchOverhead is a fixed per-operator cost (kernel launch,
	// scheduling); zero by default.
	LaunchOverhead units.Time
	// Efficiency derates the peak throughput (0 < Efficiency <= 1);
	// zero means 1.0. Real training kernels rarely sustain peak FLOPS.
	Efficiency float64
}

// A100 returns the paper's reference NPU: 234 TFLOPS with 2039 GB/s HBM2e
// bandwidth (NVIDIA A100 80GB), at full efficiency.
func A100() Model {
	return Model{Peak: units.TFLOPS(234), MemBandwidth: units.GBps(2039)}
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.Peak <= 0 {
		return fmt.Errorf("compute: non-positive peak FLOPS %v", float64(m.Peak))
	}
	if m.MemBandwidth < 0 {
		return fmt.Errorf("compute: negative memory bandwidth")
	}
	if m.Efficiency < 0 || m.Efficiency > 1 {
		return fmt.Errorf("compute: efficiency %v outside (0,1]", m.Efficiency)
	}
	if m.LaunchOverhead < 0 {
		return fmt.Errorf("compute: negative launch overhead")
	}
	return nil
}

// effectivePeak returns the derated compute throughput.
func (m Model) effectivePeak() units.FLOPS {
	if m.Efficiency > 0 {
		return units.FLOPS(float64(m.Peak) * m.Efficiency)
	}
	return m.Peak
}

// OpTime returns the roofline execution time of an operator with the given
// floating-point operation count and memory traffic.
func (m Model) OpTime(flops float64, memBytes units.ByteSize) units.Time {
	ct := m.effectivePeak().ComputeTime(flops)
	var mt units.Time
	if m.MemBandwidth > 0 {
		mt = m.MemBandwidth.TransferTime(memBytes)
	}
	t := ct
	if mt > t {
		t = mt
	}
	return t + m.LaunchOverhead
}

// IsComputeBound reports whether the operator's runtime is set by the
// compute roof rather than the memory roof.
func (m Model) IsComputeBound(flops float64, memBytes units.ByteSize) bool {
	ct := m.effectivePeak().ComputeTime(flops)
	var mt units.Time
	if m.MemBandwidth > 0 {
		mt = m.MemBandwidth.TransferTime(memBytes)
	}
	return ct >= mt
}

// RidgeFLOPsPerByte returns the arithmetic-intensity ridge point of the
// roofline: operators above it are compute-bound.
func (m Model) RidgeFLOPsPerByte() float64 {
	if m.MemBandwidth <= 0 {
		return 0
	}
	return float64(m.effectivePeak()) / float64(m.MemBandwidth)
}
