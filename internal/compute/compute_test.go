package compute

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestA100Reference(t *testing.T) {
	m := A100()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 234e12 flops with negligible memory traffic: exactly one second.
	if got := m.OpTime(234e12, 0); got != units.Second {
		t.Errorf("OpTime = %v, want 1s", got)
	}
}

func TestMemoryBoundOp(t *testing.T) {
	m := Model{Peak: units.TFLOPS(100), MemBandwidth: units.GBps(1000)}
	// 1 GB of traffic with tiny compute: bounded by 1 ms of memory time.
	got := m.OpTime(1e6, units.GB)
	if got != units.Millisecond {
		t.Errorf("OpTime = %v, want 1ms (memory bound)", got)
	}
	if m.IsComputeBound(1e6, units.GB) {
		t.Error("op should be memory bound")
	}
	if !m.IsComputeBound(1e15, units.KB) {
		t.Error("op should be compute bound")
	}
}

func TestEfficiencyDerating(t *testing.T) {
	full := Model{Peak: units.TFLOPS(100)}
	half := Model{Peak: units.TFLOPS(100), Efficiency: 0.5}
	if got, want := half.OpTime(1e14, 0), 2*full.OpTime(1e14, 0); got != want {
		t.Errorf("50%% efficiency OpTime = %v, want %v", got, want)
	}
}

func TestLaunchOverhead(t *testing.T) {
	m := Model{Peak: units.TFLOPS(100), LaunchOverhead: 5 * units.Microsecond}
	if got := m.OpTime(0, 0); got != 5*units.Microsecond {
		t.Errorf("empty op = %v, want launch overhead only", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{Peak: 0},
		{Peak: units.TFLOPS(1), MemBandwidth: -1},
		{Peak: units.TFLOPS(1), Efficiency: 1.5},
		{Peak: units.TFLOPS(1), LaunchOverhead: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRidgePoint(t *testing.T) {
	m := Model{Peak: units.TFLOPS(200), MemBandwidth: units.GBps(2000)}
	if got := m.RidgeFLOPsPerByte(); got != 100 {
		t.Errorf("ridge = %v flops/byte, want 100", got)
	}
	if (Model{Peak: units.TFLOPS(1)}).RidgeFLOPsPerByte() != 0 {
		t.Error("ridge without memory roof should be 0")
	}
}

func TestOpTimeMonotonicInWork(t *testing.T) {
	m := A100()
	f := func(a, b uint32) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.OpTime(lo, 0) <= m.OpTime(hi, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRooflineTakesMax(t *testing.T) {
	m := Model{Peak: units.TFLOPS(100), MemBandwidth: units.GBps(1000)}
	// At the ridge point both roofs agree; runtime equals either.
	flops := 1e11                // 1 ms of compute
	bytes := units.ByteSize(1e9) // 1 ms of memory
	if got := m.OpTime(flops, bytes); got != units.Millisecond {
		t.Errorf("ridge op = %v, want 1ms", got)
	}
}
