package compute

import "repro/internal/units"

// ScaleTable holds per-NPU compute-time multipliers — the straggler model.
// A straggling rank's kernels take Factor × the roofline time; factor 1
// (the default for every rank) is a clean NPU. The zero value is usable and
// means "no stragglers"; the table allocates lazily on the first non-unit
// factor so clean simulations carry no per-NPU state.
type ScaleTable struct {
	factors []float64
	slow    int // count of entries != 1
}

// Set assigns NPU npu's compute-time multiplier. Non-positive factors and
// out-of-range ranks are ignored — scenario events degrade to no-ops rather
// than panic. n is the machine's NPU count, used to size the table on first
// use.
func (t *ScaleTable) Set(n, npu int, factor float64) {
	if npu < 0 || npu >= n || factor <= 0 {
		return
	}
	if t.factors == nil {
		if factor == 1 {
			return
		}
		t.factors = make([]float64, n)
		for i := range t.factors {
			t.factors[i] = 1
		}
	}
	if npu >= len(t.factors) {
		return
	}
	old := t.factors[npu]
	if old == factor {
		return
	}
	if old == 1 {
		t.slow++
	}
	if factor == 1 {
		t.slow--
	}
	t.factors[npu] = factor
}

// Active reports whether any NPU currently has a non-unit factor — the
// hot-path guard, one branch for clean machines.
func (t *ScaleTable) Active() bool { return t != nil && t.slow != 0 }

// Scale stretches a compute duration by NPU npu's factor.
func (t *ScaleTable) Scale(npu int, dur units.Time) units.Time {
	if t == nil || t.factors == nil || npu < 0 || npu >= len(t.factors) {
		return dur
	}
	if f := t.factors[npu]; f != 1 {
		dur = units.Time(float64(dur) * f)
	}
	return dur
}
