// Package prof wires Go's runtime profilers into the CLIs: a shared
// -cpuprofile/-memprofile implementation so every command profiles the same
// way (see README "Performance" for how to read a sweep profile).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// active flushes the in-progress capture; nil when nothing is profiling.
// CLIs are single-threaded at startup/exit, so no locking is needed.
var active func()

// Start begins profiling per the given file paths (either may be empty).
// Callers must arrange for Stop to run at every exit — including error
// exits that bypass defers (os.Exit skips them, and a failing run is
// exactly the one the user wants profiled).
func Start(cpuPath, memPath string) error {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	active = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live + cumulative allocation sites
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return nil
}

// Stop finishes the CPU profile and writes the heap allocation profile.
// It is idempotent and safe to call when Start never ran.
func Stop() {
	if active != nil {
		active()
		active = nil
	}
}
