package etgen

import (
	"fmt"

	"repro/internal/et"
	"repro/internal/topology"
	"repro/internal/units"
)

// MoEConfig describes one training iteration of a Mixture-of-Experts model
// whose parameters live in a disaggregated memory pool — the workload of
// the paper's Section V-B study (DeepSpeed-MoE-style 1T-parameter model).
//
// Two parameter-movement regimes are supported:
//
//   - ZeRO-Infinity style (UseInSwitch=false): each layer's shard is
//     loaded from the GPU's private remote path (remote MEM node), then
//     All-Gathered over the network; gradients are Reduce-Scattered over
//     the network and the shard stored back.
//   - HierMem in-switch style (UseInSwitch=true): the gather happens in
//     the memory-fabric switches while loading and the reduce while
//     storing (Section IV-D.3), fusing each (load+collective) pair into a
//     single in-switch collective node.
type MoEConfig struct {
	Name   string
	Layers int
	// LayerParamBytes is the per-GPU gathered working set per layer (the
	// dense weights every GPU needs materialized).
	LayerParamBytes units.ByteSize
	// ShardBytes is the per-GPU slice of a layer held in remote memory.
	ShardBytes units.ByteSize
	// A2ABytes is the per-NPU expert-routing All-to-All payload per layer
	// (forward and backward each).
	A2ABytes units.ByteSize
	// FlopsPerLayer is the per-NPU forward compute per layer; backward
	// costs twice that.
	FlopsPerLayer float64
	// UseInSwitch selects the HierMem fused path.
	UseInSwitch bool
}

// MoE1T returns the 1-trillion-parameter Mixture-of-Experts configuration
// used in the disaggregated-memory case study. The dense (non-expert)
// working set per layer and the expert compute are sized for a
// DeepSpeed-MoE-style model at 256 GPUs; the generator only fixes the
// trace structure — the Fig. 11 experiment supplies the system configs.
func MoE1T(useInSwitch bool) MoEConfig {
	return MoEConfig{
		Name:   "MoE-1T",
		Layers: 24,
		// Dense (shared) weights gathered by every GPU per layer.
		LayerParamBytes: 1000 * units.MB,
		// Expert + optimizer slice streamed from remote memory per GPU
		// per layer: ~1T x 2 bytes / 24 layers / 256 GPUs.
		ShardBytes: 325 * units.MB,
		// Expert-routing exchange per pass; MoE activations are sparse.
		A2ABytes: 16 * units.MB,
		// MoE compute per GPU is small: each token touches only its
		// routed expert.
		FlopsPerLayer: 5e11,
		UseInSwitch:   useInSwitch,
	}
}

// MoETrace generates one MoE training iteration. Parameter fetches are
// double-buffered: layer l+1's fetch depends only on layer l's fetch, so
// it overlaps with layer l's compute — matching ZeRO-Infinity's prefetch
// behaviour and letting the runtime breakdown expose whichever resource is
// the true bottleneck.
func MoETrace(top *topology.Topology, cfg MoEConfig) (*et.Trace, error) {
	n := top.NumNPUs()
	if cfg.Layers < 1 || cfg.LayerParamBytes <= 0 || cfg.ShardBytes < 0 || cfg.FlopsPerLayer <= 0 {
		return nil, fmt.Errorf("etgen: %s: invalid config", cfg.Name)
	}
	b := newGraphBuilder()
	full := (*et.GroupRef)(nil)

	// Forward pass with pipelined parameter fetches.
	prevFetch, prevComp := 0, 0
	for l := 0; l < cfg.Layers; l++ {
		fetch := b.fetchParams(cfg, l, prevFetch)
		comp := b.compute(fmt.Sprintf("fwd%d", l), cfg.FlopsPerLayer, int64(cfg.LayerParamBytes), dep(fetch), dep(prevComp))
		cur := comp
		if cfg.A2ABytes > 0 {
			cur = b.collective(fmt.Sprintf("fwd%d.a2a", l), et.CollAllToAll, int64(cfg.A2ABytes), full, false, dep(comp))
		}
		prevFetch, prevComp = fetch, cur
	}

	// Backward pass: recompute-free, gradients flushed per layer.
	prevBwd := prevComp
	prevFlush := 0
	for l := cfg.Layers - 1; l >= 0; l-- {
		comp := b.compute(fmt.Sprintf("bwd%d", l), 2*cfg.FlopsPerLayer, int64(cfg.LayerParamBytes), dep(prevBwd))
		cur := comp
		if cfg.A2ABytes > 0 {
			cur = b.collective(fmt.Sprintf("bwd%d.a2a", l), et.CollAllToAll, int64(cfg.A2ABytes), full, false, dep(comp))
		}
		prevFlush = b.flushGrads(cfg, l, comp, prevFlush)
		prevBwd = cur
	}
	_ = prevFlush
	return symmetric(cfg.Name, n, b), nil
}

// fetchParams emits the parameter-materialization subgraph for one layer
// and returns the node the layer's compute must depend on.
func (b *graphBuilder) fetchParams(cfg MoEConfig, l, prevFetch int) int {
	// The expert + optimizer slice streams from remote memory in both
	// regimes; the difference is how the shared dense weights are
	// materialized.
	load := b.memory(fmt.Sprintf("fetch%d.load", l), et.MemLoad, et.MemRemote, int64(cfg.ShardBytes), prevFetch)
	if cfg.UseInSwitch {
		// Gather-on-load fused into the memory fabric.
		return b.collective(fmt.Sprintf("fetch%d.insw_ag", l), et.CollAllGather,
			int64(cfg.LayerParamBytes), nil, true, dep(load))
	}
	// ZeRO-Infinity: a network All-Gather materializes the dense layer.
	return b.collective(fmt.Sprintf("fetch%d.ag", l), et.CollAllGather,
		int64(cfg.LayerParamBytes), nil, false, dep(load))
}

// flushGrads emits the gradient-drain subgraph for one layer.
func (b *graphBuilder) flushGrads(cfg MoEConfig, l, bwdComp, prevFlush int) int {
	if cfg.UseInSwitch {
		// Reduce-on-store fused into the memory fabric, then the expert
		// slice streams back.
		rs := b.collective(fmt.Sprintf("grad%d.insw_rs", l), et.CollReduceScatter,
			int64(cfg.LayerParamBytes), nil, true, dep(bwdComp), dep(prevFlush))
		return b.memory(fmt.Sprintf("grad%d.store", l), et.MemStore, et.MemRemote, int64(cfg.ShardBytes), rs)
	}
	rs := b.collective(fmt.Sprintf("grad%d.rs", l), et.CollReduceScatter,
		int64(cfg.LayerParamBytes), nil, false, dep(bwdComp), dep(prevFlush))
	return b.memory(fmt.Sprintf("grad%d.store", l), et.MemStore, et.MemRemote, int64(cfg.ShardBytes), rs)
}
