package etgen

import (
	"fmt"

	"repro/internal/et"
	"repro/internal/topology"
	"repro/internal/units"
)

// TransformerConfig describes a dense transformer trained with hybrid
// tensor(MP) x data(DP) parallelism, Megatron-style: two activation
// All-Reduces over the MP group per layer per pass, and per-layer gradient
// All-Reduces over the DP group overlapped with the backward pass.
type TransformerConfig struct {
	Name string
	// Params is the total parameter count (e.g. 175e9 for GPT-3).
	Params float64
	Layers int
	Hidden int
	SeqLen int
	// MicroBatch is the per-replica batch size.
	MicroBatch int
	// BytesPerElem is the training precision (2 for fp16).
	BytesPerElem int
	// MP is the tensor-parallel degree; DP is derived as NPUs/MP.
	MP int
}

// GPT3 returns the paper's GPT-3 configuration (Table III: 175B parameters,
// MP 16).
func GPT3() TransformerConfig {
	return TransformerConfig{
		Name:   "GPT-3",
		Params: 175e9, Layers: 96, Hidden: 12288, SeqLen: 2048,
		MicroBatch: 1, BytesPerElem: 2, MP: 16,
	}
}

// Transformer1T returns the paper's Transformer-1T configuration
// (Table III: 1T parameters, MP 128).
func Transformer1T() TransformerConfig {
	return TransformerConfig{
		Name:   "Transformer-1T",
		Params: 1e12, Layers: 128, Hidden: 25600, SeqLen: 2048,
		MicroBatch: 1, BytesPerElem: 2, MP: 128,
	}
}

// Transformer generates one training iteration of the transformer over the
// topology. The trace is symmetric: every NPU runs the same graph, with
// communicator groups resolved per-rank at simulation time.
func Transformer(top *topology.Topology, cfg TransformerConfig) (*et.Trace, error) {
	n := top.NumNPUs()
	if cfg.MP < 1 {
		return nil, fmt.Errorf("etgen: %s: MP must be >= 1", cfg.Name)
	}
	if n%cfg.MP != 0 {
		return nil, fmt.Errorf("etgen: %s: MP %d does not divide %d NPUs", cfg.Name, cfg.MP, n)
	}
	dp := n / cfg.MP
	m, err := MapHybrid(top, cfg.MP, dp)
	if err != nil {
		return nil, err
	}
	if cfg.Layers < 1 || cfg.Params <= 0 || cfg.Hidden < 1 || cfg.SeqLen < 1 || cfg.MicroBatch < 1 || cfg.BytesPerElem < 1 {
		return nil, fmt.Errorf("etgen: %s: invalid model shape", cfg.Name)
	}

	paramsPerLayer := cfg.Params / float64(cfg.Layers)
	tokens := float64(cfg.MicroBatch * cfg.SeqLen)
	// Forward pass: ~2 FLOPs per parameter per token; backward: 2x.
	fwdFlops := 2 * paramsPerLayer * tokens / float64(cfg.MP)
	bwdFlops := 2 * fwdFlops
	// Roofline memory traffic: weights plus activations per layer shard.
	layerBytes := int64(paramsPerLayer) * int64(cfg.BytesPerElem) / int64(cfg.MP)
	actBytes := int64(cfg.MicroBatch*cfg.SeqLen*cfg.Hidden) * int64(cfg.BytesPerElem)
	// Megatron activation All-Reduce size.
	mpARBytes := actBytes
	// Per-layer gradient All-Reduce over DP (each NPU holds 1/MP of the
	// layer's gradients).
	dpARBytes := int64(paramsPerLayer) * int64(cfg.BytesPerElem) / int64(cfg.MP)

	b := newGraphBuilder()
	// Forward pass.
	prev := 0
	fwdOut := make([]int, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		comp := b.compute(fmt.Sprintf("fwd%d", l), fwdFlops, layerBytes+actBytes, dep(prev))
		cur := comp
		if m.MPGroup() != nil {
			ar1 := b.collective(fmt.Sprintf("fwd%d.mp_ar0", l), et.CollAllReduce, mpARBytes, m.MPGroup(), false, dep(comp))
			ar2 := b.collective(fmt.Sprintf("fwd%d.mp_ar1", l), et.CollAllReduce, mpARBytes, m.MPGroup(), false, dep(ar1))
			cur = ar2
		}
		fwdOut[l] = cur
		prev = cur
	}
	// Backward pass, reverse order.
	prevBwd := prev
	for l := cfg.Layers - 1; l >= 0; l-- {
		comp := b.compute(fmt.Sprintf("bwd%d", l), bwdFlops, layerBytes+actBytes, dep(prevBwd))
		cur := comp
		if m.MPGroup() != nil {
			ar1 := b.collective(fmt.Sprintf("bwd%d.mp_ar0", l), et.CollAllReduce, mpARBytes, m.MPGroup(), false, dep(comp))
			ar2 := b.collective(fmt.Sprintf("bwd%d.mp_ar1", l), et.CollAllReduce, mpARBytes, m.MPGroup(), false, dep(ar1))
			cur = ar2
		}
		prevBwd = cur
	}
	// Data-parallel gradient synchronization after the backward pass —
	// the paper-era Megatron training loop runs it unoverlapped, which is
	// what makes hybrid parallelism on hierarchical systems pay for using
	// only the DP dimensions' bandwidth (Section V-A-1).
	optDeps := []int{prevBwd}
	if m.DPGroup() != nil {
		gar := b.collective("dp_ar", et.CollAllReduce, dpARBytes*int64(cfg.Layers), m.DPGroup(), false, dep(prevBwd))
		optDeps = append(optDeps, gar)
	}
	// Optimizer step: read and write the local parameter shard after the
	// backward pass and the gradient All-Reduce.
	load := b.memory("opt.load", et.MemLoad, et.MemLocal, int64(cfg.Params)*int64(cfg.BytesPerElem)/int64(n), optDeps...)
	opt := b.compute("opt.step", cfg.Params/float64(n), 2*int64(cfg.Params)*int64(cfg.BytesPerElem)/int64(n), dep(load))
	b.memory("opt.store", et.MemStore, et.MemLocal, int64(cfg.Params)*int64(cfg.BytesPerElem)/int64(n), opt)

	return symmetric(cfg.Name, n, b), nil
}

// DLRMConfig describes the recommendation-model workload: embedding
// exchange via All-to-All over all NPUs (model-parallel embeddings) and an
// MLP trained data-parallel with a global gradient All-Reduce (Table III:
// 57M MLP parameters, MP and DP spanning the machine).
type DLRMConfig struct {
	Name string
	// MLPParams is the dense-parameter count (57e6 in the paper).
	MLPParams float64
	// EmbExchangeBytes is the per-NPU All-to-All payload for the
	// embedding lookup exchange (forward; backward mirrors it).
	EmbExchangeBytes units.ByteSize
	// GradBytesPerElem is the gradient precision (4 for fp32).
	GradBytesPerElem int
	// BatchPerNPU scales MLP compute.
	BatchPerNPU int
}

// DLRM returns the paper's DLRM configuration: the dense gradient
// All-Reduce (57M fp32 parameters, 228 MB) dominates communication, with
// a moderate embedding-exchange All-to-All per pass.
func DLRM() DLRMConfig {
	return DLRMConfig{
		Name:             "DLRM",
		MLPParams:        57e6,
		EmbExchangeBytes: 16 * units.MB,
		GradBytesPerElem: 4,
		BatchPerNPU:      2048,
	}
}

// DLRMTrace generates one DLRM training iteration.
func DLRMTrace(top *topology.Topology, cfg DLRMConfig) (*et.Trace, error) {
	n := top.NumNPUs()
	if cfg.MLPParams <= 0 || cfg.EmbExchangeBytes <= 0 || cfg.BatchPerNPU < 1 || cfg.GradBytesPerElem < 1 {
		return nil, fmt.Errorf("etgen: %s: invalid config", cfg.Name)
	}
	b := newGraphBuilder()
	full := (*et.GroupRef)(nil) // nil group = whole machine

	// Forward: embedding lookup exchange, then MLP.
	embFwd := b.collective("emb.fwd.a2a", et.CollAllToAll, int64(cfg.EmbExchangeBytes), full, false)
	mlpFlops := 2 * cfg.MLPParams * float64(cfg.BatchPerNPU)
	mlpFwd := b.compute("mlp.fwd", mlpFlops, int64(cfg.MLPParams)*int64(cfg.GradBytesPerElem), dep(embFwd))
	// Backward: MLP, embedding-gradient exchange, dense gradient sync.
	mlpBwd := b.compute("mlp.bwd", 2*mlpFlops, int64(cfg.MLPParams)*int64(cfg.GradBytesPerElem), dep(mlpFwd))
	b.collective("emb.bwd.a2a", et.CollAllToAll, int64(cfg.EmbExchangeBytes), full, false, dep(mlpBwd))
	gradBytes := int64(cfg.MLPParams) * int64(cfg.GradBytesPerElem)
	b.collective("mlp.dp_ar", et.CollAllReduce, gradBytes, full, false, dep(mlpBwd))

	return symmetric(cfg.Name, n, b), nil
}

// SingleCollective generates a trace that runs exactly one collective over
// the whole machine — the microbenchmark workload of Fig. 9's
// "All-Reduce (1GB)" columns and Table IV.
func SingleCollective(top *topology.Topology, coll et.CollectiveType, size units.ByteSize) *et.Trace {
	b := newGraphBuilder()
	b.collective("coll", coll, int64(size), nil, false)
	return symmetric(fmt.Sprintf("%s(%v)", coll, size), top.NumNPUs(), b)
}
