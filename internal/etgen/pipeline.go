package etgen

import (
	"fmt"

	"repro/internal/et"
	"repro/internal/topology"
	"repro/internal/units"
)

// PipelineConfig describes a GPipe-style pipeline-parallel training
// iteration: the model is split into Stages, microbatches stream through
// the pipeline (all forwards, then all backwards), activations travel
// between stages as point-to-point messages, and each stage's replicas
// synchronize gradients with a data-parallel All-Reduce at the end.
//
// This workload is the paper's motivating example for the graph-based
// execution engine: different NPUs execute different node sequences, which
// the original ASTRA-sim frontend could not express.
type PipelineConfig struct {
	Name string
	// Stages is the pipeline depth; must divide the machine size. Ranks
	// are blocked contiguously: stage s owns ranks [s*B, (s+1)*B).
	Stages int
	// MicroBatches is the number of microbatches per iteration.
	MicroBatches int
	// FlopsPerStage is the forward compute per microbatch per NPU;
	// backward costs twice that.
	FlopsPerStage float64
	// ActivationBytes is the inter-stage activation payload.
	ActivationBytes units.ByteSize
	// GradBytes is each NPU's gradient volume for the intra-stage
	// data-parallel All-Reduce (0 disables it).
	GradBytes units.ByteSize
}

// Pipeline generates the per-rank trace graphs. Unlike the symmetric
// generators, every rank gets its own graph: stage position changes both
// the node list and the P2P peers.
func Pipeline(top *topology.Topology, cfg PipelineConfig) (*et.Trace, error) {
	n := top.NumNPUs()
	if cfg.Stages < 2 {
		return nil, fmt.Errorf("etgen: %s: need at least 2 stages", cfg.Name)
	}
	if n%cfg.Stages != 0 {
		return nil, fmt.Errorf("etgen: %s: %d stages do not divide %d NPUs", cfg.Name, cfg.Stages, n)
	}
	if cfg.MicroBatches < 1 || cfg.FlopsPerStage <= 0 || cfg.ActivationBytes <= 0 {
		return nil, fmt.Errorf("etgen: %s: invalid config", cfg.Name)
	}
	block := n / cfg.Stages

	// Intra-stage DP group: the contiguous block decomposes over physical
	// dims exactly like an MP grid of size `block`.
	var dpGroup *et.GroupRef
	if block > 1 && cfg.GradBytes > 0 {
		m, err := MapHybrid(top, block, cfg.Stages)
		if err != nil {
			return nil, fmt.Errorf("etgen: %s: stage block does not factor over the topology: %w", cfg.Name, err)
		}
		dpGroup = m.MPGroup()
	}

	tr := &et.Trace{Name: cfg.Name, NumNPUs: n}
	const fwdTagBase, bwdTagBase = 1 << 16, 1 << 17
	for rank := 0; rank < n; rank++ {
		stage := rank / block
		b := newGraphBuilder()
		prev := 0
		// Forward waves.
		fwdDone := make([]int, cfg.MicroBatches)
		for m := 0; m < cfg.MicroBatches; m++ {
			in := 0
			if stage > 0 {
				in = b.recv(fmt.Sprintf("fwd%d.recv", m), rank-block, fwdTagBase+m, int64(cfg.ActivationBytes), prev)
			}
			comp := b.compute(fmt.Sprintf("fwd%d", m), cfg.FlopsPerStage, int64(cfg.ActivationBytes), dep(in), dep(prev))
			out := comp
			if stage < cfg.Stages-1 {
				out = b.send(fmt.Sprintf("fwd%d.send", m), rank+block, fwdTagBase+m, int64(cfg.ActivationBytes), comp)
			}
			fwdDone[m] = out
			prev = comp // next microbatch can start once compute frees up
		}
		// Backward waves (GPipe: after all forwards).
		prevBwd := fwdDone[cfg.MicroBatches-1]
		var lastBwd int
		for m := cfg.MicroBatches - 1; m >= 0; m-- {
			in := 0
			if stage < cfg.Stages-1 {
				in = b.recv(fmt.Sprintf("bwd%d.recv", m), rank+block, bwdTagBase+m, int64(cfg.ActivationBytes), prevBwd)
			}
			comp := b.compute(fmt.Sprintf("bwd%d", m), 2*cfg.FlopsPerStage, int64(cfg.ActivationBytes), dep(in), dep(prevBwd))
			if stage > 0 {
				b.send(fmt.Sprintf("bwd%d.send", m), rank-block, bwdTagBase+m, int64(cfg.ActivationBytes), comp)
			}
			prevBwd = comp
			lastBwd = comp
		}
		// Intra-stage gradient synchronization.
		if dpGroup != nil {
			b.collective("dp_ar", et.CollAllReduce, int64(cfg.GradBytes), dpGroup, false, dep(lastBwd))
		}
		tr.Graphs = append(tr.Graphs, &et.Graph{NPU: rank, Nodes: b.nodes})
	}
	return tr, nil
}
