package etgen

import (
	"fmt"

	"repro/internal/et"
	"repro/internal/topology"
)

// ThreeDConfig describes 3D parallelism — the DeepSpeed/Megatron-LM
// strategy the paper names as a headline example of what the original
// ASTRA-sim frontend could not express (Section III-A): pipeline stages
// across the outermost rank blocks, tensor (model) parallelism innermost,
// and data parallelism in between. Ranks are laid out as
//
//	rank = mp + MP·(dp + DP·stage)
//
// so tensor-parallel groups sit on the highest-bandwidth inner dimensions,
// pipeline neighbours are a whole block apart, and activations cross the
// scale-out fabric — matching production 3D-parallel deployments.
type ThreeDConfig struct {
	Model TransformerConfig
	// Stages is the pipeline depth; Model.Layers must divide by it.
	Stages int
	// MicroBatches per iteration (GPipe schedule).
	MicroBatches int
}

// ThreeD generates one 3D-parallel training iteration. Every rank gets its
// own graph: stage position changes both the node list and the P2P peers.
func ThreeD(top *topology.Topology, cfg ThreeDConfig) (*et.Trace, error) {
	n := top.NumNPUs()
	model := cfg.Model
	if cfg.Stages < 2 {
		return nil, fmt.Errorf("etgen: %s: 3D parallelism needs >= 2 stages", model.Name)
	}
	if cfg.MicroBatches < 1 {
		return nil, fmt.Errorf("etgen: %s: need >= 1 microbatch", model.Name)
	}
	if model.MP < 1 || n%(model.MP*cfg.Stages) != 0 {
		return nil, fmt.Errorf("etgen: %s: MP %d x stages %d does not divide %d NPUs",
			model.Name, model.MP, cfg.Stages, n)
	}
	if model.Layers%cfg.Stages != 0 {
		return nil, fmt.Errorf("etgen: %s: %d layers do not split into %d stages",
			model.Name, model.Layers, cfg.Stages)
	}
	dp := n / model.MP / cfg.Stages
	grids, err := MapGrid(top, model.MP, dp, cfg.Stages)
	if err != nil {
		return nil, err
	}
	mpGroup := groupRefOrNil(grids[0])
	dpGroup := groupRefOrNil(grids[1])

	layersPerStage := model.Layers / cfg.Stages
	paramsPerLayer := model.Params / float64(model.Layers)
	tokens := float64(model.MicroBatch * model.SeqLen)
	fwdFlops := 2 * paramsPerLayer * tokens / float64(model.MP)
	bwdFlops := 2 * fwdFlops
	layerBytes := int64(paramsPerLayer) * int64(model.BytesPerElem) / int64(model.MP)
	actBytes := int64(model.MicroBatch*model.SeqLen*model.Hidden) * int64(model.BytesPerElem)
	// Stage gradients: this rank's slice of its stage's parameters.
	gradBytes := int64(paramsPerLayer) * int64(layersPerStage) * int64(model.BytesPerElem) / int64(model.MP)

	block := model.MP * dp
	const fwdTagBase, bwdTagBase = 1 << 20, 1 << 21

	tr := &et.Trace{Name: fmt.Sprintf("%s/3D(mp%d,dp%d,pp%d)", model.Name, model.MP, dp, cfg.Stages), NumNPUs: n}
	for rank := 0; rank < n; rank++ {
		stage := rank / block
		b := newGraphBuilder()

		// stageWork emits one pass over this stage's layers and returns
		// the last node.
		stageWork := func(prefix string, entry int, flops float64) int {
			prev := entry
			for l := 0; l < layersPerStage; l++ {
				comp := b.compute(fmt.Sprintf("%s.l%d", prefix, l), flops, layerBytes+actBytes, dep(prev))
				cur := comp
				if mpGroup != nil {
					ar1 := b.collective(fmt.Sprintf("%s.l%d.mp_ar0", prefix, l), et.CollAllReduce, actBytes, mpGroup, false, dep(comp))
					ar2 := b.collective(fmt.Sprintf("%s.l%d.mp_ar1", prefix, l), et.CollAllReduce, actBytes, mpGroup, false, dep(ar1))
					cur = ar2
				}
				prev = cur
			}
			return prev
		}

		prev := 0
		fwdDone := make([]int, cfg.MicroBatches)
		for m := 0; m < cfg.MicroBatches; m++ {
			in := 0
			if stage > 0 {
				in = b.recv(fmt.Sprintf("fwd%d.recv", m), rank-block, fwdTagBase+m, actBytes, prev)
			}
			entry := in
			if entry == 0 {
				entry = prev
			}
			out := stageWork(fmt.Sprintf("fwd%d", m), entry, fwdFlops)
			last := out
			if stage < cfg.Stages-1 {
				last = b.send(fmt.Sprintf("fwd%d.send", m), rank+block, fwdTagBase+m, actBytes, out)
			}
			fwdDone[m] = last
			prev = out
		}

		prevBwd := fwdDone[cfg.MicroBatches-1]
		var lastBwd int
		for m := cfg.MicroBatches - 1; m >= 0; m-- {
			in := 0
			if stage < cfg.Stages-1 {
				in = b.recv(fmt.Sprintf("bwd%d.recv", m), rank+block, bwdTagBase+m, actBytes, prevBwd)
			}
			entry := in
			if entry == 0 {
				entry = prevBwd
			}
			out := stageWork(fmt.Sprintf("bwd%d", m), entry, bwdFlops)
			if stage > 0 {
				b.send(fmt.Sprintf("bwd%d.send", m), rank-block, bwdTagBase+m, actBytes, out)
			}
			prevBwd = out
			lastBwd = out
		}

		// Unoverlapped data-parallel gradient synchronization per stage.
		optDep := lastBwd
		if dpGroup != nil {
			optDep = b.collective("dp_ar", et.CollAllReduce, gradBytes, dpGroup, false, dep(lastBwd))
		}
		shard := int64(paramsPerLayer) * int64(layersPerStage) * int64(model.BytesPerElem) / int64(block)
		load := b.memory("opt.load", et.MemLoad, et.MemLocal, shard, optDep)
		opt := b.compute("opt.step", float64(shard), 2*shard, dep(load))
		b.memory("opt.store", et.MemStore, et.MemLocal, shard, opt)

		tr.Graphs = append(tr.Graphs, &et.Graph{NPU: rank, Nodes: b.nodes})
	}
	return tr, nil
}

func groupRefOrNil(spans []et.SpanRef) *et.GroupRef {
	if len(spans) == 0 {
		return nil
	}
	return &et.GroupRef{Spans: spans}
}
