package etgen

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/et"
	"repro/internal/memory"
	"repro/internal/topology"
	"repro/internal/units"
)

func wafer(n int) *topology.Topology {
	return topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: n, Bandwidth: units.GBps(350), Latency: 0,
	})
}

func conv4D() *topology.Topology {
	return topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(250)},
		topology.Dim{Kind: topology.FullyConnected, Size: 8, Bandwidth: units.GBps(200)},
		topology.Dim{Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
}

func simRun(t *testing.T, top *topology.Topology, tr *et.Trace, mem memory.System) *core.RunStats {
	t.Helper()
	if mem.Local.Bandwidth == 0 {
		mem.Local = memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2000)}
	}
	sim, err := core.NewSimulator(core.Config{
		Topology: top,
		Compute:  compute.A100(),
		Memory:   mem,
		Policy:   collective.Baseline,
		Chunks:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestMapHybridWafer(t *testing.T) {
	m, err := MapHybrid(wafer(512), 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.MP) != 1 || m.MP[0] != (et.SpanRef{Phys: 0, K: 16, Stride: 1}) {
		t.Errorf("MP = %+v", m.MP)
	}
	if len(m.DP) != 1 || m.DP[0] != (et.SpanRef{Phys: 0, K: 32, Stride: 16}) {
		t.Errorf("DP = %+v", m.DP)
	}
}

func TestMapHybridConv4D(t *testing.T) {
	top := conv4D()
	m, err := MapHybrid(top, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	// MP = dims 1 and 2 in full (2 x 8 = 16); DP = dims 3 and 4.
	want := []et.SpanRef{{Phys: 0, K: 2, Stride: 1}, {Phys: 1, K: 8, Stride: 1}}
	if len(m.MP) != 2 || m.MP[0] != want[0] || m.MP[1] != want[1] {
		t.Errorf("MP = %+v", m.MP)
	}
	wantDP := []et.SpanRef{{Phys: 2, K: 8, Stride: 1}, {Phys: 3, K: 4, Stride: 1}}
	if len(m.DP) != 2 || m.DP[0] != wantDP[0] || m.DP[1] != wantDP[1] {
		t.Errorf("DP = %+v", m.DP)
	}
}

func TestMapHybridSplitsDim(t *testing.T) {
	// MP=4 on 2_8_...: dim 1 in full plus half of dim 2.
	top := conv4D()
	m, err := MapHybrid(top, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	want := []et.SpanRef{{Phys: 0, K: 2, Stride: 1}, {Phys: 1, K: 2, Stride: 1}}
	if len(m.MP) != 2 || m.MP[0] != want[0] || m.MP[1] != want[1] {
		t.Errorf("MP = %+v", m.MP)
	}
	// DP starts with the residue of dim 2 (K=4, stride=2).
	if m.DP[0] != (et.SpanRef{Phys: 1, K: 4, Stride: 2}) {
		t.Errorf("DP = %+v", m.DP)
	}
}

func TestMapHybridEdges(t *testing.T) {
	top := wafer(512)
	if _, err := MapHybrid(top, 7, 73); err == nil {
		t.Error("non-factorization accepted")
	}
	if _, err := MapHybrid(top, 3, 171); err == nil {
		t.Error("non-divisor boundary accepted (3 does not divide 512)")
	}
	// Pure DP and pure MP.
	m, err := MapHybrid(top, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	if m.MPGroup() != nil || m.DPGroup() == nil {
		t.Error("pure DP mapping wrong")
	}
	m, err = MapHybrid(top, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.MPGroup() == nil || m.DPGroup() != nil {
		t.Error("pure MP mapping wrong")
	}
}

func TestTransformerTraceValidatesAndRuns(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(200)},
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(50)},
	)
	cfg := TransformerConfig{
		Name: "tiny-gpt", Params: 1e9, Layers: 4, Hidden: 1024, SeqLen: 512,
		MicroBatch: 1, BytesPerElem: 2, MP: 4,
	}
	tr, err := Transformer(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := simRun(t, top, tr, memory.System{})
	if stats.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	b := stats.MeanBreakdown()
	if b.Compute <= 0 || b.ExposedComm <= 0 {
		t.Errorf("breakdown missing compute or comm: %+v", b)
	}
	if len(stats.Collectives) == 0 {
		t.Error("no collectives logged")
	}
}

func TestTransformerRejectsBadMP(t *testing.T) {
	top := wafer(8)
	cfg := GPT3()
	cfg.MP = 3
	if _, err := Transformer(top, cfg); err == nil {
		t.Error("MP not dividing machine accepted")
	}
}

func TestGPT3AndT1TConfigsMatchTableIII(t *testing.T) {
	g := GPT3()
	if g.Params != 175e9 || g.MP != 16 {
		t.Errorf("GPT-3 config = %+v", g)
	}
	tt := Transformer1T()
	if tt.Params != 1e12 || tt.MP != 128 {
		t.Errorf("T-1T config = %+v", tt)
	}
	d := DLRM()
	if d.MLPParams != 57e6 {
		t.Errorf("DLRM config = %+v", d)
	}
}

func TestDLRMTraceRuns(t *testing.T) {
	// A slim 25 GB/s interconnect: the 228 MB gradient All-Reduce and the
	// embedding All-to-Alls dominate the 57M-parameter MLP compute.
	top := topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(25), Latency: 0,
	})
	tr, err := DLRMTrace(top, DLRM())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := simRun(t, top, tr, memory.System{})
	if stats.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// DLRM is communication-dominated: two All-to-Alls plus a 228 MB
	// All-Reduce dwarf the 57M-parameter MLP compute.
	b := stats.MeanBreakdown()
	if b.ExposedComm <= b.Compute {
		t.Errorf("DLRM should be comm-bound: %+v", b)
	}
}

func TestSingleCollectiveMatchesEngine(t *testing.T) {
	top := conv4D()
	tr := SingleCollective(top, et.CollAllReduce, units.GB)
	stats := simRun(t, top, tr, memory.System{})
	est := collective.Estimate(top, collective.AllReduce, units.GB, collective.FullMachine(top), collective.Baseline, 8)
	ratio := float64(stats.Makespan) / float64(est)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("trace-driven %v vs estimate %v (ratio %.3f)", stats.Makespan, est, ratio)
	}
}

func TestMoETraceBothVariants(t *testing.T) {
	top := topology.MustNew(topology.Dim{
		Kind: topology.Switch, Size: 8, Bandwidth: units.GBps(100), Latency: 0,
	})
	pool := memory.PoolConfig{
		Design:             memory.Hierarchical,
		NumNodes:           2,
		GPUsPerNode:        4,
		NumOutSwitches:     2,
		NumRemoteGroups:    4,
		RemoteGroupBW:      units.GBps(100),
		GPUSideOutFabricBW: units.GBps(100),
		InNodeFabricBW:     units.GBps(256),
	}
	mem := memory.System{
		Local:   memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2000)},
		Pool:    pool,
		HasPool: true,
	}
	cfg := MoEConfig{
		Name: "tiny-moe", Layers: 3,
		LayerParamBytes: 64 * units.MB, ShardBytes: 8 * units.MB,
		A2ABytes: 16 * units.MB, FlopsPerLayer: 1e12,
	}
	for _, inSwitch := range []bool{false, true} {
		cfg.UseInSwitch = inSwitch
		tr, err := MoETrace(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		stats := simRun(t, top, tr, mem)
		if stats.Makespan <= 0 {
			t.Fatalf("inSwitch=%v: empty makespan", inSwitch)
		}
		b := stats.MeanBreakdown()
		if b.ExposedComm <= 0 {
			t.Errorf("inSwitch=%v: expected exposed communication: %+v", inSwitch, b)
		}
		if b.Total() != stats.Makespan {
			t.Errorf("inSwitch=%v: breakdown total %v != makespan %v", inSwitch, b.Total(), stats.Makespan)
		}
	}
}

func TestPipelineTraceRuns(t *testing.T) {
	top := wafer(8)
	cfg := PipelineConfig{
		Name: "pp-test", Stages: 4, MicroBatches: 4,
		FlopsPerStage: 1e12, ActivationBytes: 8 * units.MB, GradBytes: 32 * units.MB,
	}
	tr, err := Pipeline(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-rank graphs differ across stages (asymmetric parallelism).
	if len(tr.Graphs[0].Nodes) == len(tr.Graphs[2].Nodes) {
		t.Log("note: stage-0 and mid-stage graphs may differ only in kinds")
	}
	stats := simRun(t, top, tr, memory.System{})
	if stats.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// Pipeline fill/drain bubbles idle the edge stages.
	if stats.PerNPU[0].Idle <= 0 {
		t.Errorf("stage 0 should have bubble idle time: %+v", stats.PerNPU[0])
	}
}

func TestPipelineValidation(t *testing.T) {
	top := wafer(8)
	if _, err := Pipeline(top, PipelineConfig{Stages: 1, MicroBatches: 1, FlopsPerStage: 1, ActivationBytes: 1}); err == nil {
		t.Error("single stage accepted")
	}
	if _, err := Pipeline(top, PipelineConfig{Stages: 3, MicroBatches: 1, FlopsPerStage: 1, ActivationBytes: 1}); err == nil {
		t.Error("non-dividing stage count accepted")
	}
}

func TestPipelineDeeperPipelineMoreBubble(t *testing.T) {
	top := wafer(16)
	mk := func(stages int) units.Time {
		cfg := PipelineConfig{
			Name: "pp", Stages: stages, MicroBatches: 2,
			FlopsPerStage: 1e12, ActivationBytes: units.MB,
		}
		tr, err := Pipeline(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats := simRun(t, top, tr, memory.System{})
		return stats.PerNPU[0].Idle
	}
	if mk(16) <= mk(2) {
		t.Error("deeper pipeline should produce a larger bubble at stage 0")
	}
}
