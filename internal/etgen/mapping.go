// Package etgen generates execution traces for the paper's workloads
// (Table III): DLRM, GPT-3, Transformer-1T, a Mixture-of-Experts model for
// the disaggregated-memory study, and a pipeline-parallel transformer that
// exercises the asymmetric-graph capability of the execution engine. The
// generators encode parallelization strategies — data, tensor (model),
// pipeline, expert, and hybrid parallelism — purely as trace structure,
// which is the paper's core decoupling idea.
package etgen

import (
	"fmt"

	"repro/internal/et"
	"repro/internal/topology"
)

// HybridMapping maps a model-parallel (MP) by data-parallel (DP) logical
// grid onto physical topology dimensions: MP occupies the innermost rank
// space (fastest-varying dimensions, the highest-bandwidth networks in the
// paper's systems), DP the outermost. When a boundary falls inside one
// physical dimension, strided spans split it — e.g. a 1-D 512-NPU wafer
// with MP=16 yields MP = Span{dim0, K=16, stride=1} and
// DP = Span{dim0, K=32, stride=16}.
type HybridMapping struct {
	MP []et.SpanRef
	DP []et.SpanRef
}

// MapGrid decomposes the machine into a logical grid of consecutive rank
// blocks: sizes[0] is the innermost (fastest-varying) factor. Each factor
// receives the spans covering its slice of the mixed-radix rank space.
// The product of sizes must equal the machine size and every factor
// boundary must fall on a divisor of the dimension it lands in. Factors of
// size 1 receive an empty span list (a trivial group).
func MapGrid(top *topology.Topology, sizes ...int) ([][]et.SpanRef, error) {
	n := top.NumNPUs()
	product := 1
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("etgen: grid factor %d must be >= 1", s)
		}
		product *= s
	}
	if product != n {
		return nil, fmt.Errorf("etgen: grid %v covers %d ranks but the machine has %d NPUs", sizes, product, n)
	}
	out := make([][]et.SpanRef, len(sizes))
	dim, stride := 0, 1 // position within the current physical dimension
	for fi, factor := range sizes {
		remaining := factor
		for remaining > 1 {
			for dim < top.NumDims() && top.Dims[dim].Size/stride <= 1 {
				dim++
				stride = 1
			}
			if dim >= top.NumDims() {
				return nil, fmt.Errorf("etgen: grid %v exhausted the topology", sizes)
			}
			size := top.Dims[dim].Size / stride
			take := remaining
			if take >= size {
				if take%size != 0 {
					return nil, fmt.Errorf("etgen: grid factor %d does not factor across dim %d (size %d)",
						factor, dim+1, top.Dims[dim].Size)
				}
				take = size
			} else if size%take != 0 {
				return nil, fmt.Errorf("etgen: grid boundary %d does not divide dim %d residue %d",
					take, dim+1, size)
			}
			out[fi] = append(out[fi], et.SpanRef{Phys: dim, K: take, Stride: stride})
			remaining /= take
			stride *= take
		}
	}
	for fi, factor := range sizes {
		if got := spanProduct(out[fi]); factor > 1 && got != factor {
			return nil, fmt.Errorf("etgen: internal error: factor %d spans cover %d", factor, got)
		}
	}
	return out, nil
}

// MapHybrid computes the span decomposition for an MP x DP grid on top.
// mp*dp must equal the machine size, and the boundary must fall on a
// divisor of the dimension it lands in.
func MapHybrid(top *topology.Topology, mp, dp int) (HybridMapping, error) {
	grids, err := MapGrid(top, mp, dp)
	if err != nil {
		return HybridMapping{}, fmt.Errorf("etgen: MP %d x DP %d: %w", mp, dp, err)
	}
	return HybridMapping{MP: grids[0], DP: grids[1]}, nil
}

func spanProduct(spans []et.SpanRef) int {
	p := 1
	for _, s := range spans {
		p *= s.K
	}
	return p
}

// MPGroup returns the MP communicator reference, or nil when MP=1.
func (m HybridMapping) MPGroup() *et.GroupRef {
	if len(m.MP) == 0 {
		return nil
	}
	return &et.GroupRef{Spans: m.MP}
}

// DPGroup returns the DP communicator reference, or nil when DP=1.
func (m HybridMapping) DPGroup() *et.GroupRef {
	if len(m.DP) == 0 {
		return nil
	}
	return &et.GroupRef{Spans: m.DP}
}
