package etgen

import (
	"repro/internal/et"
)

// graphBuilder accumulates a node list with auto-assigned IDs. Generators
// use it to express graphs as straight-line code.
type graphBuilder struct {
	nodes  []*et.Node
	nextID int
}

func newGraphBuilder() *graphBuilder {
	return &graphBuilder{nextID: 1}
}

// dep wraps a node ID for use as a dependency list; id 0 means "no dep".
func dep(id int) []int {
	if id == 0 {
		return nil
	}
	return []int{id}
}

func (b *graphBuilder) add(n *et.Node, deps ...int) int {
	n.ID = b.nextID
	b.nextID++
	for _, d := range deps {
		if d != 0 {
			n.Deps = append(n.Deps, d)
		}
	}
	b.nodes = append(b.nodes, n)
	return n.ID
}

func (b *graphBuilder) compute(name string, flops float64, memBytes int64, deps ...[]int) int {
	return b.add(&et.Node{Name: name, Kind: et.KindCompute, FLOPs: flops, MemBytes: memBytes}, flatten(deps)...)
}

func (b *graphBuilder) memory(name string, op et.MemOp, loc et.MemLocation, bytes int64, deps ...int) int {
	return b.add(&et.Node{Name: name, Kind: et.KindMemory, MemOp: op, MemLocation: loc, TensorBytes: bytes}, deps...)
}

func (b *graphBuilder) collective(name string, coll et.CollectiveType, bytes int64, group *et.GroupRef, inSwitch bool, deps ...[]int) int {
	return b.add(&et.Node{
		Name: name, Kind: et.KindComm, Collective: coll,
		CommBytes: bytes, Group: group, InSwitch: inSwitch,
	}, flatten(deps)...)
}

func (b *graphBuilder) send(name string, peer, tag int, bytes int64, deps ...int) int {
	return b.add(&et.Node{Name: name, Kind: et.KindSend, Peer: peer, Tag: tag, CommBytes: bytes}, deps...)
}

func (b *graphBuilder) recv(name string, peer, tag int, bytes int64, deps ...int) int {
	return b.add(&et.Node{Name: name, Kind: et.KindRecv, Peer: peer, Tag: tag, CommBytes: bytes}, deps...)
}

func flatten(deps [][]int) []int {
	var out []int
	for _, d := range deps {
		out = append(out, d...)
	}
	return out
}

// symmetric builds a whole-machine trace where every NPU shares the same
// node list. Nodes are shared (not copied): the execution engine treats
// them as read-only and resolves communicator groups per issuing rank, so
// sharing keeps trace memory independent of machine size.
func symmetric(name string, numNPUs int, b *graphBuilder) *et.Trace {
	tr := &et.Trace{Name: name, NumNPUs: numNPUs}
	for r := 0; r < numNPUs; r++ {
		tr.Graphs = append(tr.Graphs, &et.Graph{NPU: r, Nodes: b.nodes})
	}
	return tr
}
