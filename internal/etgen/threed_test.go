package etgen

import (
	"testing"

	"repro/internal/et"
	"repro/internal/memory"
	"repro/internal/topology"
	"repro/internal/units"
)

func tinyModel(mp int) TransformerConfig {
	return TransformerConfig{
		Name: "tiny", Params: 4e9, Layers: 8, Hidden: 2048, SeqLen: 512,
		MicroBatch: 1, BytesPerElem: 2, MP: mp,
	}
}

func TestMapGrid(t *testing.T) {
	top := conv4D() // 2 x 8 x 8 x 4 = 512
	grids, err := MapGrid(top, 4, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 3 {
		t.Fatalf("grids = %d", len(grids))
	}
	// Factor products must match.
	for i, want := range []int{4, 32, 4} {
		if got := spanProduct(grids[i]); got != want {
			t.Errorf("grid %d covers %d, want %d", i, got, want)
		}
	}
	// Factors partition the rank space: reconstruct rank 0..511 coverage
	// by checking the innermost factor starts at stride 1 and the last
	// ends at the machine boundary.
	if grids[0][0].Stride != 1 {
		t.Errorf("inner factor stride = %d", grids[0][0].Stride)
	}
}

func TestMapGridErrors(t *testing.T) {
	top := wafer(512)
	if _, err := MapGrid(top, 3, 171); err == nil {
		t.Error("non-divisor boundary accepted")
	}
	if _, err := MapGrid(top, 256, 4); err == nil {
		t.Error("over-covering grid accepted")
	}
	if _, err := MapGrid(top, 0, 512); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestThreeDTraceValidatesAndRuns(t *testing.T) {
	// 32 NPUs: MP=4, DP=2, stages=4.
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(300)},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50)},
	)
	cfg := ThreeDConfig{Model: tinyModel(4), Stages: 4, MicroBatches: 4}
	tr, err := ThreeD(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := simRun(t, top, tr, memory.System{})
	if stats.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	b := stats.MeanBreakdown()
	if b.Compute <= 0 || b.ExposedComm <= 0 {
		t.Errorf("3D breakdown missing compute or comm: %+v", b)
	}
	// Stage-0 ranks idle during the pipeline drain.
	if stats.PerNPU[0].Idle <= 0 {
		t.Errorf("stage-0 rank should see bubble idle: %+v", stats.PerNPU[0])
	}
}

func TestThreeDValidation(t *testing.T) {
	top := wafer(32)
	if _, err := ThreeD(top, ThreeDConfig{Model: tinyModel(4), Stages: 1, MicroBatches: 1}); err == nil {
		t.Error("single stage accepted")
	}
	if _, err := ThreeD(top, ThreeDConfig{Model: tinyModel(5), Stages: 4, MicroBatches: 1}); err == nil {
		t.Error("non-dividing MP accepted")
	}
	bad := tinyModel(4)
	bad.Layers = 6 // does not divide into 4 stages
	if _, err := ThreeD(top, ThreeDConfig{Model: bad, Stages: 4, MicroBatches: 1}); err == nil {
		t.Error("non-dividing layer count accepted")
	}
}

func TestThreeDDifferentStagesDifferentGraphs(t *testing.T) {
	top := wafer(16)
	tr, err := ThreeD(top, ThreeDConfig{Model: tinyModel(2), Stages: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	// First and last stage differ structurally: stage 0 only sends
	// downstream (forward) and receives from downstream (backward); the
	// last stage is the mirror image. Peers must be one block (8) apart.
	for _, n := range tr.Graphs[0].Nodes {
		switch n.Kind {
		case et.KindSend, et.KindRecv:
			if n.Peer != 8 {
				t.Errorf("stage 0 rank 0 %s peer = %d, want 8", n.Kind, n.Peer)
			}
		}
	}
	for _, n := range tr.Graphs[15].Nodes {
		switch n.Kind {
		case et.KindSend, et.KindRecv:
			if n.Peer != 7 {
				t.Errorf("last stage rank 15 %s peer = %d, want 7", n.Kind, n.Peer)
			}
		}
	}
	// Each edge stage has one send and one recv per microbatch.
	count := func(g *et.Graph, kind et.NodeKind) int {
		c := 0
		for _, n := range g.Nodes {
			if n.Kind == kind {
				c++
			}
		}
		return c
	}
	if count(tr.Graphs[0], et.KindSend) != 2 || count(tr.Graphs[0], et.KindRecv) != 2 {
		t.Errorf("stage 0 p2p = %d sends / %d recvs, want 2/2",
			count(tr.Graphs[0], et.KindSend), count(tr.Graphs[0], et.KindRecv))
	}
	// A middle... with 2 stages there is no middle; the mirror check above
	// suffices.
}

func TestFSDPTraceRuns(t *testing.T) {
	top := wafer(8)
	tr, err := FSDP(top, FSDPConfig{Model: tinyModel(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := simRun(t, top, tr, memory.System{})
	if stats.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// FSDP is gather/scatter heavy: both collective types must appear.
	var ag, rs int
	for _, n := range tr.Graphs[0].Nodes {
		switch n.Collective {
		case et.CollAllGather:
			ag++
		case et.CollReduceScatter:
			rs++
		}
	}
	if ag != 16 || rs != 8 { // 8 layers: fwd+bwd gathers, bwd scatters
		t.Errorf("FSDP collectives: %d AG / %d RS", ag, rs)
	}
}

func TestFSDPPrefetchHelps(t *testing.T) {
	top := wafer(8)
	run := func(noPrefetch bool) units.Time {
		tr, err := FSDP(top, FSDPConfig{Model: tinyModel(1), NoPrefetch: noPrefetch})
		if err != nil {
			t.Fatal(err)
		}
		return simRun(t, top, tr, memory.System{}).Makespan
	}
	with, without := run(false), run(true)
	if with >= without {
		t.Errorf("prefetch (%v) should beat no-prefetch (%v)", with, without)
	}
}

func TestFSDPValidation(t *testing.T) {
	top := wafer(8)
	bad := tinyModel(1)
	bad.Layers = 0
	if _, err := FSDP(top, FSDPConfig{Model: bad}); err == nil {
		t.Error("invalid model accepted")
	}
}
