package etgen

import (
	"fmt"

	"repro/internal/et"
	"repro/internal/topology"
)

// FSDPConfig describes fully-sharded data parallelism (FSDP / ZeRO-3), the
// other headline strategy the paper's Section III names: parameters,
// gradients, and optimizer state are sharded across all ranks; each layer
// is materialized with an All-Gather before use (forward and backward) and
// gradients leave as a Reduce-Scatter. Layer-granular prefetch overlaps
// the next layer's gather with the current layer's compute.
type FSDPConfig struct {
	Model TransformerConfig
	// NoPrefetch disables the next-layer gather overlap (ablation knob).
	NoPrefetch bool
}

// FSDP generates one fully-sharded training iteration across the whole
// machine. The trace is symmetric.
func FSDP(top *topology.Topology, cfg FSDPConfig) (*et.Trace, error) {
	n := top.NumNPUs()
	model := cfg.Model
	if model.Layers < 1 || model.Params <= 0 || model.MicroBatch < 1 || model.BytesPerElem < 1 {
		return nil, fmt.Errorf("etgen: FSDP %s: invalid model shape", model.Name)
	}
	paramsPerLayer := model.Params / float64(model.Layers)
	tokens := float64(model.MicroBatch * model.SeqLen)
	fwdFlops := 2 * paramsPerLayer * tokens
	bwdFlops := 2 * fwdFlops
	// Full layer weights materialized per rank.
	layerBytes := int64(paramsPerLayer) * int64(model.BytesPerElem)
	actBytes := int64(model.MicroBatch*model.SeqLen*model.Hidden) * int64(model.BytesPerElem)

	b := newGraphBuilder()
	full := (*et.GroupRef)(nil)

	// Forward: gather each layer, compute; prefetch next layer's gather.
	gathers := make([]int, model.Layers)
	prevGather, prevComp := 0, 0
	for l := 0; l < model.Layers; l++ {
		deps := dep(prevGather)
		if cfg.NoPrefetch {
			deps = flatten([][]int{dep(prevGather), dep(prevComp)})
		}
		ag := b.collective(fmt.Sprintf("fwd%d.ag", l), et.CollAllGather, layerBytes, full, false, deps)
		comp := b.compute(fmt.Sprintf("fwd%d", l), fwdFlops, layerBytes+actBytes, dep(ag), dep(prevComp))
		gathers[l] = ag
		prevGather, prevComp = ag, comp
	}

	// Backward: regather each layer (weights were freed), compute, then
	// reduce-scatter its gradients.
	prevBwd := prevComp
	prevRS := 0
	for l := model.Layers - 1; l >= 0; l-- {
		deps := dep(prevGather)
		if cfg.NoPrefetch {
			deps = flatten([][]int{dep(prevGather), dep(prevBwd)})
		}
		ag := b.collective(fmt.Sprintf("bwd%d.ag", l), et.CollAllGather, layerBytes, full, false, deps)
		comp := b.compute(fmt.Sprintf("bwd%d", l), bwdFlops, layerBytes+actBytes, dep(ag), dep(prevBwd))
		rs := b.collective(fmt.Sprintf("bwd%d.rs", l), et.CollReduceScatter, layerBytes, full, false, dep(comp), dep(prevRS))
		prevGather, prevBwd, prevRS = ag, comp, rs
	}

	// Optimizer on the local shard.
	shard := int64(model.Params) * int64(model.BytesPerElem) / int64(n)
	load := b.memory("opt.load", et.MemLoad, et.MemLocal, shard, prevRS, prevBwd)
	opt := b.compute("opt.step", float64(shard), 2*shard, dep(load))
	b.memory("opt.store", et.MemStore, et.MemLocal, shard, opt)

	return symmetric(model.Name+"/FSDP", n, b), nil
}
