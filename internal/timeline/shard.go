package timeline

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/units"
)

// ShardGroup is the sharded event engine: the pending-event set is
// partitioned across K timeline shards, each with its own priority heap,
// and the shards are synchronized with conservative lookahead — at each
// sync round every shard independently (and, for large rounds, in
// parallel) flushes its staged inserts and harvests everything due inside
// the window [t, t+lookahead], where t is the global minimum pending
// timestamp. The harvested streams are merged in deterministic (time, seq)
// order and fired serially, so the group executes events in exactly the
// order the serial Engine would: simulated output is byte-identical to the
// serial run for every shard count, and independent of GOMAXPROCS and
// goroutine scheduling.
//
// The window is safe at any width because firing is conservative: a
// callback can only schedule into its own future, and the group re-syncs
// (flush + harvest + merge) whenever a freshly staged event undercuts the
// next harvested timestamp, so no event is ever fired out of order. The
// lookahead merely widens the batch each sync round amortizes over — the
// natural setting is the minimum cross-shard link latency, below which a
// model cannot react across shards anyway.
//
// What sharding buys is queue bandwidth, not callback parallelism: heap
// maintenance on K shards costs O(log(N/K)) per event on private cache-hot
// arrays, flush and harvest rounds fan out to worker goroutines once a
// round is large enough to amortize the barrier, and the merge is a linear
// K-way pass. Event bodies still run on the coordinating goroutine —
// determinism is the point of a DES core, and the model layers are free to
// exploit real concurrency across simulations instead (see the README's
// guidance on lookahead sync vs batched independent runs).
type ShardGroup struct {
	now      units.Time
	seq      uint64
	fired    uint64
	credited int64
	budget   uint64

	// One-shot schedule watch; see Engine.SetScheduleWatch.
	watchLimit units.Time
	watchFn    func()

	shards []shard
	heaped int // events resident in shard heaps

	// staged counts events buffered in shard insert queues since the last
	// sync round; stagedMin is their minimum timestamp — the bound that
	// triggers a re-sync when it undercuts the harvested stream.
	staged    int
	stagedMin units.Time

	// zq is the same-instant FIFO, exactly the serial engine's fast path:
	// zero-delay events never enter a shard heap.
	zq     []shardEvent
	zqHead int

	// due is the merged, (at, seq)-sorted stream of harvested events;
	// mergeBuf is its double buffer.
	due      []shardEvent
	dueHead  int
	mergeBuf []shardEvent

	lookahead units.Time
}

// shardEvent is a value-typed queue entry, ordered by (at, seq).
type shardEvent struct {
	at    units.Time
	seq   uint64
	fn    Callback
	actor Actor
}

// shard is one timeline partition: a private 4-ary heap plus the insert
// and harvest buffers its round operates on. During a parallel sync round
// each shard is touched by exactly one worker goroutine.
type shard struct {
	heap   []shardEvent
	buf    []shardEvent
	due    []shardEvent
	min    units.Time // heap-top timestamp after the last round
	cursor int        // merge position in due (coordinator-only)
}

const maxTime = units.Time(math.MaxInt64)

// shardParallelMin is the resident-event count above which sync rounds fan
// out to one goroutine per shard; smaller rounds run inline on the
// coordinator, where the barrier would cost more than the work.
const shardParallelMin = 4096

// NewSharded returns an empty k-way sharded engine at simulated time zero
// with zero lookahead (per-instant synchronization).
func NewSharded(k int) *ShardGroup {
	if k < 1 {
		k = 1
	}
	g := &ShardGroup{
		shards:    make([]shard, k),
		stagedMin: maxTime,
	}
	for i := range g.shards {
		g.shards[i].min = maxTime
	}
	return g
}

// Shards reports the shard count.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// SetLookahead widens the conservative synchronization window: each sync
// round harvests every event due within d of the earliest pending one.
// Any value is safe (the group re-syncs when a staged event undercuts the
// window); larger windows amortize more events per barrier. The natural
// setting is the minimum cross-shard link latency.
func (g *ShardGroup) SetLookahead(d units.Time) {
	if d < 0 {
		d = 0
	}
	g.lookahead = d
}

// Now returns the current simulated time.
func (g *ShardGroup) Now() units.Time { return g.now }

// Pending reports how many events are waiting across all shards.
func (g *ShardGroup) Pending() int {
	return g.heaped + g.staged + (len(g.zq) - g.zqHead) + (len(g.due) - g.dueHead)
}

// Fired reports how many events have executed since construction,
// including events credited by CreditFired.
func (g *ShardGroup) Fired() uint64 { return uint64(int64(g.fired) + g.credited) }

// CreditFired accounts n events a fast-forward path skipped; see
// Engine.CreditFired. Credited events never count against the event
// budget, which guards live scheduling loops globally across shards.
func (g *ShardGroup) CreditFired(n int64) { g.credited += n }

// SetEventBudget caps the number of events a single Run or RunUntil may
// execute, summed across every shard — the budget is global, so k shards
// never buy a workload k times the livelock headroom. Zero = unlimited.
func (g *ShardGroup) SetEventBudget(n uint64) { g.budget = n }

// SetScheduleWatch arms a one-shot watch over the window (now, limit]; see
// Engine.SetScheduleWatch. The watch fires on the coordinating goroutine
// before the triggering event is staged, so it observes and produces the
// same deterministic seq order as the serial engine.
func (g *ShardGroup) SetScheduleWatch(limit units.Time, fn func()) {
	g.watchLimit, g.watchFn = limit, fn
}

func (g *ShardGroup) enqueue(delay units.Time, fn Callback, actor Actor) {
	if delay < 0 {
		delay = 0
	}
	if g.watchFn != nil && g.now+delay <= g.watchLimit {
		wf := g.watchFn
		g.watchFn = nil // disarm before invoking: wf may schedule into the window
		wf()
	}
	g.seq++
	ev := shardEvent{at: g.now + delay, seq: g.seq, fn: fn, actor: actor}
	if delay == 0 {
		g.zq = append(g.zq, ev)
		return
	}
	// Round-robin placement by sequence number balances the shards for any
	// schedule pattern and keeps placement deterministic.
	sh := &g.shards[int(ev.seq%uint64(len(g.shards)))]
	sh.buf = append(sh.buf, ev)
	g.staged++
	if ev.at < g.stagedMin {
		g.stagedMin = ev.at
	}
}

// Schedule enqueues fn to run after delay (negative clamps to zero).
func (g *ShardGroup) Schedule(delay units.Time, fn Callback) {
	if fn == nil {
		panic("timeline: Schedule called with nil callback")
	}
	g.enqueue(delay, fn, nil)
}

// ScheduleAt enqueues fn at an absolute simulated time, which must not be
// in the past.
func (g *ShardGroup) ScheduleAt(at units.Time, fn Callback) {
	if at < g.now {
		at = g.now
	}
	g.Schedule(at-g.now, fn)
}

// ScheduleActor enqueues a typed event to run after delay.
func (g *ShardGroup) ScheduleActor(delay units.Time, a Actor) {
	if a == nil {
		panic("timeline: ScheduleActor called with nil actor")
	}
	g.enqueue(delay, nil, a)
}

// ScheduleActorAt enqueues a typed event at an absolute simulated time.
func (g *ShardGroup) ScheduleActorAt(at units.Time, a Actor) {
	if a == nil {
		panic("timeline: ScheduleActorAt called with nil actor")
	}
	if at < g.now {
		at = g.now
	}
	g.enqueue(at-g.now, nil, a)
}

// Run executes events until the queue drains.
func (g *ShardGroup) Run() (units.Time, error) { return g.run(0, false) }

// RunUntil executes events with timestamps <= deadline; events beyond the
// deadline remain queued, and the clock advances to the deadline if it was
// reached without draining.
func (g *ShardGroup) RunUntil(deadline units.Time) (units.Time, error) {
	return g.run(deadline, true)
}

// run is the coordinator loop. Each iteration fires the same-instant FIFO,
// then either fires the next harvested instant (when the due stream is
// provably next in global order) or syncs the shards to extend it.
func (g *ShardGroup) run(deadline units.Time, bounded bool) (units.Time, error) {
	start := g.fired
	for {
		// Same-instant FIFO: entries are due exactly at the current clock
		// and fire in schedule order, after every harvested event at this
		// instant (the instant loop below exhausts those first — a firing
		// callback cannot create a new heap event due "now", only zq
		// entries or strictly future ones).
		if g.zqHead < len(g.zq) {
			if bounded && g.now > deadline {
				break
			}
			ev := g.zq[g.zqHead]
			g.zq[g.zqHead].fn, g.zq[g.zqHead].actor = nil, nil
			g.zqHead++
			if g.zqHead == len(g.zq) {
				g.zq = g.zq[:0]
				g.zqHead = 0
			}
			g.fire(ev)
			if g.budget > 0 && g.fired-start > g.budget {
				return g.now, fmt.Errorf("timeline: event budget %d exceeded at t=%v (likely a scheduling livelock)", g.budget, g.now)
			}
			continue
		}

		// The earliest pending timestamp across the merged stream, the
		// staged inserts, and the shard heaps.
		dueAt := maxTime
		if g.dueHead < len(g.due) {
			dueAt = g.due[g.dueHead].at
		}
		other := g.stagedMin
		for i := range g.shards {
			if g.shards[i].min < other {
				other = g.shards[i].min
			}
		}
		t := dueAt
		if other < t {
			t = other
		}
		if t == maxTime {
			break // drained
		}
		if bounded && t > deadline {
			if g.now < deadline {
				g.now = deadline
			}
			break
		}

		// Conservative synchronization: if any staged or heap-resident
		// event could precede (or tie, at a lower seq than a later-staged
		// entry never can — ties sort behind harvested events, but a
		// strictly earlier one must not) the harvested stream, fold it in
		// before firing.
		if other <= dueAt {
			windowEnd := t + g.lookahead
			if windowEnd < t {
				windowEnd = maxTime // overflow saturates
			}
			if bounded && windowEnd > deadline {
				windowEnd = deadline
			}
			g.sync(windowEnd)
			continue
		}

		// Fire the whole instant from the merged stream in (at, seq)
		// order. Callbacks may stage new events, but only strictly future
		// ones, so the instant's due set is fixed once it begins.
		g.now = dueAt
		for g.dueHead < len(g.due) && g.due[g.dueHead].at == g.now {
			ev := g.due[g.dueHead]
			g.due[g.dueHead].fn, g.due[g.dueHead].actor = nil, nil
			g.dueHead++
			g.fire(ev)
			if g.budget > 0 && g.fired-start > g.budget {
				return g.now, fmt.Errorf("timeline: event budget %d exceeded at t=%v (likely a scheduling livelock)", g.budget, g.now)
			}
		}
		if g.dueHead == len(g.due) {
			g.due = g.due[:0]
			g.dueHead = 0
		}
	}
	return g.now, nil
}

func (g *ShardGroup) fire(ev shardEvent) {
	g.fired++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.actor.Act()
	}
}

// sync runs one flush+harvest round: every shard moves its staged inserts
// into its heap and pops everything due at or before windowEnd, then the
// coordinator merges the K sorted harvests with the leftover due stream.
// Large rounds fan out to one worker goroutine per shard; the WaitGroup
// barrier orders every shard's writes before the merge reads them.
func (g *ShardGroup) sync(windowEnd units.Time) {
	flushed := g.staged
	if len(g.shards) > 1 && g.heaped+g.staged >= shardParallelMin {
		var wg sync.WaitGroup
		wg.Add(len(g.shards))
		for i := range g.shards {
			go shardRound(&g.shards[i], windowEnd, &wg)
		}
		wg.Wait()
	} else {
		for i := range g.shards {
			g.shards[i].round(windowEnd)
		}
	}
	g.staged = 0
	g.stagedMin = maxTime
	harvested := 0
	for i := range g.shards {
		harvested += len(g.shards[i].due)
	}
	g.heaped += flushed - harvested
	g.mergeDue()
}

func shardRound(sh *shard, windowEnd units.Time, wg *sync.WaitGroup) {
	sh.round(windowEnd)
	wg.Done()
}

// round flushes the shard's staged inserts and harvests its due events;
// both buffers are private to the shard for the duration of the round.
func (sh *shard) round(windowEnd units.Time) {
	for i := range sh.buf {
		sh.push(sh.buf[i])
		sh.buf[i].fn, sh.buf[i].actor = nil, nil
	}
	sh.buf = sh.buf[:0]
	sh.due = sh.due[:0]
	for len(sh.heap) > 0 && sh.heap[0].at <= windowEnd {
		sh.due = append(sh.due, sh.pop())
	}
	if len(sh.heap) > 0 {
		sh.min = sh.heap[0].at
	} else {
		sh.min = maxTime
	}
}

// mergeDue K-way-merges the shards' harvested streams (each already
// (at, seq)-sorted — heaps pop in order) with the unfired remainder of the
// previous merge into a fresh globally ordered stream. The output reuses
// the double buffer, so the steady state allocates nothing.
func (g *ShardGroup) mergeDue() {
	total := len(g.due) - g.dueHead
	for i := range g.shards {
		total += len(g.shards[i].due)
	}
	if cap(g.mergeBuf) < total {
		g.mergeBuf = make([]shardEvent, 0, 2*total)
	}
	out := g.mergeBuf[:0]
	left := g.due[g.dueHead:]
	li := 0
	// Linear (K+1)-way merge: K is small (<= machine cores), so a scan per
	// output element beats a loser tree here. Per-shard cursors live in
	// the shard structs, keeping the pass allocation-free at any K.
	for {
		bestAt := maxTime
		var bestSeq uint64
		found := false
		bestSrc := -1 // -1 = leftover, else shard index
		if li < len(left) {
			bestAt, bestSeq, bestSrc, found = left[li].at, left[li].seq, -1, true
		}
		for i := range g.shards {
			d := g.shards[i].due
			c := g.shards[i].cursor
			if c >= len(d) {
				continue
			}
			if !found || d[c].at < bestAt || (d[c].at == bestAt && d[c].seq < bestSeq) {
				bestAt, bestSeq, bestSrc, found = d[c].at, d[c].seq, i, true
			}
		}
		if !found {
			break
		}
		if bestSrc == -1 {
			out = append(out, left[li])
			li++
		} else {
			out = append(out, g.shards[bestSrc].due[g.shards[bestSrc].cursor])
			g.shards[bestSrc].cursor++
		}
	}
	g.mergeBuf = g.due[:0]
	g.due = out
	g.dueHead = 0
	for i := range g.shards {
		g.shards[i].cursor = 0
	}
}

// --- per-shard 4-ary value heap ordered by (at, seq) ---

func shardLess(a, b *shardEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (sh *shard) push(ev shardEvent) {
	sh.heap = append(sh.heap, ev)
	h := sh.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !shardLess(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (sh *shard) pop() shardEvent {
	h := sh.heap
	root := h[0]
	n := len(h) - 1
	x := h[n]
	h[n].fn, h[n].actor = nil, nil
	sh.heap = h[:n]
	if n > 0 {
		h = sh.heap
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if shardLess(&h[j], &h[best]) {
					best = j
				}
			}
			if !shardLess(&h[best], &x) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = x
	}
	return root
}
