package timeline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEmptyRun(t *testing.T) {
	e := New()
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("empty run ended at %v, want 0", end)
	}
}

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30*units.Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*units.Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*units.Nanosecond, func() { order = append(order, 2) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("events fired out of order: %v", order)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*units.Nanosecond, func() { order = append(order, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []units.Time
	e.Schedule(10*units.Nanosecond, func() {
		times = append(times, e.Now())
		e.Schedule(5*units.Nanosecond, func() {
			times = append(times, e.Now())
		})
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 15*units.Nanosecond {
		t.Errorf("end = %v, want 15ns", end)
	}
	if len(times) != 2 || times[0] != 10*units.Nanosecond || times[1] != 15*units.Nanosecond {
		t.Errorf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	e.Schedule(10*units.Nanosecond, func() {
		e.Schedule(-5*units.Nanosecond, func() {
			if e.Now() != 10*units.Nanosecond {
				t.Errorf("negative delay fired at %v, want clamp to 10ns", e.Now())
			}
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAt(t *testing.T) {
	e := New()
	fired := false
	e.ScheduleAt(42*units.Microsecond, func() { fired = true })
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || end != 42*units.Microsecond {
		t.Errorf("fired=%v end=%v", fired, end)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil callback")
		}
	}()
	New().Schedule(0, nil)
}

func TestEventBudget(t *testing.T) {
	e := New()
	e.SetEventBudget(100)
	var loop func()
	loop = func() { e.Schedule(units.Nanosecond, loop) }
	e.Schedule(0, loop)
	if _, err := e.Run(); err == nil {
		t.Error("expected budget-exceeded error from livelock")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []units.Time
	for _, d := range []units.Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d*units.Nanosecond, func() { fired = append(fired, e.Now()) })
	}
	if _, err := e.RunUntil(25 * units.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	if e.Now() != 25*units.Nanosecond {
		t.Errorf("clock = %v, want 25ns", e.Now())
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("total fired = %d, want 4", len(fired))
	}
}

// Property: for any set of random delays, events fire in nondecreasing
// time order and the clock never runs backwards.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		count := int(n%64) + 1
		delays := make([]units.Time, count)
		for i := range delays {
			delays[i] = units.Time(rng.Int63n(1_000_000))
		}
		var fired []units.Time
		for _, d := range delays {
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		if len(fired) != count {
			return false
		}
		sorted := append([]units.Time(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunUntilEnforcesBudget(t *testing.T) {
	e := New()
	e.SetEventBudget(100)
	var loop func()
	loop = func() { e.Schedule(units.Nanosecond, loop) }
	e.Schedule(0, loop)
	if _, err := e.RunUntil(units.Second); err == nil {
		t.Error("expected budget-exceeded error from livelock in RunUntil")
	}
}

// testActor records its firing times.
type testActor struct {
	eng   *Engine
	times []units.Time
}

func (a *testActor) Act() { a.times = append(a.times, a.eng.Now()) }

func TestScheduleActor(t *testing.T) {
	e := New()
	a := &testActor{eng: e}
	e.ScheduleActor(20*units.Nanosecond, a)
	e.ScheduleActor(10*units.Nanosecond, a)
	e.ScheduleActorAt(30*units.Nanosecond, a)
	e.ScheduleActor(0, a)
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 30*units.Nanosecond {
		t.Errorf("end = %v, want 30ns", end)
	}
	want := []units.Time{0, 10 * units.Nanosecond, 20 * units.Nanosecond, 30 * units.Nanosecond}
	if len(a.times) != len(want) {
		t.Fatalf("fired %d times, want %d", len(a.times), len(want))
	}
	for i, w := range want {
		if a.times[i] != w {
			t.Errorf("firing %d at %v, want %v", i, a.times[i], w)
		}
	}
}

func TestNilActorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil actor")
		}
	}()
	New().ScheduleActor(0, nil)
}

// Events landing on the same instant via the heap (scheduled earlier with a
// positive delay) must fire before events scheduled with delay zero at that
// instant — heap arrivals carry earlier sequence numbers. This pins the
// zero-delay fast path's ordering contract.
func TestZeroDelayInterleavesWithHeapFIFO(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(10*units.Nanosecond, func() {
		order = append(order, "first@10")
		// Scheduled at t=10 with delay 0: must fire after the pre-queued
		// heap events also due at t=10 (they were scheduled earlier).
		e.Schedule(0, func() { order = append(order, "zero-a") })
		e.Schedule(0, func() {
			order = append(order, "zero-b")
			e.Schedule(0, func() { order = append(order, "zero-c") })
		})
	})
	e.Schedule(10*units.Nanosecond, func() { order = append(order, "second@10") })
	e.Schedule(10*units.Nanosecond, func() { order = append(order, "third@10") })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first@10", "second@10", "third@10", "zero-a", "zero-b", "zero-c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Heavy churn through the free list and both queue lanes must preserve the
// global (time, schedule-order) firing order.
func TestChurnOrdering(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(7))
	var fired []units.Time
	var spawn func(depth int)
	spawn = func(depth int) {
		fired = append(fired, e.Now())
		if depth <= 0 {
			return
		}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			d := units.Time(rng.Int63n(100))
			e.Schedule(d, func() { spawn(depth - 1) })
		}
	}
	for i := 0; i < 50; i++ {
		d := units.Time(rng.Int63n(1000))
		e.Schedule(d, func() { spawn(4) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("clock ran backwards at firing %d: %v -> %v", i, fired[i-1], fired[i])
		}
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.Schedule(units.Time(i)*units.Nanosecond, func() {})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 10 {
		t.Errorf("Fired() = %d, want 10", e.Fired())
	}
}
