// Package timeline implements the discrete-event simulation core shared by
// every layer of the simulator: a simulation clock and a deterministic
// min-heap event queue.
//
// Events scheduled for the same instant fire in schedule (FIFO) order, which
// makes simulations byte-for-byte reproducible regardless of map iteration
// order or goroutine scheduling (the engine is single-threaded by design —
// discrete-event simulators gain nothing from parallelism at this scale and
// lose determinism).
package timeline

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Callback is an event body, invoked at its scheduled simulated time.
type Callback func()

type event struct {
	at  units.Time
	seq uint64 // schedule order, breaks ties deterministically
	fn  Callback
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now    units.Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	budget uint64 // max events per Run; 0 = unlimited
}

// New returns an empty engine at simulated time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have executed since construction.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventBudget caps the number of events a single Run may execute;
// Run returns an error when the cap is hit. Zero means unlimited.
// This is a guard against accidental livelock in model code.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// Schedule enqueues fn to run after delay. A negative delay is an error in
// the model; it is clamped to zero so the event fires "now" rather than in
// the past, preserving the monotonic clock invariant.
func (e *Engine) Schedule(delay units.Time, fn Callback) {
	if fn == nil {
		panic("timeline: Schedule called with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt enqueues fn at an absolute simulated time, which must not be
// in the past.
func (e *Engine) ScheduleAt(at units.Time, fn Callback) {
	if at < e.now {
		at = e.now
	}
	e.Schedule(at-e.now, fn)
}

// Step executes the single earliest event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.at < e.now {
		// Cannot happen: Schedule clamps to now and the heap orders by time.
		panic(fmt.Sprintf("timeline: time ran backwards: %v -> %v", e.now, ev.at))
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains. It returns the final
// simulated time, or an error if the configured event budget was exceeded.
func (e *Engine) Run() (units.Time, error) {
	start := e.fired
	for e.Step() {
		if e.budget > 0 && e.fired-start > e.budget {
			return e.now, fmt.Errorf("timeline: event budget %d exceeded at t=%v (likely a scheduling livelock)", e.budget, e.now)
		}
	}
	return e.now, nil
}

// RunUntil executes events with timestamps <= deadline; events beyond the
// deadline remain queued. The clock advances to the deadline if it was
// reached without draining.
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && len(e.queue) > 0 {
		e.now = deadline
	}
	return e.now
}
