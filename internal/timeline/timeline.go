// Package timeline implements the discrete-event simulation core shared by
// every layer of the simulator: a simulation clock and a deterministic
// min-heap event queue.
//
// Events scheduled for the same instant fire in schedule (FIFO) order, which
// makes simulations byte-for-byte reproducible regardless of map iteration
// order or goroutine scheduling (the engine is single-threaded by design —
// discrete-event simulators gain nothing from parallelism at this scale and
// lose determinism).
//
// The queue is built for throughput: events live by value in a slot arena
// recycled through a free list, the priority queue is a 4-ary heap of slot
// indices (no interface{} boxing, no per-event allocation in steady state),
// and zero-delay events bypass the heap entirely through a same-instant
// FIFO. Model layers that schedule millions of events can avoid closure
// allocations too by implementing Actor and using ScheduleActor.
package timeline

import (
	"fmt"

	"repro/internal/units"
)

// Callback is an event body, invoked at its scheduled simulated time.
type Callback func()

// Actor is a typed event body: an object whose Act method runs at the
// scheduled time. Scheduling an existing pointer through ScheduleActor
// stores the interface pair directly in the event slot, so hot model code
// pays no closure allocation per event.
type Actor interface {
	Act()
}

// event is a value-typed queue entry. Exactly one of fn/actor is set.
type event struct {
	at    units.Time
	seq   uint64 // schedule order, breaks ties deterministically
	fn    Callback
	actor Actor
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now units.Time

	// slots is the event arena; free holds recycled slot indices. Events
	// are addressed by index so the heap and FIFO move 4-byte handles, not
	// event values, and steady-state scheduling never allocates.
	slots []event
	free  []int32

	// heap is a 4-ary min-heap of slot indices ordered by (at, seq).
	heap []int32

	// zq is the zero-delay fast path: a FIFO of slots due exactly at the
	// current instant. Every entry was scheduled while the clock already
	// stood at its timestamp, so entries are in seq order and all heap
	// events due now precede all of them (they were scheduled earlier).
	zq     []int32
	zqHead int

	seq      uint64
	fired    uint64
	credited int64
	budget   uint64 // max events per Run/RunUntil; 0 = unlimited

	// One-shot schedule watch (SetScheduleWatch): while armed, enqueueing
	// any event due at or before watchLimit disarms the watch and invokes
	// watchFn BEFORE the triggering event is enqueued.
	watchLimit units.Time
	watchFn    func()
}

// New returns an empty engine at simulated time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) + len(e.zq) - e.zqHead }

// Fired reports how many events have executed since construction,
// including events credited by CreditFired.
func (e *Engine) Fired() uint64 { return uint64(int64(e.fired) + e.credited) }

// CreditFired accounts n events that a fast-forward path (e.g. a memoized
// collective replay) skipped, so Fired reports the same total as the
// equivalent fully simulated run. A negative n revokes an earlier credit
// when a fast-forward is rolled back; the running balance may go negative
// transiently, as long as Fired's total stays non-negative. Credited events
// never count against the event budget — the budget guards live scheduling
// loops.
func (e *Engine) CreditFired(n int64) { e.credited += n }

// SetEventBudget caps the number of events a single Run or RunUntil may
// execute; the run returns an error when the cap is hit. Zero means
// unlimited. This is a guard against accidental livelock in model code.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// allocSlot takes a slot from the free list (or grows the arena) and fills
// it. It returns the slot index; the caller enqueues it.
func (e *Engine) allocSlot(at units.Time, fn Callback, actor Actor) int32 {
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, event{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at, s.seq, s.fn, s.actor = at, e.seq, fn, actor
	return idx
}

// SetScheduleWatch arms a one-shot watch over the window (now, limit]: the
// next event enqueued with a fire time at or before limit disarms the watch
// and invokes fn before that event is enqueued, so fn's own scheduling (a
// cancelled fast-forward re-running live) precedes the triggering event in
// seq order — exactly the order a never-fast-forwarded run would produce.
// The watch fires at schedule time, while the clock still stands wherever
// the scheduling code is running, which is what makes rollbacks of
// time-skipping replays exact: cancellation happens before the clock can
// advance past the replay's start. fn may re-arm the watch; passing a nil
// fn disarms it.
func (e *Engine) SetScheduleWatch(limit units.Time, fn func()) {
	e.watchLimit, e.watchFn = limit, fn
}

func (e *Engine) enqueue(delay units.Time, fn Callback, actor Actor) {
	if delay < 0 {
		delay = 0
	}
	if e.watchFn != nil && e.now+delay <= e.watchLimit {
		wf := e.watchFn
		e.watchFn = nil // disarm before invoking: wf may schedule into the window
		wf()
	}
	idx := e.allocSlot(e.now+delay, fn, actor)
	if delay == 0 {
		// Same-instant events never sift: they fire after everything
		// already due now, in schedule order, which is exactly a FIFO.
		e.zq = append(e.zq, idx)
		return
	}
	e.heapPush(idx)
}

// Schedule enqueues fn to run after delay. A negative delay is an error in
// the model; it is clamped to zero so the event fires "now" rather than in
// the past, preserving the monotonic clock invariant.
func (e *Engine) Schedule(delay units.Time, fn Callback) {
	if fn == nil {
		panic("timeline: Schedule called with nil callback")
	}
	e.enqueue(delay, fn, nil)
}

// ScheduleAt enqueues fn at an absolute simulated time, which must not be
// in the past.
func (e *Engine) ScheduleAt(at units.Time, fn Callback) {
	if at < e.now {
		at = e.now
	}
	e.Schedule(at-e.now, fn)
}

// ScheduleActor enqueues a typed event to run after delay — the
// allocation-free equivalent of Schedule for hot model code.
func (e *Engine) ScheduleActor(delay units.Time, a Actor) {
	if a == nil {
		panic("timeline: ScheduleActor called with nil actor")
	}
	e.enqueue(delay, nil, a)
}

// ScheduleActorAt enqueues a typed event at an absolute simulated time,
// which must not be in the past.
func (e *Engine) ScheduleActorAt(at units.Time, a Actor) {
	if a == nil {
		panic("timeline: ScheduleActorAt called with nil actor")
	}
	if at < e.now {
		at = e.now
	}
	e.enqueue(at-e.now, nil, a)
}

// peekAt returns the earliest pending timestamp. Valid only when Pending>0.
func (e *Engine) peekAt() units.Time {
	if e.zqHead < len(e.zq) {
		return e.now // zq entries are always due at the current instant
	}
	return e.slots[e.heap[0]].at
}

// Step executes the single earliest event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	var idx int32
	switch {
	case len(e.heap) > 0 && (e.zqHead >= len(e.zq) || e.slots[e.heap[0]].at == e.now):
		// Heap events due at the current instant were scheduled before the
		// clock reached it, so they precede every same-instant FIFO entry.
		idx = e.heapPop()
	case e.zqHead < len(e.zq):
		idx = e.zq[e.zqHead]
		e.zqHead++
		if e.zqHead == len(e.zq) {
			e.zq = e.zq[:0]
			e.zqHead = 0
		}
	default:
		return false
	}
	// Copy the body out and recycle the slot before firing: the callback
	// may schedule (growing the arena and invalidating slot pointers), and
	// freeing first lets it reuse this very slot.
	s := &e.slots[idx]
	at, fn, actor := s.at, s.fn, s.actor
	s.fn, s.actor = nil, nil // release references for the GC
	e.free = append(e.free, idx)
	if at < e.now {
		// Cannot happen: enqueue clamps to now and the heap orders by time.
		panic(fmt.Sprintf("timeline: time ran backwards: %v -> %v", e.now, at))
	}
	e.now = at
	e.fired++
	if fn != nil {
		fn()
	} else {
		actor.Act()
	}
	return true
}

// Run executes events until the queue drains. It returns the final
// simulated time, or an error if the configured event budget was exceeded.
func (e *Engine) Run() (units.Time, error) {
	start := e.fired
	for e.Step() {
		if e.budget > 0 && e.fired-start > e.budget {
			return e.now, fmt.Errorf("timeline: event budget %d exceeded at t=%v (likely a scheduling livelock)", e.budget, e.now)
		}
	}
	return e.now, nil
}

// RunUntil executes events with timestamps <= deadline; events beyond the
// deadline remain queued. The clock advances to the deadline if it was
// reached without draining. Like Run, it enforces the configured event
// budget and returns an error when the cap is hit.
func (e *Engine) RunUntil(deadline units.Time) (units.Time, error) {
	start := e.fired
	for e.Pending() > 0 && e.peekAt() <= deadline {
		e.Step()
		if e.budget > 0 && e.fired-start > e.budget {
			return e.now, fmt.Errorf("timeline: event budget %d exceeded at t=%v (likely a scheduling livelock)", e.budget, e.now)
		}
	}
	if e.now < deadline && e.Pending() > 0 {
		e.now = deadline
	}
	return e.now, nil
}

// --- 4-ary index heap ordered by (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap: sift-downs touch
// fewer cache lines, which matters because pop dominates a drained queue's
// cost. Children of i are 4i+1..4i+4.

func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(idx, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = idx
}

func (e *Engine) heapPop() int32 {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	x := h[n]
	e.heap = h[:n]
	if n > 0 {
		h = e.heap
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if e.less(h[j], h[best]) {
					best = j
				}
			}
			if !e.less(h[best], x) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = x
	}
	return root
}
