package timeline

import (
	"testing"

	"repro/internal/units"
)

// The engine's whole point is an allocation-free hot path: scheduling and
// firing events in steady state (slot arena warm, heap capacity grown) must
// not allocate at all — for closures the capture is the caller's business,
// for actors nothing allocates anywhere. These guards pin that down so a
// future change can't silently reintroduce per-event garbage.

func TestScheduleStepAllocFree(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the arena, heap and zero-delay FIFO past their final sizes.
	for i := 0; i < 64; i++ {
		e.Schedule(units.Time(i%7)*units.Nanosecond, fn)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(3*units.Nanosecond, fn) // heap lane
		e.Schedule(0, fn)                  // zero-delay lane
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+step allocates %.1f objects per event pair, want 0", allocs)
	}
}

func TestScheduleActorAllocFree(t *testing.T) {
	e := New()
	a := &testActor{eng: e}
	e.ScheduleActor(0, a)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	a.times = a.times[:0]
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleActor(units.Nanosecond, a)
		e.Step()
		a.times = a.times[:0] // keep the actor's own buffer from growing
	})
	if allocs != 0 {
		t.Errorf("actor schedule+step allocates %.1f objects per event, want 0", allocs)
	}
}
