package timeline

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/units"
)

// replayTrace drives an identical randomized self-scheduling workload on
// any Scheduler and returns the observed firing trace: (event id, time)
// pairs plus the final clock and fired count. Every scheduling decision is
// derived from a deterministic PRNG consumed in firing order, so two
// schedulers produce identical traces iff they fire events in the same
// global order.
func replayTrace(s Scheduler, seed int64, seeds, spawn int) (string, units.Time, uint64) {
	rng := rand.New(rand.NewSource(seed))
	var log []byte
	id := 0
	var fire func(me int) func()
	fire = func(me int) func() {
		return func() {
			log = append(log, fmt.Sprintf("%d@%d;", me, s.Now())...)
			for i := 0; i < spawn; i++ {
				if rng.Intn(3) == 0 {
					break
				}
				id++
				s.Schedule(units.Time(rng.Intn(50)), fire(id))
			}
			spawn = 0 // only the seed generation fans out
		}
	}
	// Seed events: a mix of zero-delay and future, some at equal instants.
	for i := 0; i < seeds; i++ {
		id++
		s.Schedule(units.Time(rng.Intn(20)), fire(id))
	}
	end, err := s.Run()
	if err != nil {
		panic(err)
	}
	return string(log), end, s.Fired()
}

// randomWorkload drives a deeper randomized workload where every fired
// event may reschedule, exercising staged-insert re-sync, window batching
// and tie-breaking. The PRNG is consumed strictly in firing order, so the
// trace is a faithful witness of the global event order.
func randomWorkload(s Scheduler, seed int64, n int) (string, units.Time, uint64) {
	rng := rand.New(rand.NewSource(seed))
	var log []byte
	remaining := n
	var act func(me int) func()
	act = func(me int) func() {
		return func() {
			log = append(log, fmt.Sprintf("%d@%d;", me, s.Now())...)
			for remaining > 0 && rng.Intn(2) == 0 {
				remaining--
				me2 := n - remaining
				s.Schedule(units.Time(rng.Intn(7)), act(me2))
			}
		}
	}
	for i := 0; i < 8 && remaining > 0; i++ {
		remaining--
		s.Schedule(units.Time(rng.Intn(5)), act(n-remaining))
	}
	end, err := s.Run()
	if err != nil {
		panic(err)
	}
	return string(log), end, s.Fired()
}

// TestShardGroupMatchesSerial proves the sharded engine fires events in
// exactly the serial engine's order for every shard count and lookahead,
// on randomized self-scheduling workloads.
func TestShardGroupMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		wantLog, wantEnd, wantFired := replayTrace(New(), seed, 200, 4)
		for _, k := range []int{1, 2, 4, runtime.NumCPU()} {
			for _, la := range []units.Time{0, 3, 1000} {
				g := NewSharded(k)
				g.SetLookahead(la)
				gotLog, gotEnd, gotFired := replayTrace(g, seed, 200, 4)
				if gotLog != wantLog || gotEnd != wantEnd || gotFired != wantFired {
					t.Fatalf("seed=%d k=%d lookahead=%d: sharded trace diverged from serial\nserial: end=%v fired=%d\nsharded: end=%v fired=%d",
						seed, k, la, wantEnd, wantFired, gotEnd, gotFired)
				}
			}
		}
	}
	// A large resident population (>> shardParallelMin) drives the
	// goroutine-per-shard sync rounds; under -race this validates the
	// flush/harvest synchronization.
	wantLog, wantEnd, wantFired := replayTrace(New(), 99, 3*shardParallelMin, 2)
	for _, k := range []int{2, runtime.NumCPU()} {
		g := NewSharded(k)
		g.SetLookahead(5)
		gotLog, gotEnd, gotFired := replayTrace(g, 99, 3*shardParallelMin, 2)
		if gotLog != wantLog || gotEnd != wantEnd || gotFired != wantFired {
			t.Fatalf("k=%d: parallel-round trace diverged from serial", k)
		}
	}
	for seed := int64(10); seed <= 13; seed++ {
		wantLog, wantEnd, wantFired := randomWorkload(New(), seed, 3000)
		for _, k := range []int{2, 4, runtime.NumCPU()} {
			for _, la := range []units.Time{0, 2, 50} {
				g := NewSharded(k)
				g.SetLookahead(la)
				gotLog, gotEnd, gotFired := randomWorkload(g, seed, 3000)
				if gotLog != wantLog || gotEnd != wantEnd || gotFired != wantFired {
					t.Fatalf("seed=%d k=%d lookahead=%d: sharded trace diverged from serial", seed, k, la)
				}
			}
		}
	}
}

// TestShardGroupRunUntil checks deadline semantics match the serial engine:
// partial drains stop at the deadline, the clock advances to it when work
// remains, and resuming completes identically.
func TestShardGroupRunUntil(t *testing.T) {
	build := func(s Scheduler) *[]string {
		var got []string
		for _, d := range []units.Time{30, 10, 20, 10, 40} {
			at := d
			s.Schedule(d, func() { got = append(got, fmt.Sprintf("%d@%d", at, s.Now())) })
		}
		return &got
	}
	eng := New()
	wantLog := build(eng)
	if _, err := eng.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	midSerial := fmt.Sprint(*wantLog, eng.Now(), eng.Pending())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 4} {
		g := NewSharded(k)
		gotLog := build(g)
		if _, err := g.RunUntil(20); err != nil {
			t.Fatal(err)
		}
		mid := fmt.Sprint(*gotLog, g.Now(), g.Pending())
		if mid != midSerial {
			t.Fatalf("k=%d: RunUntil(20) state %q, serial %q", k, mid, midSerial)
		}
		if _, err := g.Run(); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(*gotLog) != fmt.Sprint(*wantLog) || g.Now() != eng.Now() {
			t.Fatalf("k=%d: resume diverged", k)
		}
	}

	// A deadline in the past fires nothing and does not move the clock.
	g := NewSharded(2)
	g.Schedule(5, func() {})
	g.Schedule(50, func() { t.Fatal("fired past the deadline") })
	if _, err := g.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if at, err := g.RunUntil(10); err != nil || at != 30 {
		t.Fatalf("RunUntil(10) after clock=30: at=%v err=%v", at, err)
	}
}

// TestShardGroupGlobalBudget is the sharding regression test for event
// budgets: the cap is enforced on the group's global fired count, not per
// shard — k shards must not buy a runaway workload k times the headroom.
func TestShardGroupGlobalBudget(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		g := NewSharded(k)
		g.SetEventBudget(100)
		// A self-perpetuating workload that spreads across every shard:
		// each event schedules two successors at a positive delay.
		var spawn func()
		spawn = func() {
			g.Schedule(1, spawn)
			g.Schedule(2, spawn)
		}
		g.Schedule(1, spawn)
		if _, err := g.Run(); err == nil {
			t.Fatalf("k=%d: runaway workload did not trip the global budget", k)
		}
		if g.Fired() > 101 {
			t.Fatalf("k=%d: fired %d events against a global budget of 100 — budget applied per shard?", k, g.Fired())
		}

		// Credited events must not consume budget (parity with Engine).
		g2 := NewSharded(k)
		g2.SetEventBudget(10)
		g2.CreditFired(1000)
		for i := 0; i < 10; i++ {
			g2.Schedule(units.Time(i+1), func() {})
		}
		if _, err := g2.Run(); err != nil {
			t.Fatalf("k=%d: credits consumed the budget: %v", k, err)
		}
	}

	// RunUntil enforces the same global cap.
	g := NewSharded(4)
	g.SetEventBudget(50)
	var spawn func()
	spawn = func() {
		g.Schedule(1, spawn)
		g.Schedule(1, spawn)
	}
	g.Schedule(1, spawn)
	if _, err := g.RunUntil(1000); err == nil {
		t.Fatal("RunUntil did not trip the global budget")
	}
}

// TestShardMergeAllocs guards the shard-merge path: once buffers have
// grown, a full sync round (flush + harvest + K-way merge) and the firing
// loop allocate nothing.
func TestShardMergeAllocs(t *testing.T) {
	g := NewSharded(4)
	g.SetLookahead(10)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 20000 {
			g.Schedule(units.Time(1+n%13), tick)
		}
	}
	// Warm up: grow heaps, due buffers and the merge double-buffer.
	for i := 0; i < 64; i++ {
		g.Schedule(units.Time(1+i%7), tick)
	}
	if _, err := g.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := g.RunUntil(g.Now() + 40); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("shard-merge path allocated %.1f times per RunUntil window; want 0", allocs)
	}
}
