package timeline

import (
	"testing"

	"repro/internal/units"
)

// BenchmarkEventQueue measures the raw queue cost (schedule + pop) with a
// classic hold model: a standing population of pending events where every
// fired event schedules a successor at a pseudorandom future offset. This
// exercises heap sift-up and sift-down on every event, the engine's
// fundamental per-event cost.
func BenchmarkEventQueue(b *testing.B) {
	for _, pop := range []int{64, 1024} {
		b.Run(benchSize("pending", pop), func(b *testing.B) {
			e := New()
			// Deterministic xorshift so runs are comparable.
			rng := uint64(0x9e3779b97f4a7c15)
			next := func() units.Time {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return units.Time(rng%1000) + 1
			}
			fired := 0
			var tick Callback
			tick = func() {
				fired++
				if fired <= b.N {
					e.Schedule(next(), tick)
				}
			}
			for i := 0; i < pop; i++ {
				e.Schedule(next(), tick)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkEventQueueZeroDelay measures the same-instant scheduling path
// (delay 0), which dominates callback-chained model code.
func BenchmarkEventQueueZeroDelay(b *testing.B) {
	e := New()
	fired := 0
	var tick Callback
	tick = func() {
		fired++
		if fired <= b.N {
			e.Schedule(0, tick)
		}
	}
	e.Schedule(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchSize(prefix string, v int) string {
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
