package timeline

import "repro/internal/units"

// Scheduler is the event-scheduling surface the model layers program
// against: the serial Engine and the sharded ShardGroup both implement it,
// so a simulation can be moved between them without touching model code.
// Both fire events in the same deterministic (time, seq) order, which is
// what makes their simulated output byte-identical.
type Scheduler interface {
	// Now returns the current simulated time.
	Now() units.Time
	// Pending reports how many events are waiting in the queue.
	Pending() int
	// Fired reports how many events have executed since construction,
	// including events credited by CreditFired.
	Fired() uint64
	// CreditFired accounts n events a fast-forward path skipped (negative
	// n revokes an earlier credit on rollback).
	CreditFired(n int64)
	// SetEventBudget caps events per Run/RunUntil; 0 = unlimited.
	SetEventBudget(n uint64)
	// Schedule enqueues fn to run after delay (negative clamps to zero).
	Schedule(delay units.Time, fn Callback)
	// ScheduleAt enqueues fn at an absolute time (past clamps to now).
	ScheduleAt(at units.Time, fn Callback)
	// ScheduleActor is the allocation-free Schedule for typed events.
	ScheduleActor(delay units.Time, a Actor)
	// ScheduleActorAt is the allocation-free ScheduleAt.
	ScheduleActorAt(at units.Time, a Actor)
	// SetScheduleWatch arms a one-shot watch: the next event enqueued with
	// a fire time at or before limit disarms the watch and invokes fn
	// before that event is enqueued. Fast-forward layers (the collective
	// phase memo) use it to cancel a time-skipping replay the instant
	// anything schedules into its window — while the clock still stands at
	// the replay's start. A nil fn disarms.
	SetScheduleWatch(limit units.Time, fn func())
	// Run executes events until the queue drains.
	Run() (units.Time, error)
	// RunUntil executes events with timestamps <= deadline.
	RunUntil(deadline units.Time) (units.Time, error)
}

var (
	_ Scheduler = (*Engine)(nil)
	_ Scheduler = (*ShardGroup)(nil)
)

// ForShards returns the scheduler for a shard count: k <= 1 yields the
// serial engine, larger k a k-way sharded group. Simulated output is
// byte-identical for every k.
func ForShards(k int) Scheduler {
	if k <= 1 {
		return New()
	}
	return NewSharded(k)
}
