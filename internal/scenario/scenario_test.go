package scenario

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestKindRoundTrip(t *testing.T) {
	for k := DegradeLink; k <= StraggleNPU; k++ {
		parsed, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if parsed != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), parsed)
		}
	}
	if _, err := ParseKind("explode"); err == nil {
		t.Error("unknown kind accepted")
	}
	if s := Kind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestValidate(t *testing.T) {
	const npus, dims = 16, 2
	ok := Scenario{Name: "ok", Events: []Event{
		{Kind: DegradeLink, Dim: 1, Factor: 0.25},
		{Kind: RestoreLink, At: units.Microsecond, Dim: 1},
		{Kind: FailLink, Dim: 0, Recovery: units.Microsecond},
		{Kind: FailNPU, NPU: 15, Recovery: units.Microsecond},
		{Kind: StraggleNPU, NPU: 0, Factor: 1.3},
	}}
	if err := ok.Validate(npus, dims); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	bad := []Event{
		{Kind: DegradeLink, At: -1, Factor: 0.5},
		{Kind: DegradeLink, Dim: 2, Factor: 0.5},
		{Kind: DegradeLink, Dim: -1, Factor: 0.5},
		{Kind: DegradeLink, Factor: 0},
		{Kind: RestoreLink, Dim: 5},
		{Kind: FailLink, Dim: 0, Recovery: -units.Microsecond},
		{Kind: FailNPU, NPU: 16, Recovery: units.Microsecond},
		{Kind: FailNPU, NPU: 3},
		{Kind: StraggleNPU, NPU: -2, Factor: 2},
		{Kind: StraggleNPU, NPU: 1},
		{Kind: Kind(42)},
	}
	for i, ev := range bad {
		s := Scenario{Name: "bad", Events: []Event{ev}}
		if err := s.Validate(npus, dims); err == nil {
			t.Errorf("case %d: invalid event accepted: %+v", i, ev)
		}
	}
}
