// Package scenario describes timed infrastructure perturbations — link
// bandwidth degradation and restoration, link and NPU failures, per-NPU
// compute stragglers — injected into a running simulation. ASTRA-sim 2.0
// models clean fabrics; real 32k-NPU jobs run on fabrics where links
// degrade, switches drop and NPUs straggle, so resilience studies need
// failures as first-class timeline events.
//
// A Scenario is a validated, machine-relative event list: dimensions index
// the topology's dimensions, NPUs index ranks. The core simulator applies
// each event at its instant through the network backend's incremental
// mutation hooks (bandwidth scales, link stalls) and the compute model's
// straggler scale table; routing and collectives degrade gracefully —
// stretched flows and slower phases, never panics. Every applied event
// counts as foreign activity on the backend, so memoized collective replays
// roll back and re-run live across a perturbation, keeping simulated output
// byte-identical to a never-memoized run.
package scenario

import (
	"fmt"

	"repro/internal/units"
)

// Kind is a scenario event type.
type Kind int

const (
	// DegradeLink scales a topology dimension's link bandwidth by Factor
	// (0 < Factor, typically < 1) from At onward.
	DegradeLink Kind = iota
	// RestoreLink returns a dimension's link bandwidth to nominal at At.
	RestoreLink
	// FailLink drops a dimension to FailedLinkResidual × nominal bandwidth
	// at At — the fabric's rerouted protection capacity. Modeling failure
	// as a tiny residual rather than zero keeps every transfer finite, so
	// collectives degrade gracefully instead of deadlocking; Recovery, if
	// positive, restores the dimension after that long.
	FailLink
	// FailNPU stalls every link of one NPU for Recovery of simulated time
	// from At — the rank is unreachable and synchronous collective phases
	// gate on it as their slowest member, which is how a hung rank
	// manifests to the rest of a training job.
	FailNPU
	// StraggleNPU multiplies one NPU's compute times by Factor (> 1 slows)
	// from At onward; Factor 1 clears the straggler.
	StraggleNPU
)

// FailedLinkResidual is the fraction of nominal bandwidth a failed
// dimension retains (protection capacity / rerouting headroom).
const FailedLinkResidual = 0.01

var kindNames = [...]string{
	DegradeLink: "degrade_link",
	RestoreLink: "restore_link",
	FailLink:    "fail_link",
	FailNPU:     "fail_npu",
	StraggleNPU: "straggle_npu",
}

// String returns the kind's canonical spec-file name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind maps a spec-file kind name to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown event kind %q (want degrade_link|restore_link|fail_link|fail_npu|straggle_npu)", s)
}

// Event is one timed perturbation.
type Event struct {
	// At is the simulated instant the event applies, relative to the run's
	// start.
	At units.Time
	// Kind selects the perturbation.
	Kind Kind
	// Dim is the topology dimension for link events.
	Dim int
	// NPU is the target rank for NPU events.
	NPU int
	// Factor is the bandwidth scale (DegradeLink) or compute-time
	// multiplier (StraggleNPU).
	Factor float64
	// Recovery is the outage duration for FailNPU, and the optional
	// auto-restore delay for FailLink (zero means no auto-restore).
	Recovery units.Time
}

// Scenario is a named, ordered perturbation schedule.
type Scenario struct {
	Name   string
	Events []Event
}

// Validate checks every event against a machine shape (npus ranks, dims
// topology dimensions). It reports the first structural problem; a valid
// scenario can be applied without panicking.
func (s *Scenario) Validate(npus, dims int) error {
	for i, ev := range s.Events {
		where := func(format string, args ...any) error {
			return fmt.Errorf("scenario %q event %d (%s): %s", s.Name, i, ev.Kind, fmt.Sprintf(format, args...))
		}
		if ev.At < 0 {
			return where("negative time %v", ev.At)
		}
		if ev.Recovery < 0 {
			return where("negative recovery %v", ev.Recovery)
		}
		switch ev.Kind {
		case DegradeLink:
			if ev.Dim < 0 || ev.Dim >= dims {
				return where("dimension %d out of range [0,%d)", ev.Dim, dims)
			}
			if ev.Factor <= 0 {
				return where("non-positive bandwidth factor %v", ev.Factor)
			}
		case RestoreLink, FailLink:
			if ev.Dim < 0 || ev.Dim >= dims {
				return where("dimension %d out of range [0,%d)", ev.Dim, dims)
			}
		case FailNPU:
			if ev.NPU < 0 || ev.NPU >= npus {
				return where("NPU %d out of range [0,%d)", ev.NPU, npus)
			}
			if ev.Recovery <= 0 {
				return where("fail_npu requires a positive recovery duration")
			}
		case StraggleNPU:
			if ev.NPU < 0 || ev.NPU >= npus {
				return where("NPU %d out of range [0,%d)", ev.NPU, npus)
			}
			if ev.Factor <= 0 {
				return where("non-positive compute factor %v", ev.Factor)
			}
		default:
			return where("unknown kind")
		}
	}
	return nil
}
