package network

import (
	"repro/internal/units"
)

// PhaseAvailability returns the earliest time a bulk-synchronous phase over
// the given members' dim links could begin: the latest of "now" and every
// member's link-free time. Collective phases are gated by their slowest
// member, mirroring synchronous training semantics.
func (b *Backend) PhaseAvailability(members []int, dim int) units.Time {
	t := b.eng.Now()
	for _, m := range members {
		if f := b.linkFree[b.linkIdx(m, dim)]; f > t {
			t = f
		}
	}
	return t
}

// ReservePhase reserves every member's dimension link for the serialization
// of perNPUTraffic bytes (the member's sent+received byte count for the
// phase — both directions serialize on the shared per-dimension link). It
// returns the phase's start and serialization-end times. Traffic statistics
// attribute half the per-NPU traffic to sends and half to receives, so the
// sum matches the paper's per-dimension message-size accounting.
func (b *Backend) ReservePhase(members []int, dim int, perNPUTraffic units.ByteSize) (start, end units.Time) {
	d := b.top.Dims[dim]
	dur := d.TransferTime(perNPUTraffic)
	start = b.PhaseAvailability(members, dim)
	end = start + dur
	half := perNPUTraffic / 2
	for _, m := range members {
		b.linkFree[b.linkIdx(m, dim)] = end
		b.stats.SentPerNPUDim[m][dim] += half
		b.stats.RecvPerNPUDim[m][dim] += perNPUTraffic - half
	}
	b.stats.BytesPerDim[dim] += units.ByteSize(len(members)) * half
	return start, end
}
