package network

import (
	"repro/internal/units"
)

// PhaseAvailability returns the earliest time a bulk-synchronous phase over
// the given members' dim links could begin: the latest of "now" and every
// member's link-free time. Collective phases are gated by their slowest
// member, mirroring synchronous training semantics.
func (b *Backend) PhaseAvailability(members []int, dim int) units.Time {
	t := b.eng.Now()
	for _, m := range members {
		if f := b.linkFree[b.linkIdx(m, dim)]; f > t {
			t = f
		}
	}
	return t
}

// ReservePhase reserves every member's dimension link for the serialization
// of perNPUTraffic bytes (the member's sent+received byte count for the
// phase — both directions serialize on the shared per-dimension link). It
// returns the phase's start and serialization-end times. Traffic statistics
// attribute half the per-NPU traffic to sends and half to receives, so the
// sum matches the paper's per-dimension message-size accounting.
//
// With a flow controller attached, the phase is one flow on the dimension:
// its serialization is stretched by the cross-job contention factor at
// reservation time and its end is reported back through a typed event.
func (b *Backend) ReservePhase(members []int, dim int, perNPUTraffic units.ByteSize) (start, end units.Time) {
	d := b.top.Dims[dim]
	dur := d.TransferTime(perNPUTraffic)
	if b.fc != nil {
		if factor := b.fc.FlowStarted(dim); factor > 1 {
			dur = units.Time(float64(dur) * factor)
		}
	}
	start = b.PhaseAvailability(members, dim)
	end = start + dur
	if b.fc != nil {
		b.eng.ScheduleActorAt(end, b.getFlowDone(dim))
	}
	half := perNPUTraffic / 2
	for _, m := range members {
		b.linkFree[b.linkIdx(m, dim)] = end
		b.stats.SentPerNPUDim[m][dim] += half
		b.stats.RecvPerNPUDim[m][dim] += perNPUTraffic - half
	}
	b.stats.BytesPerDim[dim] += units.ByteSize(len(members)) * half
	return start, end
}
