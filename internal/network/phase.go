package network

import (
	"repro/internal/units"
)

// PhaseAvailability returns the earliest time a bulk-synchronous phase over
// the given members' dim links could begin: the latest of "now" and every
// member's link-free time. Collective phases are gated by their slowest
// member, mirroring synchronous training semantics. When the members are
// the whole machine the answer comes from the dimension aggregates in O(1).
func (b *Backend) PhaseAvailability(members []int, dim int) units.Time {
	b.touchActivity()
	t := b.eng.Now()
	if f := b.dimFloor[dim]; f > t {
		t = f
	}
	if b.linkFree == nil {
		return t // no per-link backlog anywhere: the floor is exact
	}
	if len(members) == b.npus {
		if m := b.dimMaxLink[dim]; m > t {
			t = m
		}
		return t
	}
	for _, m := range members {
		if f := b.linkFree[b.linkIdx(m, dim)]; f > t {
			t = f
		}
	}
	return t
}

// PhaseAvailabilityAll is PhaseAvailability for a whole-machine phase,
// without needing a member list. Always O(1).
func (b *Backend) PhaseAvailabilityAll(dim int) units.Time {
	b.touchActivity()
	t := b.eng.Now()
	if f := b.dimFloor[dim]; f > t {
		t = f
	}
	if m := b.dimMaxLink[dim]; m > t {
		t = m
	}
	return t
}

// ReservePhase reserves every member's dimension link for the serialization
// of perNPUTraffic bytes (the member's sent+received byte count for the
// phase — both directions serialize on the shared per-dimension link). It
// returns the phase's start and serialization-end times. Traffic statistics
// attribute half the per-NPU traffic to sends and half to receives, so the
// sum matches the paper's per-dimension message-size accounting.
//
// With a flow controller attached, the phase is one flow on the dimension:
// its serialization is stretched by the cross-job contention factor at
// reservation time and its end is reported back through a typed event.
//
// A whole-machine phase (len(members) == NumNPUs) takes the O(1) aggregate
// path: it advances the dimension floor instead of touching per-link state.
func (b *Backend) ReservePhase(members []int, dim int, perNPUTraffic units.ByteSize) (start, end units.Time) {
	if len(members) == b.npus {
		return b.ReservePhaseAll(dim, perNPUTraffic)
	}
	d := b.top.Dims[dim]
	dur := b.scaleDur(dim, d.TransferTime(perNPUTraffic))
	if b.fc != nil {
		if factor := b.fc.FlowStarted(dim); factor > 1 {
			dur = units.Time(float64(dur) * factor)
		}
	}
	start = b.PhaseAvailability(members, dim)
	end = start + dur
	if b.fc != nil {
		b.eng.ScheduleActorAt(end, b.getFlowDone(dim))
	}
	b.ensureLinks()
	b.ensureStatsMatrices()
	half := perNPUTraffic / 2
	for _, m := range members {
		b.linkFree[b.linkIdx(m, dim)] = end
		b.stats.SentPerNPUDim[m][dim] += half
		b.stats.RecvPerNPUDim[m][dim] += perNPUTraffic - half
	}
	if end > b.dimMaxLink[dim] {
		b.dimMaxLink[dim] = end
	}
	b.stats.BytesPerDim[dim] += units.ByteSize(len(members)) * half
	return start, end
}

// ReservePhaseAll reserves every NPU's dimension link for a whole-machine
// phase in O(1): the phase start is the dimension's aggregate availability,
// its end becomes the new dimension floor, and the uniform per-NPU traffic
// lands in the deferred phase accumulators that Stats() materializes. The
// result is byte-identical to ReservePhase over the full member list.
func (b *Backend) ReservePhaseAll(dim int, perNPUTraffic units.ByteSize) (start, end units.Time) {
	d := b.top.Dims[dim]
	dur := b.scaleDur(dim, d.TransferTime(perNPUTraffic))
	if b.fc != nil {
		if factor := b.fc.FlowStarted(dim); factor > 1 {
			dur = units.Time(float64(dur) * factor)
		}
	}
	start = b.PhaseAvailabilityAll(dim)
	end = start + dur
	if b.fc != nil {
		b.eng.ScheduleActorAt(end, b.getFlowDone(dim))
	}
	b.dimFloor[dim] = end
	half := perNPUTraffic / 2
	b.phaseSent[dim] += half
	b.phaseRecv[dim] += perNPUTraffic - half
	b.stats.BytesPerDim[dim] += units.ByteSize(b.npus) * half
	return start, end
}
