package network

import (
	"testing"

	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

func ring4() *topology.Topology {
	return topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 4,
		Bandwidth: units.GBps(100), Latency: 500 * units.Nanosecond,
	})
}

func TestSingleSendTiming(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var deliveredAt units.Time
	// 1 MB over 100 GB/s is 10 us serialization, plus one hop of 500 ns.
	b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { deliveredAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := units.FromMicros(10) + 500*units.Nanosecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestRingWraparoundHops(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var deliveredAt units.Time
	// 0 -> 3 is one hop backwards around the ring.
	b.SendOnDim(0, 3, 0, units.MB, 0, nil, func(Message) { deliveredAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := units.FromMicros(10) + 500*units.Nanosecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v (1 wraparound hop)", deliveredAt, want)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var first, second units.Time
	// Two back-to-back sends from NPU 0 share its dim-0 link: the second
	// serializes behind the first.
	b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { first = eng.Now() })
	b.SendOnDim(0, 3, 0, units.MB, 1, nil, func(Message) { second = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	ser := units.FromMicros(10)
	lat := 500 * units.Nanosecond
	if first != ser+lat {
		t.Errorf("first delivered at %v, want %v", first, ser+lat)
	}
	if second != 2*ser+lat {
		t.Errorf("second delivered at %v, want %v (serialized)", second, 2*ser+lat)
	}
}

func TestSendAndReceiveShareLink(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var d1, d2 units.Time
	// NPU 1 both receives from 0 and sends to 2; its half-duplex dim link
	// serializes the two transfers (the paper's sent+received accounting).
	b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { d1 = eng.Now() })
	b.SendOnDim(1, 2, 0, units.MB, 1, nil, func(Message) { d2 = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	ser := units.FromMicros(10)
	lat := 500 * units.Nanosecond
	if d1 != ser+lat {
		t.Errorf("recv delivered at %v, want %v", d1, ser+lat)
	}
	if d2 != 2*ser+lat {
		t.Errorf("send delivered at %v, want %v (shared link)", d2, 2*ser+lat)
	}
}

func TestDisjointLinksRunInParallel(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var d1, d2 units.Time
	b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { d1 = eng.Now() })
	b.SendOnDim(2, 3, 0, units.MB, 1, nil, func(Message) { d2 = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("disjoint transfers should complete together: %v vs %v", d1, d2)
	}
}

func TestSendOnDimPanicsAcrossDims(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(10)},
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(10)},
	)
	eng := timeline.New()
	b := NewBackend(eng, top)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for endpoints differing in another dim")
		}
	}()
	b.SendOnDim(0, 3, 0, units.KB, 0, nil, nil) // ranks 0 and 3 differ in both dims
}

func TestSimSendSimRecvRendezvous(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var got Message
	recvFired := false
	b.SimRecv(0, 1, 7, units.MB, func(m Message) { got = m; recvFired = true })
	b.SimSend(0, 1, 7, units.MB, nil)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !recvFired {
		t.Fatal("recv callback never fired")
	}
	if got.Src != 0 || got.Dst != 1 || got.Tag != 7 || got.Size != units.MB {
		t.Errorf("message = %+v", got)
	}
}

func TestRecvPostedAfterArrival(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	fired := false
	b.SimSend(0, 1, 3, units.KB, nil)
	// Drain the send first, then post the recv: it must still fire.
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	b.SimRecv(0, 1, 3, units.KB, func(Message) { fired = true })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("late-posted recv did not fire")
	}
}

func TestTagsAreIndependent(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var order []int
	b.SimRecv(0, 1, 1, units.KB, func(Message) { order = append(order, 1) })
	b.SimRecv(0, 1, 2, units.KB, func(Message) { order = append(order, 2) })
	b.SimSend(0, 1, 2, units.KB, nil)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != 2 {
		t.Errorf("tag matching wrong: fired %v", order)
	}
}

func TestDimensionOrderedRouting(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(100), Latency: units.Microsecond},
		topology.Dim{Kind: topology.Switch, Size: 2, Bandwidth: units.GBps(50), Latency: units.Microsecond},
	)
	eng := timeline.New()
	b := NewBackend(eng, top)
	var deliveredAt units.Time
	b.SimRecv(0, 3, 0, units.MB, func(Message) { deliveredAt = eng.Now() })
	b.SimSend(0, 3, 0, units.MB, nil) // (0,0) -> (1,1): one ring leg, one switch leg
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Leg 1: 1MB @ 100GB/s = 10us + 1 hop * 1us = 11us.
	// Leg 2: 1MB @ 50GB/s = 20us + 2 hops * 1us = 22us.
	want := units.FromMicros(33)
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if got := b.EstimateP2P(0, 3, units.MB); got != want {
		t.Errorf("EstimateP2P = %v, want %v", got, want)
	}
}

func TestSelfSendLoopback(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	fired := false
	b.SimRecv(2, 2, 0, units.MB, func(Message) { fired = true })
	b.SimSend(2, 2, 0, units.MB, nil)
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || end != 0 {
		t.Errorf("loopback fired=%v end=%v, want instant delivery", fired, end)
	}
	if b.EstimateP2P(2, 2, units.GB) != 0 {
		t.Error("self-send estimate should be 0")
	}
}

func TestTrafficStats(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	b.SendOnDim(0, 1, 0, 3*units.MB, 0, nil, nil)
	b.SendOnDim(1, 0, 0, 5*units.MB, 1, nil, nil)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.BytesPerDim[0] != 8*units.MB {
		t.Errorf("BytesPerDim = %v", s.BytesPerDim[0])
	}
	if s.SentPerNPUDim[0][0] != 3*units.MB || s.RecvPerNPUDim[0][0] != 5*units.MB {
		t.Errorf("NPU0 sent=%v recv=%v", s.SentPerNPUDim[0][0], s.RecvPerNPUDim[0][0])
	}
	if s.Messages != 2 {
		t.Errorf("Messages = %d", s.Messages)
	}
}

func TestSentCallbackBeforeDelivery(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var sentAt, deliveredAt units.Time
	b.SendOnDim(0, 2, 0, units.MB, 0,
		func() { sentAt = eng.Now() },
		func(Message) { deliveredAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt != units.FromMicros(10) {
		t.Errorf("sentAt = %v, want 10us (serialization only)", sentAt)
	}
	// 0 -> 2 on a 4-ring is 2 hops.
	if deliveredAt != sentAt+units.Microsecond {
		t.Errorf("deliveredAt = %v, want sent + 2*500ns", deliveredAt)
	}
}

func TestMultiLegRouteSerializesPerDim(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100)},
	)
	eng := timeline.New()
	b := NewBackend(eng, top)
	// (0,0,0) -> (1,1,1): three legs of 10us each.
	dst := top.Rank([]int{1, 1, 1})
	var at units.Time
	b.SimRecv(0, dst, 0, units.MB, func(Message) { at = eng.Now() })
	b.SimSend(0, dst, 0, units.MB, nil)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != units.FromMicros(30) {
		t.Errorf("3-leg route delivered at %v, want 30us", at)
	}
}

func TestSentCallbackOnMultiLegRoute(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(100)},
	)
	eng := timeline.New()
	b := NewBackend(eng, top)
	var sentAt units.Time
	b.SimSend(0, 3, 0, units.MB, func() { sentAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Sent fires when the first leg's egress frees: 10us.
	if sentAt != units.FromMicros(10) {
		t.Errorf("sentAt = %v, want 10us (first leg only)", sentAt)
	}
}

func TestPhaseAvailabilityAndReserve(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	members := []int{0, 1, 2, 3}
	if got := b.PhaseAvailability(members, 0); got != 0 {
		t.Errorf("idle availability = %v", got)
	}
	start, end := b.ReservePhase(members, 0, 2*units.MB)
	if start != 0 || end != units.FromMicros(20) {
		t.Errorf("phase [%v, %v], want [0, 20us]", start, end)
	}
	// Second phase queues behind the first on every member.
	if got := b.PhaseAvailability(members, 0); got != end {
		t.Errorf("availability after reserve = %v, want %v", got, end)
	}
	// Stats attribute half sent, half received.
	s := b.Stats()
	if s.SentPerNPUDim[2][0]+s.RecvPerNPUDim[2][0] != 2*units.MB {
		t.Errorf("phase traffic accounting wrong: %v + %v",
			s.SentPerNPUDim[2][0], s.RecvPerNPUDim[2][0])
	}
}

func TestSimRecvNilCallbackPanics(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	defer func() {
		if recover() == nil {
			t.Error("nil recv callback accepted")
		}
	}()
	b.SimRecv(0, 1, 0, units.KB, nil)
}

func TestEstimateP2PMatchesUnloadedSend(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.FullyConnected, Size: 4, Bandwidth: units.GBps(200), Latency: units.Microsecond},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(100), Latency: units.Microsecond},
	)
	for src := 0; src < top.NumNPUs(); src += 3 {
		for dst := 0; dst < top.NumNPUs(); dst += 5 {
			if src == dst {
				continue
			}
			eng := timeline.New()
			b := NewBackend(eng, top)
			var at units.Time
			b.SimRecv(src, dst, 0, 4*units.MB, func(Message) { at = eng.Now() })
			b.SimSend(src, dst, 0, 4*units.MB, nil)
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if est := b.EstimateP2P(src, dst, 4*units.MB); est != at {
				t.Fatalf("%d->%d: estimate %v != unloaded send %v", src, dst, est, at)
			}
		}
	}
}
