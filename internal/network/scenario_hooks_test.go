package network

import (
	"testing"

	"repro/internal/timeline"
	"repro/internal/units"
)

// TestDimBandwidthScale checks that degrading a dimension stretches the
// serialization time of future reservations (latency is untouched), that
// restoring the scale to 1 returns to clean timing, and that the getter
// tracks the applied scale.
func TestDimBandwidthScale(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	if got := b.DimBandwidthScale(0); got != 1 {
		t.Fatalf("clean scale = %g, want 1", got)
	}
	b.SetDimBandwidthScale(0, 0.5)
	if got := b.DimBandwidthScale(0); got != 0.5 {
		t.Fatalf("scale after degrade = %g, want 0.5", got)
	}
	var deliveredAt units.Time
	// 1 MB over 100 GB/s at half bandwidth is 20 us, plus one 500 ns hop.
	b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { deliveredAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := units.FromMicros(20) + 500*units.Nanosecond
	if deliveredAt != want {
		t.Errorf("degraded delivery at %v, want %v", deliveredAt, want)
	}

	// Restoring the dimension brings future reservations back to clean
	// serialization time.
	b.SetDimBandwidthScale(0, 1)
	if got := b.DimBandwidthScale(0); got != 1 {
		t.Fatalf("scale after restore = %g, want 1", got)
	}
	start := eng.Now()
	b.SendOnDim(0, 1, 0, units.MB, 1, nil, func(Message) { deliveredAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := deliveredAt-start, units.FromMicros(10)+500*units.Nanosecond; got != want {
		t.Errorf("restored delivery took %v, want %v", got, want)
	}
}

// TestDimBandwidthScaleQuietDims checks that a degraded dimension blocks
// memo eligibility: QuietDims must report false while any scale is active
// and recover once every dimension is restored to 1.
func TestDimBandwidthScaleQuietDims(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	if !b.QuietDims() {
		t.Fatal("clean backend: QuietDims = false, want true")
	}
	b.SetDimBandwidthScale(0, 0.25)
	if b.QuietDims() {
		t.Error("degraded backend: QuietDims = true, want false")
	}
	b.SetDimBandwidthScale(0, 1)
	if !b.QuietDims() {
		t.Error("restored backend: QuietDims = false, want true")
	}
}

// TestDimBandwidthScaleIgnoresInvalid checks that out-of-range dimensions
// and non-positive scales are ignored rather than corrupting state.
func TestDimBandwidthScaleIgnoresInvalid(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	b.SetDimBandwidthScale(-1, 0.5)
	b.SetDimBandwidthScale(7, 0.5)
	b.SetDimBandwidthScale(0, 0)
	b.SetDimBandwidthScale(0, -2)
	if !b.QuietDims() {
		t.Error("invalid mutations flipped QuietDims to false")
	}
	if got := b.DimBandwidthScale(0); got != 1 {
		t.Errorf("scale after invalid mutations = %g, want 1", got)
	}
	if got := b.DimBandwidthScale(-1); got != 1 {
		t.Errorf("out-of-range getter = %g, want 1", got)
	}
}

// TestStallNPULinks checks that failing an NPU pushes its outgoing link
// availability to the recovery instant: a send issued at t=0 from the
// failed NPU serializes only after the stall expires.
func TestStallNPULinks(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	stallUntil := units.FromMicros(50)
	b.StallNPULinks(0, stallUntil)
	var deliveredAt units.Time
	b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { deliveredAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := stallUntil + units.FromMicros(10) + 500*units.Nanosecond
	if deliveredAt != want {
		t.Errorf("post-stall delivery at %v, want %v", deliveredAt, want)
	}

	// An earlier deadline never rewinds the link, and out-of-range NPUs are
	// ignored.
	b.StallNPULinks(0, units.FromMicros(1))
	b.StallNPULinks(-1, units.FromMicros(500))
	b.StallNPULinks(99, units.FromMicros(500))
}

// TestActivityHookRegistry checks the multi-hook registry: every armed hook
// observes backend activity, removal stops exactly the removed hook, and
// removing an unknown id is a no-op.
func TestActivityHookRegistry(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var aCalls, bCalls int
	idA := b.AddActivityHook(func() { aCalls++ })
	idB := b.AddActivityHook(func() { bCalls++ })
	b.SimSend(0, 1, 0, units.MB, nil)
	if aCalls == 0 || bCalls == 0 {
		t.Fatalf("hooks after activity: a=%d b=%d, want both > 0", aCalls, bCalls)
	}
	if aCalls != bCalls {
		t.Errorf("hooks saw different activity: a=%d b=%d", aCalls, bCalls)
	}

	b.RemoveActivityHook(idA)
	b.RemoveActivityHook(12345) // unknown id: no-op
	aBefore, bBefore := aCalls, bCalls
	b.SimSend(0, 1, 1, units.MB, nil)
	if aCalls != aBefore {
		t.Errorf("removed hook still fired: a=%d, want %d", aCalls, aBefore)
	}
	if bCalls == bBefore {
		t.Error("surviving hook stopped firing after unrelated removal")
	}
	b.RemoveActivityHook(idB)
	bAfter := bCalls
	b.SimSend(0, 1, 2, units.MB, nil)
	if bCalls != bAfter {
		t.Errorf("hook fired after removal: b=%d, want %d", bCalls, bAfter)
	}
}

// TestActivityHookSelfRemoval checks the rollback idiom — a hook that
// removes itself while the registry is mid-iteration (exactly what a
// replay's cancel does) — and that hooks armed behind it still fire.
func TestActivityHookSelfRemoval(t *testing.T) {
	eng := timeline.New()
	b := NewBackend(eng, ring4())
	var oneShot, steady int
	var idOnce int
	idOnce = b.AddActivityHook(func() {
		if oneShot == 0 {
			oneShot++
			b.RemoveActivityHook(idOnce)
		}
	})
	b.AddActivityHook(func() { steady++ })
	b.SimSend(0, 1, 0, units.MB, nil)
	if oneShot != 1 {
		t.Errorf("self-removing hook fired %d times, want 1", oneShot)
	}
	if steady == 0 {
		t.Error("hook behind a self-removing hook never fired")
	}
	before := oneShot
	b.SimSend(0, 1, 1, units.MB, nil)
	if oneShot != before {
		t.Errorf("self-removed hook fired again: %d, want %d", oneShot, before)
	}
}
