package network

import (
	"testing"

	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

func allocTestBackend(t testing.TB) (*timeline.Engine, *Backend) {
	t.Helper()
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100), Latency: 100 * units.Nanosecond},
		topology.Dim{Kind: topology.Switch, Size: 4, Bandwidth: units.GBps(50), Latency: 500 * units.Nanosecond},
	)
	eng := timeline.New()
	return eng, NewBackend(eng, top)
}

// Steady-state point-to-point traffic must not allocate: routes are derived
// arithmetically, multi-leg sends and deliveries run through pooled typed
// events, and the rendezvous queues recycle their slices. The only
// allocations left on the path are the caller's own callback captures,
// which this test hoists out of the loop.
func TestSimSendRecvAllocFree(t *testing.T) {
	eng, b := allocTestBackend(t)
	recv := func(Message) {}

	exercise := func() {
		// Multi-dimension route (2 legs), recv-first and recv-after.
		b.SimRecv(1, 14, 7, units.KB, recv)
		b.SimSend(1, 14, 7, units.KB, nil)
		b.SimSend(2, 3, 8, units.KB, nil)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		b.SimRecv(2, 3, 8, units.KB, recv)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	exercise() // warm the pools
	allocs := testing.AllocsPerRun(50, exercise)
	if allocs > 0 {
		t.Errorf("SimSend/SimRecv round allocates %.1f objects, want 0", allocs)
	}
}

// SendOnDim (the collective algorithms' per-message fast path) must be
// allocation-free in steady state as well.
func TestSendOnDimAllocFree(t *testing.T) {
	eng, b := allocTestBackend(t)
	delivered := func(Message) {}
	exercise := func() {
		b.SendOnDim(0, 1, 0, units.KB, 1, nil, delivered)
		b.SendOnDim(1, 2, 0, units.KB, 2, nil, delivered)
		b.SendOnDim(0, 8, 1, units.KB, 3, nil, delivered)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	exercise()
	allocs := testing.AllocsPerRun(50, exercise)
	if allocs > 0 {
		t.Errorf("SendOnDim round allocates %.1f objects, want 0", allocs)
	}
}
