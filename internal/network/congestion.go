package network

import (
	"repro/internal/units"
)

// First-order congestion modeling — the paper's stated future work
// (Section IV-C, footnote 5: "Implementing first-order congestion modeling
// into the analytical backend is our future work"). When enabled, messages
// charge every NPU link they transit, not just the endpoints, so multi-hop
// point-to-point traffic (e.g. strided pipeline stages or non-neighbour
// sends) contends with traffic at intermediate NPUs. The default remains
// endpoint-only charging, which is exact for the congestion-free
// topology-aware collectives the paper targets.
//
// Which positions a message transits is a dimension-model decision
// (TransitPositions): rings charge the shortest wrap path, meshes the
// straight line, tori the dimension-ordered per-axis rings; switch and
// fully-connected blocks have no NPU transit path (fabric hops are folded
// into the hop latency) and keep endpoint charging.

// SetTransitCharging enables or disables first-order transit congestion.
func (b *Backend) SetTransitCharging(on bool) { b.chargeTransit = on }

// TransitCharging reports the current mode.
func (b *Backend) TransitCharging() bool { return b.chargeTransit }

// reserveTransit charges the serialization time to every node's dimension
// link along the model's transit path from src to dst (inclusive),
// returning (src egress end, latest charged end). Blocks without a transit
// path fall back to endpoint charging. factor (>= 1) is the cross-backend
// fair-sharing contention multiplier.
func (b *Backend) reserveTransit(src, dst, dim int, size units.ByteSize, factor float64) (units.Time, units.Time) {
	d := b.top.Dims[dim]
	stride := b.top.DimStride(dim)
	srcPos := b.top.DimPos(src, dim)
	dstPos := b.top.DimPos(dst, dim)
	path := d.Kind.TransitPositions(srcPos, dstPos, d.Size)
	if len(path) == 0 {
		return b.reserve(src, dst, dim, size, factor)
	}
	dur := b.scaleDur(dim, d.TransferTime(size))
	if factor > 1 {
		dur = units.Time(float64(dur) * factor)
	}
	b.ensureLinks()
	now := b.eng.Now()
	if f := b.dimFloor[dim]; f > now {
		now = f // the dimension floor lower-bounds every link of the dim
	}
	base := src - srcPos*stride

	var srcEnd, ready units.Time
	for h, pos := range path {
		li := b.linkIdx(base+pos*stride, dim)
		start := b.linkFree[li]
		if start < now {
			start = now
		}
		end := start + dur
		b.linkFree[li] = end
		if h == 0 {
			srcEnd = end
		}
		if end > ready {
			ready = end
		}
	}
	if ready > b.dimMaxLink[dim] {
		b.dimMaxLink[dim] = ready
	}
	return srcEnd, ready
}
