package network

import (
	"repro/internal/topology"
	"repro/internal/units"
)

// First-order congestion modeling — the paper's stated future work
// (Section IV-C, footnote 5: "Implementing first-order congestion modeling
// into the analytical backend is our future work"). When enabled, ring
// messages charge every link they transit, not just the endpoints, so
// multi-hop point-to-point traffic (e.g. strided pipeline stages or
// non-neighbour sends) contends with traffic at intermediate NPUs. The
// default remains endpoint-only charging, which is exact for the
// congestion-free topology-aware collectives the paper targets.

// SetTransitCharging enables or disables first-order transit congestion.
func (b *Backend) SetTransitCharging(on bool) { b.chargeTransit = on }

// TransitCharging reports the current mode.
func (b *Backend) TransitCharging() bool { return b.chargeTransit }

// reserveTransit charges the serialization time to every node's dimension
// link along the shortest ring path from src to dst (inclusive), returning
// (src egress end, latest charged end). Non-ring dimensions have no
// intermediate NPUs (switch and fully-connected hops terminate at fabric
// elements modeled inside the hop latency), so they fall back to endpoint
// charging.
func (b *Backend) reserveTransit(src, dst, dim int, size units.ByteSize) (units.Time, units.Time) {
	d := b.top.Dims[dim]
	if d.Kind != topology.Ring {
		return b.reserve(src, dst, dim, size)
	}
	srcC, dstC := b.top.Coord(src), b.top.Coord(dst)
	k := d.Size
	fwd := (dstC[dim] - srcC[dim] + k) % k
	bwd := (srcC[dim] - dstC[dim] + k) % k
	dir := 1
	hops := fwd
	if bwd < fwd {
		dir, hops = -1, bwd
	}
	dur := d.Bandwidth.TransferTime(size)
	now := b.eng.Now()
	stride := b.top.DimStride(dim)

	var srcEnd, ready units.Time
	node := src
	for h := 0; h <= hops; h++ {
		li := b.linkIdx(node, dim)
		start := b.linkFree[li]
		if start < now {
			start = now
		}
		end := start + dur
		b.linkFree[li] = end
		if h == 0 {
			srcEnd = end
		}
		if end > ready {
			ready = end
		}
		// Advance around the ring.
		pos := (node / stride) % k
		next := (pos + dir + k) % k
		node += (next - pos) * stride
	}
	return srcEnd, ready
}
