// Package network implements ASTRA-sim 2.0's analytical network backend
// (Section IV-C). Instead of simulating packets cycle by cycle, every
// message is costed with the paper's first-order equation
//
//	Time = LinkLatency × Hops + MessageSize / LinkBandwidth
//
// augmented with per-NPU, per-dimension link serialization: each NPU owns
// one shared-bandwidth link per topology dimension, and both the bytes it
// sends and the bytes it receives on that dimension serialize on that link.
// This reproduces ASTRA-sim's per-dimension traffic accounting (Table IV
// counts sent+received bytes per NPU) while remaining congestion-free for
// topology-aware hierarchical collectives, the regime the paper targets.
//
// The package also exposes the paper's NetworkAPI protocol (Snippet 2):
// SimSend / SimRecv pairs rendezvous on (src, dst, tag) and invoke
// callbacks on completion, and SimSchedule defers arbitrary work.
//
// The backend is allocation-free per message in steady state: routes are
// computed arithmetically (no coordinate slices), multi-hop sends and
// deliveries run through pooled typed events, and the rendezvous queues
// recycle their small slices through per-backend free lists.
package network

import (
	"fmt"

	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Message describes a delivered transmission, passed to receive callbacks.
type Message struct {
	Src, Dst int
	Tag      int
	Size     units.ByteSize
	// Dim is the topology dimension the message travelled on, or -1 for a
	// multi-dimension (dimension-ordered) route.
	Dim int
}

// API is the frontend-facing protocol of the paper's Snippet 2. The system
// layer is written against this interface so alternative backends (the
// cycle-level simulator in internal/garnet, test fakes) are drop-in.
type API interface {
	// SimSend transmits size bytes from src to dst with a message tag.
	// sentCB fires when the message has left src (its link is free again);
	// the matching SimRecv's callback fires on delivery. Either callback
	// may be nil.
	SimSend(src, dst, tag int, size units.ByteSize, sentCB func())
	// SimRecv registers interest in a message (src, dst, tag). recvCB
	// fires when the matching send has been delivered. Posting the recv
	// after the message arrived fires the callback immediately.
	SimRecv(src, dst, tag int, size units.ByteSize, recvCB func(Message))
	// SimSchedule runs fn after delay of simulated time.
	SimSchedule(delay units.Time, fn func())
	// Now returns the current simulated time.
	Now() units.Time
}

// Backend is the analytical network backend.
type Backend struct {
	eng timeline.Scheduler
	top *topology.Topology

	// Link occupancy is kept as a dimension-level aggregate plus an
	// optional per-link overlay, so whole-machine collective phases cost
	// O(1) instead of O(NPUs) per phase:
	//
	//   - dimFloor[dim] is a floor applied to every link of the dimension;
	//     a phase that reserves all links writes it once.
	//   - linkFree[npu*dims+dim], allocated lazily on the first per-link
	//     reservation, overlays individual point-to-point traffic; a
	//     link's effective free time is max(linkFree entry, dimFloor).
	//   - dimMaxLink[dim] caches the maximum stored per-link entry, so a
	//     full-dimension phase start never walks the overlay.
	linkFree   []units.Time
	dimFloor   []units.Time
	dimMaxLink []units.Time
	npus, dims int

	// Rendezvous state for SimSend/SimRecv matching. Queue objects and
	// their backing slices are recycled through the pools below.
	arrived map[matchKey]*msgQueue
	waiting map[matchKey]*cbQueue

	// Free lists for the per-message hot-path objects (legRuns keep their
	// leg slices across reuse, so routed sends need no separate slice pool).
	msgQueues  []*msgQueue
	cbQueues   []*cbQueue
	deliveries []*delivery
	legRuns    []*legRun
	flowDones  []*flowDone

	// chargeTransit enables first-order congestion modeling: ring
	// messages occupy every transit link, not just the endpoints.
	chargeTransit bool

	// phaseSent/phaseRecv[dim] accumulate per-NPU traffic charged uniformly
	// to every NPU by whole-machine phases; Stats() folds them into the
	// per-NPU matrices on demand. This keeps full-machine phases from
	// writing 2×NPUs stats entries each.
	phaseSent []units.ByteSize
	phaseRecv []units.ByteSize

	// fc, when non-nil, arbitrates this backend's flows against flows on
	// other backends sharing the same physical fabric (the multi-job
	// cluster layer). Nil — the default — costs nothing on the hot path.
	fc FlowController

	// hooks fire before every state-touching operation (see
	// AddActivityHook); hookSeq issues registry ids.
	hooks   []activityHook
	hookSeq int

	// bwScale[dim], when allocated, scales each dimension's effective link
	// bandwidth (the scenario layer's degradation primitive); nil means
	// every dimension runs clean. scaledDims counts entries != 1 so
	// QuietDims stays O(1) on the scale check.
	bwScale    []float64
	scaledDims int

	stats Stats
}

// activityHook is one registered observer; ids are never reused.
type activityHook struct {
	id int
	fn func()
}

type matchKey struct {
	src, dst, tag int
}

// msgQueue is a FIFO of arrived-but-unclaimed messages for one match key.
// Popping advances head instead of reslicing so the backing array survives
// intact and returns to the pool when the queue drains.
type msgQueue struct {
	items []Message
	head  int
}

// cbQueue is the mirror FIFO of posted-but-unmatched receive callbacks.
type cbQueue struct {
	items []func(Message)
	head  int
}

// Stats accumulates per-dimension and aggregate traffic counters.
type Stats struct {
	// BytesPerDim[d] is the total bytes that crossed dimension d,
	// counted once per message.
	BytesPerDim []units.ByteSize
	// SentPerNPUDim[npu][d] / RecvPerNPUDim[npu][d] count per-NPU traffic;
	// their sum is the paper's "message size per dimension" metric.
	SentPerNPUDim [][]units.ByteSize
	RecvPerNPUDim [][]units.ByteSize
	Messages      int64
}

// NewBackend builds an analytical backend over a topology, driven by the
// given event engine.
func NewBackend(eng timeline.Scheduler, top *topology.Topology) *Backend {
	n, d := top.NumNPUs(), top.NumDims()
	b := &Backend{
		eng:        eng,
		top:        top,
		dimFloor:   make([]units.Time, d),
		dimMaxLink: make([]units.Time, d),
		phaseSent:  make([]units.ByteSize, d),
		phaseRecv:  make([]units.ByteSize, d),
		npus:       n,
		dims:       d,
		arrived:    make(map[matchKey]*msgQueue),
		waiting:    make(map[matchKey]*cbQueue),
	}
	b.stats.BytesPerDim = make([]units.ByteSize, d)
	// The per-link array and the per-NPU stats matrices are O(NPUs) state;
	// they allocate lazily on first use so backend setup — and whole-machine
	// collective workloads, which never touch individual links — stay O(dims).
	return b
}

// ensureLinks allocates the per-link overlay on the first point-to-point
// reservation. A zero entry means the link has no individual backlog beyond
// the dimension floor.
func (b *Backend) ensureLinks() {
	if b.linkFree == nil {
		b.linkFree = make([]units.Time, b.npus*b.dims)
	}
}

// ensureStatsMatrices allocates the per-NPU traffic matrices. The matrices
// share one backing array each: at large NPU counts the 2n row allocations
// otherwise dominate backend setup.
func (b *Backend) ensureStatsMatrices() {
	if b.stats.SentPerNPUDim != nil {
		return
	}
	n, d := b.npus, b.dims
	b.stats.SentPerNPUDim = make([][]units.ByteSize, n)
	b.stats.RecvPerNPUDim = make([][]units.ByteSize, n)
	sent := make([]units.ByteSize, n*d)
	recv := make([]units.ByteSize, n*d)
	for i := 0; i < n; i++ {
		b.stats.SentPerNPUDim[i] = sent[i*d : (i+1)*d : (i+1)*d]
		b.stats.RecvPerNPUDim[i] = recv[i*d : (i+1)*d : (i+1)*d]
	}
}

// FlowController observes dimension-level flow activity for cross-backend
// bandwidth arbitration: several backends space-sharing one physical
// fabric (co-scheduled training jobs) each report their flows to a shared
// controller, which answers with the fair-sharing contention factor. Both
// calls happen on the single-threaded event engine, so implementations
// need no locking.
type FlowController interface {
	// FlowStarted reports a transfer starting on the backend's dimension
	// dim. The returned factor (>= 1) divides the transfer's effective
	// bandwidth; 1 leaves the transfer untouched, bit for bit.
	FlowStarted(dim int) float64
	// FlowFinished reports that a transfer accounted by FlowStarted has
	// left the network (its links are free again).
	FlowFinished(dim int)
}

// SetFlowController attaches a cross-backend flow arbiter; nil (the
// default) disables arbitration and keeps the per-message hot path
// allocation-free and byte-identical to an isolated backend.
func (b *Backend) SetFlowController(fc FlowController) { b.fc = fc }

// scaleDur stretches a transfer's serialization time by the dimension's
// bandwidth scale. Scale 1 (or a clean backend) returns dur untouched.
func (b *Backend) scaleDur(dim int, dur units.Time) units.Time {
	if b.bwScale != nil {
		if s := b.bwScale[dim]; s != 1 {
			dur = units.Time(float64(dur) / s)
		}
	}
	return dur
}

// SetDimBandwidthScale sets dimension dim's effective bandwidth to scale ×
// nominal (0 < scale ≤ 1 degrades, 1 restores; larger-than-1 upgrades are
// allowed). The change applies to reservations made from now on — in-flight
// transfers keep the serialization time they were charged at issue, the
// standard fluid-model convention — so dimension aggregates are updated
// incrementally, never rescanned. Out-of-range dimensions and non-positive
// scales are ignored: scenario events degrade to no-ops rather than panic.
func (b *Backend) SetDimBandwidthScale(dim int, scale float64) {
	b.touchActivity()
	if dim < 0 || dim >= b.dims || scale <= 0 {
		return
	}
	if b.bwScale == nil {
		if scale == 1 {
			return
		}
		b.bwScale = make([]float64, b.dims)
		for i := range b.bwScale {
			b.bwScale[i] = 1
		}
	}
	old := b.bwScale[dim]
	if old == scale {
		return
	}
	if old == 1 {
		b.scaledDims++
	}
	if scale == 1 {
		b.scaledDims--
	}
	b.bwScale[dim] = scale
}

// DimBandwidthScale returns dimension dim's current bandwidth scale
// (1 when clean or out of range).
func (b *Backend) DimBandwidthScale(dim int) float64 {
	if b.bwScale == nil || dim < 0 || dim >= b.dims {
		return 1
	}
	return b.bwScale[dim]
}

// StallNPULinks marks every link of one NPU busy until the given instant —
// the scenario layer's NPU-failure/recovery primitive. Traffic touching the
// NPU queues behind the stall, and synchronous collective phases gate on it
// as their slowest member, which is exactly how a hung rank manifests to
// the rest of a training job. The per-link overlay and each dimension's
// cached maximum are bumped incrementally (O(dims) work); out-of-range NPUs
// are ignored so scenario events never panic.
func (b *Backend) StallNPULinks(npu int, until units.Time) {
	b.touchActivity()
	if npu < 0 || npu >= b.npus {
		return
	}
	b.ensureLinks()
	base := npu * b.dims
	for d := 0; d < b.dims; d++ {
		if b.linkFree[base+d] < until {
			b.linkFree[base+d] = until
		}
		if b.dimMaxLink[d] < until {
			b.dimMaxLink[d] = until
		}
	}
}

// flowDone is a pooled typed event reporting a transfer's end to the flow
// controller — the "recompute on flow finish" half of fair sharing.
type flowDone struct {
	b   *Backend
	dim int
}

// Act implements timeline.Actor.
func (f *flowDone) Act() {
	b, dim := f.b, f.dim
	b.flowDones = append(b.flowDones, f)
	b.fc.FlowFinished(dim)
}

func (b *Backend) getFlowDone(dim int) *flowDone {
	if n := len(b.flowDones); n > 0 {
		f := b.flowDones[n-1]
		b.flowDones = b.flowDones[:n-1]
		f.dim = dim
		return f
	}
	return &flowDone{b: b, dim: dim}
}

// Topology returns the backend's topology.
func (b *Backend) Topology() *topology.Topology { return b.top }

// Stats returns a snapshot reference of the accumulated traffic counters,
// folding any pending whole-machine phase traffic into the per-NPU matrices
// first so callers always see fully materialized counts.
func (b *Backend) Stats() *Stats {
	b.touchActivity()
	b.ensureStatsMatrices()
	for d := 0; d < b.dims; d++ {
		sent, recv := b.phaseSent[d], b.phaseRecv[d]
		if sent == 0 && recv == 0 {
			continue
		}
		for npu := 0; npu < b.npus; npu++ {
			b.stats.SentPerNPUDim[npu][d] += sent
			b.stats.RecvPerNPUDim[npu][d] += recv
		}
		b.phaseSent[d], b.phaseRecv[d] = 0, 0
	}
	return &b.stats
}

// Now implements API.
func (b *Backend) Now() units.Time { return b.eng.Now() }

// SimSchedule implements API.
func (b *Backend) SimSchedule(delay units.Time, fn func()) { b.eng.Schedule(delay, fn) }

// ScheduleActor defers a typed event — the allocation-free SimSchedule used
// by hot model code (the collective engine's chunk waves).
func (b *Backend) ScheduleActor(delay units.Time, a timeline.Actor) { b.eng.ScheduleActor(delay, a) }

func (b *Backend) linkIdx(npu, dim int) int { return npu*b.dims + dim }

// reserve charges the serialization time of size bytes to both endpoint
// links of a dimension and returns (src egress end, delivery-ready end).
// Each link is an independent FIFO queue (store-and-forward buffering
// between endpoints): the transfer occupies the source link and the
// destination link for size/BW each, and is deliverable when the later of
// the two finishes. Charging both ends makes sent and received bytes share
// each NPU's per-dimension bandwidth, which is the accounting the paper's
// Table IV uses; queueing the ends independently avoids artificial
// convoy-chains around rings when every NPU sends and receives at once.
// factor (>= 1) is the cross-backend fair-sharing contention multiplier;
// 1 leaves the serialization time untouched.
func (b *Backend) reserve(src, dst, dim int, size units.ByteSize, factor float64) (units.Time, units.Time) {
	d := b.top.Dims[dim]
	dur := b.scaleDur(dim, d.TransferTime(size))
	if factor > 1 {
		dur = units.Time(float64(dur) * factor)
	}
	b.ensureLinks()
	now := b.eng.Now()
	if f := b.dimFloor[dim]; f > now {
		now = f // the dimension floor lower-bounds every link of the dim
	}
	si, di := b.linkIdx(src, dim), b.linkIdx(dst, dim)
	srcStart := b.linkFree[si]
	if srcStart < now {
		srcStart = now
	}
	dstStart := b.linkFree[di]
	if dstStart < now {
		dstStart = now
	}
	srcEnd, dstEnd := srcStart+dur, dstStart+dur
	b.linkFree[si] = srcEnd
	b.linkFree[di] = dstEnd
	if dstEnd > b.dimMaxLink[dim] {
		b.dimMaxLink[dim] = dstEnd
	}
	if srcEnd > b.dimMaxLink[dim] {
		b.dimMaxLink[dim] = srcEnd
	}
	ready := srcEnd
	if dstEnd > ready {
		ready = dstEnd
	}
	return srcEnd, ready
}

// delivery is a pooled typed event that hands a delivered message to its
// receiver — either a plain callback or an internal sink (a routed send's
// next leg). One pooled object replaces the per-message closure capture.
type delivery struct {
	b    *Backend
	msg  Message
	cb   func(Message)
	sink deliverySink
}

// deliverySink receives internal deliveries without a closure; *legRun and
// *Backend (final rendezvous matching) implement it.
type deliverySink interface {
	deliverMsg(Message)
}

// Act implements timeline.Actor.
func (d *delivery) Act() {
	b, msg, cb, sink := d.b, d.msg, d.cb, d.sink
	d.cb, d.sink = nil, nil
	b.deliveries = append(b.deliveries, d)
	switch {
	case sink != nil:
		sink.deliverMsg(msg)
	case cb != nil:
		cb(msg)
	}
}

func (b *Backend) getDelivery() *delivery {
	if n := len(b.deliveries); n > 0 {
		d := b.deliveries[n-1]
		b.deliveries = b.deliveries[:n-1]
		return d
	}
	return &delivery{b: b}
}

// SendOnDim transmits size bytes between two NPUs that differ only in
// dimension dim. sentCB fires when src's link frees; deliveredCB fires when
// the message lands at dst. This is the fast path used by collective
// algorithms, which by construction communicate one dimension at a time.
func (b *Backend) SendOnDim(src, dst, dim int, size units.ByteSize, tag int, sentCB func(), deliveredCB func(Message)) {
	b.sendOnDim(src, dst, dim, size, tag, sentCB, deliveredCB, nil)
}

func (b *Backend) sendOnDim(src, dst, dim int, size units.ByteSize, tag int, sentCB func(), deliveredCB func(Message), sink deliverySink) {
	b.touchActivity()
	if src == dst {
		panic(fmt.Sprintf("network: self-send on dim %d by NPU %d", dim, src))
	}
	d := b.top.Dims[dim]
	// Walk both ranks' mixed-radix positions: validates that the endpoints
	// differ only in dim and extracts the dim positions without
	// materializing coordinate slices.
	hops := 0
	w := b.top.WalkPositions(src, dst)
	for i, sp, tp, ok := w.Next(); ok; i, sp, tp, ok = w.Next() {
		if i == dim {
			hops = d.Hops(sp, tp)
		} else if sp != tp {
			panic(fmt.Sprintf("network: SendOnDim(%d->%d, dim %d) endpoints differ in dim %d", src, dst, dim, i))
		}
	}
	factor := 1.0
	if b.fc != nil {
		factor = b.fc.FlowStarted(dim)
	}
	var srcEnd, ready units.Time
	if b.chargeTransit {
		srcEnd, ready = b.reserveTransit(src, dst, dim, size, factor)
	} else {
		srcEnd, ready = b.reserve(src, dst, dim, size, factor)
	}
	if b.fc != nil {
		// The flow occupies its links until the transfer is deliverable;
		// report the end through a pooled typed event so fair shares are
		// recomputed the instant it frees.
		b.eng.ScheduleActorAt(ready, b.getFlowDone(dim))
	}
	arrive := ready + units.Time(hops)*d.Latency

	b.stats.Messages++
	b.stats.BytesPerDim[dim] += size
	b.ensureStatsMatrices()
	b.stats.SentPerNPUDim[src][dim] += size
	b.stats.RecvPerNPUDim[dst][dim] += size

	if sentCB != nil {
		b.eng.ScheduleAt(srcEnd, sentCB)
	}
	del := b.getDelivery()
	del.msg = Message{Src: src, Dst: dst, Tag: tag, Size: size, Dim: dim}
	del.cb, del.sink = deliveredCB, sink
	b.eng.ScheduleActorAt(arrive, del)
}

// SimSend implements API using dimension-ordered routing: the message
// traverses, in ascending dimension order, every dimension where the
// endpoint coordinates differ, serializing on each dimension's links.
func (b *Backend) SimSend(src, dst, tag int, size units.ByteSize, sentCB func()) {
	if src == dst {
		// Local loopback: deliver instantly.
		if sentCB != nil {
			b.eng.Schedule(0, sentCB)
		}
		del := b.getDelivery()
		del.msg = Message{Src: src, Dst: dst, Tag: tag, Size: size, Dim: -1}
		del.sink = b
		b.eng.ScheduleActor(0, del)
		return
	}
	r := b.getLegRun()
	r.src, r.dst, r.tag, r.size = src, dst, tag, size
	r.legs = b.route(src, dst, r.legs[:0])
	r.idx = 0
	r.issue(sentCB)
}

// route appends the dimension-ordered hop legs from src to dst onto legs
// (the last leg ends at dst). Positions are walked digit by digit from the
// ranks, so routing allocates nothing beyond the caller's leg slice.
func (b *Backend) route(src, dst int, legs []hopLeg) []hopLeg {
	cur := src
	stride := 1
	w := b.top.WalkPositions(src, dst)
	for dim, sp, tp, ok := w.Next(); ok; dim, sp, tp, ok = w.Next() {
		if sp != tp {
			next := cur + (tp-sp)*stride
			legs = append(legs, hopLeg{dim: dim, from: cur, to: next})
			cur = next
		}
		stride *= b.top.Dims[dim].Size
	}
	return legs
}

type hopLeg struct {
	dim      int
	from, to int
}

// legRun is a pooled in-flight routed send: it owns its leg slice for the
// message's lifetime and re-issues itself as each leg delivers.
type legRun struct {
	b        *Backend
	src, dst int
	tag      int
	size     units.ByteSize
	legs     []hopLeg
	idx      int
}

func (b *Backend) getLegRun() *legRun {
	if n := len(b.legRuns); n > 0 {
		r := b.legRuns[n-1]
		b.legRuns = b.legRuns[:n-1]
		return r
	}
	return &legRun{b: b}
}

func (r *legRun) issue(sentCB func()) {
	leg := r.legs[r.idx]
	r.b.sendOnDim(leg.from, leg.to, leg.dim, r.size, r.tag, sentCB, nil, r)
}

// deliverMsg implements deliverySink: one leg landed, issue the next or
// complete the route and recycle.
func (r *legRun) deliverMsg(Message) {
	r.idx++
	if r.idx < len(r.legs) {
		r.issue(nil)
		return
	}
	b := r.b
	msg := Message{Src: r.src, Dst: r.dst, Tag: r.tag, Size: r.size, Dim: -1}
	b.legRuns = append(b.legRuns, r)
	b.deliver(msg)
}

// SimRecv implements API.
func (b *Backend) SimRecv(src, dst, tag int, size units.ByteSize, recvCB func(Message)) {
	if recvCB == nil {
		panic("network: SimRecv requires a callback")
	}
	k := matchKey{src: src, dst: dst, tag: tag}
	if q := b.arrived[k]; q != nil {
		msg := q.items[q.head]
		q.head++
		if q.head == len(q.items) {
			delete(b.arrived, k)
			b.putMsgQueue(q)
		}
		del := b.getDelivery()
		del.msg = msg
		del.cb = recvCB
		b.eng.ScheduleActor(0, del)
		return
	}
	q := b.waiting[k]
	if q == nil {
		q = b.getCBQueue()
		b.waiting[k] = q
	}
	q.items = append(q.items, recvCB)
}

// deliverMsg implements deliverySink for loopback sends: route the message
// into the rendezvous machinery at delivery time.
func (b *Backend) deliverMsg(msg Message) { b.deliver(msg) }

func (b *Backend) deliver(msg Message) {
	k := matchKey{src: msg.Src, dst: msg.Dst, tag: msg.Tag}
	if q := b.waiting[k]; q != nil {
		cb := q.items[q.head]
		q.items[q.head] = nil // release for the GC while pooled
		q.head++
		if q.head == len(q.items) {
			delete(b.waiting, k)
			b.putCBQueue(q)
		}
		cb(msg)
		return
	}
	q := b.arrived[k]
	if q == nil {
		q = b.getMsgQueue()
		b.arrived[k] = q
	}
	q.items = append(q.items, msg)
}

func (b *Backend) getMsgQueue() *msgQueue {
	if n := len(b.msgQueues); n > 0 {
		q := b.msgQueues[n-1]
		b.msgQueues = b.msgQueues[:n-1]
		return q
	}
	return &msgQueue{}
}

func (b *Backend) putMsgQueue(q *msgQueue) {
	q.items = q.items[:0]
	q.head = 0
	b.msgQueues = append(b.msgQueues, q)
}

func (b *Backend) getCBQueue() *cbQueue {
	if n := len(b.cbQueues); n > 0 {
		q := b.cbQueues[n-1]
		b.cbQueues = b.cbQueues[:n-1]
		return q
	}
	return &cbQueue{}
}

func (b *Backend) putCBQueue(q *cbQueue) {
	q.items = q.items[:0]
	q.head = 0
	b.cbQueues = append(b.cbQueues, q)
}

// EstimateP2P returns the unloaded (no-queueing) latency of a point-to-point
// message, the closed-form version of the paper's equation.
func (b *Backend) EstimateP2P(src, dst int, size units.ByteSize) units.Time {
	if src == dst {
		return 0
	}
	var t units.Time
	w := b.top.WalkPositions(src, dst)
	for dim, sp, ep, ok := w.Next(); ok; dim, sp, ep, ok = w.Next() {
		if sp == ep {
			continue
		}
		d := b.top.Dims[dim]
		hops := d.Hops(sp, ep)
		t += units.Time(hops)*d.Latency + d.TransferTime(size)
	}
	return t
}

var _ API = (*Backend)(nil)
