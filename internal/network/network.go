// Package network implements ASTRA-sim 2.0's analytical network backend
// (Section IV-C). Instead of simulating packets cycle by cycle, every
// message is costed with the paper's first-order equation
//
//	Time = LinkLatency × Hops + MessageSize / LinkBandwidth
//
// augmented with per-NPU, per-dimension link serialization: each NPU owns
// one shared-bandwidth link per topology dimension, and both the bytes it
// sends and the bytes it receives on that dimension serialize on that link.
// This reproduces ASTRA-sim's per-dimension traffic accounting (Table IV
// counts sent+received bytes per NPU) while remaining congestion-free for
// topology-aware hierarchical collectives, the regime the paper targets.
//
// The package also exposes the paper's NetworkAPI protocol (Snippet 2):
// SimSend / SimRecv pairs rendezvous on (src, dst, tag) and invoke
// callbacks on completion, and SimSchedule defers arbitrary work.
package network

import (
	"fmt"

	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Message describes a delivered transmission, passed to receive callbacks.
type Message struct {
	Src, Dst int
	Tag      int
	Size     units.ByteSize
	// Dim is the topology dimension the message travelled on, or -1 for a
	// multi-dimension (dimension-ordered) route.
	Dim int
}

// API is the frontend-facing protocol of the paper's Snippet 2. The system
// layer is written against this interface so alternative backends (the
// cycle-level simulator in internal/garnet, test fakes) are drop-in.
type API interface {
	// SimSend transmits size bytes from src to dst with a message tag.
	// sentCB fires when the message has left src (its link is free again);
	// the matching SimRecv's callback fires on delivery. Either callback
	// may be nil.
	SimSend(src, dst, tag int, size units.ByteSize, sentCB func())
	// SimRecv registers interest in a message (src, dst, tag). recvCB
	// fires when the matching send has been delivered. Posting the recv
	// after the message arrived fires the callback immediately.
	SimRecv(src, dst, tag int, size units.ByteSize, recvCB func(Message))
	// SimSchedule runs fn after delay of simulated time.
	SimSchedule(delay units.Time, fn func())
	// Now returns the current simulated time.
	Now() units.Time
}

// Backend is the analytical network backend.
type Backend struct {
	eng *timeline.Engine
	top *topology.Topology

	// linkFree[npu*dims+dim] is the earliest time the NPU's dimension link
	// is idle again.
	linkFree []units.Time
	dims     int

	// Rendezvous state for SimSend/SimRecv matching.
	arrived map[matchKey][]Message
	waiting map[matchKey][]func(Message)

	// chargeTransit enables first-order congestion modeling: ring
	// messages occupy every transit link, not just the endpoints.
	chargeTransit bool

	stats Stats
}

type matchKey struct {
	src, dst, tag int
}

// Stats accumulates per-dimension and aggregate traffic counters.
type Stats struct {
	// BytesPerDim[d] is the total bytes that crossed dimension d,
	// counted once per message.
	BytesPerDim []units.ByteSize
	// SentPerNPUDim[npu][d] / RecvPerNPUDim[npu][d] count per-NPU traffic;
	// their sum is the paper's "message size per dimension" metric.
	SentPerNPUDim [][]units.ByteSize
	RecvPerNPUDim [][]units.ByteSize
	Messages      int64
}

// NewBackend builds an analytical backend over a topology, driven by the
// given event engine.
func NewBackend(eng *timeline.Engine, top *topology.Topology) *Backend {
	n, d := top.NumNPUs(), top.NumDims()
	b := &Backend{
		eng:      eng,
		top:      top,
		linkFree: make([]units.Time, n*d),
		dims:     d,
		arrived:  make(map[matchKey][]Message),
		waiting:  make(map[matchKey][]func(Message)),
	}
	b.stats.BytesPerDim = make([]units.ByteSize, d)
	b.stats.SentPerNPUDim = make([][]units.ByteSize, n)
	b.stats.RecvPerNPUDim = make([][]units.ByteSize, n)
	for i := 0; i < n; i++ {
		b.stats.SentPerNPUDim[i] = make([]units.ByteSize, d)
		b.stats.RecvPerNPUDim[i] = make([]units.ByteSize, d)
	}
	return b
}

// Topology returns the backend's topology.
func (b *Backend) Topology() *topology.Topology { return b.top }

// Stats returns a snapshot reference of the accumulated traffic counters.
func (b *Backend) Stats() *Stats { return &b.stats }

// Now implements API.
func (b *Backend) Now() units.Time { return b.eng.Now() }

// SimSchedule implements API.
func (b *Backend) SimSchedule(delay units.Time, fn func()) { b.eng.Schedule(delay, fn) }

func (b *Backend) linkIdx(npu, dim int) int { return npu*b.dims + dim }

// reserve charges the serialization time of size bytes to both endpoint
// links of a dimension and returns (src egress end, delivery-ready end).
// Each link is an independent FIFO queue (store-and-forward buffering
// between endpoints): the transfer occupies the source link and the
// destination link for size/BW each, and is deliverable when the later of
// the two finishes. Charging both ends makes sent and received bytes share
// each NPU's per-dimension bandwidth, which is the accounting the paper's
// Table IV uses; queueing the ends independently avoids artificial
// convoy-chains around rings when every NPU sends and receives at once.
func (b *Backend) reserve(src, dst, dim int, size units.ByteSize) (units.Time, units.Time) {
	d := b.top.Dims[dim]
	dur := d.TransferTime(size)
	now := b.eng.Now()
	si, di := b.linkIdx(src, dim), b.linkIdx(dst, dim)
	srcStart := b.linkFree[si]
	if srcStart < now {
		srcStart = now
	}
	dstStart := b.linkFree[di]
	if dstStart < now {
		dstStart = now
	}
	srcEnd, dstEnd := srcStart+dur, dstStart+dur
	b.linkFree[si] = srcEnd
	b.linkFree[di] = dstEnd
	ready := srcEnd
	if dstEnd > ready {
		ready = dstEnd
	}
	return srcEnd, ready
}

// SendOnDim transmits size bytes between two NPUs that differ only in
// dimension dim. sentCB fires when src's link frees; deliveredCB fires when
// the message lands at dst. This is the fast path used by collective
// algorithms, which by construction communicate one dimension at a time.
func (b *Backend) SendOnDim(src, dst, dim int, size units.ByteSize, tag int, sentCB func(), deliveredCB func(Message)) {
	if src == dst {
		panic(fmt.Sprintf("network: self-send on dim %d by NPU %d", dim, src))
	}
	d := b.top.Dims[dim]
	srcC, dstC := b.top.Coord(src), b.top.Coord(dst)
	for i := range srcC {
		if i != dim && srcC[i] != dstC[i] {
			panic(fmt.Sprintf("network: SendOnDim(%d->%d, dim %d) endpoints differ in dim %d", src, dst, dim, i))
		}
	}
	hops := d.Hops(srcC[dim], dstC[dim])
	var srcEnd, ready units.Time
	if b.chargeTransit {
		srcEnd, ready = b.reserveTransit(src, dst, dim, size)
	} else {
		srcEnd, ready = b.reserve(src, dst, dim, size)
	}
	arrive := ready + units.Time(hops)*d.Latency

	b.stats.Messages++
	b.stats.BytesPerDim[dim] += size
	b.stats.SentPerNPUDim[src][dim] += size
	b.stats.RecvPerNPUDim[dst][dim] += size

	msg := Message{Src: src, Dst: dst, Tag: tag, Size: size, Dim: dim}
	if sentCB != nil {
		b.eng.ScheduleAt(srcEnd, sentCB)
	}
	b.eng.ScheduleAt(arrive, func() {
		if deliveredCB != nil {
			deliveredCB(msg)
		}
	})
}

// SimSend implements API using dimension-ordered routing: the message
// traverses, in ascending dimension order, every dimension where the
// endpoint coordinates differ, serializing on each dimension's links.
func (b *Backend) SimSend(src, dst, tag int, size units.ByteSize, sentCB func()) {
	if src == dst {
		// Local loopback: deliver instantly.
		if sentCB != nil {
			b.eng.Schedule(0, sentCB)
		}
		b.eng.Schedule(0, func() {
			b.deliver(Message{Src: src, Dst: dst, Tag: tag, Size: size, Dim: -1})
		})
		return
	}
	route := b.route(src, dst)
	b.sendLeg(src, dst, tag, size, route, 0, sentCB)
}

// route returns the sequence of intermediate ranks under dimension-ordered
// routing; the last element is dst.
func (b *Backend) route(src, dst int) []hopLeg {
	srcC, dstC := b.top.Coord(src), b.top.Coord(dst)
	var legs []hopLeg
	cur := append([]int(nil), srcC...)
	for dim := 0; dim < b.dims; dim++ {
		if cur[dim] == dstC[dim] {
			continue
		}
		next := append([]int(nil), cur...)
		next[dim] = dstC[dim]
		legs = append(legs, hopLeg{dim: dim, from: b.top.Rank(cur), to: b.top.Rank(next)})
		cur = next
	}
	return legs
}

type hopLeg struct {
	dim      int
	from, to int
}

func (b *Backend) sendLeg(src, dst, tag int, size units.ByteSize, legs []hopLeg, idx int, sentCB func()) {
	leg := legs[idx]
	var sent func()
	if idx == 0 {
		sent = sentCB
	}
	b.SendOnDim(leg.from, leg.to, leg.dim, size, tag, sent, func(Message) {
		if idx+1 < len(legs) {
			b.sendLeg(src, dst, tag, size, legs, idx+1, nil)
			return
		}
		b.deliver(Message{Src: src, Dst: dst, Tag: tag, Size: size, Dim: -1})
	})
}

// SimRecv implements API.
func (b *Backend) SimRecv(src, dst, tag int, size units.ByteSize, recvCB func(Message)) {
	if recvCB == nil {
		panic("network: SimRecv requires a callback")
	}
	k := matchKey{src: src, dst: dst, tag: tag}
	if q := b.arrived[k]; len(q) > 0 {
		msg := q[0]
		if len(q) == 1 {
			delete(b.arrived, k)
		} else {
			b.arrived[k] = q[1:]
		}
		b.eng.Schedule(0, func() { recvCB(msg) })
		return
	}
	b.waiting[k] = append(b.waiting[k], recvCB)
}

func (b *Backend) deliver(msg Message) {
	k := matchKey{src: msg.Src, dst: msg.Dst, tag: msg.Tag}
	if q := b.waiting[k]; len(q) > 0 {
		cb := q[0]
		if len(q) == 1 {
			delete(b.waiting, k)
		} else {
			b.waiting[k] = q[1:]
		}
		cb(msg)
		return
	}
	b.arrived[k] = append(b.arrived[k], msg)
}

// EstimateP2P returns the unloaded (no-queueing) latency of a point-to-point
// message, the closed-form version of the paper's equation.
func (b *Backend) EstimateP2P(src, dst int, size units.ByteSize) units.Time {
	if src == dst {
		return 0
	}
	var t units.Time
	srcC, dstC := b.top.Coord(src), b.top.Coord(dst)
	for dim, d := range b.top.Dims {
		if srcC[dim] == dstC[dim] {
			continue
		}
		hops := d.Hops(srcC[dim], dstC[dim])
		t += units.Time(hops)*d.Latency + d.TransferTime(size)
	}
	return t
}

var _ API = (*Backend)(nil)
