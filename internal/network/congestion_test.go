package network

import (
	"testing"

	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

func ring8For(t *testing.T) (*timeline.Engine, *Backend) {
	t.Helper()
	top := topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 8, Bandwidth: units.GBps(100), Latency: 0,
	})
	eng := timeline.New()
	return eng, NewBackend(eng, top)
}

func TestTransitChargingOccupiesIntermediateLinks(t *testing.T) {
	eng, b := ring8For(t)
	b.SetTransitCharging(true)
	if !b.TransitCharging() {
		t.Fatal("mode not set")
	}
	var longAt, shortAt units.Time
	// 0 -> 3 transits nodes 1 and 2; a concurrent 1 -> 2 send must queue
	// behind it on those links.
	b.SendOnDim(0, 3, 0, units.MB, 0, nil, func(Message) { longAt = eng.Now() })
	b.SendOnDim(1, 2, 0, units.MB, 1, nil, func(Message) { shortAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	ser := units.FromMicros(10)
	if longAt != ser {
		t.Errorf("transit send delivered at %v, want %v", longAt, ser)
	}
	if shortAt != 2*ser {
		t.Errorf("contending send delivered at %v, want %v (queued behind transit)", shortAt, 2*ser)
	}
}

func TestEndpointChargingIgnoresTransit(t *testing.T) {
	eng, b := ring8For(t)
	// Default mode: the same pair of sends shares no endpoint, so both
	// complete together.
	var longAt, shortAt units.Time
	b.SendOnDim(0, 3, 0, units.MB, 0, nil, func(Message) { longAt = eng.Now() })
	b.SendOnDim(1, 2, 0, units.MB, 1, nil, func(Message) { shortAt = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if longAt != shortAt {
		t.Errorf("endpoint-only sends should not contend: %v vs %v", longAt, shortAt)
	}
}

func TestTransitChargingNeighborUnchanged(t *testing.T) {
	// Adjacent sends behave identically in both modes.
	run := func(transit bool) units.Time {
		eng, b := ring8For(t)
		b.SetTransitCharging(transit)
		var at units.Time
		b.SendOnDim(0, 1, 0, units.MB, 0, nil, func(Message) { at = eng.Now() })
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if run(false) != run(true) {
		t.Error("neighbor send differs between modes")
	}
}

func TestTransitChargingWraparound(t *testing.T) {
	eng, b := ring8For(t)
	b.SetTransitCharging(true)
	// 0 -> 6 goes backwards (2 hops through node 7).
	var at units.Time
	b.SendOnDim(0, 6, 0, units.MB, 0, nil, func(Message) { at = eng.Now() })
	// Node 7's link is now charged: a send from 7 queues.
	var at7 units.Time
	b.SendOnDim(7, 6, 0, units.MB, 1, nil, func(Message) { at7 = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at7 <= at {
		t.Errorf("send from transit node should queue: %v vs %v", at7, at)
	}
}

func TestTransitChargingNonRingFallsBack(t *testing.T) {
	top := topology.MustNew(topology.Dim{
		Kind: topology.Switch, Size: 8, Bandwidth: units.GBps(100), Latency: 0,
	})
	eng := timeline.New()
	b := NewBackend(eng, top)
	b.SetTransitCharging(true)
	var a, c units.Time
	b.SendOnDim(0, 3, 0, units.MB, 0, nil, func(Message) { a = eng.Now() })
	b.SendOnDim(1, 2, 0, units.MB, 1, nil, func(Message) { c = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Errorf("switch sends have no transit NPUs; got %v vs %v", a, c)
	}
}
