package network

import (
	"repro/internal/units"
)

// Ledger is a snapshot of the dimension-aggregate state a whole-machine
// collective reads and writes: the per-dimension link floors, the deferred
// phase-traffic accumulators, and the per-dimension byte totals. The
// collective engine's memoization layer captures Ledgers to validate that a
// recorded run was pure and to fast-forward (or roll back) a replayed one.
type Ledger struct {
	Floor     []units.Time
	PhaseSent []units.ByteSize
	PhaseRecv []units.ByteSize
	Bytes     []units.ByteSize
}

// SnapshotLedger copies the current aggregate state into dst, reusing its
// backing arrays when possible.
func (b *Backend) SnapshotLedger(dst *Ledger) {
	dst.Floor = append(dst.Floor[:0], b.dimFloor...)
	dst.PhaseSent = append(dst.PhaseSent[:0], b.phaseSent...)
	dst.PhaseRecv = append(dst.PhaseRecv[:0], b.phaseRecv...)
	dst.Bytes = append(dst.Bytes[:0], b.stats.BytesPerDim...)
}

// RestoreLedger writes a snapshot back, undoing every aggregate mutation
// made since it was taken. Only sound when nothing else touched the backend
// in between — the memoization layer guarantees that by cancelling a replay
// at the first observation of backend state.
func (b *Backend) RestoreLedger(src *Ledger) {
	copy(b.dimFloor, src.Floor)
	copy(b.phaseSent, src.PhaseSent)
	copy(b.phaseRecv, src.PhaseRecv)
	copy(b.stats.BytesPerDim, src.Bytes)
}

// ApplyLedgerDeltas fast-forwards the aggregates by a recorded run's net
// effect: dimensions the run touched get their floor set to now+floorDelta
// (untouched dimensions are marked with a negative delta), and the traffic
// accumulators advance by the recorded amounts.
func (b *Backend) ApplyLedgerDeltas(now units.Time, floorDelta []units.Time, sent, recv, bytes []units.ByteSize) {
	for d := range floorDelta {
		if fd := floorDelta[d]; fd >= 0 {
			b.dimFloor[d] = now + fd
		}
		b.phaseSent[d] += sent[d]
		b.phaseRecv[d] += recv[d]
		b.stats.BytesPerDim[d] += bytes[d]
	}
}

// QuietDims reports whether every dimension aggregate is at or before the
// current instant, no flow controller is attached, and no scenario has a
// bandwidth scale in effect — the backend-side half of the "a collective
// started now is a pure function of its shape" condition the memoization
// layer requires. A degraded dimension must disqualify memoization even
// when its links are idle: a run recorded (or replayed) under a clean
// fabric is not valid under a scaled one, and vice versa.
func (b *Backend) QuietDims() bool {
	if b.fc != nil || b.scaledDims != 0 {
		return false
	}
	now := b.eng.Now()
	for d := 0; d < b.dims; d++ {
		if b.dimFloor[d] > now || b.dimMaxLink[d] > now {
			return false
		}
	}
	return true
}

// PendingEvents reports the driving engine's queued event count.
func (b *Backend) PendingEvents() int { return b.eng.Pending() }

// EventsFired reports the driving engine's executed event count.
func (b *Backend) EventsFired() uint64 { return b.eng.Fired() }

// CreditEvents forwards a fast-forward event credit (or its revocation) to
// the driving engine.
func (b *Backend) CreditEvents(n int64) { b.eng.CreditFired(n) }

// AddActivityHook registers fn to be invoked before any operation that
// reads or writes link or ledger state (phase reservations, point-to-point
// sends, scenario mutations, stats materialization) and returns an id for
// RemoveActivityHook. The memoization layer installs a hook while a
// replayed collective is in flight so the first observer cancels the
// fast-forward and falls back to live simulation. Hooks form a registry —
// not a single slot — so several collective engines sharing one backend
// (cluster jobs) cannot clobber each other's armed hooks. A hook may remove
// itself (or others) while running and must tolerate being invoked again
// after its trigger condition cleared; an empty registry — the default —
// costs one predictable branch on the hot path.
func (b *Backend) AddActivityHook(fn func()) int {
	b.hookSeq++
	b.hooks = append(b.hooks, activityHook{id: b.hookSeq, fn: fn})
	return b.hookSeq
}

// RemoveActivityHook deregisters a hook by the id AddActivityHook returned.
// Removing an id twice (or an unknown id) is a no-op, so disarm paths can
// be unconditional.
func (b *Backend) RemoveActivityHook(id int) {
	for i := range b.hooks {
		if b.hooks[i].id == id {
			b.hooks = append(b.hooks[:i], b.hooks[i+1:]...)
			return
		}
	}
}

func (b *Backend) touchActivity() {
	// Walk by position, re-checking the occupant's id after each call: a
	// hook that removes itself (the common rollback case) shifts the slice
	// left, and the next hook is then at the same position.
	for i := 0; i < len(b.hooks); {
		h := b.hooks[i]
		h.fn()
		if i < len(b.hooks) && b.hooks[i].id == h.id {
			i++
		}
	}
}

// SetScheduleWatch forwards to the driving engine's one-shot schedule
// watch; see timeline.Scheduler. The memoization layer arms it alongside an
// activity hook so foreign events scheduled into a replay's window — due
// later than the replay's start — cancel the replay at schedule time, while
// the clock still stands at the start instant.
func (b *Backend) SetScheduleWatch(limit units.Time, fn func()) {
	b.eng.SetScheduleWatch(limit, fn)
}
