// Package search is the multi-fidelity design-space search engine: a
// budgeted optimizer over an enumerable candidate space whose evaluations
// run at two fidelities — a cheap closed-form estimate and a full
// event-engine simulation. Strategies decide which candidates to evaluate
// at which fidelity; every batch executes on the sweep engine's worker
// pool with its content-hash result cache, so results are byte-identical
// for any worker count and duplicate candidates simulate once.
//
// Three strategies ship registered:
//
//	exhaustive  full-fidelity simulation of every feasible candidate —
//	            the delegate-to-sweep baseline every other strategy is
//	            measured against
//	random      seeded random sample, estimate-screened, with only the
//	            top-ranked slice promoted to simulation
//	halving     multi-fidelity successive halving: estimate the whole
//	            space, promote the top 1/eta survivors to full simulation
//
// New strategies are added by implementing Strategy and registering a
// factory name; Optimize picks them up without modification.
package search

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Fidelity selects an evaluation path of a Problem.
type Fidelity int

// The two fidelities of a multi-fidelity search.
const (
	// FidelityEstimate is the cheap closed-form screening score.
	FidelityEstimate Fidelity = iota
	// FidelitySimulate is the full event-engine objective.
	FidelitySimulate
)

// String names the fidelity.
func (f Fidelity) String() string {
	switch f {
	case FidelityEstimate:
		return "estimate"
	case FidelitySimulate:
		return "simulate"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// Problem is an index-addressed optimization problem: Candidates design
// points, each scorable at two fidelities. Lower scores are better; both
// fidelities must use comparable units (the estimate ranks candidates for
// promotion, the simulation decides the winner).
type Problem struct {
	// Name labels the search in errors and exports.
	Name string
	// Candidates is the design-space size; candidate ids are 0..Candidates-1.
	Candidates int
	// Label renders candidate i for results (unique labels recommended).
	Label func(i int) string
	// Feasible, when non-nil, reports why candidate i is invalid (nil =
	// feasible). Infeasible candidates are pruned before any evaluation.
	Feasible func(i int) error
	// Estimate is the cheap screening score of candidate i. It may be nil
	// only for strategies that never estimate (exhaustive).
	Estimate func(i int) (float64, error)
	// Simulate is the full-fidelity objective of candidate i. It must be
	// safe for concurrent calls.
	Simulate func(i int) (float64, error)
	// Fingerprint, when non-nil, canonically describes candidate i's
	// configuration at a fidelity. Equal fingerprints evaluate once and
	// share results through Exec.Cache. Empty string opts out.
	Fingerprint func(i int, f Fidelity) string
}

// Options controls a search run.
type Options struct {
	// Strategy names a registered strategy (default "halving").
	Strategy string
	// Seed drives every stochastic choice; a fixed seed makes the search
	// fully deterministic for any worker count.
	Seed int64
	// MaxSimulations bounds full-fidelity evaluations; <= 0 means the
	// strategy default, ceil(feasible/Eta). Exhaustive ignores it.
	MaxSimulations int
	// Population is the random strategy's sample size; <= 0 means
	// Eta * MaxSimulations (capped at the feasible count). An explicit
	// Population without MaxSimulations derives the budget from the
	// sample: ceil(Population/Eta).
	Population int
	// Eta is the halving ratio (default 4, minimum 2).
	Eta int
	// Exec controls batch execution: worker count, cross-batch result
	// cache, and progress callbacks (called per batch).
	Exec sweep.Exec
}

// Eval is one scored candidate.
type Eval struct {
	// Candidate is the problem-level candidate id.
	Candidate int `json:"candidate"`
	// Label is the candidate's display label.
	Label string `json:"label"`
	// Score is the fidelity's value (lower is better).
	Score float64 `json:"score"`
	// Promoted marks candidates the strategy advanced to the next rung.
	Promoted bool `json:"promoted,omitempty"`
}

// Generation is one rung of the search: a batch of same-fidelity
// evaluations in deterministic (strategy-chosen) order.
type Generation struct {
	Index    int    `json:"index"`
	Fidelity string `json:"fidelity"`
	Evals    []Eval `json:"evals"`
}

// Pruned records one infeasible candidate and why it was excluded.
type Pruned struct {
	Candidate int    `json:"candidate"`
	Label     string `json:"label"`
	Reason    string `json:"reason"`
}

// Result is a completed search. It is deterministic for a given problem,
// options and seed — identical for any Exec.Workers value — except Wall,
// which is excluded from the JSON form for that reason.
type Result struct {
	Problem    string `json:"problem"`
	Strategy   string `json:"strategy"`
	Seed       int64  `json:"seed"`
	Candidates int    `json:"candidates"`
	Feasible   int    `json:"feasible"`
	// Estimates and Simulations count candidate evaluations the strategy
	// requested at each fidelity (cache hits included).
	Estimates   int `json:"estimates"`
	Simulations int `json:"simulations"`
	// Best is the winning candidate: the lowest full-fidelity score, ties
	// broken by candidate id.
	Best Eval `json:"best"`
	// History holds every rung in execution order.
	History []Generation `json:"history"`
	// PrunedCandidates lists the infeasible candidates.
	PrunedCandidates []Pruned `json:"pruned,omitempty"`
	// Wall is the search's wall-clock duration (not part of the JSON form).
	Wall time.Duration `json:"-"`
}

// Evaluator runs same-fidelity candidate batches for strategies on the
// sweep engine: worker pool, fingerprint deduplication, shared cache, and
// deterministic batch-order results.
type Evaluator struct {
	p           Problem
	exec        sweep.Exec
	estimates   int
	simulations int
	// done counts evaluations completed in earlier batches, so progress
	// callbacks report one monotonic search-wide counter rather than
	// restarting at every rung.
	done int
}

// Batch evaluates the candidates at one fidelity, returning evals in the
// ids' order. Duplicate fingerprints within the batch evaluate once.
func (e *Evaluator) Batch(ids []int, f Fidelity) ([]Eval, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	fn := e.p.Simulate
	if f == FidelityEstimate {
		fn = e.p.Estimate
	}
	if fn == nil {
		return nil, fmt.Errorf("search %s: problem has no %s function", e.p.Name, f)
	}
	labels := make([]string, len(ids))
	for i, id := range ids {
		labels[i] = e.p.Label(id)
	}
	spec := sweep.Spec[float64]{
		Name: e.p.Name + "/" + f.String(),
		Axes: []sweep.Axis{{Name: "candidate", Values: labels}},
		Cell: func(pt sweep.Point) (float64, error) {
			return fn(ids[pt.Index("candidate")])
		},
	}
	if e.p.Fingerprint != nil {
		spec.Fingerprint = func(pt sweep.Point) string {
			return e.p.Fingerprint(ids[pt.Index("candidate")], f)
		}
	}
	exec := e.exec
	if progress := exec.Progress; progress != nil {
		// Offset this batch's (done, total) by the evaluations of earlier
		// rungs: the caller sees one counter that never resets, whose
		// total grows as the strategy commits to more evaluations.
		base := e.done
		exec.Progress = func(done, total int) { progress(base+done, base+total) }
	}
	res, err := sweep.Run(spec, exec)
	if err != nil {
		return nil, err
	}
	e.done += len(ids)
	evals := make([]Eval, len(ids))
	for i, row := range res.Rows {
		evals[i] = Eval{Candidate: ids[i], Label: labels[i], Score: row.Value}
	}
	if f == FidelityEstimate {
		e.estimates += len(ids)
	} else {
		e.simulations += len(ids)
	}
	return evals, nil
}

// Rank returns the evals sorted by ascending score, ties broken by
// candidate id — the promotion order of every strategy.
func Rank(evals []Eval) []Eval {
	out := make([]Eval, len(evals))
	copy(out, evals)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Candidate < out[j].Candidate
	})
	return out
}

// Strategy is one search algorithm: it receives the feasible candidate
// ids in ascending order and returns the rungs it ran. The framework
// derives the winner from the full-fidelity evaluations in the history.
type Strategy interface {
	// Name is the canonical registry name.
	Name() string
	// Run executes the search, evaluating batches through ev.
	Run(ev *Evaluator, feasible []int, o Options) ([]Generation, error)
}

var (
	strategyMu sync.RWMutex
	strategies = map[string]Strategy{}
)

// RegisterStrategy associates names (case-insensitive) with a strategy.
// Built-ins register at init; external packages may add their own.
func RegisterStrategy(s Strategy, names ...string) {
	if len(names) == 0 {
		panic("search: RegisterStrategy needs at least one name")
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	for _, n := range names {
		strategies[strings.ToLower(n)] = s
	}
}

// StrategyFor resolves a strategy name; empty means "halving".
func StrategyFor(name string) (Strategy, error) {
	if name == "" {
		name = "halving"
	}
	strategyMu.RLock()
	s, ok := strategies[strings.ToLower(name)]
	strategyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("search: unknown strategy %q (registered: %s)",
			name, strings.Join(Strategies(), ", "))
	}
	return s, nil
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategies))
	for n := range strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ceilDiv returns ceil(a/b) for positive a, b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// simulationBudget resolves the full-fidelity budget: the explicit
// MaxSimulations, else ceil(n/eta), clamped to [1, n].
func simulationBudget(o Options, n, eta int) int {
	b := o.MaxSimulations
	if b <= 0 {
		b = ceilDiv(n, eta)
	}
	if b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Optimize runs the search described by the options over the problem.
func Optimize(p Problem, o Options) (*Result, error) {
	start := time.Now()
	if p.Candidates <= 0 {
		return nil, fmt.Errorf("search %s: empty candidate space", p.Name)
	}
	if p.Simulate == nil {
		return nil, fmt.Errorf("search %s: nil Simulate", p.Name)
	}
	if p.Label == nil {
		return nil, fmt.Errorf("search %s: nil Label", p.Name)
	}
	strat, err := StrategyFor(o.Strategy)
	if err != nil {
		return nil, err
	}
	if o.Eta == 0 {
		o.Eta = 4
	}
	if o.Eta < 2 {
		return nil, fmt.Errorf("search %s: eta must be >= 2, got %d", p.Name, o.Eta)
	}

	// Prune infeasible candidates before any evaluation; feasibility is
	// checked serially so pruning order (and the result) is deterministic.
	feasible := make([]int, 0, p.Candidates)
	var pruned []Pruned
	for i := 0; i < p.Candidates; i++ {
		if p.Feasible != nil {
			if err := p.Feasible(i); err != nil {
				pruned = append(pruned, Pruned{Candidate: i, Label: p.Label(i), Reason: err.Error()})
				continue
			}
		}
		feasible = append(feasible, i)
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("search %s: no feasible candidates (%d pruned)", p.Name, len(pruned))
	}

	ev := &Evaluator{p: p, exec: o.Exec}
	gens, err := strat.Run(ev, feasible, o)
	if err != nil {
		return nil, err
	}
	for i := range gens {
		gens[i].Index = i
	}

	// The winner is the best full-fidelity evaluation anywhere in the
	// history (ties by candidate id, matching Rank).
	var best Eval
	found := false
	for _, g := range gens {
		if g.Fidelity != FidelitySimulate.String() {
			continue
		}
		for _, e := range g.Evals {
			if !found || e.Score < best.Score ||
				(e.Score == best.Score && e.Candidate < best.Candidate) {
				best, found = e, true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("search %s: strategy %s ran no full-fidelity evaluations", p.Name, strat.Name())
	}
	best.Promoted = false

	return &Result{
		Problem:          p.Name,
		Strategy:         strat.Name(),
		Seed:             o.Seed,
		Candidates:       p.Candidates,
		Feasible:         len(feasible),
		Estimates:        ev.estimates,
		Simulations:      ev.simulations,
		Best:             best,
		History:          gens,
		PrunedCandidates: pruned,
		Wall:             time.Since(start),
	}, nil
}

// ---------------------------------------------------------- strategies ----

// exhaustiveStrategy simulates every feasible candidate at full fidelity —
// the delegate-to-sweep baseline.
type exhaustiveStrategy struct{}

func (exhaustiveStrategy) Name() string { return "exhaustive" }

func (exhaustiveStrategy) Run(ev *Evaluator, feasible []int, o Options) ([]Generation, error) {
	evals, err := ev.Batch(feasible, FidelitySimulate)
	if err != nil {
		return nil, err
	}
	return []Generation{{Fidelity: FidelitySimulate.String(), Evals: evals}}, nil
}

// randomStrategy draws a seeded sample of the space, screens it with the
// estimator, and promotes only the top-ranked slice to simulation.
type randomStrategy struct{}

func (randomStrategy) Name() string { return "random" }

func (randomStrategy) Run(ev *Evaluator, feasible []int, o Options) ([]Generation, error) {
	n := len(feasible)
	var pop, budget int
	if o.Population > 0 {
		// The sample size is the contract; the budget follows from it
		// (never from the full space, which the sample may be a tiny
		// fraction of).
		pop = o.Population
		if pop > n {
			pop = n
		}
		budget = o.MaxSimulations
		if budget <= 0 {
			budget = ceilDiv(pop, o.Eta)
		}
		if budget > pop {
			budget = pop
		}
	} else {
		budget = simulationBudget(o, n, o.Eta)
		pop = o.Eta * budget
		if pop > n {
			pop = n
		}
	}
	// Sample without replacement, then restore ascending order so the
	// sample set — not the draw order — defines the batch.
	rng := rand.New(rand.NewSource(o.Seed))
	perm := rng.Perm(n)
	sample := make([]int, pop)
	for i := 0; i < pop; i++ {
		sample[i] = feasible[perm[i]]
	}
	sort.Ints(sample)
	return screenThenSimulate(ev, sample, budget)
}

// halvingStrategy is multi-fidelity successive halving: rung 0 scores the
// whole feasible space with the cheap estimator, and only the top
// 1/eta survivors (bounded by the simulation budget) are promoted to full
// event-engine simulation.
type halvingStrategy struct{}

func (halvingStrategy) Name() string { return "halving" }

func (halvingStrategy) Run(ev *Evaluator, feasible []int, o Options) ([]Generation, error) {
	return screenThenSimulate(ev, feasible, simulationBudget(o, len(feasible), o.Eta))
}

// screenThenSimulate is the shared promote step: estimate the pool, mark
// the top `budget` candidates promoted, and simulate them.
func screenThenSimulate(ev *Evaluator, pool []int, budget int) ([]Generation, error) {
	screen, err := ev.Batch(pool, FidelityEstimate)
	if err != nil {
		return nil, err
	}
	ranked := Rank(screen)
	if budget > len(ranked) {
		budget = len(ranked)
	}
	survivors := make([]int, budget)
	promoted := make(map[int]bool, budget)
	for i := 0; i < budget; i++ {
		survivors[i] = ranked[i].Candidate
		promoted[ranked[i].Candidate] = true
	}
	sort.Ints(survivors)
	for i := range screen {
		screen[i].Promoted = promoted[screen[i].Candidate]
	}
	sims, err := ev.Batch(survivors, FidelitySimulate)
	if err != nil {
		return nil, err
	}
	return []Generation{
		{Fidelity: FidelityEstimate.String(), Evals: screen},
		{Fidelity: FidelitySimulate.String(), Evals: sims},
	}, nil
}

func init() {
	RegisterStrategy(exhaustiveStrategy{}, "exhaustive", "sweep", "grid")
	RegisterStrategy(randomStrategy{}, "random")
	RegisterStrategy(halvingStrategy{}, "halving", "sha", "successive-halving")
}
