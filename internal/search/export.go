package search

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON writes the result as an indented JSON document. The output is
// byte-identical for any worker count (wall time is excluded).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the full history flat — one record per evaluation —
// followed by nothing else, so downstream tooling can reconstruct every
// rung. Deterministic for a given result.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"generation", "fidelity", "candidate", "label", "score", "promoted"}); err != nil {
		return err
	}
	for _, g := range r.History {
		for _, e := range g.Evals {
			rec := []string{
				strconv.Itoa(g.Index),
				g.Fidelity,
				strconv.Itoa(e.Candidate),
				e.Label,
				strconv.FormatFloat(e.Score, 'g', -1, 64),
				strconv.FormatBool(e.Promoted),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable writes a human-readable run summary: the rung structure, the
// evaluation counts against the space size, and the winner.
func (r *Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "search %s: strategy=%s seed=%d space=%d feasible=%d\n",
		r.Problem, r.Strategy, r.Seed, r.Candidates, r.Feasible); err != nil {
		return err
	}
	for _, g := range r.History {
		promoted := 0
		for _, e := range g.Evals {
			if e.Promoted {
				promoted++
			}
		}
		line := fmt.Sprintf("  rung %d: %-8s %3d candidates", g.Index, g.Fidelity, len(g.Evals))
		if promoted > 0 {
			line += fmt.Sprintf(", %d promoted", promoted)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	frac := 0.0
	if r.Feasible > 0 {
		frac = 100 * float64(r.Simulations) / float64(r.Feasible)
	}
	if _, err := fmt.Fprintf(w, "  simulated %d/%d candidates (%.0f%%), %d estimates, %d pruned\n",
		r.Simulations, r.Feasible, frac, r.Estimates, len(r.PrunedCandidates)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  best: %s (score %g)\n", r.Best.Label, r.Best.Score)
	return err
}
