package search

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sweep"
)

// testProblem is a synthetic 16-candidate space whose true objective has
// its optimum at id 11 and whose estimator is rank-correlated but not
// exact (it preserves the optimum's top-quartile position, like a
// closed-form collective estimate screening full simulations).
func testProblem(sims, ests *atomic.Int64) Problem {
	truth := func(i int) float64 {
		d := float64(i - 11)
		return 100 + d*d
	}
	return Problem{
		Name:       "synthetic",
		Candidates: 16,
		Label:      func(i int) string { return fmt.Sprintf("cand-%02d", i) },
		Estimate: func(i int) (float64, error) {
			if ests != nil {
				ests.Add(1)
			}
			// Noise of magnitude <= 2 cannot reorder gaps of >= 3, so the
			// optimum stays in the estimator's top quartile.
			return truth(i) + float64(i%3), nil
		},
		Simulate: func(i int) (float64, error) {
			if sims != nil {
				sims.Add(1)
			}
			return truth(i), nil
		},
		Fingerprint: func(i int, f Fidelity) string {
			return fmt.Sprintf("synthetic|%s|%d", f, i)
		},
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	var sims atomic.Int64
	res, err := Optimize(testProblem(&sims, nil), Options{Strategy: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Candidate != 11 || res.Best.Label != "cand-11" {
		t.Errorf("best = %+v, want candidate 11", res.Best)
	}
	if res.Simulations != 16 || sims.Load() != 16 {
		t.Errorf("simulations = %d (ran %d), want 16", res.Simulations, sims.Load())
	}
	if res.Estimates != 0 {
		t.Errorf("exhaustive ran %d estimates", res.Estimates)
	}
	if len(res.History) != 1 || res.History[0].Fidelity != "simulate" {
		t.Errorf("history = %+v, want one simulate rung", res.History)
	}
}

func TestHalvingPromotesTopFraction(t *testing.T) {
	var sims, ests atomic.Int64
	res, err := Optimize(testProblem(&sims, &ests), Options{Strategy: "halving"})
	if err != nil {
		t.Fatal(err)
	}
	// Default eta 4: 16 estimates screen the space, 4 simulations decide.
	if res.Estimates != 16 || ests.Load() != 16 {
		t.Errorf("estimates = %d (ran %d), want 16", res.Estimates, ests.Load())
	}
	if res.Simulations != 4 || sims.Load() != 4 {
		t.Errorf("simulations = %d (ran %d), want 4", res.Simulations, sims.Load())
	}
	if res.Best.Candidate != 11 {
		t.Errorf("halving missed the optimum: best = %+v", res.Best)
	}
	if len(res.History) != 2 {
		t.Fatalf("history has %d rungs, want 2", len(res.History))
	}
	promoted := 0
	for _, e := range res.History[0].Evals {
		if e.Promoted {
			promoted++
		}
	}
	if promoted != 4 {
		t.Errorf("%d candidates promoted, want 4", promoted)
	}
	// The simulate rung holds exactly the promoted candidates, ascending.
	simGen := res.History[1]
	last := -1
	for _, e := range simGen.Evals {
		if e.Candidate <= last {
			t.Errorf("simulate rung not in ascending candidate order: %+v", simGen.Evals)
		}
		last = e.Candidate
	}
}

func TestSimulationBudgetOverride(t *testing.T) {
	for _, budget := range []int{1, 2, 7, 100} {
		res, err := Optimize(testProblem(nil, nil), Options{Strategy: "halving", MaxSimulations: budget})
		if err != nil {
			t.Fatal(err)
		}
		want := budget
		if want > 16 {
			want = 16
		}
		if res.Simulations != want {
			t.Errorf("budget %d: simulations = %d, want %d", budget, res.Simulations, want)
		}
	}
}

func TestRandomStrategy(t *testing.T) {
	var sims, ests atomic.Int64
	res, err := Optimize(testProblem(&sims, &ests), Options{Strategy: "random", Seed: 7, MaxSimulations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Population defaults to eta*budget = 8 sampled candidates.
	if res.Estimates != 8 || ests.Load() != 8 {
		t.Errorf("estimates = %d (ran %d), want 8", res.Estimates, ests.Load())
	}
	if res.Simulations != 2 {
		t.Errorf("simulations = %d, want 2", res.Simulations)
	}
	// Same seed reproduces the run byte-for-byte; the sample is seeded.
	again, err := Optimize(testProblem(nil, nil), Options{Strategy: "random", Seed: 7, MaxSimulations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := again.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different results")
	}
	// An explicit population is honored and clamped to the space.
	res, err = Optimize(testProblem(nil, nil), Options{Strategy: "random", Seed: 1, Population: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates != 16 {
		t.Errorf("population 100 estimated %d, want clamp to 16", res.Estimates)
	}
	// An explicit population without a budget derives the budget from the
	// sample, not the full space: 8 sampled, ceil(8/4)=2 simulated.
	res, err = Optimize(testProblem(nil, nil), Options{Strategy: "random", Seed: 1, Population: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates != 8 || res.Simulations != 2 {
		t.Errorf("population 8: %d estimates / %d simulations, want 8 / 2",
			res.Estimates, res.Simulations)
	}
}

// TestDeterministicAcrossWorkers is the engine's core guarantee: a fixed
// seed and budget produce byte-identical results whatever the worker
// count, mirroring the sweep engine's serial-parity property.
func TestDeterministicAcrossWorkers(t *testing.T) {
	for _, strategy := range []string{"exhaustive", "random", "halving"} {
		var want bytes.Buffer
		for i, workers := range []int{1, 2, 3, 8} {
			res, err := Optimize(testProblem(nil, nil), Options{
				Strategy: strategy,
				Seed:     42,
				Exec:     sweep.Exec{Workers: workers},
			})
			if err != nil {
				t.Fatal(err)
			}
			var gotJSON, gotCSV bytes.Buffer
			if err := res.WriteJSON(&gotJSON); err != nil {
				t.Fatal(err)
			}
			if err := res.WriteCSV(&gotCSV); err != nil {
				t.Fatal(err)
			}
			gotJSON.Write(gotCSV.Bytes())
			if i == 0 {
				want = gotJSON
				continue
			}
			if !bytes.Equal(want.Bytes(), gotJSON.Bytes()) {
				t.Errorf("%s: workers=%d output differs from serial", strategy, workers)
			}
		}
	}
}

// TestProgressMonotonicAcrossRungs covers the degenerate rung boundary:
// with a single feasible candidate both halving rungs have total 1, and
// the search-wide counter must still accumulate to 2/2 rather than
// reporting 1/1 twice.
func TestProgressMonotonicAcrossRungs(t *testing.T) {
	p := testProblem(nil, nil)
	p.Candidates = 1
	lastDone, lastTotal := -1, -1
	_, err := Optimize(p, Options{Strategy: "halving", Exec: sweep.Exec{
		Workers: 1,
		Progress: func(done, total int) {
			if done < lastDone || total < lastTotal {
				t.Errorf("progress went backwards: %d/%d after %d/%d", done, total, lastDone, lastTotal)
			}
			lastDone, lastTotal = done, total
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 2 || lastTotal != 2 {
		t.Errorf("final progress %d/%d, want 2/2 (estimate + simulate)", lastDone, lastTotal)
	}
}

func TestPruningAndFeasibility(t *testing.T) {
	p := testProblem(nil, nil)
	p.Feasible = func(i int) error {
		if i%2 == 0 {
			return errors.New("even candidates disallowed")
		}
		return nil
	}
	res, err := Optimize(p, Options{Strategy: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != 8 || res.Simulations != 8 {
		t.Errorf("feasible=%d simulations=%d, want 8/8", res.Feasible, res.Simulations)
	}
	if len(res.PrunedCandidates) != 8 {
		t.Fatalf("%d pruned, want 8", len(res.PrunedCandidates))
	}
	if res.PrunedCandidates[0].Candidate != 0 || !strings.Contains(res.PrunedCandidates[0].Reason, "disallowed") {
		t.Errorf("pruned[0] = %+v", res.PrunedCandidates[0])
	}
	if res.Best.Candidate != 11 {
		t.Errorf("best = %+v, want 11 (odd optimum)", res.Best)
	}

	p.Feasible = func(i int) error { return errors.New("nope") }
	if _, err := Optimize(p, Options{}); err == nil {
		t.Error("fully infeasible space accepted")
	}
}

func TestCacheSharesAcrossRuns(t *testing.T) {
	cache := sweep.NewCache()
	var sims atomic.Int64
	p := testProblem(&sims, nil)
	// Halving then exhaustive with a shared cache: the halving survivors'
	// simulations are reused by the exhaustive pass.
	if _, err := Optimize(p, Options{Strategy: "halving", Exec: sweep.Exec{Cache: cache}}); err != nil {
		t.Fatal(err)
	}
	afterHalving := sims.Load()
	if afterHalving != 4 {
		t.Fatalf("halving ran %d simulations, want 4", afterHalving)
	}
	res, err := Optimize(p, Options{Strategy: "exhaustive", Exec: sweep.Exec{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulations != 16 {
		t.Errorf("exhaustive requested %d simulations, want 16", res.Simulations)
	}
	if ran := sims.Load() - afterHalving; ran != 12 {
		t.Errorf("exhaustive executed %d new simulations, want 12 (4 cached)", ran)
	}
}

func TestOptimizeErrors(t *testing.T) {
	good := testProblem(nil, nil)
	cases := []struct {
		name string
		p    Problem
		o    Options
	}{
		{"empty space", Problem{Name: "x", Candidates: 0, Label: good.Label, Simulate: good.Simulate}, Options{}},
		{"nil simulate", Problem{Name: "x", Candidates: 4, Label: good.Label}, Options{}},
		{"nil label", Problem{Name: "x", Candidates: 4, Simulate: good.Simulate}, Options{}},
		{"unknown strategy", good, Options{Strategy: "annealing"}},
		{"bad eta", good, Options{Eta: 1}},
	}
	for _, c := range cases {
		if _, err := Optimize(c.p, c.o); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}

	// Halving needs the estimator.
	p := good
	p.Estimate = nil
	if _, err := Optimize(p, Options{Strategy: "halving"}); err == nil {
		t.Error("halving without estimator accepted")
	}
	// But exhaustive does not.
	if _, err := Optimize(p, Options{Strategy: "exhaustive"}); err != nil {
		t.Errorf("exhaustive without estimator failed: %v", err)
	}

	// Evaluation failures surface as cell errors naming the candidate.
	p = good
	p.Simulate = func(i int) (float64, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return 1, nil
	}
	_, err := Optimize(p, Options{Strategy: "exhaustive"})
	if err == nil || !strings.Contains(err.Error(), "cand-05") {
		t.Errorf("cell failure not reported: %v", err)
	}
}

func TestStrategyRegistry(t *testing.T) {
	names := Strategies()
	for _, want := range []string{"exhaustive", "random", "halving", "sha", "grid"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	s, err := StrategyFor("")
	if err != nil || s.Name() != "halving" {
		t.Errorf("default strategy = %v, %v; want halving", s, err)
	}
	if s, _ := StrategyFor("Successive-Halving"); s == nil || s.Name() != "halving" {
		t.Error("alias lookup is not case-insensitive")
	}
}

func TestTableAndCSVShape(t *testing.T) {
	res, err := Optimize(testProblem(nil, nil), Options{Strategy: "halving"})
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strategy=halving", "rung 0: estimate", "rung 1: simulate", "best: cand-11"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+16+4 {
		t.Errorf("CSV has %d lines, want header + 16 estimates + 4 simulations", len(lines))
	}
	if lines[0] != "generation,fidelity,candidate,label,score,promoted" {
		t.Errorf("CSV header = %q", lines[0])
	}
}
