// Package units defines the physical quantities used throughout the
// simulator: simulated time, data sizes, bandwidths, and compute rates.
//
// Simulated time is an integer count of picoseconds so that event ordering
// is exact and reproducible; one simulated second is 1e12 ticks, which
// leaves ample headroom in an int64 for multi-hour simulations.
package units

import (
	"fmt"
	"math"
)

// Time is a simulated time or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns t expressed in nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t < Nanosecond && t > -Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond && t > -Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanos())
	case t < Millisecond && t > -Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second && t > -Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts a duration in seconds to simulated Time,
// rounding to the nearest picosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMicros converts a duration in microseconds to simulated Time.
func FromMicros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// FromNanos converts a duration in nanoseconds to simulated Time.
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// ByteSize is a data size in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
	GiB           = 1024 * MiB

	KB = 1000 * Byte
	MB = 1000 * KB
	GB = 1000 * MB
)

// Bytes returns the size as a float64 byte count.
func (b ByteSize) Bytes() float64 { return float64(b) }

// MiBs returns the size expressed in binary megabytes.
func (b ByteSize) MiBs() float64 { return float64(b) / float64(MiB) }

// String renders the size with an auto-selected binary unit.
func (b ByteSize) String() string {
	switch {
	case b == 0:
		return "0B"
	case b < KiB && b > -KiB:
		return fmt.Sprintf("%dB", int64(b))
	case b < MiB && b > -MiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	case b < GiB && b > -GiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// GBps constructs a Bandwidth from a rate in gigabytes (1e9) per second,
// the unit used throughout the paper's tables.
func GBps(g float64) Bandwidth { return Bandwidth(g * 1e9) }

// GBpsValue returns the bandwidth expressed in GB/s.
func (bw Bandwidth) GBpsValue() float64 { return float64(bw) / 1e9 }

// String renders the bandwidth in GB/s.
func (bw Bandwidth) String() string { return fmt.Sprintf("%.1fGB/s", bw.GBpsValue()) }

// TransferTime returns the serialization time of size bytes at this
// bandwidth. A non-positive bandwidth yields zero time so that unused
// fabrics can be configured as "infinitely fast".
func (bw Bandwidth) TransferTime(size ByteSize) Time {
	if bw <= 0 || size <= 0 {
		return 0
	}
	return Time(math.Round(float64(size) / float64(bw) * float64(Second)))
}

// FLOPS is a compute rate in floating-point operations per second.
type FLOPS float64

// TFLOPS constructs a FLOPS value from teraflops, the paper's unit
// (e.g. the A100's 234 TFLOPS in Section V).
func TFLOPS(t float64) FLOPS { return FLOPS(t * 1e12) }

// ComputeTime returns the time to execute ops floating-point operations
// at this rate. A non-positive rate yields zero time.
func (f FLOPS) ComputeTime(ops float64) Time {
	if f <= 0 || ops <= 0 {
		return 0
	}
	return Time(math.Round(ops / float64(f) * float64(Second)))
}
