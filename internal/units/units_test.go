package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		secs float64
	}{
		{0, 0},
		{Second, 1},
		{Millisecond, 1e-3},
		{Microsecond, 1e-6},
		{Nanosecond, 1e-9},
		{Picosecond, 1e-12},
		{3 * Second / 2, 1.5},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); math.Abs(got-c.secs) > 1e-15 {
			t.Errorf("Time(%d).Seconds() = %v, want %v", c.in, got, c.secs)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms int16) bool {
		s := float64(ms) / 1000.0
		return FromSeconds(s) == Time(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMicros(t *testing.T) {
	if got := FromMicros(2.5); got != 2500*Nanosecond {
		t.Errorf("FromMicros(2.5) = %v, want 2500ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{2 * KiB, "2.00KiB"},
		{3 * MiB, "3.00MiB"},
		{5 * GiB, "5.00GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBandwidthTransferTime(t *testing.T) {
	// 1 GB at 1 GB/s should take exactly one simulated second.
	bw := GBps(1)
	if got := bw.TransferTime(GB); got != Second {
		t.Errorf("1GB @ 1GB/s = %v, want 1s", got)
	}
	// 64 MB at 150 GB/s (the paper's NVLink validation setting).
	got := GBps(150).TransferTime(64 * MB)
	want := FromSeconds(64e6 / 150e9)
	if got != want {
		t.Errorf("64MB @ 150GB/s = %v, want %v", got, want)
	}
}

func TestBandwidthZeroAndNegative(t *testing.T) {
	if GBps(0).TransferTime(GB) != 0 {
		t.Error("zero bandwidth should produce zero transfer time")
	}
	if GBps(-5).TransferTime(GB) != 0 {
		t.Error("negative bandwidth should produce zero transfer time")
	}
	if GBps(10).TransferTime(0) != 0 {
		t.Error("zero size should produce zero transfer time")
	}
	if GBps(10).TransferTime(-1) != 0 {
		t.Error("negative size should produce zero transfer time")
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := ByteSize(a), ByteSize(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		bw := GBps(100)
		return bw.TransferTime(lo) <= bw.TransferTime(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFLOPSComputeTime(t *testing.T) {
	// 234e12 flops at 234 TFLOPS is one second.
	f := TFLOPS(234)
	if got := f.ComputeTime(234e12); got != Second {
		t.Errorf("234Tflop @ 234TFLOPS = %v, want 1s", got)
	}
	if f.ComputeTime(0) != 0 {
		t.Error("zero work should take zero time")
	}
	if FLOPS(0).ComputeTime(1e12) != 0 {
		t.Error("zero rate should take zero time")
	}
}

func TestBandwidthString(t *testing.T) {
	if got := GBps(450).String(); got != "450.0GB/s" {
		t.Errorf("String() = %q", got)
	}
}
