// Package et defines the ASTRA-sim execution trace (ET) — the paper's
// common trace format that decouples parallelization strategies from the
// simulator frontend (Section IV-A). A trace holds one dependency graph per
// NPU; nodes are compute, memory, or communication operations, and edges
// encode both intra-layer ordering and the parallelization strategy itself.
// Because each NPU has an independent graph, NPUs may execute different
// operations at the same time, which is what enables pipeline parallelism
// and other asymmetric strategies.
package et

import (
	"encoding/json"
	"fmt"
	"io"
)

// NodeKind is the ET node type of Fig. 1(b), with communication split into
// collective and point-to-point flavours.
type NodeKind string

// Node kinds.
const (
	KindCompute NodeKind = "COMP"
	KindMemory  NodeKind = "MEM"
	KindComm    NodeKind = "COMM_COLL"
	KindSend    NodeKind = "COMM_SEND"
	KindRecv    NodeKind = "COMM_RECV"
)

// CollectiveType names a collective pattern in trace metadata.
type CollectiveType string

// Collective types (Fig. 2).
const (
	CollAllReduce     CollectiveType = "ALL_REDUCE"
	CollAllGather     CollectiveType = "ALL_GATHER"
	CollReduceScatter CollectiveType = "REDUCE_SCATTER"
	CollAllToAll      CollectiveType = "ALL_TO_ALL"
)

// MemOp distinguishes memory-node loads from stores.
type MemOp string

// Memory operations.
const (
	MemLoad  MemOp = "LOAD"
	MemStore MemOp = "STORE"
)

// MemLocation says which memory tier a memory node touches.
type MemLocation string

// Memory locations.
const (
	MemLocal  MemLocation = "LOCAL"
	MemRemote MemLocation = "REMOTE"
)

// GroupRef describes a communicator group in trace metadata as logical
// spans over physical topology dimensions (see collective.Span). An empty
// Spans list means "all dimensions in full" (the whole machine).
type GroupRef struct {
	Spans []SpanRef `json:"spans,omitempty"`
}

// SpanRef is the serialized form of a logical group span.
type SpanRef struct {
	Phys   int `json:"phys"`
	K      int `json:"k"`
	Stride int `json:"stride"`
}

// Node is one ET operation. Metadata fields are meaningful per kind:
//
//	COMP:      FLOPs, MemBytes (roofline inputs)
//	MEM:       MemOp, MemLocation, TensorBytes
//	COMM_COLL: Collective, CommBytes, Group, InSwitch
//	COMM_SEND: Peer, CommBytes, Tag
//	COMM_RECV: Peer, CommBytes, Tag
type Node struct {
	ID   int      `json:"id"`
	Name string   `json:"name,omitempty"`
	Kind NodeKind `json:"kind"`
	// Deps lists node IDs (same NPU graph) that must complete first.
	Deps []int `json:"deps,omitempty"`

	// Compute metadata.
	FLOPs    float64 `json:"flops,omitempty"`
	MemBytes int64   `json:"mem_bytes,omitempty"`

	// Memory metadata.
	MemOp       MemOp       `json:"mem_op,omitempty"`
	MemLocation MemLocation `json:"mem_location,omitempty"`
	TensorBytes int64       `json:"tensor_bytes,omitempty"`

	// Communication metadata.
	Collective CollectiveType `json:"collective,omitempty"`
	CommBytes  int64          `json:"comm_bytes,omitempty"`
	Group      *GroupRef      `json:"group,omitempty"`
	// InSwitch requests the collective be fused into the disaggregated
	// memory fabric (gather-on-load / reduce-on-store, Section IV-D.3).
	InSwitch bool `json:"in_switch,omitempty"`
	Peer     int  `json:"peer,omitempty"`
	Tag      int  `json:"tag,omitempty"`
}

// Graph is one NPU's execution trace.
type Graph struct {
	NPU   int     `json:"npu"`
	Nodes []*Node `json:"nodes"`
}

// Trace is a whole-machine execution trace: one graph per NPU.
type Trace struct {
	// Name labels the workload (e.g. "GPT-3/MP16xDP32").
	Name string `json:"name,omitempty"`
	// NumNPUs is the machine size the trace was generated for.
	NumNPUs int      `json:"num_npus"`
	Graphs  []*Graph `json:"graphs"`
}

// Validate checks structural invariants of a single graph: unique IDs,
// dependencies referencing existing earlier-declared nodes, kind-specific
// metadata present, and acyclicity.
func (g *Graph) Validate() error {
	ids := make(map[int]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n == nil {
			return fmt.Errorf("et: npu %d has a nil node", g.NPU)
		}
		if ids[n.ID] {
			return fmt.Errorf("et: npu %d has duplicate node id %d", g.NPU, n.ID)
		}
		ids[n.ID] = true
	}
	for _, n := range g.Nodes {
		for _, d := range n.Deps {
			if !ids[d] {
				return fmt.Errorf("et: npu %d node %d depends on unknown node %d", g.NPU, n.ID, d)
			}
			if d == n.ID {
				return fmt.Errorf("et: npu %d node %d depends on itself", g.NPU, n.ID)
			}
		}
		if err := n.validateMeta(); err != nil {
			return fmt.Errorf("et: npu %d node %d: %w", g.NPU, n.ID, err)
		}
	}
	if g.hasCycle() {
		return fmt.Errorf("et: npu %d graph has a dependency cycle", g.NPU)
	}
	return nil
}

func (n *Node) validateMeta() error {
	switch n.Kind {
	case KindCompute:
		if n.FLOPs < 0 || n.MemBytes < 0 {
			return fmt.Errorf("compute node with negative work")
		}
	case KindMemory:
		if n.MemOp != MemLoad && n.MemOp != MemStore {
			return fmt.Errorf("memory node needs mem_op LOAD or STORE, got %q", n.MemOp)
		}
		if n.MemLocation != MemLocal && n.MemLocation != MemRemote {
			return fmt.Errorf("memory node needs mem_location LOCAL or REMOTE, got %q", n.MemLocation)
		}
		if n.TensorBytes <= 0 {
			return fmt.Errorf("memory node needs positive tensor_bytes")
		}
	case KindComm:
		switch n.Collective {
		case CollAllReduce, CollAllGather, CollReduceScatter, CollAllToAll:
		default:
			return fmt.Errorf("collective node has unknown type %q", n.Collective)
		}
		if n.CommBytes <= 0 {
			return fmt.Errorf("collective node needs positive comm_bytes")
		}
	case KindSend, KindRecv:
		if n.CommBytes <= 0 {
			return fmt.Errorf("p2p node needs positive comm_bytes")
		}
		if n.Peer < 0 {
			return fmt.Errorf("p2p node needs a peer rank")
		}
	default:
		return fmt.Errorf("unknown node kind %q", n.Kind)
	}
	return nil
}

// hasCycle runs Kahn's algorithm over the dependency edges.
func (g *Graph) hasCycle() bool {
	indeg := make(map[int]int, len(g.Nodes))
	children := make(map[int][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n.ID] += 0
		for _, d := range n.Deps {
			children[d] = append(children[d], n.ID)
			indeg[n.ID]++
		}
	}
	queue := make([]int, 0, len(g.Nodes))
	for id, deg := range indeg {
		if deg == 0 {
			queue = append(queue, id)
		}
	}
	visited := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		visited++
		for _, c := range children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return visited != len(g.Nodes)
}

// Validate checks the whole trace: per-graph invariants, one graph per NPU
// rank, and point-to-point send/recv matching across graphs (every send
// must have a matching recv at the peer with the same tag and size, and
// vice versa) — mismatched P2P nodes would deadlock the simulation.
func (t *Trace) Validate() error {
	if t.NumNPUs <= 0 {
		return fmt.Errorf("et: trace needs a positive NPU count")
	}
	if len(t.Graphs) != t.NumNPUs {
		return fmt.Errorf("et: trace has %d graphs for %d NPUs", len(t.Graphs), t.NumNPUs)
	}
	seen := make(map[int]bool, len(t.Graphs))
	for _, g := range t.Graphs {
		if g.NPU < 0 || g.NPU >= t.NumNPUs {
			return fmt.Errorf("et: graph for out-of-range npu %d", g.NPU)
		}
		if seen[g.NPU] {
			return fmt.Errorf("et: duplicate graph for npu %d", g.NPU)
		}
		seen[g.NPU] = true
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return t.validateP2P()
}

type p2pKey struct {
	src, dst, tag int
}

func (t *Trace) validateP2P() error {
	sends := make(map[p2pKey][]int64)
	recvs := make(map[p2pKey][]int64)
	for _, g := range t.Graphs {
		for _, n := range g.Nodes {
			switch n.Kind {
			case KindSend:
				if n.Peer >= t.NumNPUs {
					return fmt.Errorf("et: npu %d sends to out-of-range peer %d", g.NPU, n.Peer)
				}
				k := p2pKey{src: g.NPU, dst: n.Peer, tag: n.Tag}
				sends[k] = append(sends[k], n.CommBytes)
			case KindRecv:
				if n.Peer >= t.NumNPUs {
					return fmt.Errorf("et: npu %d receives from out-of-range peer %d", g.NPU, n.Peer)
				}
				k := p2pKey{src: n.Peer, dst: g.NPU, tag: n.Tag}
				recvs[k] = append(recvs[k], n.CommBytes)
			}
		}
	}
	for k, s := range sends {
		r := recvs[k]
		if len(s) != len(r) {
			return fmt.Errorf("et: %d sends but %d recvs for %d->%d tag %d", len(s), len(r), k.src, k.dst, k.tag)
		}
		for i := range s {
			if s[i] != r[i] {
				return fmt.Errorf("et: size mismatch on %d->%d tag %d: send %d vs recv %d", k.src, k.dst, k.tag, s[i], r[i])
			}
		}
		delete(recvs, k)
	}
	for k, r := range recvs {
		return fmt.Errorf("et: %d recvs with no send for %d->%d tag %d", len(r), k.src, k.dst, k.tag)
	}
	return nil
}

// NodeCount returns the total number of nodes across all graphs.
func (t *Trace) NodeCount() int {
	n := 0
	for _, g := range t.Graphs {
		n += len(g.Nodes)
	}
	return n
}

// Encode writes the trace as JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Decode reads a trace from JSON and validates it.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("et: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
