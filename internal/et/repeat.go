package et

import (
	"fmt"
)

// Repeat unrolls a single-iteration trace into n back-to-back training
// iterations: each NPU's graph is cloned n times with fresh node IDs, and
// every iteration's entry nodes (those with no dependencies) gain an edge
// from the previous iteration's exit nodes (those nothing depends on) —
// the synchronous-training iteration boundary. Point-to-point tags are
// remapped per iteration so sends and receives pair within their own
// iteration.
func Repeat(t *Trace, n int) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("et: Repeat needs n >= 1, got %d", n)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("et: Repeat input: %w", err)
	}
	if n == 1 {
		return t, nil
	}
	// Tags are remapped as tag + iter*tagStride; find a stride beyond any
	// existing tag to keep iterations disjoint.
	maxTag := 0
	for _, g := range t.Graphs {
		for _, node := range g.Nodes {
			if node.Tag > maxTag {
				maxTag = node.Tag
			}
		}
	}
	tagStride := maxTag + 1

	out := &Trace{
		Name:    fmt.Sprintf("%sx%d", t.Name, n),
		NumNPUs: t.NumNPUs,
	}
	for _, g := range t.Graphs {
		maxID := 0
		var entries, exits []int
		hasChild := make(map[int]bool, len(g.Nodes))
		for _, node := range g.Nodes {
			if node.ID > maxID {
				maxID = node.ID
			}
			for _, d := range node.Deps {
				hasChild[d] = true
			}
		}
		for _, node := range g.Nodes {
			if len(node.Deps) == 0 {
				entries = append(entries, node.ID)
			}
			if !hasChild[node.ID] {
				exits = append(exits, node.ID)
			}
		}
		idStride := maxID + 1

		ng := &Graph{NPU: g.NPU, Nodes: make([]*Node, 0, len(g.Nodes)*n)}
		for iter := 0; iter < n; iter++ {
			off := iter * idStride
			for _, node := range g.Nodes {
				clone := *node
				clone.ID = node.ID + off
				clone.Deps = make([]int, 0, len(node.Deps)+len(exits))
				for _, d := range node.Deps {
					clone.Deps = append(clone.Deps, d+off)
				}
				if iter > 0 && len(node.Deps) == 0 {
					// Iteration boundary: entry waits on the previous
					// iteration's exits.
					prevOff := (iter - 1) * idStride
					for _, e := range exits {
						clone.Deps = append(clone.Deps, e+prevOff)
					}
				}
				if clone.Kind == KindSend || clone.Kind == KindRecv {
					clone.Tag = node.Tag + iter*tagStride
				}
				ng.Nodes = append(ng.Nodes, &clone)
			}
		}
		_ = entries
		out.Graphs = append(out.Graphs, ng)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("et: Repeat produced an invalid trace: %w", err)
	}
	return out, nil
}
