package et

import (
	"testing"
)

func twoNPUTrace() *Trace {
	return &Trace{
		Name:    "iter",
		NumNPUs: 2,
		Graphs: []*Graph{
			{NPU: 0, Nodes: []*Node{
				{ID: 1, Kind: KindCompute, FLOPs: 1e9},
				{ID: 2, Kind: KindSend, Deps: []int{1}, Peer: 1, Tag: 3, CommBytes: 64},
			}},
			{NPU: 1, Nodes: []*Node{
				{ID: 1, Kind: KindRecv, Peer: 0, Tag: 3, CommBytes: 64},
				{ID: 2, Kind: KindCompute, Deps: []int{1}, FLOPs: 1e9},
			}},
		},
	}
}

func TestRepeatValidatesAndScales(t *testing.T) {
	tr := twoNPUTrace()
	out, err := Repeat(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeCount() != 3*tr.NodeCount() {
		t.Errorf("NodeCount = %d, want %d", out.NodeCount(), 3*tr.NodeCount())
	}
	if out.Name != "iterx3" {
		t.Errorf("Name = %q", out.Name)
	}
}

func TestRepeatChainsIterations(t *testing.T) {
	out, err := Repeat(twoNPUTrace(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// NPU 0's second-iteration entry (clone of node 1) must depend on the
	// first iteration's exit (node 2).
	g := out.Graphs[0]
	second := g.Nodes[2] // iteration 1's first node
	if len(second.Deps) != 1 || second.Deps[0] != 2 {
		t.Errorf("iteration boundary deps = %v, want [2]", second.Deps)
	}
}

func TestRepeatRemapsTags(t *testing.T) {
	out, err := Repeat(twoNPUTrace(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var tags []int
	for _, n := range out.Graphs[0].Nodes {
		if n.Kind == KindSend {
			tags = append(tags, n.Tag)
		}
	}
	if len(tags) != 2 || tags[0] == tags[1] {
		t.Errorf("send tags = %v, want two distinct", tags)
	}
}

func TestRepeatEdgeCases(t *testing.T) {
	if _, err := Repeat(twoNPUTrace(), 0); err == nil {
		t.Error("n=0 accepted")
	}
	tr := twoNPUTrace()
	same, err := Repeat(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != tr {
		t.Error("n=1 should return the input unchanged")
	}
	bad := twoNPUTrace()
	bad.Graphs[0].Nodes[1].Peer = 9
	if _, err := Repeat(bad, 2); err == nil {
		t.Error("invalid input accepted")
	}
}
