package et

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func validTrace() *Trace {
	return &Trace{
		Name:    "test",
		NumNPUs: 2,
		Graphs: []*Graph{
			{NPU: 0, Nodes: []*Node{
				{ID: 1, Kind: KindCompute, FLOPs: 1e9, MemBytes: 1 << 20},
				{ID: 2, Kind: KindComm, Deps: []int{1}, Collective: CollAllReduce, CommBytes: 1 << 20},
				{ID: 3, Kind: KindSend, Deps: []int{2}, Peer: 1, Tag: 7, CommBytes: 4096},
			}},
			{NPU: 1, Nodes: []*Node{
				{ID: 1, Kind: KindCompute, FLOPs: 1e9},
				{ID: 2, Kind: KindComm, Deps: []int{1}, Collective: CollAllReduce, CommBytes: 1 << 20},
				{ID: 3, Kind: KindRecv, Deps: []int{2}, Peer: 0, Tag: 7, CommBytes: 4096},
			}},
		},
	}
}

func TestValidTraceValidates(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumNPUs != tr.NumNPUs || got.NodeCount() != tr.NodeCount() {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Graphs[0].Nodes[1].Collective != CollAllReduce {
		t.Error("collective type lost")
	}
}

func TestDuplicateNodeID(t *testing.T) {
	tr := validTrace()
	tr.Graphs[0].Nodes[1].ID = 1
	if err := tr.Validate(); err == nil {
		t.Error("duplicate node id accepted")
	}
}

func TestUnknownDep(t *testing.T) {
	tr := validTrace()
	tr.Graphs[0].Nodes[1].Deps = []int{99}
	if err := tr.Validate(); err == nil {
		t.Error("unknown dep accepted")
	}
}

func TestSelfDep(t *testing.T) {
	tr := validTrace()
	tr.Graphs[0].Nodes[0].Deps = []int{1}
	if err := tr.Validate(); err == nil {
		t.Error("self dependency accepted")
	}
}

func TestCycleDetected(t *testing.T) {
	g := &Graph{NPU: 0, Nodes: []*Node{
		{ID: 1, Kind: KindCompute, Deps: []int{2}},
		{ID: 2, Kind: KindCompute, Deps: []int{1}},
	}}
	if err := g.Validate(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestLongChainNoCycle(t *testing.T) {
	nodes := make([]*Node, 1000)
	for i := range nodes {
		n := &Node{ID: i + 1, Kind: KindCompute, FLOPs: 1}
		if i > 0 {
			n.Deps = []int{i}
		}
		nodes[i] = n
	}
	g := &Graph{NPU: 0, Nodes: nodes}
	if err := g.Validate(); err != nil {
		t.Errorf("chain rejected: %v", err)
	}
}

func TestKindMetadataValidation(t *testing.T) {
	cases := []struct {
		name string
		node *Node
	}{
		{"negative flops", &Node{ID: 1, Kind: KindCompute, FLOPs: -1}},
		{"mem without op", &Node{ID: 1, Kind: KindMemory, TensorBytes: 10, MemLocation: MemLocal}},
		{"mem without location", &Node{ID: 1, Kind: KindMemory, TensorBytes: 10, MemOp: MemLoad}},
		{"mem zero size", &Node{ID: 1, Kind: KindMemory, MemOp: MemLoad, MemLocation: MemLocal}},
		{"coll unknown type", &Node{ID: 1, Kind: KindComm, CommBytes: 10, Collective: "BROADCAST"}},
		{"coll zero size", &Node{ID: 1, Kind: KindComm, Collective: CollAllToAll}},
		{"send zero size", &Node{ID: 1, Kind: KindSend, Peer: 1}},
		{"recv bad peer", &Node{ID: 1, Kind: KindRecv, Peer: -1, CommBytes: 8}},
		{"bogus kind", &Node{ID: 1, Kind: "NOP"}},
	}
	for _, c := range cases {
		g := &Graph{NPU: 0, Nodes: []*Node{c.node}}
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTraceShapeErrors(t *testing.T) {
	tr := validTrace()
	tr.NumNPUs = 3
	if err := tr.Validate(); err == nil {
		t.Error("graph-count mismatch accepted")
	}
	tr = validTrace()
	tr.Graphs[1].NPU = 0
	if err := tr.Validate(); err == nil {
		t.Error("duplicate npu accepted")
	}
	tr = validTrace()
	tr.Graphs[1].NPU = 9
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range npu accepted")
	}
	if err := (&Trace{NumNPUs: 0}).Validate(); err == nil {
		t.Error("zero NPUs accepted")
	}
}

func TestP2PMatching(t *testing.T) {
	tr := validTrace()
	// Remove the recv: orphan send.
	tr.Graphs[1].Nodes = tr.Graphs[1].Nodes[:2]
	if err := tr.Validate(); err == nil {
		t.Error("orphan send accepted")
	}

	tr = validTrace()
	// Size mismatch.
	tr.Graphs[1].Nodes[2].CommBytes = 8192
	if err := tr.Validate(); err == nil {
		t.Error("size-mismatched p2p accepted")
	}

	tr = validTrace()
	// Orphan recv.
	tr.Graphs[0].Nodes = tr.Graphs[0].Nodes[:2]
	if err := tr.Validate(); err == nil {
		t.Error("orphan recv accepted")
	}

	tr = validTrace()
	// Send to nonexistent rank.
	tr.Graphs[0].Nodes[2].Peer = 5
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range peer accepted")
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Decode(bytes.NewBufferString(`{"num_npus":1,"graphs":[]}`)); err == nil {
		t.Error("invalid trace accepted")
	}
}

// Property: random DAGs built by only referencing earlier IDs always
// validate, and reversing an edge into a later node creates either a valid
// DAG or is caught — never a crash.
func TestRandomDAGValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			node := &Node{ID: i + 1, Kind: KindCompute, FLOPs: float64(rng.Intn(1000))}
			for d := 1; d <= i; d++ {
				if rng.Intn(4) == 0 {
					node.Deps = append(node.Deps, d)
				}
			}
			nodes[i] = node
		}
		g := &Graph{NPU: 0, Nodes: nodes}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNodeCount(t *testing.T) {
	if got := validTrace().NodeCount(); got != 6 {
		t.Errorf("NodeCount = %d, want 6", got)
	}
}
