package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/network"
	"repro/internal/sweep"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// This file holds the shared plumbing that routes every experiment through
// the sweep engine: canonical configuration fingerprints (so overlapping
// grids simulate shared cells once), axis builders, and the bare
// collective-engine runner four experiments previously hand-rolled.

// topoFingerprint canonically describes a topology including per-dimension
// bandwidth and latency — everything that affects simulated results.
func topoFingerprint(t *topology.Topology) string {
	var b strings.Builder
	for i, d := range t.Dims {
		if i > 0 {
			b.WriteByte('_')
		}
		// Format carries the full model identity (torus axes, switch
		// oversubscription), not just the block's short name and size.
		fmt.Fprintf(&b, "%s@%g/%d", d.Format(), d.Bandwidth.GBpsValue(), int64(d.Latency))
	}
	return b.String()
}

// engineFingerprint identifies a bare collective-engine run: the op, size,
// chunking, scheduler and full topology. Any two cells with equal strings
// simulate identically, so TableIV, the ablation grid and Fig. 4 share a
// cache space without risk of false sharing.
func engineFingerprint(top *topology.Topology, op collective.Op, size units.ByteSize, chunks int, policy collective.Policy) string {
	return fmt.Sprintf("engine|op=%s|size=%d|chunks=%d|policy=%s|topo=%s",
		op, size, chunks, policy, topoFingerprint(top))
}

// poolFingerprint canonically describes a disaggregated-pool configuration.
func poolFingerprint(p memory.PoolConfig) string {
	return fmt.Sprintf("pool|design=%s|nodes=%d|gpus=%d|outsw=%d|groups=%d|chunk=%d|groupbw=%g|gpusidebw=%g|innodebw=%g|lat=%d",
		p.Design, p.NumNodes, p.GPUsPerNode, p.NumOutSwitches, p.NumRemoteGroups,
		p.ChunkSize, p.RemoteGroupBW.GBpsValue(), p.GPUSideOutFabricBW.GBpsValue(),
		p.InNodeFabricBW.GBpsValue(), int64(p.Latency))
}

// collMemo is the package-shared collective memoization table: identical
// whole-machine collectives recurring across experiments replay their
// recorded sub-result instead of re-simulating the chunk wave. Simulated
// output is byte-identical with or without it, and the table is safe for
// the sweep engine's concurrent workers.
var collMemo = collective.NewMemo()

// runEngine executes one collective on a fresh timeline + network backend,
// returning the result and the number of discrete events fired.
func runEngine(top *topology.Topology, op collective.Op, size units.ByteSize, chunks int, policy collective.Policy, shards int) (collective.Result, uint64, error) {
	eng := timeline.ForShards(shards)
	core.ApplyLookahead(eng, top)
	net := network.NewBackend(eng, top)
	ce := collective.NewEngine(net, collective.WithChunks(chunks), collective.WithPolicy(policy), collective.WithMemo(collMemo))
	var res collective.Result
	if err := ce.Start(op, size, collective.FullMachine(top), func(r collective.Result) { res = r }); err != nil {
		return res, 0, err
	}
	if _, err := eng.Run(); err != nil {
		return res, 0, err
	}
	return res, eng.Fired(), nil
}

// systemAxis builds an axis from named systems.
func systemAxis(systems []System) sweep.Axis {
	names := make([]string, len(systems))
	for i, s := range systems {
		names[i] = s.Name
	}
	return sweep.Axis{Name: "system", Values: names}
}

// workloadAxis builds the Table III workload axis.
func workloadAxis() sweep.Axis {
	wls := Workloads()
	names := make([]string, len(wls))
	for i, wl := range wls {
		names[i] = string(wl)
	}
	return sweep.Axis{Name: "workload", Values: names}
}

// policyAxis builds a scheduler axis.
func policyAxis(policies []collective.Policy) sweep.Axis {
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.String()
	}
	return sweep.Axis{Name: "policy", Values: names}
}

// floatAxis renders a numeric grid dimension.
func floatAxis(name string, vals []float64) sweep.Axis {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = sweep.FormatFloat(v)
	}
	return sweep.Axis{Name: name, Values: out}
}

// intAxis renders an integer grid dimension.
func intAxis(name string, vals []int) sweep.Axis {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = sweep.FormatInt(v)
	}
	return sweep.Axis{Name: name, Values: out}
}

// sizeAxis renders a byte-size grid dimension.
func sizeAxis(name string, vals []units.ByteSize) sweep.Axis {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return sweep.Axis{Name: name, Values: out}
}
