package experiments

import (
	"repro/internal/collective"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Fabrics — the dimension-model extension study. Six 512-NPU fabrics built
// from the registered building blocks, all provisioned with 500 GB/s of
// configured per-NPU bandwidth, run the 1 GB All-Reduce microbenchmark and
// one GPT-3 training iteration:
//
//	RingStack  R(16)_R(32)      TPUv2/v3-style stacked rings
//	Torus-2D   T2D(16,32)       one 2-D torus fabric (TPU pod shape)
//	MeshStack  M(16)_M(32)      NoC-style wrap-free meshes
//	SW-Flat    SW(16)_SW(32)    fully-provisioned switch hierarchy
//	SW-Taper2  SW(16)_SW(32,2)  leaf switches 2:1 oversubscribed
//	SW-Taper4  SW(16)_SW(32,4)  leaf switches 4:1 oversubscribed
//
// The grid quantifies what the pluggable-model layer is for: the torus and
// ring stack trade step latency for wraparound links, the mesh pays the
// dilation of its embedded ring, and the tapered switches expose how much
// of the flat fabric's provisioning a GPT-3 iteration actually needs.

// fabricSpec declares one fabric of the comparison.
type fabricSpec struct {
	name string
	topo string
	bw   []float64
}

func fabricSpecs() []fabricSpec {
	return []fabricSpec{
		{"RingStack", "R(16)_R(32)", []float64{250, 250}},
		{"Torus-2D", "T2D(16,32)", []float64{500}},
		{"MeshStack", "M(16)_M(32)", []float64{250, 250}},
		{"SW-Flat", "SW(16)_SW(32)", []float64{250, 250}},
		{"SW-Taper2", "SW(16)_SW(32,2)", []float64{250, 250}},
		{"SW-Taper4", "SW(16)_SW(32,4)", []float64{250, 250}},
	}
}

// buildFabric constructs one fabric from shape notation through the model
// registry (the same path cmd/astrasim users take).
func buildFabric(s fabricSpec) System {
	top, err := topology.ParseWithBandwidth(s.topo, s.bw, hopLatency)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return System{Name: s.name, Top: top}
}

// FabricSystems returns the six comparison fabrics.
func FabricSystems() []System {
	specs := fabricSpecs()
	out := make([]System, 0, len(specs))
	for _, s := range specs {
		out = append(out, buildFabric(s))
	}
	return out
}

// FabricsResult holds the comparison cells.
type FabricsResult struct {
	Cells []Cell
}

// Cell looks up one measurement.
func (r *FabricsResult) Cell(system string, wl Workload) (Cell, error) {
	return findCell(r.Cells, system, wl, collective.Baseline)
}

// Fabrics runs the 6-fabric x 2-workload grid on the sweep engine.
func Fabrics(o Options) (*FabricsResult, error) {
	systems := FabricSystems()
	wls := []Workload{WLAllReduce, WLGPT3}
	wlAxis := sweep.Axis{Name: "workload", Values: []string{string(WLAllReduce), string(WLGPT3)}}
	spec := sweep.Spec[Cell]{
		Name: "fabrics",
		Axes: []sweep.Axis{systemAxis(systems), wlAxis},
		Cell: func(pt sweep.Point) (Cell, error) {
			return runCell(systems[pt.Index("system")], wls[pt.Index("workload")],
				collective.Baseline, o)
		},
		Fingerprint: func(pt sweep.Point) string {
			return cellFingerprint(systems[pt.Index("system")], wls[pt.Index("workload")],
				collective.Baseline, o)
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &FabricsResult{Cells: res.Values()}, nil
}

// FabricEstimates returns the closed-form 1 GB All-Reduce prediction per
// fabric — the first-order screening number a design-space exploration
// would sort on before simulating.
func FabricEstimates() map[string]units.Time {
	out := make(map[string]units.Time, 6)
	for _, s := range FabricSystems() {
		out[s.Name] = collective.Estimate(s.Top, collective.AllReduce, 1024*units.MB,
			collective.FullMachine(s.Top), collective.Baseline, 64)
	}
	return out
}
