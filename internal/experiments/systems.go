// Package experiments implements one driver per table and figure of the
// paper's evaluation (Section IV validation and Section V case studies).
// Each driver returns structured rows so that tests can assert the paper's
// qualitative claims and cmd/paper can print the regenerated artifacts.
//
// Bandwidth convention: a topology dimension's Bandwidth is the NPU's total
// (bidirectional, shared) capacity on that dimension, matching the paper's
// Table II/IV numbers: a ring phase that sends and receives D(k-1) bytes
// serializes 2·D·(k−1) bytes through it. The paper's Fig. 4 quotes NVLink
// as 150 GB/s per direction, so the validation experiment configures
// 2 x 150 GB/s of shared capacity.
package experiments

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/topology"
	"repro/internal/units"
)

// hopLatency is the uniform per-hop link latency used in the case studies;
// the paper's collectives are 100 MB–1 GB and bandwidth-bound, so the
// latency term is second-order.
const hopLatency = 500 * units.Nanosecond

// npuModel returns the case studies' NPU: 234 TFLOPS as measured on an
// A100 (Section V preamble).
func npuModel() compute.Model {
	m := compute.A100()
	return m
}

// System is a named machine configuration from Table II.
type System struct {
	Name string
	Top  *topology.Topology
}

// mustTopo builds a topology from block kinds, sizes and bandwidths.
func mustTopo(kinds []topology.BlockKind, sizes []int, gbps []float64) *topology.Topology {
	if len(kinds) != len(sizes) || len(sizes) != len(gbps) {
		panic("experiments: mismatched topology spec")
	}
	dims := make([]topology.Dim, len(kinds))
	for i := range kinds {
		dims[i] = topology.Dim{
			Kind:      kinds[i],
			Size:      sizes[i],
			Bandwidth: units.GBps(gbps[i]),
			Latency:   hopLatency,
		}
	}
	return topology.MustNew(dims...)
}

// TableII returns the six 512-NPU systems of Table II.
//
//	W-1D-350 / W-1D-500 / W-1D-600: Switch(512) wafers
//	W-2D-500:                       Switch(32)_Switch(16) at 250+250
//	Conv-3D:                        Ring(16)_FC(8)_Switch(4) at 200/100/50
//	Conv-4D:                        Ring(2)_FC(8)_Ring(8)_Switch(4) at 250/200/100/50
func TableII() []System {
	sw := topology.Switch
	r := topology.Ring
	fc := topology.FullyConnected
	return []System{
		{Name: "W-1D-350", Top: mustTopo([]topology.BlockKind{sw}, []int{512}, []float64{350})},
		{Name: "W-1D-500", Top: mustTopo([]topology.BlockKind{sw}, []int{512}, []float64{500})},
		{Name: "W-1D-600", Top: mustTopo([]topology.BlockKind{sw}, []int{512}, []float64{600})},
		{Name: "W-2D-500", Top: mustTopo([]topology.BlockKind{sw, sw}, []int{32, 16}, []float64{250, 250})},
		{Name: "Conv-3D", Top: mustTopo([]topology.BlockKind{r, fc, sw}, []int{16, 8, 4}, []float64{200, 100, 50})},
		{Name: "Conv-4D", Top: mustTopo([]topology.BlockKind{r, fc, r, sw}, []int{2, 8, 8, 4}, []float64{250, 200, 100, 50})},
	}
}

// scalingBase returns the Fig. 9(b)/Table IV baseline: the Conv-4D shape
// with its Dim 1 (on-chip) bandwidth raised to 1000 GB/s to model a
// wafer-class first dimension (Section V-A-2).
func scalingBase(dim1, dim4 int) *topology.Topology {
	return mustTopo(
		[]topology.BlockKind{topology.Ring, topology.FullyConnected, topology.Ring, topology.Switch},
		[]int{dim1, 8, 8, dim4},
		[]float64{1000, 200, 100, 50},
	)
}

// ScalingSystems returns the seven systems of Table IV / Fig. 9(b):
// the 512-NPU base, conventional scale-out (growing the NIC dimension),
// and wafer scale-up (growing the on-chip dimension).
func ScalingSystems() []System {
	return []System{
		{Name: "Base-512", Top: scalingBase(2, 4)},
		{Name: "Conv-1024", Top: scalingBase(2, 8)},
		{Name: "Conv-2048", Top: scalingBase(2, 16)},
		{Name: "Conv-4096", Top: scalingBase(2, 32)},
		{Name: "W-1024", Top: scalingBase(4, 4)},
		{Name: "W-2048", Top: scalingBase(8, 4)},
		{Name: "W-4096", Top: scalingBase(16, 4)},
	}
}

// FindSystem returns the named system from a list.
func FindSystem(systems []System, name string) (System, error) {
	for _, s := range systems {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("experiments: unknown system %q", name)
}
