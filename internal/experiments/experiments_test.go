package experiments

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/units"
)

// The tests in this file assert the paper's qualitative claims — who wins,
// by roughly what factor, where crossovers fall — for every reproduced
// table and figure. Absolute values are recorded in EXPERIMENTS.md.

func TestTableIISystems(t *testing.T) {
	systems := TableII()
	if len(systems) != 6 {
		t.Fatalf("TableII has %d systems, want 6", len(systems))
	}
	for _, s := range systems {
		if s.Top.NumNPUs() != 512 {
			t.Errorf("%s has %d NPUs, want 512 (Table II)", s.Name, s.Top.NumNPUs())
		}
	}
	// Conv-4D drives 600 GB/s per NPU — the paper's comparison point for
	// W-1D-600.
	conv4d, err := FindSystem(systems, "Conv-4D")
	if err != nil {
		t.Fatal(err)
	}
	if got := conv4d.Top.AggregateBandwidth(); got != units.GBps(600) {
		t.Errorf("Conv-4D BW/NPU = %v, want 600GB/s", got)
	}
	if _, err := FindSystem(systems, "nope"); err == nil {
		t.Error("unknown system accepted")
	}
}

// --- E1: Fig. 4 ---

func TestFig4ValidationError(t *testing.T) {
	res, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("Fig4 has %d rows, want 12 (6 sizes x 2 system sizes)", len(res.Rows))
	}
	// The paper reports a 5% mean error; our reference model is tuned from
	// public NCCL characteristics, so allow a band around it.
	if res.MeanAbsErrorPct > 8 {
		t.Errorf("mean |error| = %.2f%%, want <= 8%% (paper: 5%%)", res.MeanAbsErrorPct)
	}
	// Errors shrink as collectives grow more bandwidth-bound.
	for _, k := range []int{4, 16} {
		var small, large float64
		for _, r := range res.Rows {
			if r.NPUs != k {
				continue
			}
			if r.Size == 64*units.MB {
				small = r.ErrorPct
			}
			if r.Size == 1500*units.MB {
				large = r.ErrorPct
			}
		}
		if abs(large) >= abs(small) {
			t.Errorf("k=%d: error should shrink with size: %.2f%% -> %.2f%%", k, small, large)
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// --- E2: speedup study ---

func TestSpeedupAnalyticalVsCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level simulation is slow by design")
	}
	res, err := Speedup(units.MB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The analytical backend must be orders of magnitude faster in
	// wall-clock while agreeing on the simulated collective time.
	if res.SpeedupSmall < 100 {
		t.Errorf("analytical speedup = %.0fx, want >= 100x (paper: 756x)", res.SpeedupSmall)
	}
	if res.SimTimeAgreementPct > 2 {
		t.Errorf("simulated-time disagreement = %.2f%%, want <= 2%%", res.SimTimeAgreementPct)
	}
	// The large configuration must complete quickly (the paper: 3.14 s for
	// 4K NPUs; ours is a far smaller constant).
	if res.AnalyticalWallLarge.Seconds() > 30 {
		t.Errorf("16x16x16 analytical run took %v", res.AnalyticalWallLarge)
	}
}

// --- E3: Table IV ---

func TestTableIVShape(t *testing.T) {
	res, err := TableIV(Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := res.Row("Base-512")
	if err != nil {
		t.Fatal(err)
	}

	// Traffic columns must reproduce the paper's megabyte values exactly
	// (sent+received per NPU; Table IV row 1: 1024/896/112/12).
	wantTraffic := map[string][4]float64{
		"Base-512":  {1024, 896, 112, 12},
		"Conv-1024": {1024, 896, 112, 14},
		"Conv-2048": {1024, 896, 112, 15},
		"Conv-4096": {1024, 896, 112, 15.5},
		"W-1024":    {1536, 448, 56, 6},
		"W-2048":    {1792, 224, 28, 3},
		"W-4096":    {1920, 112, 14, 1.5},
	}
	for name, want := range wantTraffic {
		row, err := res.Row(name)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 4; d++ {
			if diff := row.TrafficPerDim[d] - want[d]; abs(diff) > 0.6 {
				t.Errorf("%s dim %d traffic = %.1f MB, want %.1f (paper Table IV)",
					name, d+1, row.TrafficPerDim[d], want[d])
			}
		}
	}

	// Conventional scale-out: collective time stays within 2% of base.
	for _, name := range []string{"Conv-1024", "Conv-2048", "Conv-4096"} {
		row, _ := res.Row(name)
		ratio := float64(row.CollectiveTime) / float64(base.CollectiveTime)
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("%s time %.2fx of base; paper shows identical times", name, ratio)
		}
	}

	// Wafer scale-up: monotone improvement to W-2048, then a bounce.
	w1024, _ := res.Row("W-1024")
	w2048, _ := res.Row("W-2048")
	w4096, _ := res.Row("W-4096")
	if !(w1024.CollectiveTime < base.CollectiveTime && w2048.CollectiveTime < w1024.CollectiveTime) {
		t.Error("wafer scaling should monotonically improve through W-2048")
	}
	if w4096.CollectiveTime <= w2048.CollectiveTime {
		t.Error("W-4096 should bounce upward (on-wafer dim becomes bottleneck)")
	}
	speedup := float64(base.CollectiveTime) / float64(w2048.CollectiveTime)
	if speedup < 2.2 || speedup > 2.8 {
		t.Errorf("peak wafer speedup = %.2fx, want within [2.2, 2.8] (paper: 2.51x)", speedup)
	}
}

// --- E4: Fig. 9(a) ---

func TestFig9aClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("48-cell case-study grid simulates reduced GPT-3/T1T iterations")
	}
	res, err := Fig9a(Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: 1-D wafers gain nothing from Themis.
	for _, sys := range []string{"W-1D-350", "W-1D-500", "W-1D-600"} {
		for _, wl := range Workloads() {
			b, err := res.Cell(sys, wl, collective.Baseline)
			if err != nil {
				t.Fatal(err)
			}
			th, err := res.Cell(sys, wl, collective.Themis)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(b.Total) / float64(th.Total)
			if ratio < 0.99 || ratio > 1.01 {
				t.Errorf("%s/%s: Themis changed a 1-D system by %.3fx", sys, wl, ratio)
			}
		}
	}

	// Claim 2: multi-dimensional systems heavily benefit from Themis on
	// the single All-Reduce.
	for sys, minGain := range map[string]float64{"W-2D-500": 1.5, "Conv-3D": 1.3, "Conv-4D": 1.1} {
		b, _ := res.Cell(sys, WLAllReduce, collective.Baseline)
		th, _ := res.Cell(sys, WLAllReduce, collective.Themis)
		gain := float64(b.Total) / float64(th.Total)
		if gain < minGain {
			t.Errorf("%s All-Reduce Themis gain = %.2fx, want >= %.2fx", sys, gain, minGain)
		}
	}

	// Claim 3: with Themis, Conv-4D (600 GB/s/NPU) roughly matches
	// W-1D-600 for the single All-Reduce and DLRM.
	for _, wl := range []Workload{WLAllReduce, WLDLRM} {
		conv, _ := res.Cell("Conv-4D", wl, collective.Themis)
		wafer, _ := res.Cell("W-1D-600", wl, collective.Baseline)
		ratio := float64(conv.Total) / float64(wafer.Total)
		if ratio > 1.35 {
			t.Errorf("%s: Conv-4D+Themis %.2fx of W-1D-600; paper says near-identical", wl, ratio)
		}
	}

	// Claim 4: wafer-scale keeps its lead on GPT-3 and Transformer-1T even
	// against Themis (hybrid parallelism uses only a subset of dims).
	for _, wl := range []Workload{WLGPT3, WLT1T} {
		conv, _ := res.Cell("Conv-4D", wl, collective.Themis)
		wafer, _ := res.Cell("W-1D-600", wl, collective.Baseline)
		if wafer.Total >= conv.Total {
			t.Errorf("%s: wafer (%v) should beat Conv-4D+Themis (%v)", wl, wafer.Total, conv.Total)
		}
	}

	// W-1D-350 vs Conv-4D baseline: more BW/NPU wins despite being
	// multi-dimensional (Section V-A-1).
	convBase, _ := res.Cell("Conv-4D", WLAllReduce, collective.Baseline)
	w350, _ := res.Cell("W-1D-350", WLAllReduce, collective.Baseline)
	if convBase.Total >= w350.Total {
		t.Error("Conv-4D (600 GB/s/NPU) should beat W-1D-350 on All-Reduce")
	}
}

// --- E5: Fig. 9(b) ---

func TestFig9bScalingTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("28-cell scaling grid reaches 4096-NPU systems")
	}
	res, err := Fig9b(Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []Workload{WLAllReduce, WLGPT3, WLT1T} {
		base, err := res.Cell("Base-512", wl, collective.Baseline)
		if err != nil {
			t.Fatal(err)
		}
		// Conventional scale-out leaves the communication-bound runtime
		// roughly flat (compute per NPU is constant in our weak-scaling
		// setup, so total runtime must not improve).
		conv4096, _ := res.Cell("Conv-4096", wl, collective.Baseline)
		if float64(conv4096.Total) < 0.95*float64(base.Total) {
			t.Errorf("%s: Conv-4096 improved over base (%v vs %v); scale-out should not help", wl, conv4096.Total, base.Total)
		}
		// Wafer scale-up helps.
		w2048, _ := res.Cell("W-2048", wl, collective.Baseline)
		if float64(w2048.Total) > 0.98*float64(base.Total) {
			t.Errorf("%s: W-2048 (%v) should improve on base (%v)", wl, w2048.Total, base.Total)
		}
	}
	// The single All-Reduce mirrors Table IV's bounce.
	w2048, _ := res.Cell("W-2048", WLAllReduce, collective.Baseline)
	w4096, _ := res.Cell("W-4096", WLAllReduce, collective.Baseline)
	if w4096.Total <= w2048.Total {
		t.Error("All-Reduce: W-4096 should bounce upward vs W-2048")
	}
}

// --- E6/E7: Fig. 11 + sweep ---

func TestFig11Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("eight MoE-1T iterations on 256 GPUs")
	}
	res, err := Fig11(Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := res.Bar(SysZeroInfinity)
	if err != nil {
		t.Fatal(err)
	}
	base, err := res.Bar(SysHierMemBaseline)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := res.Bar(SysHierMemOpt)
	if err != nil {
		t.Fatal(err)
	}

	// Claim 1: ZeRO-Infinity and HierMem baseline are nearly equal
	// (paper: 0.1%; equivalent resources).
	if res.ZeroVsBaselinePct > 5 {
		t.Errorf("ZeRO vs baseline differ by %.2f%%, want <= 5%%", res.ZeroVsBaselinePct)
	}

	// Claim 2: exposed communication dominates ZeRO and the baseline.
	for _, b := range []Fig11Bar{zero, base} {
		if b.ExposedComm <= b.Compute || b.ExposedComm <= b.ExposedRemoteMem {
			t.Errorf("%s: exposed comm (%v) should dominate compute (%v) and remote (%v)",
				b.System, b.ExposedComm, b.Compute, b.ExposedRemoteMem)
		}
	}

	// Claim 3: the swept optimum is several times faster than the
	// baseline (paper: 4.6x).
	if res.SpeedupOptVsBaseline < 3.5 || res.SpeedupOptVsBaseline > 7 {
		t.Errorf("opt speedup = %.2fx, want within [3.5, 7] (paper: 4.6x)", res.SpeedupOptVsBaseline)
	}

	// The optimum hides communication: opt's exposed comm share drops.
	baseShare := float64(base.ExposedComm) / float64(base.Total)
	optShare := float64(opt.ExposedComm) / float64(opt.Total)
	if optShare >= baseShare {
		t.Errorf("opt comm share %.2f should be below baseline %.2f", optShare, baseShare)
	}

	// Sweep sanity: more bandwidth never hurts.
	for _, p := range res.Sweep {
		if p.InNodeFabricGBps == 256 && p.RemoteGroupGBps == 100 {
			if p.Total != base.Total {
				t.Errorf("sweep corner (256,100) = %v, want baseline %v", p.Total, base.Total)
			}
		}
	}
}

// --- E8: taxonomy (Table I / Fig. 3) is covered by topology tests; here we
// confirm the scaling systems build with the documented shapes. ---

func TestScalingSystemShapes(t *testing.T) {
	want := map[string]int{
		"Base-512": 512, "Conv-1024": 1024, "Conv-2048": 2048, "Conv-4096": 4096,
		"W-1024": 1024, "W-2048": 2048, "W-4096": 4096,
	}
	for _, s := range ScalingSystems() {
		if s.Top.NumNPUs() != want[s.Name] {
			t.Errorf("%s has %d NPUs, want %d", s.Name, s.Top.NumNPUs(), want[s.Name])
		}
		if s.Top.Dims[0].Bandwidth != units.GBps(1000) {
			t.Errorf("%s Dim 1 BW = %v, want 1000GB/s", s.Name, s.Top.Dims[0].Bandwidth)
		}
	}
}
