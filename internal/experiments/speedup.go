package experiments

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/garnet"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Section IV-C speedup study — a 1 MB All-Reduce on a 3D torus, simulated
// by the cycle-level backend (the Garnet substitute) and by the analytical
// backend. The paper reports 21.42 minutes vs 1.70 seconds (756x) on
// 4x4x4, and that only the analytical backend reaches 16x16x16 (3.14 s).
// Absolute wall-clock depends on host and implementation; the reproduced
// claim is the orders-of-magnitude gap and the scalability headroom.

// SpeedupResult compares the two backends.
type SpeedupResult struct {
	Size units.ByteSize

	// 4x4x4 torus, both backends.
	SmallShape          []int
	CycleWall           time.Duration // cycle-level wall-clock
	CycleSimTime        units.Time    // simulated collective time (cycle)
	CycleCycles         uint64
	AnalyticalWall      time.Duration
	AnalyticalSimTime   units.Time
	SpeedupSmall        float64 // CycleWall / AnalyticalWall
	SimTimeAgreementPct float64 // |cycle - analytical| / cycle, percent

	// 16x16x16 torus, analytical only.
	LargeShape          []int
	AnalyticalWallLarge time.Duration
	AnalyticalSimLarge  units.Time
}

// garnetLinkGBps is the cycle simulator's per-direction link rate:
// 16 bytes/flit at 1 GHz.
const garnetLinkGBps = 16.0

// torusTopo builds the analytical twin of a garnet torus: each ring
// dimension's shared capacity is twice the per-direction link rate.
func torusTopo(shape []int) (*topology.Topology, error) {
	dims := make([]topology.Dim, len(shape))
	for i, k := range shape {
		dims[i] = topology.Dim{
			Kind:      topology.Ring,
			Size:      k,
			Bandwidth: units.GBps(2 * garnetLinkGBps),
			Latency:   units.Nanosecond, // 1 cycle at 1 GHz
		}
	}
	return topology.New(dims...)
}

func analyticalTorusAllReduce(shape []int, size units.ByteSize, shards int) (units.Time, time.Duration, error) {
	top, err := torusTopo(shape)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	// A single chunk mirrors the cycle driver's bulk-synchronous step
	// barriers, so the two backends simulate the same schedule and their
	// simulated times are directly comparable.
	res, _, err := runEngine(top, collective.AllReduce, size, 1, collective.Baseline, shards)
	if err != nil {
		return 0, 0, err
	}
	return res.Duration(), time.Since(start), nil
}

// speedupRun is one backend measurement: simulated time plus the
// wall-clock it took to produce it.
type speedupRun struct {
	Wall   time.Duration
	Sim    units.Time
	Cycles uint64
}

// Speedup runs the comparison. size is typically 1 MB (the paper's
// setting); tests may shrink it to bound runtime. The cells measure their
// own wall-clock, so they carry no fingerprints: a wall-clock study must
// never be served from cache.
func Speedup(size units.ByteSize, o Options) (*SpeedupResult, error) {
	out := &SpeedupResult{
		Size:       size,
		SmallShape: []int{4, 4, 4},
		LargeShape: []int{16, 16, 16},
	}
	runs := []string{"cycle-4x4x4", "analytical-4x4x4", "analytical-16x16x16"}
	spec := sweep.Spec[speedupRun]{
		Name: "speedup",
		Axes: []sweep.Axis{{Name: "run", Values: runs}},
		Cell: func(pt sweep.Point) (speedupRun, error) {
			switch pt.Value("run") {
			case "cycle-4x4x4":
				start := time.Now()
				g, err := garnet.New(garnet.Config{Shape: out.SmallShape, FlitBytes: 16, LinkLatency: 1, ClockGHz: 1})
				if err != nil {
					return speedupRun{}, err
				}
				simTime, cycles, err := g.AllReduce(size)
				if err != nil {
					return speedupRun{}, fmt.Errorf("cycle backend: %w", err)
				}
				return speedupRun{Wall: time.Since(start), Sim: simTime, Cycles: cycles}, nil
			case "analytical-4x4x4":
				sim, wall, err := analyticalTorusAllReduce(out.SmallShape, size, o.Shards)
				return speedupRun{Wall: wall, Sim: sim}, err
			default:
				sim, wall, err := analyticalTorusAllReduce(out.LargeShape, size, o.Shards)
				return speedupRun{Wall: wall, Sim: sim}, err
			}
		},
	}
	// Wall-clock cells must not contend for cores with each other: pin
	// the study to one worker regardless of the caller's Exec, or the
	// cycle-level run would deschedule the analytical timing and distort
	// the headline speedup.
	exec := o.Exec
	exec.Workers = 1
	res, err := sweep.Run(spec, exec)
	if err != nil {
		return nil, err
	}
	rows := res.Values()
	cycle, small, large := rows[0], rows[1], rows[2]

	out.CycleWall = cycle.Wall
	out.CycleSimTime = cycle.Sim
	out.CycleCycles = cycle.Cycles
	out.AnalyticalSimTime = small.Sim
	out.AnalyticalWall = small.Wall
	if out.AnalyticalWall > 0 {
		out.SpeedupSmall = float64(out.CycleWall) / float64(out.AnalyticalWall)
	}
	if out.CycleSimTime > 0 {
		diff := out.CycleSimTime - out.AnalyticalSimTime
		if diff < 0 {
			diff = -diff
		}
		out.SimTimeAgreementPct = 100 * float64(diff) / float64(out.CycleSimTime)
	}
	out.AnalyticalSimLarge = large.Sim
	out.AnalyticalWallLarge = large.Wall
	return out, nil
}
