package experiments

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/garnet"
	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Section IV-C speedup study — a 1 MB All-Reduce on a 3D torus, simulated
// by the cycle-level backend (the Garnet substitute) and by the analytical
// backend. The paper reports 21.42 minutes vs 1.70 seconds (756x) on
// 4x4x4, and that only the analytical backend reaches 16x16x16 (3.14 s).
// Absolute wall-clock depends on host and implementation; the reproduced
// claim is the orders-of-magnitude gap and the scalability headroom.

// SpeedupResult compares the two backends.
type SpeedupResult struct {
	Size units.ByteSize

	// 4x4x4 torus, both backends.
	SmallShape          []int
	CycleWall           time.Duration // cycle-level wall-clock
	CycleSimTime        units.Time    // simulated collective time (cycle)
	CycleCycles         uint64
	AnalyticalWall      time.Duration
	AnalyticalSimTime   units.Time
	SpeedupSmall        float64 // CycleWall / AnalyticalWall
	SimTimeAgreementPct float64 // |cycle - analytical| / cycle, percent

	// 16x16x16 torus, analytical only.
	LargeShape          []int
	AnalyticalWallLarge time.Duration
	AnalyticalSimLarge  units.Time
}

// garnetLinkGBps is the cycle simulator's per-direction link rate:
// 16 bytes/flit at 1 GHz.
const garnetLinkGBps = 16.0

// torusTopo builds the analytical twin of a garnet torus: each ring
// dimension's shared capacity is twice the per-direction link rate.
func torusTopo(shape []int) (*topology.Topology, error) {
	dims := make([]topology.Dim, len(shape))
	for i, k := range shape {
		dims[i] = topology.Dim{
			Kind:      topology.Ring,
			Size:      k,
			Bandwidth: units.GBps(2 * garnetLinkGBps),
			Latency:   units.Nanosecond, // 1 cycle at 1 GHz
		}
	}
	return topology.New(dims...)
}

func analyticalTorusAllReduce(shape []int, size units.ByteSize) (units.Time, time.Duration, error) {
	top, err := torusTopo(shape)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	eng := timeline.New()
	net := network.NewBackend(eng, top)
	// A single chunk mirrors the cycle driver's bulk-synchronous step
	// barriers, so the two backends simulate the same schedule and their
	// simulated times are directly comparable.
	ce := collective.NewEngine(net, collective.WithChunks(1))
	var res collective.Result
	if err := ce.Start(collective.AllReduce, size, collective.FullMachine(top), func(r collective.Result) { res = r }); err != nil {
		return 0, 0, err
	}
	if _, err := eng.Run(); err != nil {
		return 0, 0, err
	}
	return res.Duration(), time.Since(start), nil
}

// Speedup runs the comparison. size is typically 1 MB (the paper's
// setting); tests may shrink it to bound runtime.
func Speedup(size units.ByteSize) (*SpeedupResult, error) {
	out := &SpeedupResult{
		Size:       size,
		SmallShape: []int{4, 4, 4},
		LargeShape: []int{16, 16, 16},
	}

	// Cycle-level backend on the small torus.
	start := time.Now()
	g, err := garnet.New(garnet.Config{Shape: out.SmallShape, FlitBytes: 16, LinkLatency: 1, ClockGHz: 1})
	if err != nil {
		return nil, err
	}
	simTime, cycles, err := g.AllReduce(size)
	if err != nil {
		return nil, fmt.Errorf("speedup: cycle backend: %w", err)
	}
	out.CycleWall = time.Since(start)
	out.CycleSimTime = simTime
	out.CycleCycles = cycles

	// Analytical backend on the small torus.
	out.AnalyticalSimTime, out.AnalyticalWall, err = analyticalTorusAllReduce(out.SmallShape, size)
	if err != nil {
		return nil, err
	}
	if out.AnalyticalWall > 0 {
		out.SpeedupSmall = float64(out.CycleWall) / float64(out.AnalyticalWall)
	}
	if out.CycleSimTime > 0 {
		diff := out.CycleSimTime - out.AnalyticalSimTime
		if diff < 0 {
			diff = -diff
		}
		out.SimTimeAgreementPct = 100 * float64(diff) / float64(out.CycleSimTime)
	}

	// Analytical backend at a scale the cycle backend cannot reach.
	out.AnalyticalSimLarge, out.AnalyticalWallLarge, err = analyticalTorusAllReduce(out.LargeShape, size)
	if err != nil {
		return nil, err
	}
	return out, nil
}
