package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/sweep"
	"repro/internal/units"
)

// The sweep engine guarantees that parallel execution is byte-identical
// to serial. These tests hold every reproduced artifact to that bar and
// verify that overlapping grids share simulations through the cache.

// marshal renders an experiment result for byte comparison.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	type runner struct {
		name    string
		run     func(o Options) (any, error)
		workers []int // parallel worker counts compared against serial
	}
	cheap := []int{4, 16}
	runners := []runner{
		{"fig4", func(o Options) (any, error) { return Fig4(o) }, cheap},
		{"tableiv", func(o Options) (any, error) { return TableIV(o) }, cheap},
		{"ablation", func(o Options) (any, error) { return Ablation(o) }, cheap},
		{"pooldesigns", func(o Options) (any, error) { return PoolDesigns(o) }, cheap},
	}
	if !testing.Short() {
		// The heavy grids re-simulate per worker count, so they compare a
		// single parallel setting. Fig9b shares caseStudySpec with Fig9a
		// and adds no new engine path; its determinism is covered there.
		runners = append(runners,
			runner{"fig9a", func(o Options) (any, error) { return Fig9a(o) }, []int{4}},
			runner{"fig11", func(o Options) (any, error) { return Fig11(o) }, []int{4}},
		)
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			serial, err := r.run(Options{Reduced: true, Exec: sweep.Exec{Workers: 1}})
			if err != nil {
				t.Fatal(err)
			}
			want := marshal(t, serial)
			for _, workers := range r.workers {
				parallel, err := r.run(Options{Reduced: true, Exec: sweep.Exec{Workers: workers}})
				if err != nil {
					t.Fatal(err)
				}
				if got := marshal(t, parallel); string(got) != string(want) {
					t.Errorf("workers=%d: result differs from serial run", workers)
				}
			}
		})
	}
}

func TestFig11SharesBaselineWithSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates seven MoE-1T iterations")
	}
	cache := sweep.NewCache()
	res, err := Fig11(Options{Reduced: true, Exec: sweep.Exec{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	// Reduced grids: 2 bar cells + 6 sweep cells, of which the sweep's
	// (256, 100) corner is the HierMem baseline bar — 7 simulations, 1 hit.
	if stats.Entries != 7 {
		t.Errorf("cache holds %d entries, want 7 (8 cells, 1 shared)", stats.Entries)
	}
	if stats.Hits != 1 {
		t.Errorf("cache hits = %d, want 1 (sweep corner == baseline bar)", stats.Hits)
	}
	// The shared cell must still report the baseline's exact makespan.
	base, err := res.Bar(SysHierMemBaseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Sweep {
		if p.InNodeFabricGBps == 256 && p.RemoteGroupGBps == 100 && p.Total != base.Total {
			t.Errorf("shared corner = %v, want baseline %v", p.Total, base.Total)
		}
	}
}

func TestCrossExperimentCacheReuse(t *testing.T) {
	// TableIV twice through one cache: the second run must simulate
	// nothing.
	cache := sweep.NewCache()
	first, err := TableIV(Options{Exec: sweep.Exec{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	miss := cache.Stats().Misses
	if miss != 7 {
		t.Fatalf("first run: %d misses, want 7", miss)
	}
	second, err := TableIV(Options{Exec: sweep.Exec{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.Misses != miss || stats.Hits != 7 {
		t.Errorf("second run: stats %+v, want 7 hits and no new misses", stats)
	}
	if string(marshal(t, first)) != string(marshal(t, second)) {
		t.Error("cached rerun differs from original")
	}
}

func TestEngineFingerprintDistinguishesConfigs(t *testing.T) {
	sys := TableII()
	a := sys[0] // W-1D-350
	b := sys[1] // W-1D-500: same shape, different bandwidth
	fa := topoFingerprint(a.Top)
	fb := topoFingerprint(b.Top)
	if fa == fb {
		t.Errorf("bandwidth not captured: %q == %q", fa, fb)
	}
	if a.Top.String() != b.Top.String() {
		t.Skipf("shapes differ (%s vs %s); fingerprint trivially distinct", a.Top, b.Top)
	}
}

func TestSpeedupNeverCached(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level simulation is slow by design")
	}
	cache := sweep.NewCache()
	for i := 0; i < 2; i++ {
		if _, err := Speedup(64*units.KiB, Options{Exec: sweep.Exec{Cache: cache}}); err != nil {
			t.Fatal(err)
		}
	}
	stats := cache.Stats()
	if stats.Entries != 0 || stats.Hits != 0 || stats.Misses != 0 {
		t.Errorf("wall-clock study touched the cache: %+v", stats)
	}
}
