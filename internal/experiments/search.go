package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/search"
	"repro/internal/sweep"
	"repro/internal/units"
)

// Search — the design-space-search extension study. The fabrics grid of
// PR 2 crossed with four bandwidth provisioning scales gives a 24-point
// design space; finding the best GPT-3 fabric exhaustively means 24 full
// event-engine simulations. The multi-fidelity halving search screens all
// 24 points with the closed-form 1 GB All-Reduce estimate (microseconds
// of work) and promotes only the top quartile to full simulation — it
// must recover the exhaustive optimum while simulating 25% of the cells.

// fabricSearchScales are the bandwidth provisioning multipliers applied
// to every fabric of the comparison.
func fabricSearchScales() []float64 { return []float64{0.5, 1, 2, 4} }

// FabricSearchSystems returns the 24-system search space: each comparison
// fabric at each provisioning scale, named e.g. "SW-Flat x2".
func FabricSearchSystems() []System {
	specs := fabricSpecs()
	scales := fabricSearchScales()
	out := make([]System, 0, len(specs)*len(scales))
	for _, s := range specs {
		for _, scale := range scales {
			bw := make([]float64, len(s.bw))
			for i, v := range s.bw {
				bw[i] = v * scale
			}
			scaled := fabricSpec{
				name: fmt.Sprintf("%s x%s", s.name, sweep.FormatFloat(scale)),
				topo: s.topo,
				bw:   bw,
			}
			out = append(out, buildFabric(scaled))
		}
	}
	return out
}

// fabricSearchProblem frames the space as a search problem: the cheap
// fidelity is the closed-form 1 GB All-Reduce screening estimate, the
// full fidelity one simulated GPT-3 training iteration (objective:
// makespan). Scores are microseconds at both fidelities.
func fabricSearchProblem(systems []System, o Options) search.Problem {
	return search.Problem{
		Name:       "fabric-search",
		Candidates: len(systems),
		Label:      func(i int) string { return systems[i].Name },
		Estimate: func(i int) (float64, error) {
			top := systems[i].Top
			return collective.Estimate(top, collective.AllReduce, 1024*units.MB,
				collective.FullMachine(top), collective.Baseline, 64).Micros(), nil
		},
		Simulate: func(i int) (float64, error) {
			cell, err := runCell(systems[i], WLGPT3, collective.Baseline, o)
			if err != nil {
				return 0, err
			}
			return cell.Total.Micros(), nil
		},
		Fingerprint: func(i int, f search.Fidelity) string {
			if f == search.FidelityEstimate {
				return "search-est|ar-1g|" + topoFingerprint(systems[i].Top)
			}
			return "search-sim|" + cellFingerprint(systems[i], WLGPT3, collective.Baseline, o)
		},
	}
}

// FabricSearchResult pairs the budgeted search with its exhaustive
// baseline over the same space.
type FabricSearchResult struct {
	// Space is the candidate count (fabrics x provisioning scales).
	Space int `json:"space"`
	// Halving is the multi-fidelity successive-halving run.
	Halving *search.Result `json:"halving"`
	// Exhaustive simulates the whole space — the ground-truth optimum.
	Exhaustive *search.Result `json:"exhaustive"`
	// Recovered reports whether the budgeted search found the exhaustive
	// winner.
	Recovered bool `json:"recovered"`
	// SimFraction is the share of the space the halving run simulated at
	// full fidelity.
	SimFraction float64 `json:"sim_fraction"`
}

// FabricSearch runs the halving search and the exhaustive baseline over
// the 24-point fabric space. Results are deterministic for any worker
// count. The halving pass runs first so a shared Options cache cannot
// subsidize its wall-clock cost.
func FabricSearch(o Options) (*FabricSearchResult, error) {
	systems := FabricSearchSystems()
	p := fabricSearchProblem(systems, o)
	halving, err := search.Optimize(p, search.Options{Strategy: "halving", Seed: 1, Exec: o.Exec})
	if err != nil {
		return nil, err
	}
	exhaustive, err := search.Optimize(p, search.Options{Strategy: "exhaustive", Seed: 1, Exec: o.Exec})
	if err != nil {
		return nil, err
	}
	return &FabricSearchResult{
		Space:       len(systems),
		Halving:     halving,
		Exhaustive:  exhaustive,
		Recovered:   halving.Best.Candidate == exhaustive.Best.Candidate,
		SimFraction: float64(halving.Simulations) / float64(len(systems)),
	}, nil
}
