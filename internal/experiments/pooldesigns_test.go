package experiments

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/units"
)

func TestPoolDesignsComparison(t *testing.T) {
	res, err := PoolDesigns(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5*3 {
		t.Fatalf("grid has %d rows, want 15", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Transfer <= 0 {
			t.Errorf("%v at %v: non-positive transfer time", row.Design, row.PerGPU)
		}
	}
	// Transfers scale monotonically with payload within each design.
	for _, d := range []memory.PoolDesign{
		memory.Hierarchical, memory.MultiLevelSwitch,
		memory.RingPool, memory.MeshPool, memory.PrivatePerGPU,
	} {
		small, ok1 := res.Row(d, 32*units.MB)
		large, ok2 := res.Row(d, 1000*units.MB)
		if !ok1 || !ok2 {
			t.Fatalf("%v rows missing", d)
		}
		if large.Transfer <= small.Transfer {
			t.Errorf("%v: larger payload not slower (%v vs %v)", d, large.Transfer, small.Transfer)
		}
	}
	// At equal link bandwidth, the single shared ring's capacity is far
	// below the switched designs': it must be the slowest fabric.
	ring, _ := res.Row(memory.RingPool, 325*units.MB)
	hier, _ := res.Row(memory.Hierarchical, 325*units.MB)
	mesh, _ := res.Row(memory.MeshPool, 325*units.MB)
	if ring.Transfer <= hier.Transfer || ring.Transfer <= mesh.Transfer {
		t.Errorf("ring pool should be slowest: ring=%v hier=%v mesh=%v",
			ring.Transfer, hier.Transfer, mesh.Transfer)
	}
}
