package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/etgen"
	"repro/internal/memory"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Table V + Fig. 11 — the disaggregated-memory case study (Section V-B):
// training a 1T-parameter Mixture-of-Experts model on 256 GPUs whose
// parameters and optimizer state live beyond local HBM, comparing
//
//	ZeRO-Infinity:      each GPU streams its shard over a private remote
//	                    path (CPU+NVMe, Fig. 10) and materializes layers
//	                    with network All-Gathers;
//	HierMem (baseline): a shared hierarchical memory pool with in-switch
//	                    collectives (gather-on-load / reduce-on-store);
//	HierMem (opt):      the best sweep point of the pool's design space
//	                    (in-node pooled fabric 256..2048 GB/s x remote
//	                    group bandwidth 100..500 GB/s).
//
// The paper's findings: ZeRO-Infinity and the baseline HierMem perform
// within a fraction of a percent of each other (equivalent resources);
// exposed communication dominates both; and the swept optimum runs 4.6x
// faster than the baseline.

// Fig11System names one bar of the figure.
type Fig11System string

// The three systems.
const (
	SysZeroInfinity    Fig11System = "ZeRO-Infinity"
	SysHierMemBaseline Fig11System = "HierMem (baseline)"
	SysHierMemOpt      Fig11System = "HierMem (opt)"
)

// Fig11Bar is one stacked bar: the five-way runtime breakdown.
type Fig11Bar struct {
	System           Fig11System
	Compute          units.Time
	ExposedComm      units.Time
	ExposedRemoteMem units.Time
	ExposedLocalMem  units.Time
	ExposedIdle      units.Time
	Total            units.Time
	// InNodeFabricGBps / RemoteGroupGBps record the pool configuration
	// behind the bar (the opt bar carries the sweep winner).
	InNodeFabricGBps float64
	RemoteGroupGBps  float64
}

// SweepPoint is one cell of the Section V-B design-space sweep.
type SweepPoint struct {
	InNodeFabricGBps float64
	RemoteGroupGBps  float64
	Total            units.Time
}

// Fig11Result is the whole study.
type Fig11Result struct {
	Bars  []Fig11Bar
	Sweep []SweepPoint
	// SpeedupOptVsBaseline is the headline: the paper reports 4.6x.
	SpeedupOptVsBaseline float64
	// ZeroVsBaselinePct is |ZeRO - baseline| / baseline (paper: ~0.1%).
	ZeroVsBaselinePct float64
}

// Bar returns the named bar.
func (r *Fig11Result) Bar(sys Fig11System) (Fig11Bar, error) {
	for _, b := range r.Bars {
		if b.System == sys {
			return b, nil
		}
	}
	return Fig11Bar{}, fmt.Errorf("fig11: no bar %q", sys)
}

// Machine scale: 16 nodes x 16 GPUs (Fig. 6's running example at Table V's
// 256 remote memory groups).
const (
	fig11Nodes       = 16
	fig11GPUsPerNode = 16
)

// fig11Topology is the GPU network both systems share for activations and
// (in ZeRO-Infinity's case) parameter collectives: an in-node switch plus
// an out-node InfiniBand-class fabric. Bandwidths are shared-capacity
// (sent+received) figures.
func fig11Topology() *topology.Topology {
	return mustTopo(
		[]topology.BlockKind{topology.Switch, topology.Switch},
		[]int{fig11GPUsPerNode, fig11Nodes},
		[]float64{460, 100},
	)
}

// fig11Compute is Table V's future-GPU: 2048 TFLOPS peak with 4096 GB/s of
// local HBM bandwidth.
func fig11Compute() compute.Model {
	return compute.Model{
		Peak:         units.TFLOPS(2048),
		MemBandwidth: units.GBps(4096),
		Efficiency:   0.5, // sustained MoE kernels
	}
}

// fig11Pool builds the HierMem pool for given sweep bandwidths.
func fig11Pool(inNodeGBps, remoteGBps float64) memory.PoolConfig {
	return memory.PoolConfig{
		Design:             memory.Hierarchical,
		NumNodes:           fig11Nodes,
		GPUsPerNode:        fig11GPUsPerNode,
		NumOutSwitches:     16,
		NumRemoteGroups:    256,
		ChunkSize:          256 * units.KiB,
		RemoteGroupBW:      units.GBps(remoteGBps),
		GPUSideOutFabricBW: units.GBps(8192),
		InNodeFabricBW:     units.GBps(inNodeGBps),
		Latency:            2 * units.Microsecond,
	}
}

// fig11ZeroPool is the ZeRO-Infinity substrate: one private CPU+NVMe path
// per GPU at the baseline remote bandwidth.
func fig11ZeroPool() memory.PoolConfig {
	return memory.PoolConfig{
		Design:          memory.PrivatePerGPU,
		NumNodes:        fig11Nodes,
		GPUsPerNode:     fig11GPUsPerNode,
		NumRemoteGroups: fig11Nodes * fig11GPUsPerNode,
		RemoteGroupBW:   units.GBps(100),
		Latency:         10 * units.Microsecond,
	}
}

// runFig11System simulates one MoE-1T iteration on one system.
func runFig11System(useInSwitch bool, pool memory.PoolConfig, shards int) (*core.RunStats, error) {
	top := fig11Topology()
	cfg := etgen.MoE1T(useInSwitch)
	trace, err := etgen.MoETrace(top, cfg)
	if err != nil {
		return nil, err
	}
	sim, err := core.NewSimulator(core.Config{
		Topology: top,
		Compute:  fig11Compute(),
		Memory: memory.System{
			Local:   memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(4096)},
			Pool:    pool,
			HasPool: true,
		},
		Policy:             collective.Baseline,
		Chunks:             32,
		Shards:             shards,
		CollectiveLogLimit: 1,
		Memo:               collMemo,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run(trace)
}

func statsToBar(sys Fig11System, stats *core.RunStats, pool memory.PoolConfig) Fig11Bar {
	m := stats.MeanBreakdown()
	return Fig11Bar{
		System:           sys,
		Compute:          m.Compute,
		ExposedComm:      m.ExposedComm,
		ExposedRemoteMem: m.ExposedRemoteMem,
		ExposedLocalMem:  m.ExposedLocalMem,
		ExposedIdle:      m.Idle,
		Total:            stats.Makespan,
		InNodeFabricGBps: pool.InNodeFabricBW.GBpsValue(),
		RemoteGroupGBps:  pool.RemoteGroupBW.GBpsValue(),
	}
}

// fig11Cell is one simulated system: its pool configuration and run stats.
type fig11Cell struct {
	pool  memory.PoolConfig
	stats *core.RunStats
}

// fig11Fingerprint identifies a MoE-1T run: the in-switch flag plus the
// full pool configuration (the GPU topology, compute model and workload
// are fixed across the study).
func fig11Fingerprint(inSwitch bool, pool memory.PoolConfig) string {
	return fmt.Sprintf("moe1t|inswitch=%t|%s", inSwitch, poolFingerprint(pool))
}

// Fig11 runs the three-bar comparison and the design-space sweep. With
// Reduced set only the sweep's corner points run (for tests); the full
// grid is 8 x 5 points. The HierMem baseline bar and the sweep's
// (256, 100) corner are the same configuration; the shared result cache
// simulates it once.
func Fig11(o Options) (*Fig11Result, error) {
	exec := o.Exec
	if exec.Cache == nil {
		// The bar grid and the sweep grid overlap; share results.
		exec.Cache = sweep.NewCache()
	}
	out := &Fig11Result{}

	// Grid 1: the two reference bars.
	barSystems := []string{string(SysZeroInfinity), string(SysHierMemBaseline)}
	barSpec := sweep.Spec[fig11Cell]{
		Name: "fig11-bars",
		Axes: []sweep.Axis{{Name: "system", Values: barSystems}},
		Cell: func(pt sweep.Point) (fig11Cell, error) {
			inSwitch := pt.Index("system") == 1
			pool := fig11ZeroPool()
			if inSwitch {
				pool = fig11Pool(256, 100)
			}
			stats, err := runFig11System(inSwitch, pool, o.Shards)
			if err != nil {
				return fig11Cell{}, err
			}
			return fig11Cell{pool: pool, stats: stats}, nil
		},
		Fingerprint: func(pt sweep.Point) string {
			if pt.Index("system") == 0 {
				return fig11Fingerprint(false, fig11ZeroPool())
			}
			return fig11Fingerprint(true, fig11Pool(256, 100))
		},
	}
	bars, err := sweep.Run(barSpec, exec)
	if err != nil {
		return nil, err
	}
	zero, base := bars.Rows[0].Value, bars.Rows[1].Value
	out.Bars = append(out.Bars,
		statsToBar(SysZeroInfinity, zero.stats, zero.pool),
		statsToBar(SysHierMemBaseline, base.stats, base.pool))

	// Grid 2: the design-space sweep (Section V-B): in-node fabric
	// 256..2048 step 256, remote group 100..500 step 100.
	inNodeGrid := []float64{256, 512, 768, 1024, 1280, 1536, 1792, 2048}
	remoteGrid := []float64{100, 200, 300, 400, 500}
	if o.Reduced {
		inNodeGrid = []float64{256, 512, 2048}
		remoteGrid = []float64{100, 500}
	}
	sweepSpec := sweep.Spec[fig11Cell]{
		Name: "fig11-sweep",
		Axes: []sweep.Axis{floatAxis("in_node_gbps", inNodeGrid), floatAxis("remote_gbps", remoteGrid)},
		Cell: func(pt sweep.Point) (fig11Cell, error) {
			pool := fig11Pool(inNodeGrid[pt.Index("in_node_gbps")], remoteGrid[pt.Index("remote_gbps")])
			stats, err := runFig11System(true, pool, o.Shards)
			if err != nil {
				return fig11Cell{}, err
			}
			return fig11Cell{pool: pool, stats: stats}, nil
		},
		Fingerprint: func(pt sweep.Point) string {
			pool := fig11Pool(inNodeGrid[pt.Index("in_node_gbps")], remoteGrid[pt.Index("remote_gbps")])
			return fig11Fingerprint(true, pool)
		},
	}
	grid, err := sweep.Run(sweepSpec, exec)
	if err != nil {
		return nil, err
	}
	// Best performance with least resource provision: strictly faster
	// wins; equal performance prefers the earlier (cheaper) grid point.
	var best fig11Cell
	for _, row := range grid.Rows {
		c := row.Value
		out.Sweep = append(out.Sweep, SweepPoint{
			InNodeFabricGBps: c.pool.InNodeFabricBW.GBpsValue(),
			RemoteGroupGBps:  c.pool.RemoteGroupBW.GBpsValue(),
			Total:            c.stats.Makespan,
		})
		if best.stats == nil || c.stats.Makespan < best.stats.Makespan {
			best = c
		}
	}
	out.Bars = append(out.Bars, statsToBar(SysHierMemOpt, best.stats, best.pool))

	out.SpeedupOptVsBaseline = float64(base.stats.Makespan) / float64(best.stats.Makespan)
	diff := zero.stats.Makespan - base.stats.Makespan
	if diff < 0 {
		diff = -diff
	}
	out.ZeroVsBaselinePct = 100 * float64(diff) / float64(base.stats.Makespan)
	return out, nil
}
