package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func TestFabricSearchSystemsShape(t *testing.T) {
	systems := FabricSearchSystems()
	if len(systems) != 24 {
		t.Fatalf("%d systems, want 6 fabrics x 4 scales", len(systems))
	}
	for _, s := range systems {
		if s.Top.NumNPUs() != 512 {
			t.Errorf("%s has %d NPUs, want 512", s.Name, s.Top.NumNPUs())
		}
	}
	// Scaled names stay parseable back to their fabric.
	var found int
	for _, s := range systems {
		if strings.HasPrefix(s.Name, "SW-Flat x") {
			found++
		}
	}
	if found != 4 {
		t.Errorf("%d SW-Flat scales, want 4", found)
	}
}

// TestFabricSearchRecoversOptimum is the subsystem's acceptance claim: on
// the reduced fabrics grid the halving search finds the same optimum as
// the exhaustive sweep while running the full event engine on at most 30%
// of the cells, and the run is reproducible at any worker count.
func TestFabricSearchRecoversOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("search grid simulates GPT-3 on 512-NPU systems")
	}
	o := Options{Reduced: true, Exec: sweep.Exec{Cache: sweep.NewCache()}}
	res, err := FabricSearch(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Space != 24 {
		t.Fatalf("space = %d, want 24", res.Space)
	}
	if res.Exhaustive.Simulations != 24 {
		t.Errorf("exhaustive ran %d simulations, want 24", res.Exhaustive.Simulations)
	}
	if !res.Recovered {
		t.Errorf("halving best %q != exhaustive best %q",
			res.Halving.Best.Label, res.Exhaustive.Best.Label)
	}
	if res.SimFraction > 0.3 {
		t.Errorf("halving simulated %.0f%% of the space, want <= 30%%", 100*res.SimFraction)
	}
	if res.Halving.Best.Score != res.Exhaustive.Best.Score {
		t.Errorf("winner scores differ: %g vs %g", res.Halving.Best.Score, res.Exhaustive.Best.Score)
	}
	// More bandwidth can only help GPT-3: the winner sits at max scale.
	if !strings.HasSuffix(res.Exhaustive.Best.Label, "x4") {
		t.Errorf("exhaustive winner %q is not a x4-provisioned fabric", res.Exhaustive.Best.Label)
	}

	// Reproducibility: a fixed seed and budget give byte-identical results
	// at any worker count.
	var want bytes.Buffer
	if err := res.Halving.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		o := Options{Reduced: true, Exec: sweep.Exec{Workers: workers, Cache: sweep.NewCache()}}
		again, err := FabricSearch(o)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := again.Halving.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d: halving result differs", workers)
		}
	}
}
