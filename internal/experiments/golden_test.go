package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-output regression suite: every experiment's structured result
// is serialized to canonical JSON and diffed byte-for-byte against a
// committed fixture, so engine refactors cannot silently drift the paper
// artifacts. PR 4 verified byte-identical outputs by hand; this locks the
// property in.
//
// Regenerate fixtures after an intentional model change with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the fixture diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite the golden fixtures under testdata/golden")

type goldenCase struct {
	name string
	// short marks fixtures cheap enough for -short runs; the heavy grids
	// still run under plain `go test` and in CI's race job.
	short bool
	run   func() (any, error)
}

func goldenCases() []goldenCase {
	// Each case builds its own Options so fixtures are independent of test
	// execution order; worker count does not affect results.
	return []goldenCase{
		{"fig4", true, func() (any, error) { return Fig4(Options{}) }},
		{"tableiv", true, func() (any, error) { return TableIV(Options{}) }},
		{"ablation", true, func() (any, error) { return Ablation(Options{Reduced: true}) }},
		{"fabrics_reduced", false, func() (any, error) { return Fabrics(Options{Reduced: true}) }},
		{"interference_reduced", false, func() (any, error) { return Interference(Options{Reduced: true}) }},
		{"resilience_reduced", false, func() (any, error) { return Resilience(Options{Reduced: true}) }},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && !c.short {
				t.Skipf("%s golden runs a heavy grid; covered by the full suite and CI", c.name)
			}
			res, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := goldenPath(c.name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden fixture: %v\n(generate with: go test ./internal/experiments -run TestGolden -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s drifted from its golden fixture (%s).\n%s\nIf the change is intentional, regenerate with -update and review the diff.",
					c.name, path, firstGoldenDiff(want, got))
			}
		})
	}
}

// firstGoldenDiff locates the first differing line for a readable failure.
func firstGoldenDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: golden %d lines, got %d", len(wl), len(gl))
}
