package experiments

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sweep"
	"repro/internal/units"
)

// Pool-design comparison — an extension beyond the paper's evaluation:
// Fig. 5 sketches four disaggregated-pool architectures (multi-level
// switch, ring, mesh, hierarchical) but Section V-B only evaluates the
// hierarchical design. This experiment runs the same bulk transfer
// through all four at equal per-resource bandwidths, quantifying the
// fabric-architecture effect the figure gestures at.

// PoolDesignRow is one design's transfer time at one payload size.
type PoolDesignRow struct {
	Design   memory.PoolDesign
	PerGPU   units.ByteSize
	Transfer units.Time
}

// PoolDesignResult is the comparison grid.
type PoolDesignResult struct {
	Rows []PoolDesignRow
}

// Row retrieves one measurement.
func (r *PoolDesignResult) Row(d memory.PoolDesign, perGPU units.ByteSize) (PoolDesignRow, bool) {
	for _, row := range r.Rows {
		if row.Design == d && row.PerGPU == perGPU {
			return row, true
		}
	}
	return PoolDesignRow{}, false
}

// PoolDesigns compares the four architectures (plus the ZeRO-Infinity
// private-path baseline) on the Fig. 6 machine: 256 GPUs, 256 remote
// memory groups, Table V's baseline bandwidths.
func PoolDesigns(o Options) (*PoolDesignResult, error) {
	base := memory.PoolConfig{
		NumNodes:           16,
		GPUsPerNode:        16,
		NumOutSwitches:     16,
		NumRemoteGroups:    256,
		ChunkSize:          256 * units.KiB,
		RemoteGroupBW:      units.GBps(100),
		GPUSideOutFabricBW: units.GBps(8192),
		InNodeFabricBW:     units.GBps(256),
	}
	designs := []memory.PoolDesign{
		memory.Hierarchical,
		memory.MultiLevelSwitch,
		memory.RingPool,
		memory.MeshPool,
		memory.PrivatePerGPU,
	}
	designNames := make([]string, len(designs))
	for i, d := range designs {
		designNames[i] = d.String()
	}
	sizes := []units.ByteSize{32 * units.MB, 325 * units.MB, 1000 * units.MB}
	spec := sweep.Spec[PoolDesignRow]{
		Name: "pooldesigns",
		Axes: []sweep.Axis{
			{Name: "design", Values: designNames},
			sizeAxis("per_gpu", sizes),
		},
		Cell: func(pt sweep.Point) (PoolDesignRow, error) {
			cfg := base
			cfg.Design = designs[pt.Index("design")]
			if err := cfg.Validate(); err != nil {
				return PoolDesignRow{}, err
			}
			s := sizes[pt.Index("per_gpu")]
			return PoolDesignRow{
				Design:   cfg.Design,
				PerGPU:   s,
				Transfer: cfg.TransferTime(s),
			}, nil
		},
		Fingerprint: func(pt sweep.Point) string {
			cfg := base
			cfg.Design = designs[pt.Index("design")]
			return fmt.Sprintf("pooltransfer|size=%d|%s", sizes[pt.Index("per_gpu")], poolFingerprint(cfg))
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &PoolDesignResult{Rows: res.Values()}, nil
}
