package experiments

import (
	"repro/internal/collective"
	"repro/internal/sweep"
	"repro/internal/units"
)

// Ablations for the simulator's own design choices (DESIGN.md §6): how
// the chunk-pipelining depth and the scheduler interact on the paper's
// systems. These are not paper artifacts; they justify the default
// configuration (64 chunks) and quantify what each mechanism contributes.

// AblationRow is one (system, chunks, policy) measurement of a 1 GB
// All-Reduce.
type AblationRow struct {
	System   string
	Chunks   int
	Policy   collective.Policy
	Duration units.Time
	// SimEvents is the discrete-event cost of the configuration.
	SimEvents uint64
}

// AblationResult is the grid.
type AblationResult struct {
	Rows []AblationRow
}

// Row retrieves one measurement.
func (r *AblationResult) Row(system string, chunks int, policy collective.Policy) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.System == system && row.Chunks == chunks && row.Policy == policy {
			return row, true
		}
	}
	return AblationRow{}, false
}

// Ablation sweeps chunk counts {1, 4, 16, 64, 256} and both schedulers
// over the W-2D-500 and Conv-4D systems.
func Ablation(o Options) (*AblationResult, error) {
	const size = 1024 * units.MB
	all := TableII()
	var systems []System
	for _, name := range []string{"W-2D-500", "Conv-4D"} {
		sys, err := FindSystem(all, name)
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys)
	}
	chunkGrid := []int{1, 4, 16, 64, 256}
	policies := []collective.Policy{collective.Baseline, collective.Themis}
	spec := sweep.Spec[AblationRow]{
		Name: "ablation",
		Axes: []sweep.Axis{systemAxis(systems), intAxis("chunks", chunkGrid), policyAxis(policies)},
		Cell: func(pt sweep.Point) (AblationRow, error) {
			sys := systems[pt.Index("system")]
			chunks := chunkGrid[pt.Index("chunks")]
			policy := policies[pt.Index("policy")]
			res, fired, err := runEngine(sys.Top, collective.AllReduce, size, chunks, policy, o.Shards)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				System:    sys.Name,
				Chunks:    chunks,
				Policy:    policy,
				Duration:  res.Duration(),
				SimEvents: fired,
			}, nil
		},
		Fingerprint: func(pt sweep.Point) string {
			// The row embeds the system name, so the name is part of the key.
			sys := systems[pt.Index("system")]
			return "ablation|sys=" + sys.Name + "|" + engineFingerprint(sys.Top, collective.AllReduce, size,
				chunkGrid[pt.Index("chunks")], policies[pt.Index("policy")])
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Rows: res.Values()}, nil
}
