package experiments

import (
	"repro/internal/collective"
	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/units"
)

// Ablations for the simulator's own design choices (DESIGN.md §6): how
// the chunk-pipelining depth and the scheduler interact on the paper's
// systems. These are not paper artifacts; they justify the default
// configuration (64 chunks) and quantify what each mechanism contributes.

// AblationRow is one (system, chunks, policy) measurement of a 1 GB
// All-Reduce.
type AblationRow struct {
	System   string
	Chunks   int
	Policy   collective.Policy
	Duration units.Time
	// SimEvents is the discrete-event cost of the configuration.
	SimEvents uint64
}

// AblationResult is the grid.
type AblationResult struct {
	Rows []AblationRow
}

// Row retrieves one measurement.
func (r *AblationResult) Row(system string, chunks int, policy collective.Policy) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.System == system && row.Chunks == chunks && row.Policy == policy {
			return row, true
		}
	}
	return AblationRow{}, false
}

// Ablation sweeps chunk counts {1, 4, 16, 64, 256} and both schedulers
// over the W-2D-500 and Conv-4D systems.
func Ablation() (*AblationResult, error) {
	out := &AblationResult{}
	systems := TableII()
	for _, name := range []string{"W-2D-500", "Conv-4D"} {
		sys, err := FindSystem(systems, name)
		if err != nil {
			return nil, err
		}
		for _, chunks := range []int{1, 4, 16, 64, 256} {
			for _, policy := range []collective.Policy{collective.Baseline, collective.Themis} {
				eng := timeline.New()
				net := network.NewBackend(eng, sys.Top)
				ce := collective.NewEngine(net,
					collective.WithChunks(chunks),
					collective.WithPolicy(policy))
				var res collective.Result
				err := ce.Start(collective.AllReduce, 1024*units.MB,
					collective.FullMachine(sys.Top),
					func(r collective.Result) { res = r })
				if err != nil {
					return nil, err
				}
				if _, err := eng.Run(); err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, AblationRow{
					System:    name,
					Chunks:    chunks,
					Policy:    policy,
					Duration:  res.Duration(),
					SimEvents: eng.Fired(),
				})
			}
		}
	}
	return out, nil
}
