package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/et"
	"repro/internal/etgen"
	"repro/internal/memory"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Interference — the multi-tenancy case study. Three 128-NPU cluster
// fabrics host 1-8 co-scheduled 16-NPU training jobs under packed
// placement, and each cell reports the jobs' mean slowdown against the
// isolated run of the same carved-out 16-NPU machine:
//
//	SW-Flat     SW(8)_SW(16)      fully-provisioned spine
//	SW-Taper4   SW(8)_SW(16,4)    spine 4:1 oversubscribed
//	Torus-Pods  T2D(4,4)_SW(8,4)  jobs own whole torus pods; only the
//	                              memory pool is shared
//
// The workloads pick apart the sharing mechanisms: GPT-3's tensor-parallel
// hierarchical All-Reduce shrinks per level and barely touches the spine;
// DLRM's All-to-All keeps its full payload on every level and saturates an
// oversubscribed spine as jobs pile on; MoE-1T streams its expert shards
// from the shared disaggregated pool, which contends even on fabrics where
// the network does not. The headline property — per-job slowdown is
// monotonically non-decreasing in the co-located job count, and exactly
// 1.0 wherever capacity suffices — is what the golden suite locks in.

// WLMoE is the pool-bound MoE workload of the interference study.
const WLMoE Workload = "MoE-1T"

// InterferenceCell is one (fabric, workload, job count) measurement.
type InterferenceCell struct {
	Fabric   string
	Workload Workload
	Jobs     int
	// Isolated is the job's makespan alone on its carved-out machine;
	// MeanMakespan averages the co-scheduled jobs' spans.
	Isolated     units.Time
	MeanMakespan units.Time
	// MeanSlowdown is MeanMakespan/Isolated (1.0 = no interference);
	// MaxSlowdown is the worst job's.
	MeanSlowdown float64
	MaxSlowdown  float64
}

// InterferenceResult holds the study grid.
type InterferenceResult struct {
	Cells []InterferenceCell
}

// Cell looks up one measurement.
func (r *InterferenceResult) Cell(fabric string, wl Workload, jobs int) (InterferenceCell, error) {
	for _, c := range r.Cells {
		if c.Fabric == fabric && c.Workload == wl && c.Jobs == jobs {
			return c, nil
		}
	}
	return InterferenceCell{}, fmt.Errorf("interference: no cell %s/%s/%d", fabric, wl, jobs)
}

// interferenceFabrics returns the three cluster fabrics.
func interferenceFabrics() []System {
	specs := []fabricSpec{
		{"SW-Flat", "SW(8)_SW(16)", []float64{250, 250}},
		{"SW-Taper4", "SW(8)_SW(16,4)", []float64{250, 250}},
		{"Torus-Pods", "T2D(4,4)_SW(8,4)", []float64{500, 250}},
	}
	out := make([]System, 0, len(specs))
	for _, s := range specs {
		out = append(out, buildFabric(s))
	}
	return out
}

// InterferenceWorkloads lists the study's workloads.
func InterferenceWorkloads() []Workload { return []Workload{WLGPT3, WLDLRM, WLMoE} }

// InterferenceJobCounts lists the co-location axis.
func InterferenceJobCounts() []int { return []int{1, 2, 4, 8} }

// interferenceJobNPUs is the per-job allocation: two leaf-switch ports (or
// one whole torus pod) per job.
const interferenceJobNPUs = 16

// interferenceTrace builds one job's trace generator.
func interferenceTrace(wl Workload, o Options) (cluster.TraceFunc, error) {
	switch wl {
	case WLGPT3:
		cfg := etgen.GPT3()
		cfg.Layers /= o.layersDivisor()
		return func(top *topology.Topology) (*et.Trace, error) {
			return etgen.Transformer(top, cfg)
		}, nil
	case WLDLRM:
		return func(top *topology.Topology) (*et.Trace, error) {
			return etgen.DLRMTrace(top, etgen.DLRM())
		}, nil
	case WLMoE:
		cfg := etgen.MoE1T(false)
		cfg.Layers /= o.layersDivisor()
		if cfg.Layers < 1 {
			cfg.Layers = 1
		}
		return func(top *topology.Topology) (*et.Trace, error) {
			return etgen.MoETrace(top, cfg)
		}, nil
	default:
		return nil, fmt.Errorf("interference: unknown workload %q", wl)
	}
}

// interferencePool is the shared disaggregated pool the MoE jobs stream
// from: 8 remote groups behind 4 out-node switches for the 128-GPU
// cluster, Table V-class bandwidths.
func interferencePool() memory.PoolConfig {
	return memory.PoolConfig{
		Design: memory.Hierarchical, NumNodes: 16, GPUsPerNode: 8,
		NumOutSwitches: 4, NumRemoteGroups: 8,
		RemoteGroupBW: units.GBps(100), GPUSideOutFabricBW: units.GBps(100),
		InNodeFabricBW: units.GBps(256),
	}
}

// interferenceMemory returns the cluster-wide memory system for a
// workload: MoE attaches the shared pool, the network-bound workloads run
// on local HBM alone.
func interferenceMemory(wl Workload) memory.System {
	sys := memory.System{
		Local: memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2039)},
	}
	if wl == WLMoE {
		sys.HasPool = true
		sys.Pool = interferencePool()
	}
	return sys
}

// runInterferenceCell co-simulates n identical jobs and their isolated
// baseline.
func runInterferenceCell(sys System, wl Workload, n int, o Options) (InterferenceCell, error) {
	traceFn, err := interferenceTrace(wl, o)
	if err != nil {
		return InterferenceCell{}, err
	}
	mkConfig := func(jobs int) cluster.Config {
		cfg := cluster.Config{
			Fabric:    sys.Top,
			Compute:   npuModel(),
			Memory:    interferenceMemory(wl),
			Chunks:    o.chunks(),
			Shards:    o.Shards,
			Placement: cluster.Packed,
		}
		for j := 0; j < jobs; j++ {
			cfg.Jobs = append(cfg.Jobs, cluster.JobConfig{
				Name: fmt.Sprintf("%s#%d", wl, j), NPUs: interferenceJobNPUs, Trace: traceFn,
			})
		}
		return cfg
	}
	// The isolated baseline is re-derived per cell to keep cells hermetic
	// (the sweep cache can then share whole cells by fingerprint); the
	// n=1 cell IS its own baseline, so it simulates once.
	iso, err := cluster.Run(mkConfig(1))
	if err != nil {
		return InterferenceCell{}, fmt.Errorf("%s/%s isolated: %w", sys.Name, wl, err)
	}
	res := iso
	if n != 1 {
		res, err = cluster.Run(mkConfig(n))
		if err != nil {
			return InterferenceCell{}, fmt.Errorf("%s/%s x%d: %w", sys.Name, wl, n, err)
		}
	}
	cell := InterferenceCell{
		Fabric:   sys.Name,
		Workload: wl,
		Jobs:     n,
		Isolated: iso.Jobs[0].Stats.Makespan,
	}
	var sum units.Time
	for _, jr := range res.Jobs {
		sum += jr.Stats.Makespan
		if s := float64(jr.Stats.Makespan) / float64(cell.Isolated); s > cell.MaxSlowdown {
			cell.MaxSlowdown = s
		}
	}
	cell.MeanMakespan = sum / units.Time(n)
	cell.MeanSlowdown = float64(cell.MeanMakespan) / float64(cell.Isolated)
	return cell, nil
}

// Interference runs the fabric x workload x job-count grid on the sweep
// engine.
func Interference(o Options) (*InterferenceResult, error) {
	systems := interferenceFabrics()
	wls := InterferenceWorkloads()
	counts := InterferenceJobCounts()
	wlNames := make([]string, len(wls))
	for i, wl := range wls {
		wlNames[i] = string(wl)
	}
	spec := sweep.Spec[InterferenceCell]{
		Name: "interference",
		Axes: []sweep.Axis{
			systemAxis(systems),
			{Name: "workload", Values: wlNames},
			intAxis("jobs", counts),
		},
		Cell: func(pt sweep.Point) (InterferenceCell, error) {
			return runInterferenceCell(systems[pt.Index("system")], wls[pt.Index("workload")],
				counts[pt.Index("jobs")], o)
		},
		Fingerprint: func(pt sweep.Point) string {
			sys := systems[pt.Index("system")]
			wl := wls[pt.Index("workload")]
			mem := "local"
			if wl == WLMoE {
				mem = poolFingerprint(interferencePool())
			}
			return fmt.Sprintf("interference|sys=%s|wl=%s|div=%d|chunks=%d|jobs=%d|npus=%d|mem=%s|topo=%s",
				sys.Name, wl, o.layersDivisor(), o.chunks(), counts[pt.Index("jobs")],
				interferenceJobNPUs, mem, topoFingerprint(sys.Top))
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &InterferenceResult{Cells: res.Values()}, nil
}
