package experiments

import (
	"math"

	"repro/internal/collective"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Fig. 4 — validation of the analytical network backend against real
// system measurements: All-Reduce collectives of 64 MB to 1.5 GB on rings
// of 4 and 16 V100 GPUs connected by 150 GB/s NVLink running NCCL v2.4.6.
//
// Substitution: we have no V100 testbed, so the "real system" is a
// deterministic reference model of a NCCL ring All-Reduce with the
// overheads the analytical backend deliberately ignores — per-step kernel
// launch/protocol latency and sub-peak link efficiency, both taken from
// public NCCL/NVLink characterizations. The experiment exercises exactly
// the comparison the paper makes: an ideal bandwidth-term-only model
// against a system with real-world overheads, expecting a small mean error
// because these collectives are firmly bandwidth-bound.

// Fig4Row is one bar pair of the figure.
type Fig4Row struct {
	NPUs       int
	Size       units.ByteSize
	Reference  units.Time // simulated "real system"
	Analytical units.Time // analytical backend
	ErrorPct   float64
}

// Fig4Result is the whole validation experiment.
type Fig4Result struct {
	Rows []Fig4Row
	// MeanAbsErrorPct is the figure's headline: the paper reports 5%.
	MeanAbsErrorPct float64
}

// NCCL reference-model constants.
const (
	// nvlinkPerDirection is the paper's quoted NVLink rate.
	nvlinkPerDirection = 150 // GB/s
	// ncclLinkEfficiency is the fraction of peak NVLink bandwidth NCCL's
	// ring protocol sustains for large messages.
	ncclLinkEfficiency = 0.97
	// ncclStepOverhead is the per-ring-step launch/synchronization cost.
	ncclStepOverhead = 2 * units.Microsecond
)

// referenceAllReduce models the measured system: a NCCL ring All-Reduce of
// size s over k GPUs moves 2·S·(k−1)/k bytes per GPU at the effective link
// rate, plus a fixed overhead for each of its 2(k−1) steps.
func referenceAllReduce(size units.ByteSize, k int) units.Time {
	bytes := 2 * float64(size) * float64(k-1) / float64(k)
	bw := nvlinkPerDirection * 1e9 * ncclLinkEfficiency
	steps := 2 * (k - 1)
	return units.FromSeconds(bytes/bw) + units.Time(steps)*ncclStepOverhead
}

// nvlinkRing builds the analytical twin of a k-GPU NVLink ring. The
// dimension bandwidth is the NPU's total shared capacity, so the
// per-direction 150 GB/s NVLink becomes 300 GB/s.
func nvlinkRing(k int) (*topology.Topology, error) {
	return topology.New(topology.Dim{
		Kind:      topology.Ring,
		Size:      k,
		Bandwidth: units.GBps(2 * nvlinkPerDirection),
		Latency:   0,
	})
}

// analyticalAllReduce runs the simulator's collective engine on a ring of
// k NPUs.
func analyticalAllReduce(size units.ByteSize, k, shards int) (units.Time, error) {
	top, err := nvlinkRing(k)
	if err != nil {
		return 0, err
	}
	res, _, err := runEngine(top, collective.AllReduce, size, 64, collective.Baseline, shards)
	if err != nil {
		return 0, err
	}
	return res.Duration(), nil
}

// Fig4 runs the validation sweep: the paper's six sizes on 4 and 16 NPUs.
func Fig4(o Options) (*Fig4Result, error) {
	ks := []int{4, 16}
	sizes := []units.ByteSize{
		64 * units.MB, 96 * units.MB, 128 * units.MB, 192 * units.MB,
		750 * units.MB, 1500 * units.MB,
	}
	spec := sweep.Spec[Fig4Row]{
		Name: "fig4",
		Axes: []sweep.Axis{intAxis("npus", ks), sizeAxis("size", sizes)},
		Cell: func(pt sweep.Point) (Fig4Row, error) {
			k, s := ks[pt.Index("npus")], sizes[pt.Index("size")]
			ref := referenceAllReduce(s, k)
			ana, err := analyticalAllReduce(s, k, o.Shards)
			if err != nil {
				return Fig4Row{}, err
			}
			errPct := 100 * (ana.Seconds() - ref.Seconds()) / ref.Seconds()
			return Fig4Row{NPUs: k, Size: s, Reference: ref, Analytical: ana, ErrorPct: errPct}, nil
		},
		Fingerprint: func(pt sweep.Point) string {
			top, err := nvlinkRing(ks[pt.Index("npus")])
			if err != nil {
				return ""
			}
			// The reference model is a pure function of (k, size), so the
			// engine fingerprint identifies the whole row; the prefix keeps
			// fig4 rows from sharing with bare engine results.
			return "fig4|" + engineFingerprint(top, collective.AllReduce, sizes[pt.Index("size")], 64, collective.Baseline)
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{Rows: res.Values()}
	var absSum float64
	for _, r := range out.Rows {
		absSum += math.Abs(r.ErrorPct)
	}
	out.MeanAbsErrorPct = absSum / float64(len(out.Rows))
	return out, nil
}
