package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/network"
	"repro/internal/timeline"
	"repro/internal/units"
)

// Table IV — the wafer-scaling study of Section V-A-2: a 1 GB All-Gather
// on the Base-512 system (2_8_8_4 with a 1000 GB/s on-chip Dim 1), scaled
// either conventionally (growing the Dim 4 NIC fabric: 2_8_8_{8,16,32}) or
// wafer-style (growing the on-chip Dim 1: {4,8,16}_8_8_4). The paper's
// findings: scale-out leaves collective time identical; wafer scale-up
// cuts it by up to 2.51x before the on-wafer dimension saturates and the
// time bounces back up (16_8_8_4).

// TableIVRow is one row of the table.
type TableIVRow struct {
	System string
	NPUs   int
	// TrafficPerDim is the per-NPU sent+received megabytes on each of the
	// four dimensions (the table's "message size" columns).
	TrafficPerDim [4]float64
	// CollectiveTime is the All-Gather completion time.
	CollectiveTime units.Time
}

// TableIVResult is the whole table.
type TableIVResult struct {
	Rows []TableIVRow
	// Size is the collective size used (1 GB).
	Size units.ByteSize
}

// Row returns the named row.
func (t *TableIVResult) Row(system string) (TableIVRow, error) {
	for _, r := range t.Rows {
		if r.System == system {
			return r, nil
		}
	}
	return TableIVRow{}, fmt.Errorf("tableiv: unknown system %q", system)
}

// TableIV regenerates the table.
func TableIV() (*TableIVResult, error) {
	const size = units.ByteSize(1024 * units.MB) // the paper's 1 GB
	order := []string{
		"Base-512", "Conv-1024", "Conv-2048", "Conv-4096",
		"W-1024", "W-2048", "W-4096",
	}
	systems := ScalingSystems()
	out := &TableIVResult{Size: size}
	for _, name := range order {
		sys, err := FindSystem(systems, name)
		if err != nil {
			return nil, err
		}
		eng := timeline.New()
		net := network.NewBackend(eng, sys.Top)
		ce := collective.NewEngine(net, collective.WithChunks(64))
		var res collective.Result
		err = ce.Start(collective.AllGather, size, collective.FullMachine(sys.Top), func(r collective.Result) { res = r })
		if err != nil {
			return nil, fmt.Errorf("tableiv: %s: %w", name, err)
		}
		if _, err := eng.Run(); err != nil {
			return nil, fmt.Errorf("tableiv: %s: %w", name, err)
		}
		row := TableIVRow{
			System:         name,
			NPUs:           sys.Top.NumNPUs(),
			CollectiveTime: res.Duration(),
		}
		for d := 0; d < 4; d++ {
			row.TrafficPerDim[d] = float64(res.TrafficPerDim[d]) / 1e6 // MB
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
