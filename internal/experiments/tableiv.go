package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/sweep"
	"repro/internal/units"
)

// Table IV — the wafer-scaling study of Section V-A-2: a 1 GB All-Gather
// on the Base-512 system (2_8_8_4 with a 1000 GB/s on-chip Dim 1), scaled
// either conventionally (growing the Dim 4 NIC fabric: 2_8_8_{8,16,32}) or
// wafer-style (growing the on-chip Dim 1: {4,8,16}_8_8_4). The paper's
// findings: scale-out leaves collective time identical; wafer scale-up
// cuts it by up to 2.51x before the on-wafer dimension saturates and the
// time bounces back up (16_8_8_4).

// TableIVRow is one row of the table.
type TableIVRow struct {
	System string
	NPUs   int
	// TrafficPerDim is the per-NPU sent+received megabytes on each of the
	// four dimensions (the table's "message size" columns).
	TrafficPerDim [4]float64
	// CollectiveTime is the All-Gather completion time.
	CollectiveTime units.Time
}

// TableIVResult is the whole table.
type TableIVResult struct {
	Rows []TableIVRow
	// Size is the collective size used (1 GB).
	Size units.ByteSize
}

// Row returns the named row.
func (t *TableIVResult) Row(system string) (TableIVRow, error) {
	for _, r := range t.Rows {
		if r.System == system {
			return r, nil
		}
	}
	return TableIVRow{}, fmt.Errorf("tableiv: unknown system %q", system)
}

// TableIV regenerates the table.
func TableIV(o Options) (*TableIVResult, error) {
	const size = units.ByteSize(1024 * units.MB) // the paper's 1 GB
	systems := ScalingSystems()
	spec := sweep.Spec[TableIVRow]{
		Name: "tableiv",
		Axes: []sweep.Axis{systemAxis(systems)},
		Cell: func(pt sweep.Point) (TableIVRow, error) {
			sys := systems[pt.Index("system")]
			res, _, err := runEngine(sys.Top, collective.AllGather, size, 64, collective.Baseline, o.Shards)
			if err != nil {
				return TableIVRow{}, err
			}
			row := TableIVRow{
				System:         sys.Name,
				NPUs:           sys.Top.NumNPUs(),
				CollectiveTime: res.Duration(),
			}
			for d := 0; d < 4; d++ {
				row.TrafficPerDim[d] = float64(res.TrafficPerDim[d]) / 1e6 // MB
			}
			return row, nil
		},
		Fingerprint: func(pt sweep.Point) string {
			// The row embeds the system name, so the name is part of the key.
			sys := systems[pt.Index("system")]
			return "tableiv|sys=" + sys.Name + "|" + engineFingerprint(sys.Top, collective.AllGather, size, 64, collective.Baseline)
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &TableIVResult{Size: size, Rows: res.Values()}, nil
}
