package experiments

import (
	"encoding/json"
	"runtime"
	"testing"
)

// The sharded-determinism suite: the same experiments the golden fixtures
// lock in, re-run on the sharded event engine at several shard counts, and
// diffed byte-for-byte against the serial run. Together with TestGolden
// this proves `Shards` is purely an execution knob — K timeline shards,
// any K, produce the fixtures' exact bytes.

func shardCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestShardedByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		short bool
		run   func(o Options) (any, error)
	}{
		{"fig4", true, func(o Options) (any, error) { return Fig4(o) }},
		{"fabrics_reduced", false, func(o Options) (any, error) {
			o.Reduced = true
			return Fabrics(o)
		}},
		{"interference_reduced", false, func(o Options) (any, error) {
			o.Reduced = true
			return Interference(o)
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && !c.short {
				t.Skipf("%s runs a heavy grid; covered by the full suite and CI", c.name)
			}
			serialRes, err := c.run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := json.Marshal(serialRes)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range shardCounts() {
				res, err := c.run(Options{Shards: k})
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				got, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(serial) {
					t.Errorf("shards=%d: output diverged from the serial run (%d vs %d bytes)", k, len(got), len(serial))
				}
			}
		})
	}
}
