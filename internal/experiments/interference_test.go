package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sweep"
)

func TestInterferenceFabricShapes(t *testing.T) {
	for _, s := range interferenceFabrics() {
		if s.Top.NumNPUs() != 128 {
			t.Errorf("%s has %d NPUs, want 128", s.Name, s.Top.NumNPUs())
		}
	}
}

// TestInterferenceShort is the -short smoke: one contended cell must show
// interference, anchored at exactly 1.0 for a lone job.
func TestInterferenceShort(t *testing.T) {
	systems := interferenceFabrics()
	taper, err := FindSystem(systems, "SW-Taper4")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := runInterferenceCell(taper, WLDLRM, 8, Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	if cell.MeanSlowdown <= 1.0 {
		t.Errorf("8 DLRM jobs on the 4:1 spine: slowdown %.4f, want > 1.0", cell.MeanSlowdown)
	}
	solo, err := runInterferenceCell(taper, WLDLRM, 1, Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	if solo.MeanSlowdown != 1.0 {
		t.Errorf("lone job slowdown = %v, want exactly 1.0", solo.MeanSlowdown)
	}
}

func TestInterferenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full interference grid co-simulates up to 8 jobs per cell; TestInterferenceShort covers the smoke")
	}
	res, err := Interference(Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 3 * len(InterferenceJobCounts()); len(res.Cells) != want {
		t.Fatalf("%d cells, want %d", len(res.Cells), want)
	}

	for _, c := range res.Cells {
		if c.Isolated <= 0 || c.MeanMakespan <= 0 {
			t.Errorf("%s/%s x%d: non-positive times %v/%v", c.Fabric, c.Workload, c.Jobs, c.Isolated, c.MeanMakespan)
		}
		if c.Jobs == 1 && c.MeanSlowdown != 1.0 {
			t.Errorf("%s/%s: single job slowdown = %v, want exactly 1.0 (isolated anchor)", c.Fabric, c.Workload, c.MeanSlowdown)
		}
		if c.MaxSlowdown < c.MeanSlowdown {
			t.Errorf("%s/%s x%d: max %v < mean %v", c.Fabric, c.Workload, c.Jobs, c.MaxSlowdown, c.MeanSlowdown)
		}
	}

	// The acceptance property: per-job slowdown is monotonically
	// non-decreasing in the co-located job count, on every fabric and
	// workload.
	for _, sys := range []string{"SW-Flat", "SW-Taper4", "Torus-Pods"} {
		for _, wl := range InterferenceWorkloads() {
			prev := 0.0
			for _, n := range InterferenceJobCounts() {
				c, err := res.Cell(sys, wl, n)
				if err != nil {
					t.Fatal(err)
				}
				if c.MeanSlowdown < prev {
					t.Errorf("%s/%s: slowdown drops from %.4f to %.4f at %d jobs", sys, wl, prev, c.MeanSlowdown, n)
				}
				prev = c.MeanSlowdown
			}
		}
	}

	// Mechanism separation: the pool-bound MoE jobs contend even on the
	// network-isolated torus pods, and strongly (8 jobs on one pool);
	// the flat spine keeps DLRM at exactly 1.0.
	moe, err := res.Cell("Torus-Pods", WLMoE, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moe.MeanSlowdown < 2 {
		t.Errorf("8 MoE jobs on one pool: slowdown %.3f, want >= 2 (pool contention)", moe.MeanSlowdown)
	}
	dlrm, err := res.Cell("SW-Flat", WLDLRM, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dlrm.MeanSlowdown != 1.0 {
		t.Errorf("DLRM on the flat spine: slowdown %.4f, want exactly 1.0 (capacity suffices)", dlrm.MeanSlowdown)
	}
	// And the oversubscribed spine does interfere with DLRM's All-to-All.
	dlrmTaper, err := res.Cell("SW-Taper4", WLDLRM, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dlrmTaper.MeanSlowdown <= 1.0 {
		t.Errorf("DLRM on the 4:1 spine: slowdown %.4f, want > 1.0", dlrmTaper.MeanSlowdown)
	}
}

// TestInterferenceDeterministicAcrossWorkers mirrors the sweep/search
// determinism contract: the grid's cells are identical at any -parallel
// worker count.
func TestInterferenceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced grid twice")
	}
	serial, err := Interference(Options{Reduced: true, Exec: sweep.Exec{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Interference(Options{Reduced: true, Exec: sweep.Exec{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("interference grid differs between 1 and 8 workers")
	}
}
