package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/et"
	"repro/internal/etgen"
	"repro/internal/memory"
	"repro/internal/topology"
	"repro/internal/units"
)

// Fig. 9 — the wafer-scale vs conventional case study (Section V-A).
//
// Fig. 9(a): the six 512-NPU systems of Table II run four workloads
// (a single 1 GB All-Reduce, DLRM, GPT-3, Transformer-1T) under the
// baseline hierarchical collective scheduler and under Themis; bars are
// compute time vs exposed communication time.
//
// Fig. 9(b): the scaling systems of Table IV run the same workloads with
// the baseline scheduler, comparing conventional scale-out against
// wafer-style scale-up.

// Workload identifies one of the study's four workloads (Table III).
type Workload string

// The case-study workloads.
const (
	WLAllReduce Workload = "All-Reduce(1GB)"
	WLDLRM      Workload = "DLRM"
	WLGPT3      Workload = "GPT-3"
	WLT1T       Workload = "Transformer-1T"
)

// Workloads lists them in the paper's column order.
func Workloads() []Workload {
	return []Workload{WLAllReduce, WLDLRM, WLGPT3, WLT1T}
}

// Cell is one bar of Fig. 9: a (system, workload, policy) measurement.
type Cell struct {
	System   string
	Workload Workload
	Policy   collective.Policy
	// Compute and ExposedComm are the mean per-NPU attributions; Total is
	// the makespan.
	Compute     units.Time
	ExposedComm units.Time
	Total       units.Time
}

// Fig9aResult holds all bars of Fig. 9(a).
type Fig9aResult struct {
	Cells []Cell
}

// Fig9bResult holds all bars of Fig. 9(b).
type Fig9bResult struct {
	Cells []Cell
}

// Cell returns the named measurement.
func findCell(cells []Cell, system string, wl Workload, policy collective.Policy) (Cell, error) {
	for _, c := range cells {
		if c.System == system && c.Workload == wl && c.Policy == policy {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("experiments: no cell %s/%s/%v", system, wl, policy)
}

// Cell looks up one bar.
func (r *Fig9aResult) Cell(system string, wl Workload, policy collective.Policy) (Cell, error) {
	return findCell(r.Cells, system, wl, policy)
}

// Cell looks up one bar.
func (r *Fig9bResult) Cell(system string, wl Workload, policy collective.Policy) (Cell, error) {
	return findCell(r.Cells, system, wl, policy)
}

// Options scales the study for test runs: Reduced shrinks layer counts by
// 8x (preserving per-layer structure and therefore all ratios) and lowers
// the collective chunk count.
type Options struct {
	Reduced bool
}

func (o Options) layersDivisor() int {
	if o.Reduced {
		return 8
	}
	return 1
}

func (o Options) chunks() int {
	// Themis's per-chunk balancing needs at least ~32 chunks of
	// granularity on 512-NPU systems; fewer chunks visibly degrade its
	// packing (verified empirically), so the reduced mode keeps 32.
	return 32
}

// buildWorkloadTrace generates the trace for a workload on a topology.
func buildWorkloadTrace(top *topology.Topology, wl Workload, o Options) (*et.Trace, error) {
	switch wl {
	case WLAllReduce:
		return etgen.SingleCollective(top, et.CollAllReduce, 1024*units.MB), nil
	case WLDLRM:
		return etgen.DLRMTrace(top, etgen.DLRM())
	case WLGPT3:
		cfg := etgen.GPT3()
		cfg.Layers /= o.layersDivisor()
		return etgen.Transformer(top, cfg)
	case WLT1T:
		cfg := etgen.Transformer1T()
		cfg.Layers /= o.layersDivisor()
		return etgen.Transformer(top, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", wl)
	}
}

// runCell executes one (system, workload, policy) simulation.
func runCell(sys System, wl Workload, policy collective.Policy, o Options) (Cell, error) {
	trace, err := buildWorkloadTrace(sys.Top, wl, o)
	if err != nil {
		return Cell{}, fmt.Errorf("%s/%s: %w", sys.Name, wl, err)
	}
	sim, err := core.NewSimulator(core.Config{
		Topology: sys.Top,
		Compute:  npuModel(),
		Memory: memory.System{
			Local: memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2039)},
		},
		Policy:             policy,
		Chunks:             o.chunks(),
		CollectiveLogLimit: 1,
	})
	if err != nil {
		return Cell{}, err
	}
	stats, err := sim.Run(trace)
	if err != nil {
		return Cell{}, fmt.Errorf("%s/%s/%v: %w", sys.Name, wl, policy, err)
	}
	mean := stats.MeanBreakdown()
	return Cell{
		System:      sys.Name,
		Workload:    wl,
		Policy:      policy,
		Compute:     mean.Compute,
		ExposedComm: mean.ExposedComm,
		Total:       stats.Makespan,
	}, nil
}

// Fig9a runs the full 6-system x 4-workload x 2-policy grid.
func Fig9a(o Options) (*Fig9aResult, error) {
	out := &Fig9aResult{}
	for _, sys := range TableII() {
		for _, wl := range Workloads() {
			for _, policy := range []collective.Policy{collective.Baseline, collective.Themis} {
				cell, err := runCell(sys, wl, policy, o)
				if err != nil {
					return nil, err
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// Fig9b runs the 7-system x 4-workload scaling grid with the baseline
// scheduler (the configuration of the paper's Fig. 9(b)).
func Fig9b(o Options) (*Fig9bResult, error) {
	out := &Fig9bResult{}
	for _, sys := range ScalingSystems() {
		for _, wl := range Workloads() {
			cell, err := runCell(sys, wl, collective.Baseline, o)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}
