package experiments

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/et"
	"repro/internal/etgen"
	"repro/internal/memory"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Fig. 9 — the wafer-scale vs conventional case study (Section V-A).
//
// Fig. 9(a): the six 512-NPU systems of Table II run four workloads
// (a single 1 GB All-Reduce, DLRM, GPT-3, Transformer-1T) under the
// baseline hierarchical collective scheduler and under Themis; bars are
// compute time vs exposed communication time.
//
// Fig. 9(b): the scaling systems of Table IV run the same workloads with
// the baseline scheduler, comparing conventional scale-out against
// wafer-style scale-up.

// Workload identifies one of the study's four workloads (Table III).
type Workload string

// The case-study workloads.
const (
	WLAllReduce Workload = "All-Reduce(1GB)"
	WLDLRM      Workload = "DLRM"
	WLGPT3      Workload = "GPT-3"
	WLT1T       Workload = "Transformer-1T"
)

// Workloads lists them in the paper's column order.
func Workloads() []Workload {
	return []Workload{WLAllReduce, WLDLRM, WLGPT3, WLT1T}
}

// Cell is one bar of Fig. 9: a (system, workload, policy) measurement.
type Cell struct {
	System   string
	Workload Workload
	Policy   collective.Policy
	// Compute and ExposedComm are the mean per-NPU attributions; Total is
	// the makespan.
	Compute     units.Time
	ExposedComm units.Time
	Total       units.Time
}

// Fig9aResult holds all bars of Fig. 9(a).
type Fig9aResult struct {
	Cells []Cell
}

// Fig9bResult holds all bars of Fig. 9(b).
type Fig9bResult struct {
	Cells []Cell
}

// Cell returns the named measurement.
func findCell(cells []Cell, system string, wl Workload, policy collective.Policy) (Cell, error) {
	for _, c := range cells {
		if c.System == system && c.Workload == wl && c.Policy == policy {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("experiments: no cell %s/%s/%v", system, wl, policy)
}

// Cell looks up one bar.
func (r *Fig9aResult) Cell(system string, wl Workload, policy collective.Policy) (Cell, error) {
	return findCell(r.Cells, system, wl, policy)
}

// Cell looks up one bar.
func (r *Fig9bResult) Cell(system string, wl Workload, policy collective.Policy) (Cell, error) {
	return findCell(r.Cells, system, wl, policy)
}

// Options configures an experiment run.
type Options struct {
	// Reduced shrinks layer counts by 8x (preserving per-layer structure
	// and therefore all ratios) for test runs, and limits Fig. 11's
	// design-space sweep to its corner points.
	Reduced bool
	// Exec controls sweep execution: worker count (default GOMAXPROCS),
	// an optional cross-experiment result cache, and progress callbacks.
	// Results are deterministic for any worker count.
	Exec sweep.Exec
	// Shards selects the event engine driving each simulation (see
	// core.Config.Shards): <= 1 serial, larger values sharded. Simulated
	// output is byte-identical for every value, which is why sweep-cache
	// fingerprints deliberately ignore it.
	Shards int
}

func (o Options) layersDivisor() int {
	if o.Reduced {
		return 8
	}
	return 1
}

func (o Options) chunks() int {
	// Themis's per-chunk balancing needs at least ~32 chunks of
	// granularity on 512-NPU systems; fewer chunks visibly degrade its
	// packing (verified empirically), so the reduced mode keeps 32.
	return 32
}

// buildWorkloadTrace generates the trace for a workload on a topology.
func buildWorkloadTrace(top *topology.Topology, wl Workload, o Options) (*et.Trace, error) {
	switch wl {
	case WLAllReduce:
		return etgen.SingleCollective(top, et.CollAllReduce, 1024*units.MB), nil
	case WLDLRM:
		return etgen.DLRMTrace(top, etgen.DLRM())
	case WLGPT3:
		cfg := etgen.GPT3()
		cfg.Layers /= o.layersDivisor()
		return etgen.Transformer(top, cfg)
	case WLT1T:
		cfg := etgen.Transformer1T()
		cfg.Layers /= o.layersDivisor()
		return etgen.Transformer(top, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", wl)
	}
}

// cellFingerprint identifies a full-simulator case-study run: topology,
// workload (with its reduction divisor), scheduler, chunking, and the
// fixed compute/memory models. The system name is part of the key
// because the deduplicated Cell embeds it: two identically-configured
// systems under different names must not share a mislabeled result.
func cellFingerprint(sys System, wl Workload, policy collective.Policy, o Options) string {
	return fmt.Sprintf("sim|sys=%s|wl=%s|div=%d|policy=%s|chunks=%d|npu=a100|mem=local-1us-2039|topo=%s",
		sys.Name, wl, o.layersDivisor(), policy, o.chunks(), topoFingerprint(sys.Top))
}

// runCell executes one (system, workload, policy) simulation.
func runCell(sys System, wl Workload, policy collective.Policy, o Options) (Cell, error) {
	trace, err := buildWorkloadTrace(sys.Top, wl, o)
	if err != nil {
		return Cell{}, fmt.Errorf("%s/%s: %w", sys.Name, wl, err)
	}
	sim, err := core.NewSimulator(core.Config{
		Topology: sys.Top,
		Compute:  npuModel(),
		Memory: memory.System{
			Local: memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2039)},
		},
		Policy:             policy,
		Chunks:             o.chunks(),
		Shards:             o.Shards,
		CollectiveLogLimit: 1,
		Memo:               collMemo,
	})
	if err != nil {
		return Cell{}, err
	}
	stats, err := sim.Run(trace)
	if err != nil {
		return Cell{}, fmt.Errorf("%s/%s/%v: %w", sys.Name, wl, policy, err)
	}
	mean := stats.MeanBreakdown()
	return Cell{
		System:      sys.Name,
		Workload:    wl,
		Policy:      policy,
		Compute:     mean.Compute,
		ExposedComm: mean.ExposedComm,
		Total:       stats.Makespan,
	}, nil
}

// caseStudySpec declares a (system x workload x policy) grid over runCell.
func caseStudySpec(name string, systems []System, policies []collective.Policy, o Options) sweep.Spec[Cell] {
	wls := Workloads()
	return sweep.Spec[Cell]{
		Name: name,
		Axes: []sweep.Axis{systemAxis(systems), workloadAxis(), policyAxis(policies)},
		Cell: func(pt sweep.Point) (Cell, error) {
			return runCell(systems[pt.Index("system")], wls[pt.Index("workload")],
				policies[pt.Index("policy")], o)
		},
		Fingerprint: func(pt sweep.Point) string {
			return cellFingerprint(systems[pt.Index("system")], wls[pt.Index("workload")],
				policies[pt.Index("policy")], o)
		},
	}
}

// Fig9a runs the full 6-system x 4-workload x 2-policy grid.
func Fig9a(o Options) (*Fig9aResult, error) {
	spec := caseStudySpec("fig9a", TableII(),
		[]collective.Policy{collective.Baseline, collective.Themis}, o)
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &Fig9aResult{Cells: res.Values()}, nil
}

// Fig9b runs the 7-system x 4-workload scaling grid with the baseline
// scheduler (the configuration of the paper's Fig. 9(b)).
func Fig9b(o Options) (*Fig9bResult, error) {
	spec := caseStudySpec("fig9b", ScalingSystems(),
		[]collective.Policy{collective.Baseline}, o)
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &Fig9bResult{Cells: res.Values()}, nil
}
