package experiments

import (
	"testing"

	"repro/internal/units"
)

func TestFabricSystemsShape(t *testing.T) {
	systems := FabricSystems()
	if len(systems) != 6 {
		t.Fatalf("%d fabrics, want 6", len(systems))
	}
	for _, s := range systems {
		if s.Top.NumNPUs() != 512 {
			t.Errorf("%s has %d NPUs, want 512", s.Name, s.Top.NumNPUs())
		}
	}
	// Equal configured bandwidth, but the tapered fabrics deliver less.
	flat, _ := FindSystem(systems, "SW-Flat")
	t4, _ := FindSystem(systems, "SW-Taper4")
	if flat.Top.AggregateBandwidth() != units.GBps(500) {
		t.Errorf("SW-Flat BW/NPU = %v, want 500GB/s", flat.Top.AggregateBandwidth())
	}
	if t4.Top.AggregateBandwidth() != units.GBps(250+250.0/4) {
		t.Errorf("SW-Taper4 BW/NPU = %v, want 312.5GB/s", t4.Top.AggregateBandwidth())
	}
}

func TestFabricEstimatesOrdering(t *testing.T) {
	est := FabricEstimates()
	// Oversubscription can only slow the collective, monotonically in o.
	if !(est["SW-Flat"] < est["SW-Taper2"] && est["SW-Taper2"] < est["SW-Taper4"]) {
		t.Errorf("taper ordering violated: flat %v, 2:1 %v, 4:1 %v",
			est["SW-Flat"], est["SW-Taper2"], est["SW-Taper4"])
	}
	for name, v := range est {
		if v <= 0 {
			t.Errorf("%s estimate = %v", name, v)
		}
	}
}

func TestFabricsGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric grid simulates GPT-3 on six 512-NPU systems")
	}
	res, err := Fabrics(Options{Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 {
		t.Fatalf("%d cells, want 6 systems x 2 workloads", len(res.Cells))
	}
	flat, err := res.Cell("SW-Flat", WLGPT3)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := res.Cell("SW-Taper4", WLGPT3)
	if err != nil {
		t.Fatal(err)
	}
	// Oversubscribing the leaf switches must cost GPT-3 communication time
	// and must not change compute time.
	if t4.ExposedComm <= flat.ExposedComm {
		t.Errorf("SW-Taper4 exposed comm %v should exceed SW-Flat %v", t4.ExposedComm, flat.ExposedComm)
	}
	if t4.Compute != flat.Compute {
		t.Errorf("compute differs across fabrics: %v vs %v", t4.Compute, flat.Compute)
	}
	// Taper is monotone on GPT-3 (its DP All-Reduces stress the leaf
	// switches), and on the pipelined 1 GB All-Reduce oversubscription can
	// never help — though it may hide entirely under the dim-1 bottleneck.
	t2, err := res.Cell("SW-Taper2", WLGPT3)
	if err != nil {
		t.Fatal(err)
	}
	if !(flat.Total < t2.Total && t2.Total < t4.Total) {
		t.Errorf("GPT-3 taper ordering violated: flat %v, 2:1 %v, 4:1 %v", flat.Total, t2.Total, t4.Total)
	}
	arFlat, _ := res.Cell("SW-Flat", WLAllReduce)
	arT4, _ := res.Cell("SW-Taper4", WLAllReduce)
	if arT4.Total < arFlat.Total {
		t.Errorf("All-Reduce: tapered fabric (%v) beat flat (%v)", arT4.Total, arFlat.Total)
	}
	for _, c := range res.Cells {
		if c.Total <= 0 {
			t.Errorf("%s/%s: non-positive total %v", c.System, c.Workload, c.Total)
		}
	}
}
