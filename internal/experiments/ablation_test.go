package experiments

import (
	"testing"

	"repro/internal/collective"
)

func TestAblationShape(t *testing.T) {
	res, err := Ablation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*5*2 {
		t.Fatalf("grid has %d rows, want 20", len(res.Rows))
	}

	for _, sys := range []string{"W-2D-500", "Conv-4D"} {
		// Pipelining: the baseline collective time must drop from 1 chunk
		// (sum of phases) toward the bottleneck as chunks grow.
		one, ok1 := res.Row(sys, 1, collective.Baseline)
		many, ok2 := res.Row(sys, 256, collective.Baseline)
		if !ok1 || !ok2 {
			t.Fatal("missing rows")
		}
		if many.Duration >= one.Duration {
			t.Errorf("%s: 256 chunks (%v) should beat 1 chunk (%v)", sys, many.Duration, one.Duration)
		}

		// Event cost grows with chunk count.
		if many.SimEvents <= one.SimEvents {
			t.Errorf("%s: event count should grow with chunks (%d vs %d)", sys, many.SimEvents, one.SimEvents)
		}

		// Themis at 1 chunk has no balancing granularity: it cannot beat
		// the best single-permutation schedule by much, while at 64+
		// chunks it must beat baseline on these multi-dim systems.
		tb, _ := res.Row(sys, 64, collective.Themis)
		bb, _ := res.Row(sys, 64, collective.Baseline)
		if float64(tb.Duration) > 0.95*float64(bb.Duration) {
			t.Errorf("%s: Themis@64 (%v) should clearly beat baseline@64 (%v)", sys, tb.Duration, bb.Duration)
		}
	}

	// The default configuration (64 chunks) captures nearly all the
	// pipelining benefit: within 5% of 256 chunks.
	for _, sys := range []string{"W-2D-500", "Conv-4D"} {
		d64, _ := res.Row(sys, 64, collective.Baseline)
		d256, _ := res.Row(sys, 256, collective.Baseline)
		if float64(d64.Duration) > 1.05*float64(d256.Duration) {
			t.Errorf("%s: 64 chunks (%v) leaves >5%% on the table vs 256 (%v)", sys, d64.Duration, d256.Duration)
		}
	}
}
