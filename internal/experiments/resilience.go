package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

// Resilience — the failure/straggler case study. Two 128-NPU fabrics run
// GPT-3 and DLRM under injected infrastructure perturbations, and each cell
// reports the perturbed makespan against the same machine's clean run:
//
//	SW-Flat     SW(8)_SW(16)      fully-provisioned spine
//	Torus-Pods  T2D(4,4)_SW(8,4)  torus pods under a spine switch
//
// The scenario axis picks apart the failure modes the scenario layer
// models:
//
//	clean        zero events — locks in that an empty scenario is
//	             byte-identical to the unperturbed run (slowdown exactly 1)
//	degrade      the spine dimension drops to 25% bandwidth halfway through
//	             the clean run and stays degraded
//	straggle-1%  1% of NPUs run compute 1.3x slower from the start
//	straggle-5%  5% of NPUs run compute 1.3x slower from the start
//
// The headline property: slowdown is exactly 1.0 for the clean scenario,
// and otherwise reflects how much of the workload the perturbed resource
// carries — DLRM's All-to-All leans on the spine harder than GPT-3's
// hierarchical All-Reduce, while synchronous collectives gate every job on
// its slowest member, so even 1% stragglers tax the whole machine.

// Resilience scenario names.
const (
	ScenClean     = "clean"
	ScenDegrade   = "degrade"
	ScenStraggle1 = "straggle-1pct"
	ScenStraggle5 = "straggle-5pct"
)

// ResilienceScenarios lists the study's scenario axis.
func ResilienceScenarios() []string {
	return []string{ScenClean, ScenDegrade, ScenStraggle1, ScenStraggle5}
}

// ResilienceWorkloads lists the study's workloads.
func ResilienceWorkloads() []Workload { return []Workload{WLGPT3, WLDLRM} }

// resilienceFabrics returns the study's two cluster fabrics.
func resilienceFabrics() []System {
	specs := []fabricSpec{
		{"SW-Flat", "SW(8)_SW(16)", []float64{250, 250}},
		{"Torus-Pods", "T2D(4,4)_SW(8,4)", []float64{500, 250}},
	}
	out := make([]System, 0, len(specs))
	for _, s := range specs {
		out = append(out, buildFabric(s))
	}
	return out
}

// straggleFactor is the compute-time multiplier of a straggling NPU —
// thermal throttling territory, not a hang.
const straggleFactor = 1.3

// resilienceEvents builds a named scenario's event list for a machine.
// cleanMakespan anchors the mid-run degradation; straggler ranks are spread
// evenly across the machine so every leaf group feels one.
func resilienceEvents(name string, top *topology.Topology, cleanMakespan units.Time) ([]scenario.Event, error) {
	stragglers := func(pct int) []scenario.Event {
		npus := top.NumNPUs()
		count := npus * pct / 100
		if count < 1 {
			count = 1
		}
		events := make([]scenario.Event, 0, count)
		for i := 0; i < count; i++ {
			events = append(events, scenario.Event{
				Kind: scenario.StraggleNPU, NPU: i * npus / count, Factor: straggleFactor,
			})
		}
		return events
	}
	switch name {
	case ScenClean:
		return nil, nil
	case ScenDegrade:
		return []scenario.Event{{
			Kind: scenario.DegradeLink, At: cleanMakespan / 2,
			Dim: top.NumDims() - 1, Factor: 0.25,
		}}, nil
	case ScenStraggle1:
		return stragglers(1), nil
	case ScenStraggle5:
		return stragglers(5), nil
	default:
		return nil, fmt.Errorf("resilience: unknown scenario %q", name)
	}
}

// ResilienceCell is one (fabric, workload, scenario) measurement.
type ResilienceCell struct {
	Fabric   string
	Workload Workload
	Scenario string
	// Clean is the unperturbed makespan; Perturbed the makespan under the
	// scenario's events (equal for the clean scenario, which runs with an
	// empty — but attached — scenario to lock in zero-event byte-identity).
	Clean     units.Time
	Perturbed units.Time
	// Slowdown is Perturbed/Clean (1.0 = the scenario cost nothing).
	Slowdown float64
}

// ResilienceResult holds the study grid.
type ResilienceResult struct {
	Cells []ResilienceCell
}

// Cell looks up one measurement.
func (r *ResilienceResult) Cell(fabric string, wl Workload, scen string) (ResilienceCell, error) {
	for _, c := range r.Cells {
		if c.Fabric == fabric && c.Workload == wl && c.Scenario == scen {
			return c, nil
		}
	}
	return ResilienceCell{}, fmt.Errorf("resilience: no cell %s/%s/%s", fabric, wl, scen)
}

// runResilienceCell simulates one workload clean and under a scenario.
func runResilienceCell(sys System, wl Workload, scen string, o Options) (ResilienceCell, error) {
	run := func(sc *scenario.Scenario) (units.Time, error) {
		trace, err := buildWorkloadTrace(sys.Top, wl, o)
		if err != nil {
			return 0, err
		}
		sim, err := core.NewSimulator(core.Config{
			Topology: sys.Top,
			Compute:  npuModel(),
			Memory: memory.System{
				Local: memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2039)},
			},
			Chunks:             o.chunks(),
			Shards:             o.Shards,
			CollectiveLogLimit: 1,
			Memo:               collMemo,
			Scenario:           sc,
		})
		if err != nil {
			return 0, err
		}
		stats, err := sim.Run(trace)
		if err != nil {
			return 0, err
		}
		return stats.Makespan, nil
	}
	clean, err := run(nil)
	if err != nil {
		return ResilienceCell{}, fmt.Errorf("%s/%s clean: %w", sys.Name, wl, err)
	}
	events, err := resilienceEvents(scen, sys.Top, clean)
	if err != nil {
		return ResilienceCell{}, err
	}
	// The clean scenario still runs with an attached (empty) scenario: the
	// cell's slowdown of exactly 1.0 is the study's built-in regression
	// check that a zero-event scenario is byte-identical to no scenario.
	perturbed, err := run(&scenario.Scenario{Name: scen, Events: events})
	if err != nil {
		return ResilienceCell{}, fmt.Errorf("%s/%s/%s: %w", sys.Name, wl, scen, err)
	}
	return ResilienceCell{
		Fabric:    sys.Name,
		Workload:  wl,
		Scenario:  scen,
		Clean:     clean,
		Perturbed: perturbed,
		Slowdown:  float64(perturbed) / float64(clean),
	}, nil
}

// Resilience runs the fabric x workload x scenario grid on the sweep
// engine.
func Resilience(o Options) (*ResilienceResult, error) {
	systems := resilienceFabrics()
	wls := ResilienceWorkloads()
	scens := ResilienceScenarios()
	wlNames := make([]string, len(wls))
	for i, wl := range wls {
		wlNames[i] = string(wl)
	}
	spec := sweep.Spec[ResilienceCell]{
		Name: "resilience",
		Axes: []sweep.Axis{
			systemAxis(systems),
			{Name: "workload", Values: wlNames},
			{Name: "scenario", Values: scens},
		},
		Cell: func(pt sweep.Point) (ResilienceCell, error) {
			return runResilienceCell(systems[pt.Index("system")], wls[pt.Index("workload")],
				scens[pt.Index("scenario")], o)
		},
		Fingerprint: func(pt sweep.Point) string {
			sys := systems[pt.Index("system")]
			return fmt.Sprintf("resilience|sys=%s|wl=%s|sc=%s|div=%d|chunks=%d|straggle=%g|npu=a100|mem=local-1us-2039|topo=%s",
				sys.Name, wls[pt.Index("workload")], scens[pt.Index("scenario")],
				o.layersDivisor(), o.chunks(), straggleFactor, topoFingerprint(sys.Top))
		},
	}
	res, err := sweep.Run(spec, o.Exec)
	if err != nil {
		return nil, err
	}
	return &ResilienceResult{Cells: res.Values()}, nil
}
