package core

import (
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/compute"
	"repro/internal/et"
	"repro/internal/memory"
	"repro/internal/topology"
	"repro/internal/units"
)

func testConfig(t *testing.T, top *topology.Topology) Config {
	t.Helper()
	return Config{
		Topology: top,
		Compute:  compute.Model{Peak: units.TFLOPS(100), MemBandwidth: units.GBps(2000)},
		Memory: memory.System{
			Local: memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2000)},
		},
	}
}

func ring4Top() *topology.Topology {
	return topology.MustNew(topology.Dim{
		Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100), Latency: 0,
	})
}

func run(t *testing.T, cfg Config, trace *et.Trace) *RunStats {
	t.Helper()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// symmetricTrace builds the same node list on every NPU.
func symmetricTrace(n int, build func(rank int) []*et.Node) *et.Trace {
	tr := &et.Trace{Name: "test", NumNPUs: n}
	for r := 0; r < n; r++ {
		tr.Graphs = append(tr.Graphs, &et.Graph{NPU: r, Nodes: build(r)})
	}
	return tr
}

func TestComputeOnlyTrace(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindCompute, FLOPs: 1e11}, // 1 ms at 100 TFLOPS
			{ID: 2, Kind: et.KindCompute, FLOPs: 1e11, Deps: []int{1}},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	if stats.Makespan != 2*units.Millisecond {
		t.Errorf("makespan = %v, want 2ms", stats.Makespan)
	}
	for i, b := range stats.PerNPU {
		if b.Compute != 2*units.Millisecond || b.Idle != 0 {
			t.Errorf("npu %d breakdown = %+v", i, b)
		}
	}
}

func TestParallelNodesOverlap(t *testing.T) {
	top := ring4Top()
	// Two independent 1 ms compute nodes run concurrently (async streams).
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindCompute, FLOPs: 1e11},
			{ID: 2, Kind: et.KindCompute, FLOPs: 1e11},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	if stats.Makespan != units.Millisecond {
		t.Errorf("makespan = %v, want 1ms (parallel)", stats.Makespan)
	}
}

func TestMemoryNodeTiming(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindMemory, MemOp: et.MemLoad, MemLocation: et.MemLocal, TensorBytes: int64(2 * units.GB)},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	want := units.Microsecond + units.Millisecond // latency + 2GB/2000GBps
	if stats.Makespan != want {
		t.Errorf("makespan = %v, want %v", stats.Makespan, want)
	}
	if stats.PerNPU[0].ExposedLocalMem != want {
		t.Errorf("exposed local mem = %v, want %v", stats.PerNPU[0].ExposedLocalMem, want)
	}
}

func TestCollectiveRendezvous(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB)},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	// All-Reduce 8MB on Ring(4)@100GB/s: traffic 2*2*8*(3/4) = 24MB -> 240us.
	want := units.FromMicros(240)
	if stats.Makespan != want {
		t.Errorf("makespan = %v, want %v", stats.Makespan, want)
	}
	if len(stats.Collectives) != 1 {
		t.Fatalf("collective log has %d entries", len(stats.Collectives))
	}
	if stats.PerNPU[2].ExposedComm != want {
		t.Errorf("exposed comm = %v, want %v", stats.PerNPU[2].ExposedComm, want)
	}
}

func TestStaggeredRendezvousWaitsCountAsComm(t *testing.T) {
	top := ring4Top()
	// NPU 0 computes 1 ms before joining; others wait at the collective.
	trace := symmetricTrace(4, func(rank int) []*et.Node {
		nodes := []*et.Node{}
		if rank == 0 {
			nodes = append(nodes, &et.Node{ID: 10, Kind: et.KindCompute, FLOPs: 1e11})
		}
		coll := &et.Node{ID: 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB)}
		if rank == 0 {
			coll.Deps = []int{10}
		}
		nodes = append(nodes, coll)
		return nodes
	})
	stats := run(t, testConfig(t, top), trace)
	want := units.Millisecond + units.FromMicros(240)
	if stats.Makespan != want {
		t.Errorf("makespan = %v, want %v", stats.Makespan, want)
	}
	// NPU 1 spent the whole run "communicating" (waiting + transferring).
	if stats.PerNPU[1].ExposedComm != want {
		t.Errorf("npu1 exposed comm = %v, want %v", stats.PerNPU[1].ExposedComm, want)
	}
	// NPU 0 hid the wait behind its compute.
	if stats.PerNPU[0].Compute != units.Millisecond {
		t.Errorf("npu0 compute = %v", stats.PerNPU[0].Compute)
	}
}

func TestComputeHidesCommunication(t *testing.T) {
	top := ring4Top()
	// A collective overlapped with a longer compute: comm fully hidden.
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindCompute, FLOPs: 1e12}, // 10 ms
			{ID: 2, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB)},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	if stats.Makespan != 10*units.Millisecond {
		t.Errorf("makespan = %v, want 10ms", stats.Makespan)
	}
	b := stats.PerNPU[0]
	if b.ExposedComm != 0 {
		t.Errorf("exposed comm = %v, want 0 (hidden)", b.ExposedComm)
	}
	if b.Compute != 10*units.Millisecond {
		t.Errorf("compute = %v", b.Compute)
	}
}

func TestSubgroupCollectives(t *testing.T) {
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(100)},
		topology.Dim{Kind: topology.Ring, Size: 2, Bandwidth: units.GBps(50)},
	)
	// Each dim-0 group runs its own All-Reduce; the two instances are
	// disjoint and concurrent.
	trace := symmetricTrace(8, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB),
				Group: &et.GroupRef{Spans: []et.SpanRef{{Phys: 0, K: 4, Stride: 1}}}},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	want := units.FromMicros(240)
	if stats.Makespan != want {
		t.Errorf("makespan = %v, want %v (concurrent groups)", stats.Makespan, want)
	}
}

func TestPipelineParallelP2P(t *testing.T) {
	top := ring4Top()
	// A 4-stage pipeline: stage r computes then sends to r+1. Different
	// NPUs run different node lists — the capability the graph engine adds.
	tr := &et.Trace{Name: "pp", NumNPUs: 4}
	const msg = int64(1 * units.MB) // 10 us per hop at 100 GB/s
	for r := 0; r < 4; r++ {
		var nodes []*et.Node
		id := 1
		if r > 0 {
			nodes = append(nodes, &et.Node{ID: id, Kind: et.KindRecv, Peer: r - 1, Tag: r, CommBytes: msg})
			id++
		}
		comp := &et.Node{ID: id, Kind: et.KindCompute, FLOPs: 1e11} // 1 ms
		if r > 0 {
			comp.Deps = []int{id - 1}
		}
		nodes = append(nodes, comp)
		id++
		if r < 3 {
			nodes = append(nodes, &et.Node{ID: id, Kind: et.KindSend, Peer: r + 1, Tag: r + 1, CommBytes: msg, Deps: []int{id - 1}})
		}
		tr.Graphs = append(tr.Graphs, &et.Graph{NPU: r, Nodes: nodes})
	}
	stats := run(t, testConfig(t, top), tr)
	// 4 compute stages of 1 ms plus 3 transfers of 10 us.
	want := 4*units.Millisecond + 30*units.Microsecond
	if stats.Makespan != want {
		t.Errorf("makespan = %v, want %v", stats.Makespan, want)
	}
	// Stage 3 idles while the pipeline fills (recv waits are idle time).
	if stats.PerNPU[3].Idle <= 0 {
		t.Errorf("stage 3 idle = %v, want fill-bubble idle", stats.PerNPU[3].Idle)
	}
	if stats.PerNPU[0].Idle == 0 {
		t.Error("stage 0 should idle after sending")
	}
}

func TestDeadlockDetection(t *testing.T) {
	top := ring4Top()
	// NPU 0 waits on a recv that nobody sends. Bypass trace validation by
	// constructing the simulator input directly: Run validates, so give a
	// matching send on NPU 1 that itself depends on an impossible
	// collective rendezvous (NPU 1 joins a collective nobody else joins).
	tr := symmetricTrace(4, func(rank int) []*et.Node {
		if rank != 1 {
			return []*et.Node{{ID: 1, Kind: et.KindCompute, FLOPs: 1}}
		}
		return []*et.Node{
			{ID: 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: 1024},
		}
	})
	sim, err := NewSimulator(testConfig(t, top))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(tr)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error = %v, want deadlock report", err)
	}
}

func TestTraceTopologyMismatch(t *testing.T) {
	sim, err := NewSimulator(testConfig(t, ring4Top()))
	if err != nil {
		t.Fatal(err)
	}
	tr := symmetricTrace(2, func(int) []*et.Node {
		return []*et.Node{{ID: 1, Kind: et.KindCompute, FLOPs: 1}}
	})
	if _, err := sim.Run(tr); err == nil {
		t.Error("expected NPU-count mismatch error")
	}
}

func TestBreakdownSumsToMakespan(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(rank int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindCompute, FLOPs: 5e10},
			{ID: 2, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(4 * units.MB), Deps: []int{1}},
			{ID: 3, Kind: et.KindMemory, MemOp: et.MemStore, MemLocation: et.MemLocal, TensorBytes: int64(64 * units.MB), Deps: []int{2}},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	for i, b := range stats.PerNPU {
		if b.Total() != stats.Makespan {
			t.Errorf("npu %d breakdown total %v != makespan %v (%+v)", i, b.Total(), stats.Makespan, b)
		}
	}
	m := stats.MeanBreakdown()
	if m.Total() != stats.Makespan {
		t.Errorf("mean breakdown total %v != makespan %v", m.Total(), stats.Makespan)
	}
}

func TestThemisPolicyWiredThrough(t *testing.T) {
	// The slow dimension comes first: the baseline's fixed ascending order
	// runs the largest Reduce-Scatter phase on it, which Themis avoids.
	top := topology.MustNew(
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(50)},
		topology.Dim{Kind: topology.Ring, Size: 4, Bandwidth: units.GBps(400)},
	)
	mk := func(policy collective.Policy) units.Time {
		cfg := testConfig(t, top)
		cfg.Policy = policy
		trace := symmetricTrace(16, func(int) []*et.Node {
			return []*et.Node{
				{ID: 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(256 * units.MB)},
			}
		})
		return run(t, cfg, trace).Makespan
	}
	base, themis := mk(collective.Baseline), mk(collective.Themis)
	if themis >= base {
		t.Errorf("Themis (%v) should beat baseline (%v) on unbalanced dims", themis, base)
	}
}

func TestInSwitchCollective(t *testing.T) {
	top := ring4Top()
	cfg := testConfig(t, top)
	cfg.Memory.HasPool = true
	cfg.Memory.Pool = memory.PoolConfig{
		Design:             memory.Hierarchical,
		NumNodes:           2,
		GPUsPerNode:        2,
		NumOutSwitches:     2,
		NumRemoteGroups:    4,
		ChunkSize:          units.MiB,
		RemoteGroupBW:      units.GBps(100),
		GPUSideOutFabricBW: units.GBps(100),
		InNodeFabricBW:     units.GBps(256),
	}
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindComm, Collective: et.CollAllGather, CommBytes: int64(32 * units.MiB), InSwitch: true},
		}
	})
	stats := run(t, cfg, trace)
	// The pool's W is the per-GPU pre-gather shard: CommBytes / |group|.
	want := cfg.Memory.Pool.InSwitchCollectiveTime(32 * units.MiB / 4)
	if stats.Makespan != want {
		t.Errorf("in-switch makespan = %v, want %v", stats.Makespan, want)
	}
	if stats.PerNPU[0].ExposedComm != want {
		t.Errorf("in-switch time should be attributed to comm, got %+v", stats.PerNPU[0])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSimulator(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig(t, ring4Top())
	cfg.Chunks = -1
	if _, err := NewSimulator(cfg); err == nil {
		t.Error("negative chunks accepted")
	}
}

func TestMultipleSequentialCollectives(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB)},
			{ID: 2, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB), Deps: []int{1}},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	if stats.Makespan != units.FromMicros(480) {
		t.Errorf("two sequential All-Reduces = %v, want 480us", stats.Makespan)
	}
	if len(stats.Collectives) != 2 {
		t.Errorf("logged %d collectives, want 2", len(stats.Collectives))
	}
}

func TestCollectiveLogLimit(t *testing.T) {
	top := ring4Top()
	cfg := testConfig(t, top)
	cfg.CollectiveLogLimit = 2
	trace := symmetricTrace(4, func(int) []*et.Node {
		nodes := make([]*et.Node, 5)
		for i := range nodes {
			nodes[i] = &et.Node{ID: i + 1, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(units.MB)}
			if i > 0 {
				nodes[i].Deps = []int{i}
			}
		}
		return nodes
	})
	stats := run(t, cfg, trace)
	if len(stats.Collectives) != 2 {
		t.Errorf("logged %d collectives, want cap of 2", len(stats.Collectives))
	}
}

func TestRunStatsTrafficPerDim(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindComm, Collective: et.CollAllGather, CommBytes: int64(8 * units.MB)},
		}
	})
	stats := run(t, testConfig(t, top), trace)
	// All-Gather(8MB) on Ring(4): per-NPU sent+received = 2*2MB*3 = 12MB.
	if got := stats.TrafficPerDim[0]; got != 12*units.MB {
		t.Errorf("TrafficPerDim = %v, want 12MB", got)
	}
}

func TestTimelineRecording(t *testing.T) {
	top := ring4Top()
	cfg := testConfig(t, top)
	cfg.RecordTimeline = true
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{
			{ID: 1, Kind: et.KindCompute, FLOPs: 1e11},
			{ID: 2, Kind: et.KindComm, Collective: et.CollAllReduce, CommBytes: int64(8 * units.MB), Deps: []int{1}},
		}
	})
	stats := run(t, cfg, trace)
	if len(stats.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	// Intervals must be well-formed, per-NPU non-overlapping, and their
	// per-category sums must equal the breakdown.
	perNPU := map[int]units.Time{}
	for _, iv := range stats.Timeline {
		if iv.End <= iv.Start {
			t.Fatalf("degenerate interval %+v", iv)
		}
		perNPU[iv.NPU] += iv.End - iv.Start
	}
	for npu, total := range perNPU {
		b := stats.PerNPU[npu]
		want := b.Compute + b.ExposedComm + b.ExposedRemoteMem + b.ExposedLocalMem
		if total != want {
			t.Errorf("npu %d timeline covers %v, breakdown non-idle is %v", npu, total, want)
		}
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	top := ring4Top()
	trace := symmetricTrace(4, func(int) []*et.Node {
		return []*et.Node{{ID: 1, Kind: et.KindCompute, FLOPs: 1e9}}
	})
	stats := run(t, testConfig(t, top), trace)
	if stats.Timeline != nil {
		t.Error("timeline recorded without RecordTimeline")
	}
}

// A trace whose node list is NOT in ascending-ID order must simulate
// identically to its sorted twin: the initial ready batch is issued in
// ascending-ID order either way (generated traces hit the sort-free fast
// path; shuffled external traces take the sorting fallback).
func TestShuffledNodeListMatchesSorted(t *testing.T) {
	top := ring4Top()
	// Two independent roots plus a dependent P2P pair so issue order is
	// observable through link reservation and rendezvous timing.
	build := func(shuffled bool) *et.Trace {
		return symmetricTrace(4, func(rank int) []*et.Node {
			peer := (rank + 1) % 4
			prev := (rank + 3) % 4
			nodes := []*et.Node{
				{ID: 1, Kind: et.KindCompute, FLOPs: 2e11},
				{ID: 2, Kind: et.KindCompute, FLOPs: 1e11},
				{ID: 3, Kind: et.KindSend, Peer: peer, Tag: rank, CommBytes: 1 << 20, Deps: []int{1}},
				{ID: 4, Kind: et.KindRecv, Peer: prev, Tag: prev, CommBytes: 1 << 20, Deps: []int{2}},
			}
			if shuffled {
				nodes[0], nodes[2] = nodes[2], nodes[0] // 3,2,1,4: not ascending
			}
			return nodes
		})
	}
	sorted := run(t, testConfig(t, top), build(false))
	shuffled := run(t, testConfig(t, top), build(true))
	if sorted.Makespan != shuffled.Makespan {
		t.Errorf("shuffled node list changed makespan: %v vs %v", shuffled.Makespan, sorted.Makespan)
	}
	if sorted.Events != shuffled.Events {
		t.Errorf("shuffled node list changed event count: %d vs %d", shuffled.Events, sorted.Events)
	}
	for i := range sorted.PerNPU {
		if sorted.PerNPU[i] != shuffled.PerNPU[i] {
			t.Errorf("npu %d breakdown differs: %+v vs %+v", i, shuffled.PerNPU[i], sorted.PerNPU[i])
		}
	}
}
