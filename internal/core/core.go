// Package core is the simulator's system layer plus the paper's graph-based
// execution engine (Section IV-A): each NPU independently consumes its
// execution-trace graph, issuing compute nodes to the roofline model,
// memory nodes to the memory API, and communication nodes to the collective
// engine or the point-to-point network API. Dependent nodes become ready
// when all parents complete; NPUs run different operations at the same
// time, which is what enables pipeline parallelism and other asymmetric
// strategies.
//
// The engine also implements the collective rendezvous protocol: the k-th
// collective issued on a communicator instance by each member NPU is the
// same logical collective, and it launches once every member has reached
// it — synchronous-training semantics.
package core

import (
	"fmt"
	"sort"

	"repro/internal/collective"
	"repro/internal/compute"
	"repro/internal/et"
	"repro/internal/memory"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Config assembles a simulated machine.
type Config struct {
	Topology *topology.Topology
	Compute  compute.Model
	Memory   memory.System
	// Policy selects the collective chunk scheduler (Baseline or Themis).
	Policy collective.Policy
	// Chunks is the collective pipelining depth (default 64).
	Chunks int
	// Shards selects the event engine driving this simulator: <= 1 runs
	// the serial engine, larger values a sharded engine whose pending-event
	// set is partitioned across that many timeline shards, synchronized
	// with conservative lookahead (the topology's minimum link latency).
	// Simulated output is byte-identical for every value; sharding pays
	// off at large NPU counts, where heap maintenance dominates. Ignored
	// by NewSimulatorOn, which drives whatever engine the caller supplies.
	Shards int
	// Memo, when non-nil, caches whole-machine collective sub-results
	// across runs sharing the table — sweep and search re-evaluations
	// replay identical collectives instead of re-simulating them. Output
	// is byte-identical with or without it.
	Memo *collective.Memo
	// CollectiveLogLimit caps how many collective results are retained in
	// the run stats (default 1024; 0 keeps none).
	CollectiveLogLimit int
	// RecordTimeline retains each NPU's activity intervals in the run
	// stats (for Chrome-trace export). Off by default: a large run
	// produces one interval per activity change per NPU.
	RecordTimeline bool
	// ModelTransitCongestion enables first-order congestion on the
	// analytical backend: ring point-to-point messages occupy every link
	// they transit (the paper's stated future work). Off by default —
	// endpoint charging is exact for congestion-free hierarchical
	// collectives.
	ModelTransitCongestion bool
	// FlowController, when non-nil, arbitrates this simulator's network
	// flows against other simulators space-sharing the same physical
	// fabric — the multi-job cluster layer. Nil keeps the backend's
	// allocation-free isolated behavior.
	FlowController network.FlowController
	// RemoteArbiter, when non-nil, scales remote-memory access (and
	// in-switch collective) durations by cross-job memory-pool contention.
	RemoteArbiter RemoteArbiter
	// Scenario, when non-nil, injects timed infrastructure perturbations —
	// link degradation/restoration, link/NPU failures, compute stragglers —
	// as events on the simulator's timeline, with times relative to the
	// trace's release. Every event counts as foreign activity on the
	// network backend, so memoized collective replays roll back across
	// perturbations; a scenario with no events leaves the run byte-identical
	// to a clean one.
	Scenario *scenario.Scenario
}

// RemoteArbiter arbitrates a remote memory pool shared by several
// co-scheduled simulators. RemoteStarted is called when a remote access
// begins and returns the contention factor (>= 1) multiplying its
// duration; RemoteFinished is called when the access completes. Both run
// on the single-threaded event engine.
type RemoteArbiter interface {
	RemoteStarted() float64
	RemoteFinished()
}

// Activity labels a timeline interval's attribution category.
type Activity string

// Timeline activity categories (matching the Breakdown fields).
const (
	ActCompute   Activity = "compute"
	ActComm      Activity = "comm"
	ActRemoteMem Activity = "remote-mem"
	ActLocalMem  Activity = "local-mem"
	ActIdle      Activity = "idle"
)

// Interval is one attributed span of an NPU's timeline.
type Interval struct {
	NPU      int
	Activity Activity
	Start    units.Time
	End      units.Time
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topology == nil {
		return fmt.Errorf("core: config needs a topology")
	}
	if err := c.Compute.Validate(); err != nil {
		return err
	}
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	if c.Chunks < 0 {
		return fmt.Errorf("core: negative chunk count")
	}
	if c.Scenario != nil {
		if err := c.Scenario.Validate(c.Topology.NumNPUs(), c.Topology.NumDims()); err != nil {
			return err
		}
	}
	return nil
}

// Breakdown is the per-NPU exposed-time attribution of Fig. 11: every
// instant of the run is attributed to exactly one category, with compute
// hiding communication, communication hiding memory, and remote memory
// hiding local memory.
type Breakdown struct {
	Compute          units.Time
	ExposedComm      units.Time
	ExposedRemoteMem units.Time
	ExposedLocalMem  units.Time
	Idle             units.Time
}

// Total returns the sum of all categories (the NPU's wall-clock span).
func (b Breakdown) Total() units.Time {
	return b.Compute + b.ExposedComm + b.ExposedRemoteMem + b.ExposedLocalMem + b.Idle
}

// RunStats is the result of one simulated execution.
type RunStats struct {
	// Makespan is the end-to-end simulated runtime.
	Makespan units.Time
	// PerNPU holds each NPU's exposed-time breakdown.
	PerNPU []Breakdown
	// Collectives logs completed collectives (capped by config).
	Collectives []collective.Result
	// TrafficPerDim is the per-NPU mean sent+received bytes per physical
	// dimension across the whole run.
	TrafficPerDim []units.ByteSize
	// Events is the number of discrete events executed.
	Events uint64
	// Timeline holds each NPU's attributed activity intervals when
	// Config.RecordTimeline is set (idle spans are omitted).
	Timeline []Interval
}

// MeanBreakdown averages the per-NPU breakdowns.
func (s RunStats) MeanBreakdown() Breakdown {
	var m Breakdown
	if len(s.PerNPU) == 0 {
		return m
	}
	for _, b := range s.PerNPU {
		m.Compute += b.Compute
		m.ExposedComm += b.ExposedComm
		m.ExposedRemoteMem += b.ExposedRemoteMem
		m.ExposedLocalMem += b.ExposedLocalMem
		m.Idle += b.Idle
	}
	n := units.Time(len(s.PerNPU))
	m.Compute /= n
	m.ExposedComm /= n
	m.ExposedRemoteMem /= n
	m.ExposedLocalMem /= n
	m.Idle /= n
	return m
}

// Simulator executes traces over a configured machine. A Simulator is
// single-use: construct, Run once, read stats. Several simulators may
// share one timeline engine (NewSimulatorOn) to model co-scheduled jobs;
// each keeps its own network backend, collective engine and trace state.
type Simulator struct {
	cfg  Config
	eng  timeline.Scheduler
	net  *network.Backend
	coll *collective.Engine

	npus []*npuState

	rendezvous map[rendezvousKey]*pendingCollective
	collSeq    map[collSeqKey]int

	collLog   []collective.Result
	remaining int

	// straggle holds per-NPU compute-time multipliers set by scenario
	// events; the zero value means no stragglers.
	straggle compute.ScaleTable

	// startAt is the simulated time the trace was released (job arrival);
	// finished is when its last node completed.
	startAt  units.Time
	finished units.Time
}

type npuState struct {
	rank      int
	indeg     map[int]int
	children  map[int][]*et.Node
	nodes     map[int]*et.Node
	completed map[int]bool
	pending   int

	// Activity counters for exposed-time attribution.
	nCompute, nComm, nRemote, nLocal int
	lastTouch                        units.Time
	breakdown                        Breakdown

	// timeline accumulates attributed intervals when recording is on;
	// contiguous same-activity intervals are merged as they are appended.
	timeline  []Interval
	recording bool
}

type rendezvousKey struct {
	sig string
	seq int
}

type collSeqKey struct {
	rank int
	sig  string
}

type pendingCollective struct {
	group   collective.Group
	members []int
	arrived int
	nodes   map[int]*et.Node // rank -> node to complete
}

// NewSimulator builds a simulator for the given machine configuration,
// driven by its own private event engine — serial, or sharded per
// Config.Shards.
func NewSimulator(cfg Config) (*Simulator, error) {
	eng := timeline.ForShards(cfg.Shards)
	if cfg.Topology != nil {
		ApplyLookahead(eng, cfg.Topology)
	}
	return NewSimulatorOn(eng, cfg)
}

// ApplyLookahead configures a sharded engine's conservative
// synchronization window from the machine it will simulate: the topology's
// minimum link latency, below which no NPU can react to another, so
// batching a window of that width never reorders observable events (the
// engine re-syncs on shorter-range self-scheduling regardless — the window
// only sets the batch size, never correctness). Serial engines are
// unaffected.
func ApplyLookahead(eng timeline.Scheduler, top *topology.Topology) {
	sg, ok := eng.(*timeline.ShardGroup)
	if !ok {
		return
	}
	var min units.Time
	for i, d := range top.Dims {
		if i == 0 || d.Latency < min {
			min = d.Latency
		}
	}
	sg.SetLookahead(min)
}

// NewSimulatorOn builds a simulator driven by an existing engine, so
// several simulators — the jobs of a multi-tenant cluster — can interleave
// on one shared timeline. The caller runs the engine itself and collects
// each simulator's statistics with Finalize.
func NewSimulatorOn(eng timeline.Scheduler, cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Chunks == 0 {
		cfg.Chunks = 64
	}
	if cfg.CollectiveLogLimit == 0 {
		cfg.CollectiveLogLimit = 1024
	}
	net := network.NewBackend(eng, cfg.Topology)
	net.SetTransitCharging(cfg.ModelTransitCongestion)
	net.SetFlowController(cfg.FlowController)
	coll := collective.NewEngine(net,
		collective.WithPolicy(cfg.Policy),
		collective.WithChunks(cfg.Chunks),
		collective.WithMemo(cfg.Memo))
	return &Simulator{
		cfg:        cfg,
		eng:        eng,
		net:        net,
		coll:       coll,
		rendezvous: make(map[rendezvousKey]*pendingCollective),
		collSeq:    make(map[collSeqKey]int),
	}, nil
}

// Run executes the trace to completion on the simulator's engine and
// returns the run statistics — the single-job path.
func (s *Simulator) Run(trace *et.Trace) (*RunStats, error) {
	if err := s.Start(trace, s.eng.Now()); err != nil {
		return nil, err
	}
	if _, err := s.eng.Run(); err != nil {
		return nil, err
	}
	return s.Finalize()
}

// Start validates the trace, builds the dependency state and releases the
// initially ready nodes at simulated time `at` (the job's arrival). When
// `at` equals the engine's current clock the nodes are issued immediately,
// preserving the isolated-run event order exactly; a later arrival is
// scheduled as a timeline event. The caller then runs the shared engine
// and calls Finalize.
func (s *Simulator) Start(trace *et.Trace, at units.Time) error {
	if s.npus != nil {
		return fmt.Errorf("core: simulator already started (single-use)")
	}
	if err := trace.Validate(); err != nil {
		return err
	}
	if trace.NumNPUs != s.cfg.Topology.NumNPUs() {
		return fmt.Errorf("core: trace is for %d NPUs but topology has %d",
			trace.NumNPUs, s.cfg.Topology.NumNPUs())
	}
	if at < s.eng.Now() {
		return fmt.Errorf("core: start time %v is in the engine's past (now %v)", at, s.eng.Now())
	}
	s.startAt = at

	s.npus = make([]*npuState, trace.NumNPUs)
	graphs := make([]*et.Graph, trace.NumNPUs)
	for _, g := range trace.Graphs {
		graphs[g.NPU] = g
	}
	for rank, g := range graphs {
		st := &npuState{
			rank:      rank,
			indeg:     make(map[int]int, len(g.Nodes)),
			children:  make(map[int][]*et.Node, len(g.Nodes)),
			nodes:     make(map[int]*et.Node, len(g.Nodes)),
			completed: make(map[int]bool, len(g.Nodes)),
			pending:   len(g.Nodes),
			lastTouch: at,
			recording: s.cfg.RecordTimeline,
		}
		for _, n := range g.Nodes {
			st.nodes[n.ID] = n
			st.indeg[n.ID] = len(n.Deps)
			for _, d := range n.Deps {
				st.children[d] = append(st.children[d], n)
			}
		}
		s.npus[rank] = st
		s.remaining += st.pending
	}

	// Schedule scenario events before the release so perturbations due at
	// the release instant apply before the first nodes issue — a t=0
	// straggler must already slow the job's first compute operators.
	if s.cfg.Scenario != nil {
		for _, ev := range s.cfg.Scenario.Events {
			ev := ev
			if fireAt := at + ev.At; fireAt > s.eng.Now() {
				s.eng.ScheduleAt(fireAt, func() { s.applyScenarioEvent(ev) })
			} else {
				s.applyScenarioEvent(ev)
			}
		}
	}

	if at == s.eng.Now() {
		s.release(graphs)
	} else {
		s.eng.ScheduleAt(at, func() { s.release(graphs) })
	}
	return nil
}

// applyScenarioEvent dispatches one perturbation to the layer it targets.
// The network mutation hooks validate their arguments and degrade to no-ops
// on out-of-range targets, so a validated scenario can never panic here.
func (s *Simulator) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.DegradeLink:
		s.net.SetDimBandwidthScale(ev.Dim, ev.Factor)
	case scenario.RestoreLink:
		s.net.SetDimBandwidthScale(ev.Dim, 1)
	case scenario.FailLink:
		s.net.SetDimBandwidthScale(ev.Dim, scenario.FailedLinkResidual)
		if ev.Recovery > 0 {
			dim := ev.Dim
			s.eng.Schedule(ev.Recovery, func() { s.net.SetDimBandwidthScale(dim, 1) })
		}
	case scenario.FailNPU:
		s.net.StallNPULinks(ev.NPU, s.eng.Now()+ev.Recovery)
	case scenario.StraggleNPU:
		s.straggle.Set(s.cfg.Topology.NumNPUs(), ev.NPU, ev.Factor)
	}
}

// release issues every initially ready node in ascending-ID order. The
// trace builders assign IDs in insertion order, so for every generated
// (and round-tripped) trace the node list already IS that order and no
// sort runs; externally authored traces with a shuffled node list fall
// back to sorting so their issue order — and therefore their simulated
// output — is independent of list order.
func (s *Simulator) release(graphs []*et.Graph) {
	for rank, g := range graphs {
		st := s.npus[rank]
		ascending := true
		for i := 1; i < len(g.Nodes); i++ {
			if g.Nodes[i].ID < g.Nodes[i-1].ID {
				ascending = false
				break
			}
		}
		if ascending {
			for _, n := range g.Nodes {
				if st.indeg[n.ID] == 0 {
					s.issue(st, n)
				}
			}
			continue
		}
		ids := make([]int, 0, len(g.Nodes))
		for _, n := range g.Nodes {
			if st.indeg[n.ID] == 0 {
				ids = append(ids, n.ID)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			s.issue(st, st.nodes[id])
		}
	}
}

// StartTime returns the simulated time the trace was released.
func (s *Simulator) StartTime() units.Time { return s.startAt }

// FinishTime returns the simulated time the last node completed; valid
// once Done reports true.
func (s *Simulator) FinishTime() units.Time { return s.finished }

// Done reports whether every node of the trace has completed.
func (s *Simulator) Done() bool { return s.npus != nil && s.remaining == 0 }

// Finalize collects the run statistics after the engine has drained. The
// Makespan is the span from the trace's release to its last node's
// completion; on a shared engine, Events counts every event the engine
// fired, across all simulators driving it.
func (s *Simulator) Finalize() (*RunStats, error) {
	if s.npus == nil {
		return nil, fmt.Errorf("core: Finalize before Start")
	}
	if s.remaining > 0 {
		return nil, fmt.Errorf("core: simulation deadlocked with %d nodes pending (unmatched P2P or incomplete collective rendezvous); first stuck: %s",
			s.remaining, s.describeStuck())
	}

	makespan := s.finished - s.startAt
	stats := &RunStats{
		Makespan:    makespan,
		PerNPU:      make([]Breakdown, len(s.npus)),
		Collectives: s.collLog,
		Events:      s.eng.Fired(),
	}
	for i, st := range s.npus {
		st.touch(s.finished)
		st.breakdown.Idle += s.finished - st.lastTouch
		st.lastTouch = s.finished
		stats.PerNPU[i] = st.breakdown
		if s.cfg.RecordTimeline {
			stats.Timeline = append(stats.Timeline, st.timeline...)
		}
	}
	netStats := s.net.Stats()
	stats.TrafficPerDim = make([]units.ByteSize, s.cfg.Topology.NumDims())
	n := units.ByteSize(len(s.npus))
	for d := range stats.TrafficPerDim {
		var sum units.ByteSize
		for rank := range s.npus {
			sum += netStats.SentPerNPUDim[rank][d] + netStats.RecvPerNPUDim[rank][d]
		}
		stats.TrafficPerDim[d] = sum / n
	}
	return stats, nil
}

func (s *Simulator) describeStuck() string {
	// Prefer an issued-but-unfinished node (e.g. a receive whose sender
	// never arrived, or a collective missing members) over a node that was
	// never ready.
	for _, st := range s.npus {
		for id, deg := range st.indeg {
			if deg == issuedMark && !st.completed[id] {
				n := st.nodes[id]
				return fmt.Sprintf("npu %d node %d (%s %s, in flight)", st.rank, id, n.Kind, n.Name)
			}
		}
	}
	for _, st := range s.npus {
		for id, deg := range st.indeg {
			if deg > 0 {
				n := st.nodes[id]
				return fmt.Sprintf("npu %d node %d (%s %s, %d deps unmet)", st.rank, id, n.Kind, n.Name, deg)
			}
		}
	}
	return "unknown"
}

// issuedMark flags a node that has been dispatched to its layer.
const issuedMark = -1

// touch accumulates the attribution interval since the last state change.
// Precedence: compute > comm > remote memory > local memory > idle.
func (st *npuState) touch(now units.Time) {
	dt := now - st.lastTouch
	if dt <= 0 {
		st.lastTouch = now
		return
	}
	var act Activity
	switch {
	case st.nCompute > 0:
		st.breakdown.Compute += dt
		act = ActCompute
	case st.nComm > 0:
		st.breakdown.ExposedComm += dt
		act = ActComm
	case st.nRemote > 0:
		st.breakdown.ExposedRemoteMem += dt
		act = ActRemoteMem
	case st.nLocal > 0:
		st.breakdown.ExposedLocalMem += dt
		act = ActLocalMem
	default:
		st.breakdown.Idle += dt
		act = ActIdle
	}
	if st.recording && act != ActIdle {
		if n := len(st.timeline); n > 0 && st.timeline[n-1].Activity == act && st.timeline[n-1].End == st.lastTouch {
			st.timeline[n-1].End = now
		} else {
			st.timeline = append(st.timeline, Interval{
				NPU: st.rank, Activity: act, Start: st.lastTouch, End: now,
			})
		}
	}
	st.lastTouch = now
}

// issue dispatches a ready node to its layer.
func (s *Simulator) issue(st *npuState, n *et.Node) {
	st.indeg[n.ID] = issuedMark
	switch n.Kind {
	case et.KindCompute:
		dur := s.cfg.Compute.OpTime(n.FLOPs, units.ByteSize(n.MemBytes))
		if s.straggle.Active() {
			dur = s.straggle.Scale(st.rank, dur)
		}
		s.runTimed(st, n, dur, &st.nCompute)
	case et.KindMemory:
		loc := memory.Local
		counter := &st.nLocal
		if n.MemLocation == et.MemRemote {
			loc = memory.Remote
			counter = &st.nRemote
		}
		kind := memory.LoadAccess
		if n.MemOp == et.MemStore {
			kind = memory.StoreAccess
		}
		dur := s.cfg.Memory.AccessTime(loc, kind, units.ByteSize(n.TensorBytes))
		if loc == memory.Remote && s.cfg.RemoteArbiter != nil {
			s.runRemote(st, n, dur, counter)
			return
		}
		s.runTimed(st, n, dur, counter)
	case et.KindComm:
		s.issueCollective(st, n)
	case et.KindSend:
		s.markBusy(st, &st.nComm)
		s.net.SimSend(st.rank, n.Peer, n.Tag, units.ByteSize(n.CommBytes), func() {
			s.markFree(st, &st.nComm)
			s.complete(st, n)
		})
	case et.KindRecv:
		// A receive is pure synchronization: the message's wire time is
		// attributed to the sender's link, and waiting for a peer that has
		// not sent yet is idle time (this is what makes pipeline bubbles
		// visible in the breakdown).
		s.net.SimRecv(n.Peer, st.rank, n.Tag, units.ByteSize(n.CommBytes), func(network.Message) {
			st.touch(s.eng.Now())
			s.complete(st, n)
		})
	default:
		panic(fmt.Sprintf("core: unknown node kind %q", n.Kind))
	}
}

// runTimed executes a node with a fixed duration under an activity counter.
func (s *Simulator) runTimed(st *npuState, n *et.Node, dur units.Time, counter *int) {
	s.markBusy(st, counter)
	s.eng.Schedule(dur, func() {
		s.markFree(st, counter)
		s.complete(st, n)
	})
}

// runRemote executes a remote-memory node under the cross-job pool
// arbiter: the access duration is stretched by the contention factor at
// issue time and the arbiter is released on completion.
func (s *Simulator) runRemote(st *npuState, n *et.Node, dur units.Time, counter *int) {
	if f := s.cfg.RemoteArbiter.RemoteStarted(); f > 1 {
		dur = units.Time(float64(dur) * f)
	}
	s.markBusy(st, counter)
	s.eng.Schedule(dur, func() {
		s.cfg.RemoteArbiter.RemoteFinished()
		s.markFree(st, counter)
		s.complete(st, n)
	})
}

func (s *Simulator) markBusy(st *npuState, counter *int) {
	st.touch(s.eng.Now())
	*counter++
}

func (s *Simulator) markFree(st *npuState, counter *int) {
	st.touch(s.eng.Now())
	*counter--
}

// issueCollective implements the rendezvous protocol and launches the
// collective when the last member arrives.
func (s *Simulator) issueCollective(st *npuState, n *et.Node) {
	group, err := s.resolveGroup(n, st.rank)
	if err != nil {
		panic(fmt.Sprintf("core: npu %d node %d: %v", st.rank, n.ID, err))
	}
	sig := group.Signature(s.cfg.Topology)
	if n.InSwitch {
		sig = "insw/" + sig
	}
	seqKey := collSeqKey{rank: st.rank, sig: sig}
	seq := s.collSeq[seqKey]
	s.collSeq[seqKey] = seq + 1

	key := rendezvousKey{sig: sig, seq: seq}
	p := s.rendezvous[key]
	if p == nil {
		p = &pendingCollective{
			group:   group,
			members: group.Members(s.cfg.Topology),
			nodes:   make(map[int]*et.Node),
		}
		s.rendezvous[key] = p
	}
	p.nodes[st.rank] = n
	p.arrived++
	s.markBusy(st, &st.nComm) // waiting for peers counts as communication
	if p.arrived < len(p.members) {
		return
	}
	delete(s.rendezvous, key)
	s.launchCollective(p, n)
}

func (s *Simulator) launchCollective(p *pendingCollective, n *et.Node) {
	finish := func(res collective.Result, ok bool) {
		for _, rank := range p.members {
			member := s.npus[rank]
			node := p.nodes[rank]
			s.markFree(member, &member.nComm)
			s.complete(member, node)
		}
		if ok && len(s.collLog) < s.cfg.CollectiveLogLimit {
			s.collLog = append(s.collLog, res)
		}
	}

	if n.InSwitch && s.cfg.Memory.HasPool && s.cfg.Memory.Pool.SupportsInSwitchCollectives() {
		// Fused in-switch collective through the memory fabric: all
		// members complete together after the pipelined fabric time. The
		// pool model's W is the per-GPU pre-gather shard, so an
		// All-Gather whose members each end with CommBytes contributes
		// CommBytes/|group| per GPU (and symmetrically for the
		// reduce-on-store direction).
		shard := units.ByteSize(n.CommBytes) / units.ByteSize(len(p.members))
		if shard < 1 {
			shard = 1
		}
		dur := s.cfg.Memory.Pool.InSwitchCollectiveTime(shard)
		arb := s.cfg.RemoteArbiter
		if arb != nil {
			// In-switch collectives stream through the shared pool fabric,
			// so they contend like any other remote access.
			if f := arb.RemoteStarted(); f > 1 {
				dur = units.Time(float64(dur) * f)
			}
		}
		start := s.eng.Now()
		s.eng.Schedule(dur, func() {
			if arb != nil {
				arb.RemoteFinished()
			}
			finish(collective.Result{
				Op:    mapCollective(n.Collective),
				Size:  units.ByteSize(n.CommBytes),
				Start: start,
				End:   s.eng.Now(),
			}, true)
		})
		return
	}

	op := mapCollective(n.Collective)
	err := s.coll.Start(op, units.ByteSize(n.CommBytes), p.group, func(res collective.Result) {
		finish(res, true)
	})
	if err != nil {
		panic(fmt.Sprintf("core: collective launch failed: %v", err))
	}
}

func mapCollective(c et.CollectiveType) collective.Op {
	switch c {
	case et.CollAllReduce:
		return collective.AllReduce
	case et.CollAllGather:
		return collective.AllGather
	case et.CollReduceScatter:
		return collective.ReduceScatter
	case et.CollAllToAll:
		return collective.AllToAll
	default:
		panic(fmt.Sprintf("core: unknown collective %q", c))
	}
}

// resolveGroup turns a trace GroupRef into a concrete communicator group
// rooted at the issuing NPU.
func (s *Simulator) resolveGroup(n *et.Node, rank int) (collective.Group, error) {
	if n.Group == nil || len(n.Group.Spans) == 0 {
		g := collective.FullMachine(s.cfg.Topology)
		g.Base = rank
		return g, nil
	}
	spans := make([]collective.Span, len(n.Group.Spans))
	for i, sp := range n.Group.Spans {
		spans[i] = collective.Span{Phys: sp.Phys, K: sp.K, Stride: sp.Stride}
	}
	return collective.NewSpanGroup(s.cfg.Topology, spans, rank)
}

// complete finishes a node and unlocks its children.
func (s *Simulator) complete(st *npuState, n *et.Node) {
	st.completed[n.ID] = true
	st.pending--
	s.remaining--
	if s.remaining == 0 {
		s.finished = s.eng.Now()
	}
	for _, child := range st.children[n.ID] {
		st.indeg[child.ID]--
		if st.indeg[child.ID] == 0 {
			s.issue(st, child)
		}
	}
}
