// Package memory implements ASTRA-sim 2.0's memory API (Section IV-D):
// local HBM access, disaggregated remote memory pools in the four designs
// of Fig. 5 (multi-level switch, ring, mesh, hierarchical), the pipelined
// multi-stage transfer model of Figs. 6-7, in-switch collective
// communication (Fig. 8), and a ZeRO-Infinity-style baseline in which each
// GPU owns a private remote path (Fig. 10).
//
// The memory API "takes tensor location (local or remote), tensor size,
// memory bandwidth, and memory system design as arguments and returns the
// number of cycles to load or store a tensor" — here expressed as
// simulated time rather than cycles, consistent with the rest of the
// simulator.
package memory

import (
	"fmt"

	"repro/internal/units"
)

// Location says where a tensor lives.
type Location int

// Tensor locations.
const (
	Local Location = iota
	Remote
)

// String names the location.
func (l Location) String() string {
	if l == Remote {
		return "remote"
	}
	return "local"
}

// AccessKind distinguishes loads from stores.
type AccessKind int

// Access kinds.
const (
	LoadAccess AccessKind = iota
	StoreAccess
)

// String names the access kind.
func (k AccessKind) String() string {
	if k == StoreAccess {
		return "store"
	}
	return "load"
}

// API is the memory interface consumed by the execution engine: given a
// tensor's location and size it returns the access time under the
// configured memory system design.
type API interface {
	AccessTime(loc Location, kind AccessKind, size units.ByteSize) units.Time
}

// LocalModel is the paper's local memory model:
//
//	AccessTime = AccessLatency + TensorSize / MemoryBandwidth
type LocalModel struct {
	Latency   units.Time
	Bandwidth units.Bandwidth
}

// Validate reports configuration errors.
func (m LocalModel) Validate() error {
	if m.Latency < 0 {
		return fmt.Errorf("memory: negative local latency")
	}
	if m.Bandwidth <= 0 {
		return fmt.Errorf("memory: non-positive local bandwidth")
	}
	return nil
}

// AccessTime returns the local access time for a tensor.
func (m LocalModel) AccessTime(size units.ByteSize) units.Time {
	if size <= 0 {
		return 0
	}
	return m.Latency + m.Bandwidth.TransferTime(size)
}

// PoolDesign selects one of the disaggregated pool architectures of Fig. 5,
// plus the ZeRO-Infinity private-path baseline of Fig. 10.
type PoolDesign int

// Pool designs.
const (
	// Hierarchical is the paper's primary design (Fig. 6): GPUs behind
	// in-node switches, out-node switches, and shared remote memory
	// groups, with chunked pipelined transfers.
	Hierarchical PoolDesign = iota
	// MultiLevelSwitch connects GPUs to remote memories through a
	// two-level switch tree (Fig. 5a).
	MultiLevelSwitch
	// RingPool places GPUs and remote memories on one ring (Fig. 5b).
	RingPool
	// MeshPool arranges GPUs and remote memories on a 2D mesh (Fig. 5c).
	MeshPool
	// PrivatePerGPU is the ZeRO-Infinity baseline: every GPU has its own
	// CPU+NVMe remote path of RemoteGroupBW; there is no shared pool
	// fabric (Fig. 10).
	PrivatePerGPU
)

// String names the design.
func (d PoolDesign) String() string {
	switch d {
	case Hierarchical:
		return "hierarchical"
	case MultiLevelSwitch:
		return "multi-level-switch"
	case RingPool:
		return "ring"
	case MeshPool:
		return "mesh"
	case PrivatePerGPU:
		return "private-per-gpu (ZeRO-Infinity)"
	default:
		return fmt.Sprintf("PoolDesign(%d)", int(d))
	}
}

// PoolConfig describes a disaggregated memory system. Field names follow
// the paper's Fig. 6 and Table V.
type PoolConfig struct {
	Design PoolDesign

	// NumNodes and GPUsPerNode describe the compute side.
	NumNodes    int
	GPUsPerNode int

	// NumOutSwitches is the number of out-node switches between nodes and
	// the remote memory groups (hierarchical and multi-level designs).
	NumOutSwitches int
	// NumRemoteGroups is the number of remote memory groups forming the
	// shared pool.
	NumRemoteGroups int

	// ChunkSize is the pipelined transfer unit (Fig. 7); defaults to 1 MiB.
	ChunkSize units.ByteSize

	// RemoteGroupBW is each remote memory group's bandwidth — the
	// "mem-side out-node pooled fabric" rate of Fig. 6, and Table V's
	// "Remote Mem Group BW".
	RemoteGroupBW units.Bandwidth
	// GPUSideOutFabricBW is the GPU-side out-node pooled fabric bandwidth
	// per node uplink.
	GPUSideOutFabricBW units.Bandwidth
	// InNodeFabricBW is the in-node pooled fabric bandwidth per GPU
	// (Table V's "In-node Pooled Fabric BW").
	InNodeFabricBW units.Bandwidth

	// Latency is the end-to-end access latency added once per access.
	Latency units.Time
}

// NumGPUs returns the total GPU count.
func (c PoolConfig) NumGPUs() int { return c.NumNodes * c.GPUsPerNode }

// Validate reports configuration errors.
func (c PoolConfig) Validate() error {
	if c.NumNodes <= 0 || c.GPUsPerNode <= 0 {
		return fmt.Errorf("memory: pool needs positive node and GPU counts, got %d nodes x %d GPUs", c.NumNodes, c.GPUsPerNode)
	}
	if c.NumRemoteGroups <= 0 {
		return fmt.Errorf("memory: pool needs at least one remote memory group")
	}
	if c.RemoteGroupBW <= 0 {
		return fmt.Errorf("memory: non-positive remote group bandwidth")
	}
	if c.Latency < 0 {
		return fmt.Errorf("memory: negative pool latency")
	}
	switch c.Design {
	case Hierarchical, MultiLevelSwitch:
		if c.NumOutSwitches <= 0 {
			return fmt.Errorf("memory: %v design needs out-node switches", c.Design)
		}
		if c.GPUSideOutFabricBW <= 0 || c.InNodeFabricBW <= 0 {
			return fmt.Errorf("memory: %v design needs positive fabric bandwidths", c.Design)
		}
	case RingPool, MeshPool:
		if c.InNodeFabricBW <= 0 {
			return fmt.Errorf("memory: %v design needs a positive link bandwidth (InNodeFabricBW)", c.Design)
		}
	case PrivatePerGPU:
		// Only RemoteGroupBW is used.
	default:
		return fmt.Errorf("memory: unknown pool design %d", int(c.Design))
	}
	if c.ChunkSize < 0 {
		return fmt.Errorf("memory: negative chunk size")
	}
	return nil
}

// chunk returns the effective pipelining chunk size.
func (c PoolConfig) chunk() units.ByteSize {
	if c.ChunkSize > 0 {
		return c.ChunkSize
	}
	return units.MiB
}
