package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestLocalModel(t *testing.T) {
	m := LocalModel{Latency: 500 * units.Nanosecond, Bandwidth: units.GBps(2000)}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 GB at 2000 GB/s is 1 ms, plus 500 ns latency.
	want := units.Millisecond + 500*units.Nanosecond
	if got := m.AccessTime(2 * units.GB); got != want {
		t.Errorf("AccessTime = %v, want %v", got, want)
	}
	if m.AccessTime(0) != 0 {
		t.Error("zero-size access should be free")
	}
}

func TestLocalModelValidate(t *testing.T) {
	if err := (LocalModel{Latency: -1, Bandwidth: units.GBps(1)}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := (LocalModel{Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

// paperPool returns the running example of Fig. 6: 16 nodes x 16 GPUs,
// 4 out-node switches, 8 remote memory groups.
func paperPool() PoolConfig {
	return PoolConfig{
		Design:             Hierarchical,
		NumNodes:           16,
		GPUsPerNode:        16,
		NumOutSwitches:     4,
		NumRemoteGroups:    8,
		ChunkSize:          units.MiB,
		RemoteGroupBW:      units.GBps(100),
		GPUSideOutFabricBW: units.GBps(100),
		InNodeFabricBW:     units.GBps(256),
	}
}

func TestHierarchicalPipelineArithmetic(t *testing.T) {
	c := paperPool()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every GPU loads 32 MiB: 8 GiB total, 256 MiB per (group, switch)
	// lane, 256 chunks of 1 MiB. Each group serves its 4 switch links from
	// its aggregate bandwidth:
	//   tx1 = 4 x 1 MiB / 100 GB/s              = 41.94304 us (bottleneck)
	//   tx2 = 8 MiB / (16 x 100 GB/s)           = 5.24288 us
	//   tx3 = 32 MiB / (256 x 256 GB/s)         = 0.512 us
	//   total = tx1+tx2+tx3 + 255 x tx1
	got := c.TransferTime(32 * units.MiB)
	tx1 := 4 * 1048576.0 / 100e9
	tx2 := 8 * 1048576.0 / (16 * 100e9)
	tx3 := 32 * 1048576.0 / (256 * 256e9)
	want := units.FromSeconds(tx1 + tx2 + tx3 + 255*tx1)
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestInSwitchCollectiveArithmetic(t *testing.T) {
	c := paperPool()
	// In-switch collective removes the fan-out divisions in tx2/tx3.
	got := c.InSwitchCollectiveTime(32 * units.MiB)
	tx1 := 4 * 1048576.0 / 100e9
	tx2 := 8 * 1048576.0 / 100e9
	tx3 := 32 * 1048576.0 / 256e9
	max := tx2
	if tx3 > max {
		max = tx3
	}
	want := units.FromSeconds(tx1 + tx2 + tx3 + 255*max)
	if got != want {
		t.Errorf("InSwitchCollectiveTime = %v, want %v", got, want)
	}
	if !c.SupportsInSwitchCollectives() {
		t.Error("hierarchical design should support in-switch collectives")
	}
}

func TestSubChunkTransfer(t *testing.T) {
	c := paperPool()
	// A transfer smaller than one chunk per lane is a single pipeline pass.
	got := c.TransferTime(64 * units.KiB) // 16 MiB total, 512 KiB per lane
	tx1 := 4 * 1048576.0 / 100e9
	tx2 := 8 * 1048576.0 / (16 * 100e9)
	tx3 := 32 * 1048576.0 / (256 * 256e9)
	want := units.FromSeconds(tx1 + tx2 + tx3)
	if got != want {
		t.Errorf("sub-chunk TransferTime = %v, want %v (single pass)", got, want)
	}
}

func TestPrivatePerGPUMatchesDirectStream(t *testing.T) {
	c := PoolConfig{
		Design:          PrivatePerGPU,
		NumNodes:        64,
		GPUsPerNode:     4,
		NumRemoteGroups: 256,
		RemoteGroupBW:   units.GBps(100),
		Latency:         2 * units.Microsecond,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 2*units.Microsecond + units.GBps(100).TransferTime(units.GB)
	if got := c.TransferTime(units.GB); got != want {
		t.Errorf("ZeRO-Infinity stream = %v, want %v", got, want)
	}
	if c.SupportsInSwitchCollectives() {
		t.Error("private paths cannot gather in switches")
	}
	// In-switch request falls back to plain transfer.
	if got := c.InSwitchCollectiveTime(units.GB); got != want {
		t.Errorf("fallback = %v, want %v", got, want)
	}
}

func TestRingAndMeshPools(t *testing.T) {
	base := PoolConfig{
		NumNodes:        16,
		GPUsPerNode:     16,
		NumRemoteGroups: 8,
		InNodeFabricBW:  units.GBps(256),
		RemoteGroupBW:   units.GBps(100),
	}
	ring := base
	ring.Design = RingPool
	mesh := base
	mesh.Design = MeshPool
	if err := ring.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := ring.TransferTime(32 * units.MiB)
	mt := mesh.TransferTime(32 * units.MiB)
	if rt <= 0 || mt <= 0 {
		t.Fatal("pool transfers must take time")
	}
	// A ring's average hop count grows linearly with node count while a
	// mesh's grows with the square root: the mesh must be faster here.
	if mt >= rt {
		t.Errorf("mesh (%v) should beat ring (%v) at this scale", mt, rt)
	}
}

func TestTransferMonotonicInSize(t *testing.T) {
	c := paperPool()
	f := func(a, b uint16) bool {
		lo, hi := units.ByteSize(a)*units.KiB, units.ByteSize(b)*units.KiB
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.TransferTime(lo) <= c.TransferTime(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreGroupsNeverSlower(t *testing.T) {
	small := paperPool()
	big := paperPool()
	big.NumRemoteGroups = 16
	// Doubling the pool's parallelism must not slow a large transfer.
	if big.TransferTime(256*units.MiB) > small.TransferTime(256*units.MiB) {
		t.Error("doubling remote groups slowed the transfer down")
	}
}

func TestPoolValidate(t *testing.T) {
	bad := []PoolConfig{
		{},
		{Design: Hierarchical, NumNodes: 1, GPUsPerNode: 1, NumRemoteGroups: 1, RemoteGroupBW: units.GBps(1)}, // no switches
		{Design: RingPool, NumNodes: 1, GPUsPerNode: 1, NumRemoteGroups: 1, RemoteGroupBW: units.GBps(1)},     // no link BW
		{Design: PrivatePerGPU, NumNodes: 1, GPUsPerNode: 1, NumRemoteGroups: 1},                              // no remote BW
		{Design: PoolDesign(99), NumNodes: 1, GPUsPerNode: 1, NumRemoteGroups: 1, RemoteGroupBW: units.GBps(1)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, c.Design)
		}
	}
	good := paperPool()
	if err := good.Validate(); err != nil {
		t.Errorf("paper pool rejected: %v", err)
	}
}

func TestSystemAPI(t *testing.T) {
	s := System{
		Local:   LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2000)},
		Pool:    paperPool(),
		HasPool: true,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	local := s.AccessTime(Local, LoadAccess, units.MB)
	remote := s.AccessTime(Remote, LoadAccess, units.MB)
	if local >= remote {
		t.Errorf("local (%v) should be faster than remote (%v)", local, remote)
	}
	// Loads and stores are symmetric.
	if s.AccessTime(Remote, StoreAccess, units.MB) != remote {
		t.Error("store time should equal load time")
	}
	// Without a pool, remote falls back to local.
	noPool := System{Local: s.Local}
	if noPool.AccessTime(Remote, LoadAccess, units.MB) != local {
		t.Error("poolless remote access should use local timing")
	}
}

func TestDesignStrings(t *testing.T) {
	for _, d := range []PoolDesign{Hierarchical, MultiLevelSwitch, RingPool, MeshPool, PrivatePerGPU} {
		if d.String() == "" {
			t.Errorf("empty name for design %d", int(d))
		}
	}
	if Local.String() != "local" || Remote.String() != "remote" {
		t.Error("location names wrong")
	}
	if LoadAccess.String() != "load" || StoreAccess.String() != "store" {
		t.Error("access kind names wrong")
	}
}
