package memory

import (
	"math"

	"repro/internal/units"
)

// TransferTime returns the time for every GPU to load (or store) a tensor
// of perGPU bytes from the remote pool simultaneously — the bulk access
// pattern of large-model training, where all data-parallel workers stream
// their parameter shards together. Loads and stores are symmetric in all
// of the pool models.
func (c PoolConfig) TransferTime(perGPU units.ByteSize) units.Time {
	if perGPU <= 0 {
		return 0
	}
	switch c.Design {
	case Hierarchical, MultiLevelSwitch:
		return c.Latency + c.pipelined(perGPU, false)
	case PrivatePerGPU:
		// Each GPU streams over its own remote path; no sharing.
		return c.Latency + c.RemoteGroupBW.TransferTime(perGPU)
	case RingPool:
		return c.Latency + c.ringTransfer(perGPU)
	case MeshPool:
		return c.Latency + c.meshTransfer(perGPU)
	default:
		return c.Latency + c.RemoteGroupBW.TransferTime(perGPU)
	}
}

// InSwitchCollectiveTime returns the time for every GPU to load perGPU
// bytes of parameters that are gathered in the switches on the way up
// (All-Gather while loading), or symmetrically to store gradients that are
// reduced on the way down (Reduce-Scatter while storing). Only the
// switch-based designs support in-switch collectives; other designs fall
// back to a plain transfer (the collective then costs extra network time
// elsewhere).
func (c PoolConfig) InSwitchCollectiveTime(perGPU units.ByteSize) units.Time {
	if perGPU <= 0 {
		return 0
	}
	switch c.Design {
	case Hierarchical, MultiLevelSwitch:
		return c.Latency + c.pipelined(perGPU, true)
	default:
		return c.TransferTime(perGPU)
	}
}

// SupportsInSwitchCollectives reports whether the design performs
// collectives inside the memory fabric.
func (c PoolConfig) SupportsInSwitchCollectives() bool {
	return c.Design == Hierarchical || c.Design == MultiLevelSwitch
}

// pipelined evaluates the paper's chunked pipeline model (Figs. 6-8).
//
// Every GPU loads W bytes, so W x NumGPUs bytes leave the pool. The flow
// crosses three stages — remote group to out-node switch, out-node switch
// to in-node switch, in-node switch to GPU — and chunks stream through the
// stages in a pipeline: the makespan is the sum of one traversal of every
// stage plus (stages-1 extra chunks) x the slowest stage (Fig. 7).
//
// Per-chunk stage times follow the paper's equations. For a plain transfer:
//
//	TX_rem2outSW  = Chunk / RemoteGroupBW
//	TX_outSW2inSW = (Groups x Chunk) / (Nodes x GPUSideOutFabricBW)
//	TX_inSW2GPU   = (Groups x OutSW x Chunk) / (GPUs x InNodeFabricBW)
//
// With in-switch collectives, parameters are gathered while being loaded,
// so the fan-out divisions by Nodes and GPUs disappear (Fig. 8):
//
//	TX_outSW2inSW = (Groups x Chunk) / GPUSideOutFabricBW
//	TX_inSW2GPU   = (Groups x OutSW x Chunk) / InNodeFabricBW
func (c PoolConfig) pipelined(perGPU units.ByteSize, inSwitch bool) units.Time {
	chunk := c.chunk()
	total := float64(perGPU) * float64(c.NumGPUs())
	perLane := total / float64(c.NumRemoteGroups) / float64(c.NumOutSwitches)
	stages := perLane / float64(chunk)
	if stages < 1 {
		stages = 1
	}

	// Each remote memory group feeds every out-node switch concurrently,
	// so one pipeline stage draws NumOutSwitches chunks from each group;
	// RemoteGroupBW is the group's aggregate bandwidth (Table V).
	tx1 := float64(c.NumOutSwitches) * float64(chunk) / float64(c.RemoteGroupBW)
	var tx2, tx3 float64
	if inSwitch {
		tx2 = float64(c.NumRemoteGroups) * float64(chunk) / float64(c.GPUSideOutFabricBW)
		tx3 = float64(c.NumRemoteGroups) * float64(c.NumOutSwitches) * float64(chunk) / float64(c.InNodeFabricBW)
	} else {
		tx2 = float64(c.NumRemoteGroups) * float64(chunk) / (float64(c.NumNodes) * float64(c.GPUSideOutFabricBW))
		tx3 = float64(c.NumRemoteGroups) * float64(c.NumOutSwitches) * float64(chunk) / (float64(c.NumGPUs()) * float64(c.InNodeFabricBW))
	}

	maxStage := math.Max(tx1, math.Max(tx2, tx3))
	totalSec := tx1 + tx2 + tx3 + (stages-1)*maxStage
	return units.FromSeconds(totalSec)
}

// ringTransfer models the ring pool of Fig. 5(b): GPUs and remote memory
// groups alternate on a single ring of InNodeFabricBW links. Every byte
// travels a quarter of the ring on average (shortest-path routing in both
// directions), and total ring capacity is one link per node:
//
//	time = (W x GPUs x avgHops) / (ringNodes x linkBW)
func (c PoolConfig) ringTransfer(perGPU units.ByteSize) units.Time {
	nodes := c.NumGPUs() + c.NumRemoteGroups
	avgHops := float64(nodes) / 4
	if avgHops < 1 {
		avgHops = 1
	}
	linkSeconds := float64(perGPU) * float64(c.NumGPUs()) * avgHops
	capacity := float64(nodes) * float64(c.InNodeFabricBW)
	return units.FromSeconds(linkSeconds / capacity)
}

// meshTransfer models the mesh pool of Fig. 5(c): GPUs on one edge of a
// 2D mesh, remote memory groups on the opposite edge. With dimension-order
// routing a byte crosses about (rows+cols)/3 links on average, and the
// mesh provides 2 x rows x cols link capacity.
func (c PoolConfig) meshTransfer(perGPU units.ByteSize) units.Time {
	n := c.NumGPUs() + c.NumRemoteGroups
	side := int(math.Ceil(math.Sqrt(float64(n))))
	avgHops := float64(2*side) / 3
	if avgHops < 1 {
		avgHops = 1
	}
	linkSeconds := float64(perGPU) * float64(c.NumGPUs()) * avgHops
	capacity := 2 * float64(side) * float64(side) * float64(c.InNodeFabricBW)
	return units.FromSeconds(linkSeconds / capacity)
}

// System combines a local model and a pool into the engine-facing API.
type System struct {
	Local LocalModel
	Pool  PoolConfig
	// HasPool indicates remote accesses are valid; without a pool, remote
	// accesses fall back to local timing (single-tier memory).
	HasPool bool
}

// Validate reports configuration errors.
func (s System) Validate() error {
	if err := s.Local.Validate(); err != nil {
		return err
	}
	if s.HasPool {
		return s.Pool.Validate()
	}
	return nil
}

// AccessTime implements API. Remote accesses use the bulk pool transfer
// model (all GPUs streaming together, the dominant pattern in sharded
// training); local accesses use the latency + size/BW model.
func (s System) AccessTime(loc Location, kind AccessKind, size units.ByteSize) units.Time {
	if loc == Local || !s.HasPool {
		return s.Local.AccessTime(size)
	}
	_ = kind // loads and stores are symmetric in these designs
	return s.Pool.TransferTime(size)
}

var _ API = System{}
