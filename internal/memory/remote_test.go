package memory

import (
	"strings"
	"testing"

	"repro/internal/units"
)

// Table-driven edge cases for the remote-pool model: degenerate shapes,
// zero and negative inputs, oversubscription, and validation coverage for
// every design. These are the corners a cluster spec can reach through
// user JSON, so they must fail (or degrade) predictably.

func validHier() PoolConfig {
	return PoolConfig{
		Design: Hierarchical, NumNodes: 16, GPUsPerNode: 16,
		NumOutSwitches: 4, NumRemoteGroups: 8,
		RemoteGroupBW: units.GBps(100), GPUSideOutFabricBW: units.GBps(100),
		InNodeFabricBW: units.GBps(256),
	}
}

func TestPoolValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PoolConfig)
		errSub string // "" = must validate
	}{
		{"valid baseline", func(*PoolConfig) {}, ""},
		{"zero nodes", func(c *PoolConfig) { c.NumNodes = 0 }, "node and GPU counts"},
		{"negative nodes", func(c *PoolConfig) { c.NumNodes = -4 }, "node and GPU counts"},
		{"zero gpus per node", func(c *PoolConfig) { c.GPUsPerNode = 0 }, "node and GPU counts"},
		{"zero remote groups", func(c *PoolConfig) { c.NumRemoteGroups = 0 }, "remote memory group"},
		{"zero group bandwidth", func(c *PoolConfig) { c.RemoteGroupBW = 0 }, "remote group bandwidth"},
		{"negative group bandwidth", func(c *PoolConfig) { c.RemoteGroupBW = units.GBps(-1) }, "remote group bandwidth"},
		{"negative latency", func(c *PoolConfig) { c.Latency = -units.Microsecond }, "latency"},
		{"negative chunk", func(c *PoolConfig) { c.ChunkSize = -1 }, "chunk"},
		{"hierarchical without out-switches", func(c *PoolConfig) { c.NumOutSwitches = 0 }, "out-node switches"},
		{"hierarchical zero gpu-side fabric", func(c *PoolConfig) { c.GPUSideOutFabricBW = 0 }, "fabric bandwidths"},
		{"hierarchical zero in-node fabric", func(c *PoolConfig) { c.InNodeFabricBW = 0 }, "fabric bandwidths"},
		{"unknown design", func(c *PoolConfig) { c.Design = PoolDesign(99) }, "unknown pool design"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := validHier()
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.errSub == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("error %q does not mention %q", err, c.errSub)
			}
		})
	}
}

func TestRingMeshValidateNeedLinkBW(t *testing.T) {
	for _, d := range []PoolDesign{RingPool, MeshPool} {
		cfg := validHier()
		cfg.Design = d
		cfg.InNodeFabricBW = 0
		if err := cfg.Validate(); err == nil {
			t.Errorf("%v with zero link bandwidth accepted", d)
		}
		cfg.InNodeFabricBW = units.GBps(64)
		// Ring and mesh pools ignore the switch-tree fields entirely.
		cfg.NumOutSwitches = 0
		cfg.GPUSideOutFabricBW = 0
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v rejects a config without switch-tree fields: %v", d, err)
		}
	}
}

// TestSingleGPUDegenerateShapes: a 1x1 compute side against one remote
// group is the smallest legal pool; every design must price it positively
// and finitely.
func TestSingleGPUDegenerateShapes(t *testing.T) {
	for _, d := range []PoolDesign{Hierarchical, MultiLevelSwitch, RingPool, MeshPool, PrivatePerGPU} {
		cfg := PoolConfig{
			Design: d, NumNodes: 1, GPUsPerNode: 1,
			NumOutSwitches: 1, NumRemoteGroups: 1,
			RemoteGroupBW: units.GBps(100), GPUSideOutFabricBW: units.GBps(100),
			InNodeFabricBW: units.GBps(256),
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: single-GPU pool rejected: %v", d, err)
			continue
		}
		got := cfg.TransferTime(64 * units.MiB)
		if got <= 0 {
			t.Errorf("%v: single-GPU transfer time = %v", d, got)
		}
		// Doubling the tensor must not make it cheaper.
		if cfg.TransferTime(128*units.MiB) < got {
			t.Errorf("%v: larger transfer is faster", d)
		}
	}
}

// TestZeroAndNegativeSizes: non-positive transfers are free in every
// design, including the in-switch path.
func TestZeroAndNegativeSizes(t *testing.T) {
	for _, d := range []PoolDesign{Hierarchical, MultiLevelSwitch, RingPool, MeshPool, PrivatePerGPU} {
		cfg := validHier()
		cfg.Design = d
		for _, size := range []units.ByteSize{0, -1, -units.GiB} {
			if got := cfg.TransferTime(size); got != 0 {
				t.Errorf("%v: TransferTime(%d) = %v, want 0", d, size, got)
			}
			if got := cfg.InSwitchCollectiveTime(size); got != 0 {
				t.Errorf("%v: InSwitchCollectiveTime(%d) = %v, want 0", d, size, got)
			}
		}
	}
}

// TestPoolOversubscription: scaling the compute side up against a fixed
// pool must never speed a per-GPU transfer, and heavy oversubscription
// must slow it strictly — the property the multi-job pool arbiter builds
// on.
func TestPoolOversubscription(t *testing.T) {
	for _, d := range []PoolDesign{Hierarchical, MultiLevelSwitch, RingPool, MeshPool} {
		base := validHier()
		base.Design = d
		prev := units.Time(-1)
		for _, nodes := range []int{1, 4, 16, 64, 256} {
			cfg := base
			cfg.NumNodes = nodes
			got := cfg.TransferTime(64 * units.MiB)
			if got < prev {
				t.Errorf("%v: %d nodes transfers faster (%v) than fewer nodes (%v)", d, nodes, got, prev)
			}
			prev = got
		}
		small, large := base, base
		small.NumNodes, large.NumNodes = 1, 256
		if !(large.TransferTime(64*units.MiB) > small.TransferTime(64*units.MiB)) {
			t.Errorf("%v: 256x oversubscription shows no slowdown", d)
		}
	}
	// The private-path baseline is the exception: no shared pool fabric,
	// so scale-out leaves the per-GPU time untouched.
	base := validHier()
	base.Design = PrivatePerGPU
	small, large := base, base
	small.NumNodes, large.NumNodes = 1, 256
	if small.TransferTime(64*units.MiB) != large.TransferTime(64*units.MiB) {
		t.Error("private per-GPU paths must not contend")
	}
}

// TestZeroLocalBandwidthRejected: the engine divides by the local
// bandwidth, so validation has to stop it at the boundary — including
// through the System wrapper a cluster spec builds.
func TestZeroLocalBandwidthRejected(t *testing.T) {
	sys := System{Local: LocalModel{Latency: units.Microsecond, Bandwidth: 0}}
	if err := sys.Validate(); err == nil {
		t.Error("zero local bandwidth accepted")
	}
	sys.Local.Bandwidth = units.GBps(-5)
	if err := sys.Validate(); err == nil {
		t.Error("negative local bandwidth accepted")
	}
	// A pooled system with a broken pool must fail too.
	sys.Local.Bandwidth = units.GBps(2039)
	sys.HasPool = true
	sys.Pool = PoolConfig{Design: Hierarchical}
	if err := sys.Validate(); err == nil {
		t.Error("pooled system with empty pool config accepted")
	}
}

// TestRemoteFallsBackToLocalWithoutPool: without a pool, remote accesses
// price as local — the single-tier degenerate system.
func TestRemoteFallsBackToLocalWithoutPool(t *testing.T) {
	sys := System{Local: LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2000)}}
	local := sys.AccessTime(Local, LoadAccess, 64*units.MiB)
	remote := sys.AccessTime(Remote, StoreAccess, 64*units.MiB)
	if local != remote {
		t.Errorf("remote access without a pool = %v, local = %v; want equal", remote, local)
	}
}

// TestLoadsAndStoresSymmetric: the pool designs price both directions
// identically.
func TestLoadsAndStoresSymmetric(t *testing.T) {
	sys := System{
		Local:   LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2000)},
		HasPool: true,
		Pool:    validHier(),
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	load := sys.AccessTime(Remote, LoadAccess, 32*units.MiB)
	store := sys.AccessTime(Remote, StoreAccess, 32*units.MiB)
	if load != store {
		t.Errorf("load %v != store %v", load, store)
	}
	if load <= sys.AccessTime(Local, LoadAccess, 32*units.MiB) {
		t.Error("remote pool access should cost more than local HBM here")
	}
}
