package garnet

import (
	"testing"

	"repro/internal/units"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Shape: []int{1}},
		{Shape: []int{4}, FlitBytes: -1},
	}
	for i, c := range bad {
		c.defaults()
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Config{Shape: []int{4, 4}}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleHopTiming(t *testing.T) {
	s, err := New(Config{Shape: []int{4}, FlitBytes: 16, LinkLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	// 64 bytes = 4 flits, one hop: 4 cycles serialization + 1 cycle hop.
	if err := s.Send(0, 1, 0, 64, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(1000); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("message never delivered")
	}
	if s.Cycles() != 5 {
		t.Errorf("cycles = %d, want 5", s.Cycles())
	}
}

func TestWraparoundShortestPath(t *testing.T) {
	s, _ := New(Config{Shape: []int{8}, FlitBytes: 16})
	// 0 -> 7 should take the -1 direction: 1 hop.
	if err := s.Send(0, 7, 0, 16, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(100); err != nil {
		t.Fatal(err)
	}
	if s.Cycles() != 2 { // 1 flit + 1 latency
		t.Errorf("cycles = %d, want 2", s.Cycles())
	}
}

func TestMultiHopWormholePipelining(t *testing.T) {
	s, _ := New(Config{Shape: []int{8}, FlitBytes: 16, LinkLatency: 1})
	// 3 hops, 16 flits: wormhole pipelines, so roughly flits + hops
	// cycles, far below store-and-forward's flits*hops.
	if err := s.Send(0, 3, 0, 256, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if s.Cycles() < 18 || s.Cycles() > 24 {
		t.Errorf("cycles = %d, want ~flits(16)+hops(3) with latencies", s.Cycles())
	}
}

func TestCrossDimRejected(t *testing.T) {
	s, _ := New(Config{Shape: []int{4, 4}})
	// nodes 0 and 5 differ in both dims.
	if err := s.Send(0, 5, 0, 16, nil); err == nil {
		t.Error("cross-dimension message accepted")
	}
	if err := s.Send(0, 1, 7, 16, nil); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	s, _ := New(Config{Shape: []int{4}, FlitBytes: 16, LinkLatency: 1})
	// Two messages from node 0 in the same direction share link (0,+1):
	// 4 flits each -> 8 cycles of serialization for the second tail.
	var done int
	for i := 0; i < 2; i++ {
		if err := s.Send(0, 1, 0, 64, func() { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(1000); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("delivered %d", done)
	}
	if s.Cycles() != 9 { // 8 serialization + 1 hop latency
		t.Errorf("cycles = %d, want 9", s.Cycles())
	}
}

func TestAllReduceRing4(t *testing.T) {
	s, _ := New(Config{Shape: []int{4}, FlitBytes: 16, LinkLatency: 1})
	elapsed, cycles, err := s.AllReduce(64 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || elapsed <= 0 {
		t.Fatalf("no work simulated: %d cycles", cycles)
	}
	// Ring All-Reduce moves 2*(k-1)*S/k bytes per node over +1 links:
	// 6 steps of 1024 flits plus latency: >= 6144 cycles.
	if cycles < 6144 {
		t.Errorf("cycles = %d, want >= 6144", cycles)
	}
	if cycles > 7000 {
		t.Errorf("cycles = %d, unexpectedly slow (>7000)", cycles)
	}
}

func TestAllReduce3DTorusMatchesAnalyticalShape(t *testing.T) {
	// The speedup experiment's small configuration: 4x4x4 torus.
	s, _ := New(Config{Shape: []int{4, 4, 4}, FlitBytes: 16, LinkLatency: 1})
	elapsed, cycles, err := s.AllReduce(units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no cycles")
	}
	// Flit-level serialization at 16 B/cycle, 1 GHz -> 16 GB/s links.
	// Hierarchical All-Reduce of 1 MB should land within 2x of the
	// first-order estimate sum_d 2*(k_d-1)/k_d * D_d / 16GB/s.
	est := 0.0
	d := 1e6
	for i := 0; i < 3; i++ {
		est += 2 * d * 3 / 4 / 16e9
		d /= 4
	}
	ratio := elapsed.Seconds() / est
	if ratio < 0.8 || ratio > 2.0 {
		t.Errorf("cycle-level time %v vs first-order estimate %.3fms (ratio %.2f)",
			elapsed, est*1e3, ratio)
	}
}

func TestDrainTimeout(t *testing.T) {
	s, _ := New(Config{Shape: []int{4}, FlitBytes: 16})
	if err := s.Send(0, 2, 0, 1<<20, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(3); err == nil {
		t.Error("expected drain timeout")
	}
}

func TestAllReduceRejectsBadSize(t *testing.T) {
	s, _ := New(Config{Shape: []int{4}})
	if _, _, err := s.AllReduce(0); err == nil {
		t.Error("zero size accepted")
	}
}
