// Package garnet is a from-scratch cycle-level, flit-granular network
// simulator standing in for the gem5 Garnet backend that ASTRA-sim 1.0
// used (Section IV-C). It exists to reproduce the paper's speedup study:
// the analytical backend answers the same questions three orders of
// magnitude faster, because this simulator pays for every flit on every
// link on every cycle.
//
// Model: a k-ary n-cube (torus) with one bidirectional link pair per
// dimension per node. Messages are wormhole-routed flit trains on
// shortest ring paths, dimension by dimension; each link moves one flit
// per cycle and adds a fixed per-hop pipeline latency. Buffers are
// unbounded (no credit stalls), which favours the cycle simulator — the
// measured speedup of the analytical backend is therefore conservative.
package garnet

import (
	"fmt"

	"repro/internal/units"
)

// Config describes the simulated torus.
type Config struct {
	// Shape lists the torus dimensions, Dim 1 first (e.g. 4,4,4).
	Shape []int
	// FlitBytes is the link width: one flit per link per cycle.
	// Default 16 bytes.
	FlitBytes int
	// LinkLatency is the per-hop pipeline depth in cycles. Default 1.
	LinkLatency int
	// ClockGHz converts cycles to time. Default 1.0.
	ClockGHz float64
}

func (c *Config) defaults() {
	if c.FlitBytes == 0 {
		c.FlitBytes = 16
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 1
	}
	if c.ClockGHz == 0 {
		c.ClockGHz = 1.0
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Shape) == 0 {
		return fmt.Errorf("garnet: empty shape")
	}
	for i, k := range c.Shape {
		if k < 2 {
			return fmt.Errorf("garnet: dim %d size %d; need k >= 2", i+1, k)
		}
	}
	if c.FlitBytes < 0 || c.LinkLatency < 0 || c.ClockGHz < 0 {
		return fmt.Errorf("garnet: negative parameter")
	}
	return nil
}

// message is an in-flight flit train.
type message struct {
	id        int
	dim       int // torus dimension it travels on
	dir       int // +1 or -1 around the ring
	flits     int // train length
	delivered int // flits that reached the final node
	done      func()
}

// flow is a run of same-message flits waiting on one link. All flits of a
// message on a given link sit at the same path position, so the remaining
// hop count after this link is a flow property and merging batches of the
// same message is safe.
type flow struct {
	msg       *message
	flits     int
	hopsAfter int // hops remaining once this link is crossed
}

// link is one unidirectional channel: a FIFO of flows plus in-flight flits
// delayed by the hop latency.
type link struct {
	queue []flow
}

// Simulator is the cycle engine.
type Simulator struct {
	cfg    Config
	nnodes int
	// links[node][dim][dir01]
	links []link
	dims  int
	// arrivals[cycle % (latency+1)] holds flits landing that cycle.
	arrivals [][]arrival
	cycle    uint64
	inFlight int
	nextID   int
}

type arrival struct {
	msg      *message
	node     int // router the flit arrives at
	flits    int
	hopsLeft int // hops still to travel after landing here
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := 1
	for _, k := range cfg.Shape {
		n *= k
	}
	s := &Simulator{
		cfg:    cfg,
		nnodes: n,
		dims:   len(cfg.Shape),
		links:  make([]link, n*len(cfg.Shape)*2),
	}
	s.arrivals = make([][]arrival, cfg.LinkLatency+1)
	return s, nil
}

// NumNodes returns the torus size.
func (s *Simulator) NumNodes() int { return s.nnodes }

// Cycles returns the cycles executed so far.
func (s *Simulator) Cycles() uint64 { return s.cycle }

// Time converts the elapsed cycles to simulated time.
func (s *Simulator) Time() units.Time {
	return units.FromNanos(float64(s.cycle) / s.cfg.ClockGHz)
}

func (s *Simulator) coord(node int) []int {
	c := make([]int, s.dims)
	for i, k := range s.cfg.Shape {
		c[i] = node % k
		node /= k
	}
	return c
}

func (s *Simulator) stride(dim int) int {
	st := 1
	for i := 0; i < dim; i++ {
		st *= s.cfg.Shape[i]
	}
	return st
}

func (s *Simulator) linkIdx(node, dim, dir int) int {
	d01 := 0
	if dir > 0 {
		d01 = 1
	}
	return (node*s.dims+dim)*2 + d01
}

// neighbor returns the next node around dim in direction dir.
func (s *Simulator) neighbor(node, dim, dir int) int {
	k := s.cfg.Shape[dim]
	st := s.stride(dim)
	pos := (node / st) % k
	next := (pos + dir + k) % k
	return node + (next-pos)*st
}

// Send injects a message travelling within one dimension; done fires when
// the tail flit reaches the destination. Messages crossing zero hops
// complete after one cycle.
func (s *Simulator) Send(src, dst, dim int, size units.ByteSize, done func()) error {
	if dim < 0 || dim >= s.dims {
		return fmt.Errorf("garnet: dim %d out of range", dim)
	}
	k := s.cfg.Shape[dim]
	st := s.stride(dim)
	sp, dp := (src/st)%k, (dst/st)%k
	if src-sp*st != dst-dp*st {
		return fmt.Errorf("garnet: src %d and dst %d differ outside dim %d", src, dst, dim)
	}
	fwd := (dp - sp + k) % k
	bwd := (sp - dp + k) % k
	dir, hops := 1, fwd
	if bwd < fwd {
		dir, hops = -1, bwd
	}
	flits := int((size + units.ByteSize(s.cfg.FlitBytes) - 1) / units.ByteSize(s.cfg.FlitBytes))
	if flits == 0 {
		flits = 1
	}
	s.nextID++
	m := &message{id: s.nextID, dim: dim, dir: dir, flits: flits, done: done}
	s.inFlight++
	if hops == 0 {
		// Local delivery: complete at the next cycle boundary.
		s.arrivals[(s.cycle+1)%uint64(len(s.arrivals))] = append(
			s.arrivals[(s.cycle+1)%uint64(len(s.arrivals))],
			arrival{msg: m, node: dst, flits: flits, hopsLeft: 0})
		return nil
	}
	li := s.linkIdx(src, dim, dir)
	s.enqueue(li, m, flits, hops-1)
	return nil
}

func (s *Simulator) enqueue(li int, m *message, flits, hopsAfter int) {
	q := &s.links[li].queue
	if n := len(*q); n > 0 && (*q)[n-1].msg == m && (*q)[n-1].hopsAfter == hopsAfter {
		(*q)[n-1].flits += flits
		return
	}
	*q = append(*q, flow{msg: m, flits: flits, hopsAfter: hopsAfter})
}

// Step advances one cycle: every busy link moves one flit, and flits that
// finished their hop latency are routed at their arrival router.
func (s *Simulator) Step() {
	s.cycle++
	slot := s.cycle % uint64(len(s.arrivals))

	// Move one flit per busy link; it lands after LinkLatency cycles.
	landSlot := (s.cycle + uint64(s.cfg.LinkLatency)) % uint64(len(s.arrivals))
	for node := 0; node < s.nnodes; node++ {
		for dim := 0; dim < s.dims; dim++ {
			for _, dir := range [2]int{-1, 1} {
				li := s.linkIdx(node, dim, dir)
				q := &s.links[li].queue
				if len(*q) == 0 {
					continue
				}
				head := &(*q)[0]
				head.flits--
				next := s.neighbor(node, dim, dir)
				s.arrivals[landSlot] = append(s.arrivals[landSlot],
					arrival{msg: head.msg, node: next, flits: 1, hopsLeft: head.hopsAfter})
				if head.flits == 0 {
					*q = (*q)[1:]
				}
			}
		}
	}

	// Route flits that land this cycle.
	landed := s.arrivals[slot]
	s.arrivals[slot] = nil
	for _, a := range landed {
		s.route(a)
	}
}

// route handles a flit batch arriving at a router: forward it along the
// ring, or absorb it at the destination.
func (s *Simulator) route(a arrival) {
	m := a.msg
	if a.hopsLeft > 0 {
		li := s.linkIdx(a.node, m.dim, m.dir)
		s.enqueue(li, m, a.flits, a.hopsLeft-1)
		return
	}
	m.delivered += a.flits
	if m.delivered == m.flits {
		s.inFlight--
		if m.done != nil {
			m.done()
		}
	}
}

// Drain runs cycles until no messages are in flight. It returns an error
// if maxCycles elapses first (a safety valve against driver bugs).
func (s *Simulator) Drain(maxCycles uint64) error {
	start := s.cycle
	for s.inFlight > 0 {
		s.Step()
		if s.cycle-start > maxCycles {
			return fmt.Errorf("garnet: %d messages still in flight after %d cycles", s.inFlight, maxCycles)
		}
	}
	return nil
}
