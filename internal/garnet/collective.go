package garnet

import (
	"fmt"

	"repro/internal/units"
)

// AllReduce executes a multi-rail hierarchical All-Reduce over the torus
// at full cycle fidelity: Reduce-Scatter ascending over the dimensions
// then All-Gather descending, each dimension phase running the ring
// algorithm step by step with every point-to-point message simulated
// flit by flit. It returns the simulated completion time and the number
// of cycles executed.
//
// This is the "slow path" of the speedup study (Section IV-C): the same
// collective the analytical backend costs with a handful of arithmetic
// operations requires millions of simulated cycles here.
func (s *Simulator) AllReduce(size units.ByteSize) (units.Time, uint64, error) {
	if size <= 0 {
		return 0, 0, fmt.Errorf("garnet: non-positive collective size")
	}
	start := s.cycle
	const maxCycles = 1 << 36

	// Reduce-Scatter ascending.
	d := size
	for dim := 0; dim < s.dims; dim++ {
		k := s.cfg.Shape[dim]
		if err := s.ringPhase(dim, d/units.ByteSize(k), k, maxCycles); err != nil {
			return 0, 0, err
		}
		d /= units.ByteSize(k)
	}
	// All-Gather descending.
	for dim := s.dims - 1; dim >= 0; dim-- {
		k := s.cfg.Shape[dim]
		if err := s.ringPhase(dim, d, k, maxCycles); err != nil {
			return 0, 0, err
		}
		d *= units.ByteSize(k)
	}
	return s.Time(), s.cycle - start, nil
}

// ringPhase runs k-1 ring steps on one dimension; every node sends per
// bytes to its +1 neighbour each step, and the step barrier waits for all
// deliveries (the bulk-synchronous structure of ring collectives).
func (s *Simulator) ringPhase(dim int, per units.ByteSize, k int, maxCycles uint64) error {
	if per <= 0 {
		per = 1
	}
	for step := 0; step < k-1; step++ {
		for node := 0; node < s.nnodes; node++ {
			dst := s.neighbor(node, dim, 1)
			if err := s.Send(node, dst, dim, per, nil); err != nil {
				return err
			}
		}
		if err := s.Drain(maxCycles); err != nil {
			return err
		}
	}
	return nil
}
