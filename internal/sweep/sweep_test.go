package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// gridSpec builds a 3x4 grid whose cell values are a pure function of the
// point, with an optional artificial stagger so parallel completion order
// scrambles relative to grid order.
func gridSpec(stagger bool, ran *atomic.Int64) Spec[int] {
	return Spec[int]{
		Name: "test",
		Axes: []Axis{
			{Name: "a", Values: []string{"a0", "a1", "a2"}},
			{Name: "b", Values: []string{"b0", "b1", "b2", "b3"}},
		},
		Cell: func(pt Point) (int, error) {
			if ran != nil {
				ran.Add(1)
			}
			if stagger {
				// Later cells finish sooner.
				time.Sleep(time.Duration(12-pt.Index("a")*4-pt.Index("b")) * time.Millisecond)
			}
			return pt.Index("a")*100 + pt.Index("b"), nil
		},
		Fingerprint: func(pt Point) string {
			return fmt.Sprintf("test|%d|%d", pt.Index("a"), pt.Index("b"))
		},
	}
}

func TestRowMajorOrder(t *testing.T) {
	res, err := Run(gridSpec(false, nil), Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(res.Rows))
	}
	// Row-major: last axis fastest.
	want := []int{0, 1, 2, 3, 100, 101, 102, 103, 200, 201, 202, 203}
	for i, row := range res.Rows {
		if row.Value != want[i] {
			t.Errorf("row %d = %d, want %d (point %v)", i, row.Value, want[i], row.Point)
		}
	}
	if got := res.Rows[5].Point; got[0] != "a1" || got[1] != "b1" {
		t.Errorf("row 5 point = %v, want [a1 b1]", got)
	}
}

func TestParallelByteIdenticalToSerial(t *testing.T) {
	var refJSON, refCSV bytes.Buffer
	ref, err := Run(gridSpec(true, nil), Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		res, err := Run(gridSpec(true, nil), Exec{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON.Bytes(), j.Bytes()) {
			t.Errorf("workers=%d: JSON differs from serial", workers)
		}
		if !bytes.Equal(refCSV.Bytes(), c.Bytes()) {
			t.Errorf("workers=%d: CSV differs from serial", workers)
		}
	}
}

func TestInGridDeduplication(t *testing.T) {
	var ran atomic.Int64
	spec := gridSpec(false, &ran)
	// Fingerprint ignores axis b: each a-row is one work unit.
	spec.Cell = func(pt Point) (int, error) {
		ran.Add(1)
		return pt.Index("a"), nil
	}
	spec.Fingerprint = func(pt Point) string {
		return fmt.Sprintf("dedup|%d", pt.Index("a"))
	}
	for _, workers := range []int{1, 4} {
		ran.Store(0)
		res, err := Run(spec, Exec{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 3 {
			t.Errorf("workers=%d: %d executions, want 3 (12 cells, 3 fingerprints)", workers, ran.Load())
		}
		if res.Stats.Executed != 3 || res.Stats.Shared != 9 || res.Stats.CacheHits != 0 {
			t.Errorf("workers=%d: stats = %+v, want Executed=3 Shared=9 CacheHits=0", workers, res.Stats)
		}
		for i, row := range res.Rows {
			if row.Value != i/4 {
				t.Errorf("row %d = %d, want %d", i, row.Value, i/4)
			}
		}
	}
}

func TestCrossSweepCache(t *testing.T) {
	cache := NewCache()
	var ran atomic.Int64
	first, err := Run(gridSpec(false, &ran), Exec{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Executed != 12 || first.Stats.CacheHits != 0 {
		t.Fatalf("first run stats = %+v, want 12 executed, 0 hits", first.Stats)
	}
	if ran.Load() != 12 {
		t.Fatalf("first run executed %d cells, want 12", ran.Load())
	}

	// An overlapping grid: same fingerprint space, but only a0/a1 rows.
	overlap := gridSpec(false, &ran)
	overlap.Axes[0].Values = []string{"a0", "a1"}
	second, err := Run(overlap, Exec{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Errorf("overlapping grid re-simulated cells: %d total executions, want 12", ran.Load())
	}
	if second.Stats.Executed != 0 || second.Stats.CacheHits != 8 {
		t.Errorf("second run stats = %+v, want Executed=0 CacheHits=8", second.Stats)
	}
	for i, row := range second.Rows {
		want := (i/4)*100 + i%4
		if row.Value != want {
			t.Errorf("cached row %d = %d, want %d", i, row.Value, want)
		}
	}
	cs := cache.Stats()
	if cs.Entries != 12 || cs.Hits != 8 || cs.Misses != 12 {
		t.Errorf("cache stats = %+v, want Entries=12 Hits=8 Misses=12", cs)
	}
}

func TestEmptyFingerprintNeverShares(t *testing.T) {
	cache := NewCache()
	var ran atomic.Int64
	spec := gridSpec(false, &ran)
	spec.Fingerprint = func(Point) string { return "" }
	for i := 0; i < 2; i++ {
		if _, err := Run(spec, Exec{Workers: 2, Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if ran.Load() != 24 {
		t.Errorf("%d executions, want 24 (no caching without fingerprints)", ran.Load())
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	spec := gridSpec(true, nil)
	spec.Cell = func(pt Point) (int, error) {
		// Two failing cells; the first in grid order is (a1, b0).
		if pt.Index("a") >= 1 && pt.Index("b") == 0 {
			return 0, boom
		}
		return 0, nil
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := Run(spec, Exec{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error %v does not wrap cause", workers, err)
		}
		var cerr *CellError
		if !errors.As(err, &cerr) {
			t.Fatalf("workers=%d: error %T is not a CellError", workers, err)
		}
		if cerr.Sweep != "test" {
			t.Errorf("workers=%d: error sweep = %q", workers, cerr.Sweep)
		}
		if got := fmt.Sprintf("%v", cerr.Point); got != "[a1 b0]" {
			t.Errorf("workers=%d: reported cell %v, want [a1 b0] (first failure in grid order)", workers, got)
		}
		if !strings.Contains(err.Error(), "a1") {
			t.Errorf("workers=%d: error %q does not name the cell", workers, err)
		}
	}
}

func TestProgressReachesTotal(t *testing.T) {
	var calls int
	var last int
	_, err := Run(gridSpec(false, nil), Exec{
		Workers: 3,
		Progress: func(done, total int) {
			calls++
			if total != 12 {
				t.Errorf("total = %d, want 12", total)
			}
			if done < last {
				t.Errorf("done went backwards: %d after %d", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 12 {
		t.Errorf("final done = %d, want 12", last)
	}
	if calls == 0 {
		t.Error("progress never called")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec[int]{Name: "x", Axes: []Axis{{Name: "a", Values: []string{"v"}}}}, Exec{}); err == nil {
		t.Error("nil Cell accepted")
	}
	cell := func(Point) (int, error) { return 0, nil }
	if _, err := Run(Spec[int]{Name: "x", Cell: cell}, Exec{}); err == nil {
		t.Error("empty axes accepted")
	}
	if _, err := Run(Spec[int]{Name: "x", Cell: cell, Axes: []Axis{{Name: "", Values: []string{"v"}}}}, Exec{}); err == nil {
		t.Error("unnamed axis accepted")
	}
	if _, err := Run(Spec[int]{Name: "x", Cell: cell, Axes: []Axis{{Name: "a"}}}, Exec{}); err == nil {
		t.Error("empty axis accepted")
	}
}

func TestCSVShape(t *testing.T) {
	type row struct {
		Total   int64     `json:"total_ps"`
		Label   string    `json:"label"`
		Traffic []float64 `json:"traffic_mb"`
	}
	spec := Spec[row]{
		Name: "csv",
		Axes: []Axis{{Name: "k", Values: []string{"4", "16"}}},
		Cell: func(pt Point) (row, error) {
			i := pt.Index("k")
			return row{Total: int64(i + 1), Label: "r" + pt.Value("k"), Traffic: []float64{1.5, float64(i)}}, nil
		},
	}
	res, err := Run(spec, Exec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "k,label,total_ps,traffic_mb" {
		t.Errorf("header = %q (fields should be axis then sorted value fields)", lines[0])
	}
	if lines[1] != `4,r4,1,"[1.5,0]"` {
		t.Errorf("row 1 = %q", lines[1])
	}
}
