// Package sweep is the scenario-sweep engine behind every reproduced
// figure and table: a declarative grid of named axes whose cells are
// simulator configurations, executed by a worker pool and assembled into
// deterministically ordered rows.
//
// Three properties make the engine a first-class primitive rather than a
// parallel for-loop:
//
//   - Determinism: rows come back in row-major axis order and every
//     exported byte is identical whatever the worker count, because each
//     cell's result is written to its pre-assigned slot.
//   - Deduplication: cells that declare equal content fingerprints are
//     simulated once; overlapping grids (a scaling study and an ablation
//     sharing a corner) share results through an optional cross-sweep
//     Cache keyed by content hash.
//   - Structure: results export to JSON and CSV without per-experiment
//     plumbing, and a progress callback reports completion as cells
//     finish.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Axis is one named dimension of a sweep grid. Values are display labels;
// cell functions receive the value's index and look up their own typed
// configuration.
type Axis struct {
	Name   string
	Values []string
}

// Point identifies one cell: an index into every axis.
type Point struct {
	axes []Axis
	idx  []int
}

// Index returns the value index of the named axis; it panics on an
// unknown axis name (a programming error in the spec).
func (p Point) Index(axis string) int {
	for i, ax := range p.axes {
		if ax.Name == axis {
			return p.idx[i]
		}
	}
	panic(fmt.Sprintf("sweep: point has no axis %q", axis))
}

// Value returns the value label of the named axis.
func (p Point) Value(axis string) string {
	for i, ax := range p.axes {
		if ax.Name == axis {
			return ax.Values[p.idx[i]]
		}
	}
	panic(fmt.Sprintf("sweep: point has no axis %q", axis))
}

// Values returns the cell's value labels in axis order.
func (p Point) Values() []string {
	out := make([]string, len(p.axes))
	for i, ax := range p.axes {
		out[i] = ax.Values[p.idx[i]]
	}
	return out
}

// Spec declares a sweep: named axes and a cell function evaluated at
// every point of their cross product.
type Spec[T any] struct {
	// Name labels the sweep in errors and exports.
	Name string
	// Axes span the grid; the cross product is enumerated row-major
	// (last axis fastest), which is also the row order of the result.
	Axes []Axis
	// Cell evaluates one grid point. It must be safe for concurrent
	// calls; every reproduced experiment satisfies this because each run
	// builds a fresh simulator.
	Cell func(pt Point) (T, error)
	// Fingerprint, when non-nil, returns a canonical description of the
	// cell's full configuration. Cells with equal fingerprints are
	// assumed identical: within a grid they are simulated once, and
	// across grids they share results through Exec.Cache. An empty
	// string opts the cell out (never shared, never cached) — used for
	// wall-clock measurements that must actually run.
	Fingerprint func(pt Point) string
}

// Exec controls how a sweep executes.
type Exec struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, shares results between sweeps whose cells
	// have equal fingerprints.
	Cache *Cache
	// Progress, when non-nil, is called after each cell completes with
	// the number of finished cells and the grid total. Calls are
	// serialized but arrive in completion order, which under parallel
	// execution is not the row order.
	Progress func(done, total int)
}

// Stats summarizes how a sweep's cells were obtained.
type Stats struct {
	// Cells is the grid size (product of axis lengths).
	Cells int
	// Executed counts cells whose simulation actually ran.
	Executed int
	// Shared counts cells served by an identical cell in the same grid.
	Shared int
	// CacheHits counts cells served from the cross-sweep cache.
	CacheHits int
	// Wall is the sweep's wall-clock duration.
	Wall time.Duration
}

// Row is one result: the identifying axis values and the cell's value.
type Row[T any] struct {
	// Point holds the axis value labels in axis order.
	Point []string
	// Value is the cell function's result.
	Value T
}

// Results holds a completed sweep in deterministic row-major order.
type Results[T any] struct {
	Name  string
	Axes  []Axis
	Rows  []Row[T]
	Stats Stats
}

// Values returns the row values in grid order.
func (r *Results[T]) Values() []T {
	out := make([]T, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Value
	}
	return out
}

// CellError reports the first failing cell in grid order.
type CellError struct {
	Sweep string
	Point []string
	Err   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("sweep %s: cell %v: %v", e.Sweep, e.Point, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// group is one unit of work: all grid cells sharing a fingerprint.
type group struct {
	fp      string
	indices []int // grid indices in ascending order
}

// Run executes the sweep. Results are independent of the worker count:
// parallel output is byte-identical to serial. On failure Run returns the
// error of the first failing cell in grid order (also deterministic:
// cells are dispatched in order, so no cell before the reported one can
// have failed unnoticed).
func Run[T any](spec Spec[T], exec Exec) (*Results[T], error) {
	start := time.Now()
	if spec.Cell == nil {
		return nil, fmt.Errorf("sweep %s: nil Cell", spec.Name)
	}
	if len(spec.Axes) == 0 {
		return nil, fmt.Errorf("sweep %s: no axes", spec.Name)
	}
	total := 1
	for _, ax := range spec.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep %s: unnamed axis", spec.Name)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep %s: axis %s has no values", spec.Name, ax.Name)
		}
		total *= len(ax.Values)
	}

	// Enumerate the grid row-major and coalesce cells by fingerprint.
	points := make([]Point, total)
	counter := make([]int, len(spec.Axes))
	var groups []group
	byFP := make(map[string]int)
	for i := 0; i < total; i++ {
		idx := make([]int, len(counter))
		copy(idx, counter)
		points[i] = Point{axes: spec.Axes, idx: idx}
		var fp string
		if spec.Fingerprint != nil {
			fp = spec.Fingerprint(points[i])
		}
		if fp == "" {
			groups = append(groups, group{indices: []int{i}})
		} else if gi, ok := byFP[fp]; ok {
			groups[gi].indices = append(groups[gi].indices, i)
		} else {
			byFP[fp] = len(groups)
			groups = append(groups, group{fp: fp, indices: []int{i}})
		}
		for d := len(counter) - 1; d >= 0; d-- {
			counter[d]++
			if counter[d] < len(spec.Axes[d].Values) {
				break
			}
			counter[d] = 0
		}
	}

	workers := exec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	var (
		values   = make([]T, total)
		errs     = make([]error, len(groups))
		failed   atomic.Bool
		executed atomic.Int64
		hits     atomic.Int64
		done     int
		doneMu   sync.Mutex
	)
	runGroup := func(gi int) {
		g := groups[gi]
		pt := points[g.indices[0]]
		var val T
		fromCache := false
		if g.fp != "" && exec.Cache != nil {
			if v, ok := exec.Cache.lookup(g.fp); ok {
				if tv, ok := v.(T); ok {
					val, fromCache = tv, true
				}
			}
		}
		if !fromCache {
			var err error
			val, err = spec.Cell(pt)
			if err != nil {
				errs[gi] = &CellError{Sweep: spec.Name, Point: pt.Values(), Err: err}
				failed.Store(true)
				return
			}
			executed.Add(1)
			if g.fp != "" && exec.Cache != nil {
				exec.Cache.store(g.fp, val)
			}
		} else {
			hits.Add(int64(len(g.indices)))
		}
		for _, i := range g.indices {
			values[i] = val
		}
		if exec.Progress != nil {
			doneMu.Lock()
			done += len(g.indices)
			exec.Progress(done, total)
			doneMu.Unlock()
		}
	}

	if workers <= 1 {
		for gi := range groups {
			runGroup(gi)
			if failed.Load() {
				break
			}
		}
	} else {
		// Dispatch groups in grid order; once a cell fails, stop feeding
		// so in-flight work drains quickly.
		ch := make(chan int)
		go func() {
			for gi := range groups {
				if failed.Load() {
					break
				}
				ch <- gi
			}
			close(ch)
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for gi := range ch {
					runGroup(gi)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Results[T]{
		Name: spec.Name,
		Axes: spec.Axes,
		Rows: make([]Row[T], total),
		Stats: Stats{
			Cells:     total,
			Executed:  int(executed.Load()),
			CacheHits: int(hits.Load()),
			Wall:      time.Since(start),
		},
	}
	res.Stats.Shared = total - res.Stats.Executed - res.Stats.CacheHits
	for i := range points {
		res.Rows[i] = Row[T]{Point: points[i].Values(), Value: values[i]}
	}
	return res, nil
}
