package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Cache shares cell results across sweeps. Entries are keyed by the
// SHA-256 of the cell's fingerprint — a content hash of the full
// simulation configuration — so two grids that overlap (the same
// topology, workload, scheduler and chunking) simulate the shared cells
// once, whichever grid runs first.
//
// The zero Cache is not usable; construct with NewCache. All methods are
// safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	m      map[string]any
	hits   int
	misses int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]any)}
}

// CacheStats reports lookup traffic and occupancy.
type CacheStats struct {
	// Hits and Misses count lookups (one per deduplicated work unit, not
	// per grid cell).
	Hits   int
	Misses int
	// Entries is the number of stored results.
	Entries int
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.m)}
}

func contentKey(fingerprint string) string {
	h := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(h[:])
}

func (c *Cache) lookup(fingerprint string) (any, bool) {
	key := contentKey(fingerprint)
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *Cache) store(fingerprint string, v any) {
	key := contentKey(fingerprint)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}
