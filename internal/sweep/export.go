package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteJSON writes the results as an indented JSON document. The output
// is deterministic: rows are in grid order and point labels are keyed by
// axis name (maps marshal with sorted keys).
func (r *Results[T]) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		Point map[string]string `json:"point"`
		Value T                 `json:"value"`
	}
	type jsonAxis struct {
		Name   string   `json:"name"`
		Values []string `json:"values"`
	}
	doc := struct {
		Sweep string     `json:"sweep"`
		Axes  []jsonAxis `json:"axes"`
		Rows  []jsonRow  `json:"rows"`
	}{Sweep: r.Name}
	for _, ax := range r.Axes {
		doc.Axes = append(doc.Axes, jsonAxis{Name: ax.Name, Values: ax.Values})
	}
	for _, row := range r.Rows {
		pt := make(map[string]string, len(r.Axes))
		for i, ax := range r.Axes {
			pt[ax.Name] = row.Point[i]
		}
		doc.Rows = append(doc.Rows, jsonRow{Point: pt, Value: row.Value})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV writes the results as CSV: one column per axis followed by the
// value's fields (flattened through their JSON form, sorted by name;
// nested values stay compact JSON). Deterministic for a given result set.
func (r *Results[T]) WriteCSV(w io.Writer) error {
	// Flatten every row's value through JSON to a field map.
	maps := make([]map[string]json.RawMessage, len(r.Rows))
	scalar := false // value is not a JSON object; use one "value" column
	for i, row := range r.Rows {
		data, err := json.Marshal(row.Value)
		if err != nil {
			return fmt.Errorf("sweep %s: marshal row %d: %w", r.Name, i, err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			scalar = true
			maps[i] = map[string]json.RawMessage{"value": data}
			continue
		}
		maps[i] = m
	}
	fieldSet := make(map[string]bool)
	for _, m := range maps {
		for k := range m {
			fieldSet[k] = true
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for k := range fieldSet {
		fields = append(fields, k)
	}
	sort.Strings(fields)
	if scalar {
		fields = []string{"value"}
	}

	cw := csv.NewWriter(w)
	header := make([]string, 0, len(r.Axes)+len(fields))
	for _, ax := range r.Axes {
		header = append(header, ax.Name)
	}
	header = append(header, fields...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range r.Rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, row.Point...)
		for _, f := range fields {
			rec = append(rec, csvValue(maps[i][f]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvValue renders one JSON-encoded field for a CSV record: strings are
// unquoted, scalars pass through, composites stay compact JSON.
func csvValue(raw json.RawMessage) string {
	if raw == nil {
		return ""
	}
	if s := string(raw); len(s) > 0 && s[0] == '"' {
		var unquoted string
		if err := json.Unmarshal(raw, &unquoted); err == nil {
			return unquoted
		}
		return s
	}
	return string(raw)
}

// FormatFloat renders an axis value for a numeric grid: the shortest
// representation that round-trips, shared by sweep builders so axis
// labels stay canonical.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatInt renders an integer axis value.
func FormatInt(v int) string { return strconv.Itoa(v) }
