package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"testing"
)

// benchCell burns a deterministic amount of CPU per cell — a stand-in
// for one simulator run — so the engine's scaling is measurable without
// simulator noise.
func benchCell(seed, rounds int) [32]byte {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	for i := 0; i < rounds; i++ {
		buf = sha256.Sum256(buf[:])
	}
	return buf
}

func benchSpec(rounds int) Spec[byte] {
	return Spec[byte]{
		Name: "bench",
		Axes: []Axis{
			{Name: "a", Values: []string{"0", "1", "2", "3"}},
			{Name: "b", Values: []string{"0", "1", "2", "3", "4", "5", "6", "7"}},
		},
		Cell: func(pt Point) (byte, error) {
			sum := benchCell(pt.Index("a")*8+pt.Index("b"), rounds)
			return sum[0], nil
		},
	}
}

// BenchmarkEngineSerial and BenchmarkEngineParallel run the same 32-cell
// grid with ~40k hash rounds per cell; their ratio is the engine's raw
// scaling on the host (bounded by GOMAXPROCS).
func BenchmarkEngineSerial(b *testing.B) {
	spec := benchSpec(40_000)
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Exec{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineParallel(b *testing.B) {
	spec := benchSpec(40_000)
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Exec{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOverhead measures the per-cell dispatch cost with empty
// cells — the floor the engine adds on top of simulation work.
func BenchmarkEngineOverhead(b *testing.B) {
	spec := benchSpec(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Exec{}); err != nil {
			b.Fatal(err)
		}
	}
}
