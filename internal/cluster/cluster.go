// Package cluster simulates multi-tenant training clusters: N co-scheduled
// training jobs space-sharing one hierarchical fabric and one
// disaggregated memory pool. This is the scenario class behind the paper's
// scale argument (and ASTRA-sim 3.0's infrastructure-level follow-up):
// fabrics and memory pools are shared resources, and a job's iteration
// time depends on who it is co-located with.
//
// The model is space partitioning with runtime arbitration:
//
//   - Every job owns a disjoint set of the fabric's NPUs, carved along the
//     fabric's dimension structure (Plan): inner dimensions are taken
//     whole, and a trailing Subdividable dimension (a switch) may be
//     sliced into ports. The job then runs the ordinary single-job
//     simulator — its own network backend, collective engine and
//     execution-trace state — over that carved-out local topology.
//   - All jobs share one discrete-event timeline, so their events
//     interleave exactly as they would on real shared hardware.
//   - Per-NPU endpoint links are private to their owning job, but the
//     fabric levels where several jobs co-reside (a shared switch core, an
//     interleaved ring) are arbitrated at runtime: each active flow
//     reports to a shared fabricState, and when the aggregate demand of
//     the jobs concurrently active on the same physical instances of a
//     dimension exceeds one instance's capacity, new flows there are
//     stretched by the demand/capacity ratio — first-order fair sharing,
//     recomputed on every flow start and finish through the timeline's
//     typed events. Jobs on disjoint instances (different mid-level
//     switches) never see each other's demand.
//   - The remote memory pool is arbitrated the same way at job
//     granularity: a job's remote accesses assume the whole pool, so an
//     access issued while k jobs are streaming is stretched k-fold.
//
// A single-job cluster attaches no arbitration at all and is byte-for-byte
// identical to the isolated run of the same local machine — the anchor
// that makes per-job slowdown a well-defined metric.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/collective"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/et"
	"repro/internal/memory"
	"repro/internal/scenario"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/units"
)

// Placement selects how job allocations are laid out on the fabric.
type Placement int

// Placement policies.
const (
	// Packed gives each job consecutive allocation units in arrival
	// order — the locality-preserving default.
	Packed Placement = iota
	// Strided deals allocation units round-robin across the jobs, the
	// worst-case interleaving (jobs co-reside on every fabric level their
	// units subdivide).
	Strided
	// Random shuffles the allocation units with a seeded PRNG before
	// dealing them packed — the "fragmented cluster" middle ground.
	Random
)

// String names the policy.
func (p Placement) String() string {
	switch p {
	case Packed:
		return "packed"
	case Strided:
		return "strided"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// ParsePlacement resolves a policy name (case-insensitive; "" = packed).
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "packed":
		return Packed, nil
	case "strided":
		return Strided, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("cluster: unknown placement %q (want %s)", s, strings.Join(Placements(), ", "))
	}
}

// Placements lists the policy names, in declaration order — the vocabulary
// for CLI help and the search layer's placement axis.
func Placements() []string { return []string{"packed", "strided", "random"} }

// TraceFunc generates a job's execution trace for its carved-out local
// topology.
type TraceFunc func(*topology.Topology) (*et.Trace, error)

// JobConfig describes one co-scheduled training job.
type JobConfig struct {
	// Name labels the job in results.
	Name string
	// NPUs is the job's allocation size. It must decompose along the
	// fabric's dimensions: inner dimensions taken whole, with at most one
	// trailing sliced switch dimension.
	NPUs int
	// Arrival is the simulated time the job's trace is released.
	Arrival units.Time
	// Trace generates the job's workload on its local topology.
	Trace TraceFunc
}

// Config assembles a simulated multi-job cluster. Compute, memory,
// scheduler and chunking are cluster-wide (a homogeneous machine pool);
// each job brings its own workload and allocation size.
type Config struct {
	Fabric  *topology.Topology
	Compute compute.Model
	Memory  memory.System
	Policy  collective.Policy
	Chunks  int
	// CollectiveLogLimit caps each job's retained collective results.
	CollectiveLogLimit     int
	ModelTransitCongestion bool
	// Shards selects the shared event engine driving every co-scheduled
	// job: <= 1 serial, larger values a sharded engine (see core.Config).
	// Results are byte-identical either way.
	Shards int

	Placement Placement
	// Seed drives the random placement's shuffle; results are fully
	// reproducible for a fixed seed.
	Seed int64
	Jobs []JobConfig

	// Scenario, when non-nil, injects fabric-relative perturbations: link
	// events name fabric dimensions, NPU events name fabric ranks. Each
	// event is translated into every job it touches — link events apply to
	// jobs whose carved-out local topology includes the dimension, NPU
	// events to the job owning the rank — and jobs untouched by any event
	// run byte-identical to an isolated clean run.
	Scenario *scenario.Scenario
}

// JobPlacement is one job's slot in a planned layout.
type JobPlacement struct {
	Name string
	// Local is the job's carved-out topology; its dimensions are a prefix
	// of the fabric's (the last possibly a sliced switch).
	Local *topology.Topology
	// Ranks are the fabric NPUs the job owns, ascending.
	Ranks []int
	// SharedDims marks, per local dimension, whether another job
	// co-resides on the same physical instance of that fabric level — the
	// dimensions where runtime arbitration applies.
	SharedDims []bool

	// weight is the job's per-fabric-dimension bandwidth demand while
	// active (ports per instance x local effective bandwidth), used by the
	// fair-sharing arbiter.
	weight []float64
	// group is, per local dimension, the index of the instance-sharing
	// component the job contends in (-1 where unshared): jobs whose
	// physical dim-d instances are disjoint never see each other's
	// demand, even when both dims are "shared" with someone.
	group []int
}

// Layout is a planned assignment of jobs to fabric NPUs.
type Layout struct {
	Fabric *topology.Topology
	Jobs   []JobPlacement

	// groups[d] counts the instance-sharing components on fabric dim d.
	groups []int
}

// localTopology carves a job-sized sub-fabric out of the cluster fabric:
// dimensions are consumed innermost-first, whole while the job size
// allows, with at most one trailing partial dimension — which must be
// Subdividable (a switch), because a subset of a ring or torus is not the
// same fabric.
func localTopology(fabric *topology.Topology, npus int) (*topology.Topology, error) {
	if npus < 2 {
		return nil, fmt.Errorf("cluster: jobs need at least 2 NPUs, got %d", npus)
	}
	rem := npus
	var dims []topology.Dim
	for i, d := range fabric.Dims {
		if rem == 1 {
			break
		}
		if rem >= d.Size {
			if rem%d.Size != 0 {
				return nil, fmt.Errorf("cluster: job size %d does not tile dim %d %s (size %d must divide the remaining factor %d)",
					npus, i+1, d.Format(), d.Size, rem)
			}
			dims = append(dims, d)
			rem /= d.Size
			continue
		}
		// Partial take: rem ports of dim i.
		if d.Size%rem != 0 {
			return nil, fmt.Errorf("cluster: job size %d leaves a factor %d that does not divide dim %d %s",
				npus, rem, i+1, d.Format())
		}
		sub, ok := d.Kind.(topology.Subdividable)
		if !ok {
			return nil, fmt.Errorf("cluster: job size %d needs a %d-port slice of dim %d %s, but %s blocks cannot be subdivided (only switches can)",
				npus, rem, i+1, d.Format(), d.Kind.LongName())
		}
		sliced, err := sub.Slice(rem)
		if err != nil {
			return nil, fmt.Errorf("cluster: job size %d: slicing dim %d %s: %w", npus, i+1, d.Format(), err)
		}
		dims = append(dims, topology.Dim{Kind: sliced, Size: rem, Bandwidth: d.Bandwidth, Latency: d.Latency})
		rem = 1
	}
	if rem != 1 {
		return nil, fmt.Errorf("cluster: job size %d exceeds the fabric's %d NPUs", npus, fabric.NumNPUs())
	}
	return topology.New(dims...)
}

// unitBlock returns the job's natural allocation block: the product of the
// fabric dimensions it takes whole (1 if it slices the innermost dim).
func unitBlock(fabric, local *topology.Topology) int {
	b := 1
	for i, d := range local.Dims {
		if d.Size != fabric.Dims[i].Size {
			break // the sliced trailing dimension
		}
		b *= d.Size
	}
	return b
}

// Plan carves each job's local topology and assigns fabric NPUs under the
// placement policy, then analyses which fabric levels jobs share. It is
// pure layout — no simulation state — so the search layer can use it for
// feasibility pruning.
func Plan(fabric *topology.Topology, jobs []JobConfig, placement Placement, seed int64) (*Layout, error) {
	if fabric == nil {
		return nil, fmt.Errorf("cluster: no fabric topology")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cluster: no jobs")
	}
	n := fabric.NumNPUs()
	total := 0
	out := &Layout{Fabric: fabric, Jobs: make([]JobPlacement, len(jobs))}

	// Carve local topologies and find the cluster-wide allocation unit:
	// the smallest job block size. Block sizes are prefix products of the
	// fabric shape, so they form a divisibility chain and the smallest
	// divides all the others.
	unit := n
	for j, job := range jobs {
		local, err := localTopology(fabric, job.NPUs)
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s): %w", j, job.Name, err)
		}
		out.Jobs[j] = JobPlacement{Name: job.Name, Local: local}
		if b := unitBlock(fabric, local); b < unit {
			unit = b
		}
		total += job.NPUs
	}
	if total > n {
		return nil, fmt.Errorf("cluster: jobs need %d NPUs but the fabric has %d", total, n)
	}

	numUnits := n / unit
	assign := make([][]int, len(jobs)) // per job: assigned unit indices
	switch placement {
	case Packed:
		next := 0
		for j, job := range jobs {
			k := job.NPUs / unit
			for u := 0; u < k; u++ {
				assign[j] = append(assign[j], next+u)
			}
			next += k
		}
	case Strided:
		need := make([]int, len(jobs))
		for j, job := range jobs {
			need[j] = job.NPUs / unit
		}
		u := 0
		for {
			dealt := false
			for j := range jobs {
				if need[j] > 0 {
					assign[j] = append(assign[j], u)
					need[j]--
					u++
					dealt = true
				}
			}
			if !dealt {
				break
			}
		}
	case Random:
		perm := rand.New(rand.NewSource(seed)).Perm(numUnits)
		next := 0
		for j, job := range jobs {
			k := job.NPUs / unit
			assign[j] = append(assign[j], perm[next:next+k]...)
			sort.Ints(assign[j])
			next += k
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement %d", int(placement))
	}

	for j := range jobs {
		if err := out.Jobs[j].materialize(fabric, unit, assign[j]); err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s) under %s placement: %w", j, jobs[j].Name, placement, err)
		}
	}
	out.analyzeSharing()
	return out, nil
}

// materialize converts a job's allocation units to concrete fabric ranks
// and validates that the units physically reassemble the job's local
// topology: whole dimensions must come back as whole, aligned blocks, and
// sliced switch ports must belong to the same physical switch instance.
func (jp *JobPlacement) materialize(fabric *topology.Topology, unit int, unitIdx []int) error {
	block := unitBlock(fabric, jp.Local)
	c := block / unit // units per whole-dimension block
	if c > 1 {
		for i := 0; i < len(unitIdx); i += c {
			base := unitIdx[i]
			if base%c != 0 {
				return fmt.Errorf("allocation unit %d is not aligned to the job's %d-NPU block; the layout cannot reassemble dim structure (use packed placement or align job sizes)", base, block)
			}
			for k := 1; k < c; k++ {
				if unitIdx[i+k] != base+k {
					return fmt.Errorf("allocation units %d and %d split a %d-NPU block the job needs whole (use packed placement or align job sizes)", base, unitIdx[i+k], block)
				}
			}
		}
	}
	// The sliced dimension's ports must share one physical instance: all
	// block indices must agree on every coordinate above the slice level.
	if last := len(jp.Local.Dims) - 1; last >= 0 && jp.Local.Dims[last].Size != fabric.Dims[last].Size {
		span := fabric.Dims[last].Size
		group := -1
		for i := 0; i < len(unitIdx); i += c {
			g := (unitIdx[i] / c) / span
			if group == -1 {
				group = g
			} else if g != group {
				return fmt.Errorf("the job's slice of dim %d %s spans two physical instances of the block; its ports must share one switch",
					last+1, fabric.Dims[last].Format())
			}
		}
	}
	jp.Ranks = make([]int, 0, len(unitIdx)*unit)
	for _, u := range unitIdx {
		for r := u * unit; r < (u+1)*unit; r++ {
			jp.Ranks = append(jp.Ranks, r)
		}
	}
	sort.Ints(jp.Ranks)
	return nil
}

// analyzeSharing marks, for every (job, fabric dim) the job communicates
// on, whether another communicating job co-resides on the same physical
// instance of that dimension, computes each job's per-instance bandwidth
// demand there, and partitions the contending jobs into instance-sharing
// components — the static inputs of the runtime arbiter. Components
// matter because demand is compared against one instance's capacity:
// jobs on disjoint instances of the same dimension (say, pairs of
// tenants under different mid-level switches) must not see each other's
// demand. Jobs that only partially overlap (possible under random
// placement of sub-leaf jobs) are lumped into one component — a
// first-order approximation.
func (l *Layout) analyzeSharing() {
	dims := len(l.Fabric.Dims)
	l.groups = make([]int, dims)
	for j := range l.Jobs {
		jp := &l.Jobs[j]
		jp.SharedDims = make([]bool, len(jp.Local.Dims))
		jp.weight = make([]float64, len(jp.Local.Dims))
		jp.group = make([]int, len(jp.Local.Dims))
		for d := range jp.group {
			jp.group[d] = -1
		}
	}

	parent := make([]int, len(l.Jobs))
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	for d := 0; d < dims; d++ {
		stride := l.Fabric.DimStride(d)
		size := l.Fabric.Dims[d].Size
		inst := func(g int) int { return (g/(stride*size))*stride + g%stride }
		for i := range parent {
			parent[i] = i
		}
		instFirst := make(map[int]int) // instance -> first communicating job
		instShared := make(map[int]bool)
		touched := make([]int, len(l.Jobs))
		for j := range l.Jobs {
			jp := &l.Jobs[j]
			if d >= len(jp.Local.Dims) {
				continue // the job never communicates on this dim
			}
			seen := make(map[int]bool)
			for _, g := range jp.Ranks {
				in := inst(g)
				if seen[in] {
					continue
				}
				seen[in] = true
				touched[j]++
				if first, ok := instFirst[in]; ok {
					instShared[in] = true
					parent[find(j)] = find(first)
				} else {
					instFirst[in] = j
				}
			}
		}
		rootGroup := make(map[int]int)
		for j := range l.Jobs {
			jp := &l.Jobs[j]
			if d >= len(jp.Local.Dims) {
				continue
			}
			ports := float64(len(jp.Ranks)) / float64(touched[j])
			jp.weight[d] = ports * float64(jp.Local.Dims[d].EffectiveBandwidth())
			shared := false
			for _, g := range jp.Ranks {
				if instShared[inst(g)] {
					shared = true
					break
				}
			}
			if !shared {
				continue
			}
			jp.SharedDims[d] = true
			r := find(j)
			gid, ok := rootGroup[r]
			if !ok {
				gid = l.groups[d]
				l.groups[d]++
				rootGroup[r] = gid
			}
			jp.group[d] = gid
		}
	}
}

// SharedAny reports whether the job contends on any fabric level.
func (jp *JobPlacement) SharedAny() bool {
	for _, s := range jp.SharedDims {
		if s {
			return true
		}
	}
	return false
}

// fabricState is the runtime fair-sharing arbiter for the shared fabric:
// per (dimension, instance-sharing component) it tracks which jobs have
// flows in flight and their aggregate per-instance bandwidth demand,
// against one instance's physical capacity.
type fabricState struct {
	layout *Layout
	// capacity[d] is one instance's aggregate effective bandwidth.
	capacity []float64
	// inflight[j][d] counts job j's in-flight flows on dim d;
	// demand[d][g] sums the weights of component g's jobs currently
	// active on d (only jobs marked shared there participate — a job
	// alone on its instances cannot contend).
	inflight [][]int
	demand   [][]float64
}

func newFabricState(l *Layout) *fabricState {
	dims := len(l.Fabric.Dims)
	st := &fabricState{
		layout:   l,
		capacity: make([]float64, dims),
		inflight: make([][]int, len(l.Jobs)),
		demand:   make([][]float64, dims),
	}
	for d, dim := range l.Fabric.Dims {
		st.capacity[d] = float64(dim.Size) * float64(dim.EffectiveBandwidth())
		st.demand[d] = make([]float64, l.groups[d])
	}
	for j := range l.Jobs {
		st.inflight[j] = make([]int, dims)
	}
	return st
}

func (st *fabricState) flowStarted(job, dim int) float64 {
	jp := &st.layout.Jobs[job]
	if !jp.SharedDims[dim] {
		return 1
	}
	g := jp.group[dim]
	if st.inflight[job][dim] == 0 {
		st.demand[dim][g] += jp.weight[dim]
	}
	st.inflight[job][dim]++
	if c := st.capacity[dim]; c > 0 {
		if f := st.demand[dim][g] / c; f > 1 {
			return f
		}
	}
	return 1
}

func (st *fabricState) flowFinished(job, dim int) {
	jp := &st.layout.Jobs[job]
	if !jp.SharedDims[dim] {
		return
	}
	st.inflight[job][dim]--
	if st.inflight[job][dim] == 0 {
		st.demand[dim][jp.group[dim]] -= jp.weight[dim]
	}
}

// jobFlows adapts one job's network backend to the shared fabricState —
// it implements network.FlowController.
type jobFlows struct {
	st  *fabricState
	job int
}

func (f *jobFlows) FlowStarted(dim int) float64 { return f.st.flowStarted(f.job, dim) }
func (f *jobFlows) FlowFinished(dim int)        { f.st.flowFinished(f.job, dim) }

// poolState arbitrates the shared remote memory pool at job granularity:
// each job's pool model assumes the whole pool, so an access issued while
// k jobs are streaming concurrently is stretched k-fold.
type poolState struct {
	inflight []int
	active   int
}

func (p *poolState) started(job int) float64 {
	if p.inflight[job] == 0 {
		p.active++
	}
	p.inflight[job]++
	return float64(p.active)
}

func (p *poolState) finished(job int) {
	p.inflight[job]--
	if p.inflight[job] == 0 {
		p.active--
	}
}

// jobPool adapts one job's simulator to the shared poolState — it
// implements core.RemoteArbiter.
type jobPool struct {
	st  *poolState
	job int
}

func (p *jobPool) RemoteStarted() float64 { return p.st.started(p.job) }
func (p *jobPool) RemoteFinished()        { p.st.finished(p.job) }

// JobResult is one job's outcome.
type JobResult struct {
	Name string
	NPUs int
	// Ranks are the fabric NPUs the job ran on.
	Ranks []int
	// Local is the job's carved-out topology.
	Local *topology.Topology
	// Arrival and Finish bound the job's span on the shared timeline;
	// Stats.Makespan is their difference.
	Arrival, Finish units.Time
	Stats           *core.RunStats
}

// Result is a completed cluster simulation.
type Result struct {
	Placement Placement
	Jobs      []JobResult
	// Makespan is the time the last job finished.
	Makespan units.Time
	// Events is the total number of discrete events fired across all jobs.
	Events uint64
}

// translateScenario projects a fabric-relative scenario onto one job's
// carved-out machine. A job's local topology is a prefix of the fabric's
// dimensions, so link events keep their dimension index when the job's
// local machine reaches that level; NPU events apply to the job owning the
// fabric rank, rewritten to the job-local rank (the rank's index in the
// ascending Ranks list). Jobs no event touches get a nil scenario and run
// byte-identical to an isolated clean machine.
func translateScenario(sc *scenario.Scenario, jp *JobPlacement) *scenario.Scenario {
	if sc == nil {
		return nil
	}
	var events []scenario.Event
	for _, ev := range sc.Events {
		switch ev.Kind {
		case scenario.DegradeLink, scenario.RestoreLink, scenario.FailLink:
			if ev.Dim >= 0 && ev.Dim < len(jp.Local.Dims) {
				events = append(events, ev)
			}
		case scenario.FailNPU, scenario.StraggleNPU:
			if i := sort.SearchInts(jp.Ranks, ev.NPU); i < len(jp.Ranks) && jp.Ranks[i] == ev.NPU {
				ev.NPU = i
				events = append(events, ev)
			}
		}
	}
	if events == nil {
		return nil
	}
	return &scenario.Scenario{Name: sc.Name, Events: events}
}

// Run plans the layout and co-simulates every job on one shared timeline.
// Results are deterministic: same config and seed, same bytes.
func Run(cfg Config) (*Result, error) {
	for j, job := range cfg.Jobs {
		if job.Trace == nil {
			return nil, fmt.Errorf("cluster: job %d (%s) has no trace generator", j, job.Name)
		}
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(cfg.Fabric.NumNPUs(), cfg.Fabric.NumDims()); err != nil {
			return nil, err
		}
	}
	layout, err := Plan(cfg.Fabric, cfg.Jobs, cfg.Placement, cfg.Seed)
	if err != nil {
		return nil, err
	}

	eng := timeline.ForShards(cfg.Shards)
	core.ApplyLookahead(eng, cfg.Fabric)
	fabric := newFabricState(layout)
	var pool *poolState
	if cfg.Memory.HasPool && len(cfg.Jobs) > 1 {
		pool = &poolState{inflight: make([]int, len(cfg.Jobs))}
	}

	sims := make([]*core.Simulator, len(cfg.Jobs))
	for j, job := range cfg.Jobs {
		jp := &layout.Jobs[j]
		ccfg := core.Config{
			Topology:               jp.Local,
			Compute:                cfg.Compute,
			Memory:                 cfg.Memory,
			Policy:                 cfg.Policy,
			Chunks:                 cfg.Chunks,
			CollectiveLogLimit:     cfg.CollectiveLogLimit,
			ModelTransitCongestion: cfg.ModelTransitCongestion,
		}
		// Jobs that share nothing get no arbitration hooks at all: their
		// event stream is byte-identical to an isolated run.
		if jp.SharedAny() {
			ccfg.FlowController = &jobFlows{st: fabric, job: j}
		}
		ccfg.Scenario = translateScenario(cfg.Scenario, jp)
		if pool != nil {
			ccfg.RemoteArbiter = &jobPool{st: pool, job: j}
		}
		sim, err := core.NewSimulatorOn(eng, ccfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s): %w", j, job.Name, err)
		}
		trace, err := job.Trace(jp.Local)
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s): trace: %w", j, job.Name, err)
		}
		if err := sim.Start(trace, job.Arrival); err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s): %w", j, job.Name, err)
		}
		sims[j] = sim
	}

	if _, err := eng.Run(); err != nil {
		return nil, err
	}

	res := &Result{Placement: cfg.Placement, Events: eng.Fired()}
	for j, job := range cfg.Jobs {
		stats, err := sims[j].Finalize()
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d (%s): %w", j, job.Name, err)
		}
		jp := &layout.Jobs[j]
		jr := JobResult{
			Name:    job.Name,
			NPUs:    job.NPUs,
			Ranks:   jp.Ranks,
			Local:   jp.Local,
			Arrival: sims[j].StartTime(),
			Finish:  sims[j].FinishTime(),
			Stats:   stats,
		}
		if jr.Finish > res.Makespan {
			res.Makespan = jr.Finish
		}
		res.Jobs = append(res.Jobs, jr)
	}
	return res, nil
}
