package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/et"
	"repro/internal/etgen"
	"repro/internal/memory"
	"repro/internal/topology"
	"repro/internal/units"
)

func testFabric(t *testing.T, spec string, gbps ...float64) *topology.Topology {
	t.Helper()
	top, err := topology.ParseWithBandwidth(spec, gbps, 500*units.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func localMem() memory.System {
	return memory.System{Local: memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2039)}}
}

func allToAllJob(name string, npus int, size units.ByteSize) JobConfig {
	return JobConfig{Name: name, NPUs: npus, Trace: func(top *topology.Topology) (*et.Trace, error) {
		return etgen.SingleCollective(top, et.CollAllToAll, size), nil
	}}
}

func nJobs(n, npus int, size units.ByteSize) []JobConfig {
	jobs := make([]JobConfig, n)
	for i := range jobs {
		jobs[i] = allToAllJob(fmt.Sprintf("j%d", i), npus, size)
	}
	return jobs
}

func taperedConfig(jobs []JobConfig, placement Placement) Config {
	return Config{
		Fabric: topology.MustNew(
			topology.Dim{Kind: topology.Switch, Size: 8, Bandwidth: units.GBps(250), Latency: 500 * units.Nanosecond},
			topology.Dim{Kind: topology.OversubscribedSwitch(4), Size: 16, Bandwidth: units.GBps(250), Latency: 500 * units.Nanosecond},
		),
		Compute:   compute.A100(),
		Memory:    localMem(),
		Placement: placement,
		Jobs:      jobs,
	}
}

// --- planning ---

func TestLocalTopologyCarving(t *testing.T) {
	fabric := testFabric(t, "R(4)_FC(2)_SW(8,2)", 250, 100, 50)
	cases := []struct {
		npus int
		want string // "" = error expected
	}{
		{8, "R(4)_FC(2)"},
		{16, "R(4)_FC(2)_SW(2)"}, // switch slice drops the oversubscription
		{32, "R(4)_FC(2)_SW(4)"},
		{64, "R(4)_FC(2)_SW(8,2)"}, // the whole fabric keeps it
		{4, "R(4)"},
		{2, ""},   // would slice the ring
		{12, ""},  // 12/4 = 3 does not divide FC(2)
		{128, ""}, // bigger than the fabric
		{1, ""},   // degenerate
	}
	for _, c := range cases {
		local, err := localTopology(fabric, c.npus)
		if c.want == "" {
			if err == nil {
				t.Errorf("npus=%d: want error, got %s", c.npus, local)
			}
			continue
		}
		if err != nil {
			t.Errorf("npus=%d: %v", c.npus, err)
			continue
		}
		if got := local.String(); got != c.want {
			t.Errorf("npus=%d: local = %s, want %s", c.npus, got, c.want)
		}
	}
}

func TestPlanPacked(t *testing.T) {
	fabric := testFabric(t, "SW(8)_SW(16,4)", 250, 250)
	l, err := Plan(fabric, nJobs(4, 16, units.MB), Packed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, jp := range l.Jobs {
		if len(jp.Ranks) != 16 || jp.Ranks[0] != 16*j {
			t.Errorf("job %d ranks start at %d, want %d", j, jp.Ranks[0], 16*j)
		}
		// Leaf switches are private under packed placement; the spine is
		// shared by all four jobs.
		if want := []bool{false, true}; !reflect.DeepEqual(jp.SharedDims, want) {
			t.Errorf("job %d SharedDims = %v, want %v", j, jp.SharedDims, want)
		}
	}
}

func TestPlanSingleJobSharesNothing(t *testing.T) {
	fabric := testFabric(t, "SW(8)_SW(16,4)", 250, 250)
	l, err := Plan(fabric, nJobs(1, 32, units.MB), Packed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Jobs[0].SharedAny() {
		t.Errorf("lone job shares dims: %v", l.Jobs[0].SharedDims)
	}
}

func TestPlanStridedInterleavesSubLeafJobs(t *testing.T) {
	// 4-port jobs slice the 8-port leaves: strided placement interleaves
	// them inside leaves, so even the leaf level is shared.
	fabric := testFabric(t, "SW(8)_SW(4)", 250, 250)
	l, err := Plan(fabric, nJobs(2, 4, units.MB), Strided, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Jobs[0].SharedDims[0] {
		t.Error("strided sub-leaf jobs should share the leaf dim")
	}
	if got := l.Jobs[0].Ranks; !reflect.DeepEqual(got, []int{0, 2, 4, 6}) {
		t.Errorf("strided job 0 ranks = %v, want [0 2 4 6]", got)
	}
}

func TestPlanRandomDeterministicPerSeed(t *testing.T) {
	fabric := testFabric(t, "SW(8)_SW(16)", 250, 250)
	a, err := Plan(fabric, nJobs(4, 16, units.MB), Random, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(fabric, nJobs(4, 16, units.MB), Random, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Jobs {
		if !reflect.DeepEqual(a.Jobs[j].Ranks, b.Jobs[j].Ranks) {
			t.Fatalf("seeded random placement not reproducible: job %d %v vs %v", j, a.Jobs[j].Ranks, b.Jobs[j].Ranks)
		}
	}
}

func TestPlanRejectsOvercommit(t *testing.T) {
	fabric := testFabric(t, "SW(8)_SW(4)", 250, 250)
	if _, err := Plan(fabric, nJobs(3, 16, units.MB), Packed, 0); err == nil {
		t.Error("48 NPUs of jobs on a 32-NPU fabric accepted")
	}
}

func TestPlanStridedRejectsSplitBlocks(t *testing.T) {
	// The 2-NPU job slices the SW(4) leaves, so the allocation unit is a
	// single NPU; the 8-NPU job needs whole 4-NPU leaves, and strided
	// dealing hands it interleaved single NPUs that cannot reassemble
	// aligned leaf blocks.
	fabric := testFabric(t, "SW(4)_SW(8)", 250, 100)
	jobs := []JobConfig{allToAllJob("big", 8, units.MB), allToAllJob("small", 2, units.MB)}
	if _, err := Plan(fabric, jobs, Strided, 0); err == nil {
		t.Error("strided placement that splits a whole-dim block was accepted")
	}
	if _, err := Plan(fabric, jobs, Packed, 0); err != nil {
		t.Errorf("packed placement of the same jobs should be valid: %v", err)
	}
}

// --- simulation ---

// TestSingleJobMatchesIsolatedRun is the anchor property: a one-job
// cluster is byte-identical to the isolated core run of the same carved
// machine — same makespan, same breakdowns, same event count.
func TestSingleJobMatchesIsolatedRun(t *testing.T) {
	cfg := taperedConfig(nJobs(1, 16, 256*units.MB), Packed)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	local, err := localTopology(cfg.Fabric, 16)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(core.Config{
		Topology: local, Compute: cfg.Compute, Memory: cfg.Memory,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := cfg.Jobs[0].Trace(local)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}

	got := res.Jobs[0].Stats
	if got.Makespan != iso.Makespan {
		t.Errorf("cluster makespan %v != isolated %v", got.Makespan, iso.Makespan)
	}
	if got.Events != iso.Events {
		t.Errorf("cluster events %d != isolated %d", got.Events, iso.Events)
	}
	if !reflect.DeepEqual(got.PerNPU, iso.PerNPU) {
		t.Error("per-NPU breakdowns differ between cluster and isolated run")
	}
	if !reflect.DeepEqual(got.TrafficPerDim, iso.TrafficPerDim) {
		t.Error("traffic accounting differs between cluster and isolated run")
	}
}

// TestInterferenceMonotone checks the headline model property: per-job
// slowdown on an oversubscribed spine is non-decreasing in the co-located
// job count, and identical jobs finish near-identically (fair shares are
// sampled at flow start, so late starters may trail by a fraction of a
// percent — never more).
func TestInterferenceMonotone(t *testing.T) {
	var prev units.Time
	for _, n := range []int{1, 2, 4, 8} {
		res, err := Run(taperedConfig(nJobs(n, 16, 256*units.MB), Packed))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var mean units.Time
		first := res.Jobs[0].Stats.Makespan
		for _, jr := range res.Jobs {
			mk := jr.Stats.Makespan
			mean += mk
			if diff := float64(mk-first) / float64(first); diff < -0.03 || diff > 0.03 {
				t.Errorf("n=%d: job %s makespan %v strays >3%% from %v (identical jobs should tie closely)", n, jr.Name, mk, first)
			}
		}
		mean /= units.Time(n)
		if mean < prev {
			t.Errorf("n=%d: mean makespan %v < %v at fewer jobs — slowdown not monotone", n, mean, prev)
		}
		prev = mean
	}
	// And the 8-job cell must actually be slower than isolated: the spine
	// demand (8 jobs x 2 ports x 250 GB/s) is 4x its 1 TB/s capacity.
	iso, err := Run(taperedConfig(nJobs(1, 16, 256*units.MB), Packed))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(taperedConfig(nJobs(8, 16, 256*units.MB), Packed))
	if err != nil {
		t.Fatal(err)
	}
	if full.Jobs[0].Stats.Makespan <= iso.Jobs[0].Stats.Makespan {
		t.Errorf("8 co-located jobs show no slowdown: %v vs isolated %v",
			full.Jobs[0].Stats.Makespan, iso.Jobs[0].Stats.Makespan)
	}
}

// TestFlatSpineDoesNotInterfere: the same jobs on a fully-provisioned
// spine have enough capacity and must run exactly at isolated speed.
func TestFlatSpineDoesNotInterfere(t *testing.T) {
	flat := func(jobs []JobConfig) Config {
		cfg := taperedConfig(jobs, Packed)
		cfg.Fabric = topology.MustNew(
			topology.Dim{Kind: topology.Switch, Size: 8, Bandwidth: units.GBps(250), Latency: 500 * units.Nanosecond},
			topology.Dim{Kind: topology.Switch, Size: 16, Bandwidth: units.GBps(250), Latency: 500 * units.Nanosecond},
		)
		return cfg
	}
	iso, err := Run(flat(nJobs(1, 16, 256*units.MB)))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(flat(nJobs(8, 16, 256*units.MB)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := full.Jobs[0].Stats.Makespan, iso.Jobs[0].Stats.Makespan; got != want {
		t.Errorf("flat spine has capacity for all 8 jobs but makespan moved: %v vs %v", got, want)
	}
}

// TestDisjointInstanceGroupsDoNotContend: on a three-level fabric, packed
// 8-NPU jobs pair up under disjoint mid-level switches — every instance
// runs exactly at (not over) capacity, so the arbiter must return 1.0 and
// each job must run at isolated speed. Regression test for the
// dim-aggregate-vs-instance-capacity accounting bug.
func TestDisjointInstanceGroupsDoNotContend(t *testing.T) {
	mk := func(n int) Config {
		fabric := testFabric(t, "SW(4)_SW(4)_SW(8)", 250, 250, 250)
		return Config{
			Fabric: fabric, Compute: compute.A100(), Memory: localMem(),
			Placement: Packed, Jobs: nJobs(n, 8, 256*units.MB),
		}
	}
	l, err := Plan(mk(16).Fabric, nJobs(16, 8, 256*units.MB), Packed, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 16 jobs of SW(4)_SW(2): dim 2 is shared pairwise — eight disjoint
	// two-job components, not one sixteen-job pool.
	if got := l.groups[1]; got != 8 {
		t.Fatalf("dim-2 instance-sharing components = %d, want 8", got)
	}
	if g0, g1, g2 := l.Jobs[0].group[1], l.Jobs[1].group[1], l.Jobs[2].group[1]; g0 != g1 || g0 == g2 {
		t.Fatalf("jobs 0,1 should share a component and job 2 should not: %d %d %d", g0, g1, g2)
	}
	iso, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(mk(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range full.Jobs {
		if jr.Stats.Makespan != iso.Jobs[0].Stats.Makespan {
			t.Fatalf("job %s slowed to %v (isolated %v) although every instance is exactly at capacity",
				jr.Name, jr.Stats.Makespan, iso.Jobs[0].Stats.Makespan)
		}
	}
}

// TestRunDeterminism: identical configs give byte-identical results, for
// every placement policy.
func TestRunDeterminism(t *testing.T) {
	for _, p := range []Placement{Packed, Strided, Random} {
		a, err := Run(taperedConfig(nJobs(4, 16, 64*units.MB), p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		b, err := Run(taperedConfig(nJobs(4, 16, 64*units.MB), p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v placement: two identical runs differ", p)
		}
	}
}

// TestArrivalStaggering: a job released at time T measures its makespan
// from T, and an empty head start changes nothing about its duration.
func TestArrivalStaggering(t *testing.T) {
	jobs := nJobs(2, 16, 64*units.MB)
	jobs[1].Arrival = 10 * units.Millisecond
	res, err := Run(taperedConfig(jobs, Packed))
	if err != nil {
		t.Fatal(err)
	}
	j1 := res.Jobs[1]
	if j1.Arrival != 10*units.Millisecond {
		t.Fatalf("arrival = %v", j1.Arrival)
	}
	if j1.Stats.Makespan != j1.Finish-j1.Arrival {
		t.Errorf("makespan %v != finish-arrival %v", j1.Stats.Makespan, j1.Finish-j1.Arrival)
	}
	// Job 0's 64 MB all-to-all is long done by t=10ms, so job 1 runs alone
	// and must match the isolated time exactly.
	iso, err := Run(taperedConfig(nJobs(1, 16, 64*units.MB), Packed))
	if err != nil {
		t.Fatal(err)
	}
	if j1.Stats.Makespan != iso.Jobs[0].Stats.Makespan {
		t.Errorf("staggered job ran at %v, isolated %v", j1.Stats.Makespan, iso.Jobs[0].Stats.Makespan)
	}
}

// TestSharedPoolContention: co-scheduled jobs streaming from one remote
// pool slow each other down; a lone job does not.
func TestSharedPoolContention(t *testing.T) {
	pooled := func(n int) Config {
		cfg := taperedConfig(nil, Packed)
		cfg.Memory = memory.System{
			Local:   memory.LocalModel{Latency: units.Microsecond, Bandwidth: units.GBps(2039)},
			HasPool: true,
			Pool: memory.PoolConfig{
				Design: memory.Hierarchical, NumNodes: 16, GPUsPerNode: 8,
				NumOutSwitches: 4, NumRemoteGroups: 8,
				RemoteGroupBW: units.GBps(100), GPUSideOutFabricBW: units.GBps(100),
				InNodeFabricBW: units.GBps(256),
			},
		}
		for i := 0; i < n; i++ {
			cfg.Jobs = append(cfg.Jobs, JobConfig{Name: fmt.Sprintf("m%d", i), NPUs: 16,
				Trace: func(top *topology.Topology) (*et.Trace, error) {
					return etgen.MoETrace(top, etgen.MoE1T(false))
				}})
		}
		return cfg
	}
	iso, err := Run(pooled(1))
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Run(pooled(4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := quad.Jobs[0].Stats.Makespan, iso.Jobs[0].Stats.Makespan; got <= want {
		t.Errorf("4 jobs on one pool show no contention: %v vs isolated %v", got, want)
	}
	// Remote exposure, specifically, must have grown.
	isoMem := iso.Jobs[0].Stats.MeanBreakdown().ExposedRemoteMem
	quadMem := quad.Jobs[0].Stats.MeanBreakdown().ExposedRemoteMem
	if quadMem <= isoMem {
		t.Errorf("exposed remote-mem did not grow under pool sharing: %v vs %v", quadMem, isoMem)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(taperedConfig(nil, Packed)); err == nil {
		t.Error("no jobs accepted")
	}
	cfg := taperedConfig(nJobs(1, 16, units.MB), Packed)
	cfg.Jobs[0].Trace = nil
	if _, err := Run(cfg); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := ParsePlacement("diagonal"); err == nil {
		t.Error("unknown placement accepted")
	}
	for _, name := range Placements() {
		if _, err := ParsePlacement(name); err != nil {
			t.Errorf("listed placement %q does not parse: %v", name, err)
		}
	}
}
