package astrasim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testMachine(t *testing.T, cfg MachineConfig) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallRing(t *testing.T) *Machine {
	return testMachine(t, MachineConfig{
		Topology:       "R(8)",
		BandwidthsGBps: []float64{300},
	})
}

func TestNewMachineDefaults(t *testing.T) {
	m := smallRing(t)
	if m.NumNPUs() != 8 {
		t.Errorf("NumNPUs = %d", m.NumNPUs())
	}
	if m.TopologySpec() != "R(8)" {
		t.Errorf("TopologySpec = %q", m.TopologySpec())
	}
	if m.AggregateBandwidthGBps() != 300 {
		t.Errorf("AggregateBandwidthGBps = %v", m.AggregateBandwidthGBps())
	}
}

func TestNewMachineErrors(t *testing.T) {
	cases := []MachineConfig{
		{Topology: "bogus", BandwidthsGBps: []float64{1}},
		{Topology: "R(4)", BandwidthsGBps: []float64{1, 2}},
		{Topology: "R(4)", BandwidthsGBps: []float64{100}, Scheduler: "magic"},
		{Topology: "R(4)", BandwidthsGBps: []float64{100},
			Memory: &MemoryConfig{Pool: &PoolConfig{Design: "quantum"}}},
		{Topology: "R(4)", BandwidthsGBps: []float64{100},
			Memory: &MemoryConfig{Pool: &PoolConfig{Design: "hierarchical"}}}, // missing counts
	}
	for i, c := range cases {
		if _, err := NewMachine(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunAllReduce(t *testing.T) {
	m := smallRing(t)
	rep, err := m.Run(AllReduce(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if rep.ExposedComm != rep.Makespan {
		t.Errorf("pure collective should be all comm: %+v", rep)
	}
	sum := rep.Compute + rep.ExposedComm + rep.ExposedRemoteMem + rep.ExposedLocalMem + rep.Idle
	if sum != rep.Makespan {
		t.Errorf("breakdown sums to %v, want %v", sum, rep.Makespan)
	}
	if len(rep.TrafficPerDimMB) != 1 || rep.TrafficPerDimMB[0] <= 0 {
		t.Errorf("traffic = %v", rep.TrafficPerDimMB)
	}
}

func TestCollectiveOps(t *testing.T) {
	m := smallRing(t)
	for _, op := range []string{"all_reduce", "all_gather", "reduce_scatter", "all_to_all"} {
		rep, err := m.Run(Collective(op, 32<<20))
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if rep.Makespan <= 0 {
			t.Errorf("%s: zero makespan", op)
		}
	}
	if _, err := m.Run(Collective("broadcast", 1024)); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestEstimateMatchesRun(t *testing.T) {
	m := testMachine(t, MachineConfig{
		Topology:       "R(2)_FC(8)_R(8)_SW(4)",
		BandwidthsGBps: []float64{250, 200, 100, 50},
	})
	rep, err := m.Run(AllReduce(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateCollective("all_reduce", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rep.Makespan) / float64(est)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("run %v vs estimate %v (ratio %.3f)", rep.Makespan, est, ratio)
	}
	if _, err := m.EstimateCollective("nope", 1); err == nil {
		t.Error("unknown op accepted by estimator")
	}
}

// TestEstimateMatchesRunAllBlocks drives every registered building block
// through the full public path — shape-notation parse, closed-form
// EstimateCollective, and event-driven Machine.Run — and checks the two
// model paths agree for All-Reduce and All-Gather.
func TestEstimateMatchesRunAllBlocks(t *testing.T) {
	specs := []struct {
		topo string
		bw   []float64
	}{
		{"R(8)", []float64{100}},
		{"FC(8)", []float64{100}},
		{"SW(8)", []float64{100}},
		{"M(8)", []float64{100}},
		{"T2D(4,2)", []float64{100}},
		{"SW(8,4)", []float64{400}},
		{"T2D(4,4)_SW(4,2)", []float64{200, 100}},
		{"M(4)_T2D(2,2)_SW(4)", []float64{200, 100, 50}},
	}
	for _, s := range specs {
		m := testMachine(t, MachineConfig{Topology: s.topo, BandwidthsGBps: s.bw})
		if got := m.TopologySpec(); got != s.topo {
			t.Errorf("%s: canonical spec %q does not round-trip", s.topo, got)
		}
		for _, op := range []string{"all_reduce", "all_gather"} {
			rep, err := m.Run(Collective(op, 256<<20))
			if err != nil {
				t.Fatalf("%s/%s: %v", s.topo, op, err)
			}
			est, err := m.EstimateCollective(op, 256<<20)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.topo, op, err)
			}
			ratio := float64(rep.Makespan) / float64(est)
			if ratio < 0.85 || ratio > 1.15 {
				t.Errorf("%s/%s: run %v vs estimate %v (ratio %.3f)", s.topo, op, rep.Makespan, est, ratio)
			}
		}
	}
}

func TestThemisSchedulerSelection(t *testing.T) {
	base := testMachine(t, MachineConfig{
		Topology:       "R(16)_R(8)",
		BandwidthsGBps: []float64{50, 400},
	})
	themis := testMachine(t, MachineConfig{
		Topology:       "R(16)_R(8)",
		BandwidthsGBps: []float64{50, 400},
		Scheduler:      "themis",
	})
	rb, err := base.Run(AllReduce(512 << 20))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := themis.Run(AllReduce(512 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Makespan >= rb.Makespan {
		t.Errorf("themis (%v) should beat baseline (%v) here", rt.Makespan, rb.Makespan)
	}
}

func TestPaperWorkloadsRunOnSmallMachines(t *testing.T) {
	// GPT-3's MP=16 fits a 32-NPU machine with DP=2.
	m := testMachine(t, MachineConfig{
		Topology:       "R(16)_R(2)",
		BandwidthsGBps: []float64{300, 100},
	})
	for _, w := range []Workload{GPT3(), DLRM()} {
		rep, err := m.Run(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if rep.Makespan <= 0 || rep.Compute <= 0 {
			t.Errorf("%s: report %+v", w.Name(), rep)
		}
	}
}

func TestCustomTransformer(t *testing.T) {
	m := smallRing(t)
	rep, err := m.Run(Transformer(1e9, 4, 1024, 512, 1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestPipelineWorkload(t *testing.T) {
	m := smallRing(t)
	rep, err := m.Run(Pipeline(4, 4, 1e12, 8<<20, 32<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Idle <= 0 {
		t.Error("pipeline should expose bubble idle time")
	}
}

func TestMoEWithPool(t *testing.T) {
	m := testMachine(t, MachineConfig{
		Topology:       "SW(16)_SW(16)",
		BandwidthsGBps: []float64{460, 100},
		PeakTFLOPS:     2048,
		HBMGBps:        4096,
		Memory: &MemoryConfig{
			Pool: &PoolConfig{
				Design: "hierarchical", Nodes: 16, GPUsPerNode: 16,
				OutSwitches: 16, RemoteGroups: 256,
				RemoteGroupGBps: 100, GPUSideGBps: 8192, InNodeGBps: 256,
			},
		},
	})
	rep, err := m.Run(MoE1T(true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExposedComm <= 0 {
		t.Errorf("MoE should expose communication: %+v", rep)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	const traceJSON = `{
	  "name": "manual", "num_npus": 4,
	  "graphs": [
	    {"npu": 0, "nodes": [{"id":1,"kind":"COMM_COLL","collective":"ALL_REDUCE","comm_bytes":1048576}]},
	    {"npu": 1, "nodes": [{"id":1,"kind":"COMM_COLL","collective":"ALL_REDUCE","comm_bytes":1048576}]},
	    {"npu": 2, "nodes": [{"id":1,"kind":"COMM_COLL","collective":"ALL_REDUCE","comm_bytes":1048576}]},
	    {"npu": 3, "nodes": [{"id":1,"kind":"COMM_COLL","collective":"ALL_REDUCE","comm_bytes":1048576}]}
	  ]}`
	m := testMachine(t, MachineConfig{Topology: "R(4)", BandwidthsGBps: []float64{100}})
	rep, err := m.Run(TraceJSON(strings.NewReader(traceJSON)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("zero makespan from JSON trace")
	}
}

func TestPyTorchTraceJSON(t *testing.T) {
	const pt = `{
	  "num_npus": 2,
	  "graphs": [
	    {"rank": 0, "nodes": [
	      {"id": 1, "name": "aten::matmul", "attrs": {"flops": 1e9}},
	      {"id": 2, "name": "nccl:all_reduce", "ctrl_deps": [1], "attrs": {"comm_bytes": 1048576}}
	    ]},
	    {"rank": 1, "nodes": [
	      {"id": 1, "name": "aten::matmul", "attrs": {"flops": 1e9}},
	      {"id": 2, "name": "nccl:all_reduce", "ctrl_deps": [1], "attrs": {"comm_bytes": 1048576}}
	    ]}
	  ]}`
	m := testMachine(t, MachineConfig{Topology: "R(2)", BandwidthsGBps: []float64{100}})
	rep, err := m.Run(PyTorchTraceJSON(bytes.NewBufferString(pt)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compute <= 0 || rep.ExposedComm <= 0 {
		t.Errorf("converted trace breakdown: %+v", rep)
	}
}

func TestReportDurationsAreWallClockLike(t *testing.T) {
	m := smallRing(t)
	rep, err := m.Run(AllReduce(300 << 20)) // ~ a few ms
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan < time.Microsecond || rep.Makespan > time.Second {
		t.Errorf("implausible makespan %v", rep.Makespan)
	}
}

func TestFSDPWorkload(t *testing.T) {
	m := smallRing(t)
	rep, err := m.Run(FSDP(2e9, 8, 2048, 512, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compute <= 0 || rep.ExposedComm <= 0 {
		t.Errorf("FSDP breakdown: %+v", rep)
	}
}

func TestThreeDWorkload(t *testing.T) {
	m := testMachine(t, MachineConfig{
		Topology:       "R(8)_SW(4)",
		BandwidthsGBps: []float64{300, 50},
	})
	// 32 NPUs = MP4 x DP2 x PP4.
	rep, err := m.Run(ThreeD(4e9, 8, 2048, 512, 1, 2, 4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compute <= 0 || rep.ExposedComm <= 0 || rep.Idle <= 0 {
		t.Errorf("3D breakdown should show compute, comm, and pipeline bubbles: %+v", rep)
	}
}

// TestDeterminism: the simulator must be bit-identical across runs — the
// single-threaded event engine with FIFO tie-breaking guarantees it.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		m := testMachine(t, MachineConfig{
			Topology:       "R(4)_SW(4)",
			BandwidthsGBps: []float64{200, 50},
			Scheduler:      "themis",
		})
		rep, err := m.Run(ThreeD(4e9, 8, 2048, 512, 1, 2, 4, 2, 4))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Compute != b.Compute ||
		a.ExposedComm != b.ExposedComm || a.Idle != b.Idle || a.Events != b.Events {
		t.Errorf("non-deterministic simulation:\n%+v\n%+v", a, b)
	}
}

func TestRunWithTimeline(t *testing.T) {
	m := smallRing(t)
	var buf bytes.Buffer
	rep, err := m.RunWithTimeline(Pipeline(4, 2, 1e12, 8<<20, 0), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// The output must be a valid Chrome trace: a JSON array containing
	// thread metadata and complete events.
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, e := range decoded {
		switch e["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if meta != m.NumNPUs() {
		t.Errorf("%d thread rows, want %d", meta, m.NumNPUs())
	}
	if complete == 0 {
		t.Error("no activity intervals recorded")
	}
}

func TestIterationsScaleLinearly(t *testing.T) {
	m := smallRing(t)
	one, err := m.Run(DLRM())
	if err != nil {
		t.Fatal(err)
	}
	three, err := m.Run(Iterations(DLRM(), 3))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(three.Makespan) / float64(one.Makespan)
	if ratio < 2.95 || ratio > 3.05 {
		t.Errorf("3 iterations took %.3fx of one, want ~3x", ratio)
	}
}

func TestIterationsWithP2P(t *testing.T) {
	m := smallRing(t)
	rep, err := m.Run(Iterations(Pipeline(4, 2, 1e12, 8<<20, 0), 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestTransitCongestionSlowsStridedPipelines(t *testing.T) {
	// A pipeline whose stages are adjacent on the ring: activations hop
	// over intermediate NPUs only when stages are blocks of >1 rank. Use
	// 2 ranks per stage so sends cross one transit NPU.
	run := func(congestion bool) time.Duration {
		m := testMachine(t, MachineConfig{
			Topology:               "R(16)",
			BandwidthsGBps:         []float64{100},
			ModelTransitCongestion: congestion,
		})
		rep, err := m.Run(Pipeline(8, 8, 1e10, 64<<20, 0))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	without, with := run(false), run(true)
	if with <= without {
		t.Errorf("transit congestion should slow multi-hop pipeline traffic: %v vs %v", with, without)
	}
}
