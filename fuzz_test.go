package astrasim

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

// Spec-loader fuzz targets: any byte stream must either load into a valid
// spec or return an error — never panic — and a loaded spec's machine,
// workload and placement vocabulary must construct (or reject) cleanly.
// Trace generation and simulation are deliberately out of scope: the
// contract under fuzz is the parsing and validation surface.

func fuzzSweepSeeds() []string {
	return []string{
		`{}`,
		`{"name":"g","machines":[{"name":"m","config":{"Topology":"R(4)","BandwidthsGBps":[250]}}],"workloads":[{"kind":"all_reduce"}]}`,
		`{"machines":[{"config":{"Topology":"T2D(4,4)_SW(8,4)","BandwidthsGBps":[500,250]}}],"workloads":[{"kind":"gpt3"},{"kind":"dlrm"},{"kind":"moe"}]}`,
		`{"workloads":[{"kind":"transformer","params":1e9,"layers":4,"hidden":1024,"seq_len":128,"micro_batch":1,"bytes_per_elem":2,"mp":4}]}`,
		`{"workloads":[{"kind":"pipeline","stages":4,"micro_batches":8,"flops_per_stage":1e12}]}`,
		`{"machines":[{"config":{"Topology":"Q(4)"}}],"workloads":[{"kind":"nope"}]}`,
		`{"machines":[{"config":{"Topology":"R(4)","BandwidthsGBps":[-1]}}]}`,
		`[1,2,3]`, `null`, `"str"`, `{"unknown_field":1}`, `{"name":`,
	}
}

// checkMachines builds each machine config; construction errors are fine,
// panics are the bug.
func checkMachines(t *testing.T, machines []SweepMachine) {
	for _, sm := range machines {
		if sm.Config.Topology == "" {
			continue
		}
		if m, err := NewMachine(sm.Config); err == nil && m.NumNPUs() < 2 {
			t.Fatalf("NewMachine(%+v) accepted a %d-NPU machine", sm.Config, m.NumNPUs())
		}
	}
}

func FuzzLoadSweepSpec(f *testing.F) {
	for _, s := range fuzzSweepSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := LoadSweepSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		checkMachines(t, spec.Machines)
		for _, ws := range spec.Workloads {
			_, _ = ws.Workload() // must not panic
		}
	})
}

func fuzzSearchSeeds() []string {
	return []string{
		`{}`,
		`{"strategy":"halving","topologies":["T2D(16,32)","R(16)_R(32)"],"bandwidths":[[500],[250,250]],"workloads":[{"kind":"gpt3"}]}`,
		`{"strategy":"random","seed":7,"population":8,"max_simulations":2,"objective":"comm","workloads":[{"kind":"all_reduce"}]}`,
		`{"max_aggregate_gbps":600,"machines":[{"config":{"Topology":"SW(16)","BandwidthsGBps":[700]}}],"workloads":[{"kind":"dlrm"}]}`,
		`{"proxy_op":"bogus","workloads":[{"kind":"all_reduce"}]}`,
		`{"cluster":{"jobs":[{"npus":16,"count":4,"workload":{"kind":"dlrm"}}],"placements":["packed","strided"]},"topologies":["SW(8)_SW(16,4)"],"bandwidths":[[250,250]]}`,
		`{"strategy":"annealing"}`, `{"objective":"vibes"}`, `{`,
	}
}

func FuzzLoadSearchSpec(f *testing.F) {
	for _, s := range fuzzSearchSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := LoadSearchSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		// The machine-candidate builder must absorb any loaded spec:
		// infeasible candidates become pruning reasons, not panics.
		if len(spec.Machines) != 0 || len(spec.Topologies) != 0 {
			_, _ = buildSearchMachines(spec)
		}
		for _, ws := range spec.Workloads {
			_, _ = ws.Workload()
		}
		_, _, _ = searchObjective(spec.Objective)
	})
}

func fuzzClusterSeeds() []string {
	return []string{
		`{}`,
		`{"fabric":{"Topology":"SW(8)_SW(16,4)","BandwidthsGBps":[250,250]},"jobs":[{"npus":16,"count":4,"workload":{"kind":"gpt3"}}]}`,
		`{"fabric":{"Topology":"T2D(4,4)_SW(8)","BandwidthsGBps":[500,250]},"placement":"strided","seed":3,"jobs":[{"npus":16,"workload":{"kind":"dlrm"}},{"npus":32,"arrival_us":50,"workload":{"kind":"moe"}}]}`,
		`{"fabric":{"Topology":"R(4)"},"placement":"diagonal","jobs":[{"npus":3,"workload":{"kind":"all_reduce"}}]}`,
		`{"jobs":[{"npus":-1,"count":-2,"workload":{"kind":""}}]}`,
		`{"fabric":{"Topology":"SW(4)","BandwidthsGBps":[250]},"jobs":[{"npus":2,"workload":{"kind":"all_reduce"}},{"npus":2,"workload":{"kind":"all_reduce"}},{"npus":2,"workload":{"kind":"all_reduce"}}]}`,
	}
}

func fuzzScenarioSeeds() []string {
	return []string{
		`{}`,
		`{"name":"degrade","machine":{"Topology":"R(8)","BandwidthsGBps":[300]},"workload":{"kind":"all_reduce","size_bytes":1048576},"events":[{"kind":"degrade_link","at_us":50,"dim":0,"factor":0.25}]}`,
		`{"machine":{"Topology":"T2D(4,4)_SW(8,4)","BandwidthsGBps":[500,250]},"workload":{"kind":"dlrm"},"events":[{"kind":"fail_link","at_us":10,"dim":1,"recovery_us":100},{"kind":"fail_npu","npu":3,"recovery_us":20},{"kind":"straggle_npu","npu":7,"factor":1.3},{"kind":"restore_link","at_us":200,"dim":1}]}`,
		`{"events":[{"kind":"degrade_link","at_us":-5,"factor":0.5}]}`,
		`{"events":[{"kind":"explode"}]}`,
		`{"events":[{"kind":"degrade_link","factor":-1}]}`,
		`{"events":[{"kind":"fail_npu","npu":2}]}`,
		`{"machine":{"Topology":"R(4)","BandwidthsGBps":[-100]},"events":[{"kind":"straggle_npu","npu":99,"factor":2}]}`,
		`[1]`, `null`, `{"events":[`, `{"unknown":true}`,
	}
}

// FuzzLoadScenarioSpec exercises scenario loading plus machine-relative
// validation: any byte stream must load cleanly or error — malformed times,
// unknown kinds and negative bandwidths or factors are rejections, never
// panics.
func FuzzLoadScenarioSpec(f *testing.F) {
	for _, s := range fuzzScenarioSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := LoadScenarioSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		sc, err := spec.buildScenario()
		if err != nil {
			t.Fatalf("loaded spec failed structural validation: %v", err)
		}
		_, _ = spec.Workload.Workload() // must not panic
		if spec.Machine.Topology == "" {
			return
		}
		m, err := NewMachine(spec.Machine)
		if err != nil || m.NumNPUs() > 1<<16 {
			return
		}
		// Machine-relative bounds: rejections are expected, panics are the
		// bug.
		_ = sc.Validate(m.NumNPUs(), m.top.NumDims())
	})
}

// FuzzLoadClusterSpec exercises loading plus the pure planning layer
// (placement parsing, fabric carving, layout validation) — everything up
// to, but not including, simulation.
func FuzzLoadClusterSpec(f *testing.F) {
	for _, s := range fuzzClusterSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := LoadClusterSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		m, err := NewMachine(spec.Fabric)
		if err != nil {
			return
		}
		if m.NumNPUs() > 1<<16 {
			return // keep planning allocations bounded under fuzz
		}
		placement, err := cluster.ParsePlacement(spec.Placement)
		if err != nil {
			return
		}
		jobs, err := expandClusterJobs(spec.Jobs)
		if err != nil {
			return
		}
		total := 0
		for _, j := range jobs {
			if j.spec.NPUs > 0 {
				total += j.spec.NPUs
			}
		}
		if total > 1<<16 {
			return
		}
		// Planning rejections are expected; panics are the bug.
		cfg := clusterConfig(m, placement, spec.Seed, jobs)
		_, _ = cluster.Plan(cfg.Fabric, cfg.Jobs, cfg.Placement, cfg.Seed)
	})
}
