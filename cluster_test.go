package astrasim

import (
	"bytes"
	"strings"
	"testing"
)

func taperedClusterSpec(n int, workload WorkloadSpec) ClusterSpec {
	return ClusterSpec{
		Name:   "test",
		Fabric: MachineConfig{Topology: "SW(8)_SW(16,4)", BandwidthsGBps: []float64{250, 250}},
		Jobs:   []ClusterJobSpec{{Name: "job", NPUs: 16, Count: n, Workload: workload}},
	}
}

// TestClusterSingleJobMatchesIsolated is the facade-level anchor: a
// one-job ClusterSpec reproduces the isolated Machine.Run of the same
// carved-out machine byte for byte.
func TestClusterSingleJobMatchesIsolated(t *testing.T) {
	res, err := RunCluster(taperedClusterSpec(1, WorkloadSpec{Kind: "dlrm"}), ClusterOptions{Slowdowns: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Jobs[0].Local, "SW(8)_SW(2)"; got != want {
		t.Fatalf("carved topology = %s, want %s", got, want)
	}
	// The isolated machine: the job's slice of the fabric, at the fabric's
	// per-dimension bandwidths (the slice drops the spine oversubscription).
	m, err := NewMachine(MachineConfig{Topology: "SW(8)_SW(2)", BandwidthsGBps: []float64{250, 250}})
	if err != nil {
		t.Fatal(err)
	}
	iso, err := m.Run(DLRM())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Jobs[0].Report
	if rep.Makespan != iso.Makespan {
		t.Errorf("cluster makespan %v != isolated %v", rep.Makespan, iso.Makespan)
	}
	if rep.Events != iso.Events {
		t.Errorf("cluster events %d != isolated %d", rep.Events, iso.Events)
	}
	if rep.Compute != iso.Compute || rep.ExposedComm != iso.ExposedComm || rep.Idle != iso.Idle {
		t.Errorf("breakdowns differ: cluster %+v vs isolated %+v", rep, iso)
	}
	if res.Jobs[0].Slowdown != 1.0 {
		t.Errorf("single job slowdown = %v, want exactly 1.0", res.Jobs[0].Slowdown)
	}
}

// TestClusterSlowdownMonotone is the acceptance property at the facade:
// non-decreasing mean slowdown on the oversubscribed fabric as jobs pile
// on, and a strict increase once demand exceeds spine capacity.
func TestClusterSlowdownMonotone(t *testing.T) {
	wl := WorkloadSpec{Kind: "all_to_all", SizeBytes: 256 << 20}
	prev := 0.0
	var last float64
	for _, n := range []int{1, 2, 4, 8} {
		res, err := RunCluster(taperedClusterSpec(n, wl), ClusterOptions{Slowdowns: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mean := 0.0
		for _, j := range res.Jobs {
			mean += j.Slowdown
		}
		mean /= float64(n)
		if mean < prev {
			t.Errorf("n=%d: mean slowdown %.4f < %.4f at fewer jobs", n, mean, prev)
		}
		prev, last = mean, mean
	}
	if last <= 1.01 {
		t.Errorf("8 jobs on a 4:1 spine show no interference (mean slowdown %.4f)", last)
	}
}

// TestClusterDeterminism: identical specs produce byte-identical JSON,
// including under seeded random placement.
func TestClusterDeterminism(t *testing.T) {
	spec := taperedClusterSpec(4, WorkloadSpec{Kind: "all_to_all", SizeBytes: 64 << 20})
	spec.Placement = "random"
	spec.Seed = 42
	var a, b bytes.Buffer
	ra, err := RunCluster(spec, ClusterOptions{Slowdowns: true})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunCluster(spec, ClusterOptions{Slowdowns: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical cluster runs produced different JSON")
	}
}

func TestLoadClusterSpec(t *testing.T) {
	doc := `{
		"name": "tenants",
		"fabric": {"Topology": "SW(8)_SW(16,4)", "BandwidthsGBps": [250, 250]},
		"placement": "packed",
		"jobs": [
			{"name": "gpt", "npus": 16, "count": 2, "workload": {"kind": "gpt3"}},
			{"name": "ads", "npus": 32, "arrival_us": 100, "workload": {"kind": "dlrm"}}
		]
	}`
	spec, err := LoadClusterSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Jobs) != 2 || spec.Jobs[0].Count != 2 || spec.Jobs[1].ArrivalUs != 100 {
		t.Errorf("spec = %+v", spec)
	}
	// Unknown fields fail loudly.
	if _, err := LoadClusterSpec(strings.NewReader(`{"fabrik": {}}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestRunClusterErrors(t *testing.T) {
	bad := taperedClusterSpec(1, WorkloadSpec{Kind: "dlrm"})
	bad.Jobs[0].NPUs = 24 // 24 = 8*3 does not slice SW(16,4) evenly
	if _, err := RunCluster(bad, ClusterOptions{}); err == nil {
		t.Error("untileable job size accepted")
	}
	bad = taperedClusterSpec(1, WorkloadSpec{Kind: "nope"})
	if _, err := RunCluster(bad, ClusterOptions{}); err == nil {
		t.Error("unknown workload kind accepted")
	}
	bad = taperedClusterSpec(1, WorkloadSpec{Kind: "dlrm"})
	bad.Placement = "diagonal"
	if _, err := RunCluster(bad, ClusterOptions{}); err == nil {
		t.Error("unknown placement accepted")
	}
	bad = taperedClusterSpec(1, WorkloadSpec{Kind: "dlrm"})
	bad.Jobs = nil
	if _, err := RunCluster(bad, ClusterOptions{}); err == nil {
		t.Error("jobless cluster accepted")
	}
}

// TestClusterWriters smoke-tests the three output forms.
func TestClusterWriters(t *testing.T) {
	res, err := RunCluster(taperedClusterSpec(2, WorkloadSpec{Kind: "all_to_all", SizeBytes: 16 << 20}), ClusterOptions{Slowdowns: true})
	if err != nil {
		t.Fatal(err)
	}
	var tbl, csv, js bytes.Buffer
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "Slowdown") || !strings.Contains(tbl.String(), "job#0") {
		t.Errorf("table missing expected content:\n%s", tbl.String())
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "job,workload,npus,local,first_rank,arrival_us,finish_us,makespan_us") {
		t.Errorf("CSV header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if js.Len() == 0 {
		t.Error("empty JSON output")
	}
}

// TestClusterSearchPlacementAxis: cluster-mode search over (fabric,
// placement) candidates is deterministic across worker counts and finds
// the uncontended flat fabric.
func TestClusterSearchPlacementAxis(t *testing.T) {
	spec := SearchSpec{
		Name:       "cluster-axis",
		Strategy:   "exhaustive",
		Topologies: []string{"SW(8)_SW(16)", "SW(8)_SW(16,4)"},
		Bandwidths: [][]float64{{250, 250}},
		Cluster: &ClusterSearchSpec{
			Jobs:       []ClusterJobSpec{{Name: "a2a", NPUs: 16, Count: 4, Workload: WorkloadSpec{Kind: "all_to_all", SizeBytes: 64 << 20}}},
			Placements: []string{"packed", "strided"},
		},
	}
	res1, err := Optimize(spec, SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Optimize(spec, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := res4.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cluster search differs across worker counts")
	}
	if res1.Best.Machine != "SW(8)_SW(16) @ 250,250 GB/s" {
		t.Errorf("best fabric = %q, want the uncontended flat spine", res1.Best.Machine)
	}
	if res1.Best.Placement == "" {
		t.Error("cluster-mode best has no placement")
	}
	if res1.Candidates != 4 {
		t.Errorf("candidates = %d, want 2 fabrics x 2 placements", res1.Candidates)
	}
}
