package astrasim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/units"
)

// This file is the resilience facade: declarative failure/straggler
// scenarios — timed link degradations, link and NPU failures, compute
// stragglers — injected into a workload's run and reported next to the
// clean baseline (internal/scenario). A scenario with no events reproduces
// the clean run byte for byte, and the collective memo's rollback machinery
// guarantees memoized runs under scenarios stay byte-identical to memo-free
// ones.

// ScenarioEventSpec is one timed perturbation in a scenario spec.
type ScenarioEventSpec struct {
	// AtUs is when the event applies, in simulated microseconds from the
	// run's start.
	AtUs float64 `json:"at_us"`
	// Kind is one of: degrade_link | restore_link | fail_link | fail_npu
	// | straggle_npu.
	Kind string `json:"kind"`
	// Dim is the topology dimension for link events (0 = innermost).
	Dim int `json:"dim,omitempty"`
	// NPU is the target rank for fail_npu and straggle_npu.
	NPU int `json:"npu,omitempty"`
	// Factor is the bandwidth scale for degrade_link (0 < factor; < 1
	// degrades) or the compute-time multiplier for straggle_npu (> 1
	// slows; 1 clears).
	Factor float64 `json:"factor,omitempty"`
	// RecoveryUs is the outage duration for fail_npu (required) and the
	// optional auto-restore delay for fail_link (0 = permanent).
	RecoveryUs float64 `json:"recovery_us,omitempty"`
}

// ScenarioSpec is a declarative resilience experiment: a machine, a
// workload, and the perturbation schedule applied to the run.
type ScenarioSpec struct {
	Name     string              `json:"name,omitempty"`
	Machine  MachineConfig       `json:"machine"`
	Workload WorkloadSpec        `json:"workload"`
	Events   []ScenarioEventSpec `json:"events"`
}

// scenarioEvents converts spec events into the internal representation,
// rejecting structurally invalid entries (unknown kinds, negative times or
// factors). Machine-relative bounds — dimension and NPU ranges — are
// checked against the concrete machine at run time.
func scenarioEvents(specs []ScenarioEventSpec) ([]scenario.Event, error) {
	var events []scenario.Event
	for i, es := range specs {
		kind, err := scenario.ParseKind(es.Kind)
		if err != nil {
			return nil, fmt.Errorf("astrasim: scenario event %d: %w", i, err)
		}
		if es.AtUs < 0 {
			return nil, fmt.Errorf("astrasim: scenario event %d (%s): negative time %gus", i, es.Kind, es.AtUs)
		}
		if es.RecoveryUs < 0 {
			return nil, fmt.Errorf("astrasim: scenario event %d (%s): negative recovery %gus", i, es.Kind, es.RecoveryUs)
		}
		if es.Factor < 0 {
			return nil, fmt.Errorf("astrasim: scenario event %d (%s): negative factor %g", i, es.Kind, es.Factor)
		}
		if es.Dim < 0 {
			return nil, fmt.Errorf("astrasim: scenario event %d (%s): negative dimension %d", i, es.Kind, es.Dim)
		}
		if es.NPU < 0 {
			return nil, fmt.Errorf("astrasim: scenario event %d (%s): negative NPU %d", i, es.Kind, es.NPU)
		}
		switch kind {
		case scenario.DegradeLink, scenario.StraggleNPU:
			if es.Factor == 0 {
				return nil, fmt.Errorf("astrasim: scenario event %d (%s): factor is required and must be positive", i, es.Kind)
			}
		case scenario.FailNPU:
			if es.RecoveryUs == 0 {
				return nil, fmt.Errorf("astrasim: scenario event %d (fail_npu): recovery_us is required and must be positive", i)
			}
		}
		events = append(events, scenario.Event{
			At:       units.FromMicros(es.AtUs),
			Kind:     kind,
			Dim:      es.Dim,
			NPU:      es.NPU,
			Factor:   es.Factor,
			Recovery: units.FromMicros(es.RecoveryUs),
		})
	}
	return events, nil
}

// buildScenario assembles the internal scenario from a spec; a spec with no
// events yields a named, empty scenario (which perturbs nothing).
func (s ScenarioSpec) buildScenario() (*scenario.Scenario, error) {
	events, err := scenarioEvents(s.Events)
	if err != nil {
		return nil, err
	}
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	return &scenario.Scenario{Name: name, Events: events}, nil
}

// LoadScenarioSpec reads a ScenarioSpec JSON document, rejecting unknown
// fields and structurally invalid events so spec typos fail loudly. Bounds
// that depend on the machine (dimension and NPU ranges) are validated when
// the scenario runs.
func LoadScenarioSpec(r io.Reader) (ScenarioSpec, error) {
	var s ScenarioSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("astrasim: parse scenario spec: %w", err)
	}
	if _, err := s.buildScenario(); err != nil {
		return s, err
	}
	return s, nil
}

// ScenarioResult is a completed resilience experiment: the clean baseline,
// the perturbed run, and the headline slowdown.
type ScenarioResult struct {
	Name     string `json:"name,omitempty"`
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	Events   int    `json:"events"`
	// Clean is the unperturbed baseline run; Perturbed the run under the
	// scenario's events. With zero events the two are byte-identical.
	Clean     *Report `json:"clean"`
	Perturbed *Report `json:"perturbed"`
	// Slowdown is the perturbed makespan over the clean makespan
	// (1.0 = the scenario cost nothing).
	Slowdown float64 `json:"slowdown"`
}

// RunScenarioFile loads a scenario spec from a JSON file and runs it — the
// entry point of the CLI's -scenario flag.
func RunScenarioFile(path string) (*ScenarioResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := LoadScenarioSpec(f)
	if err != nil {
		return nil, err
	}
	return RunScenario(spec)
}

// RunScenario simulates the spec's workload twice on the same machine —
// clean, then under the perturbation schedule — and reports the slowdown.
// Results are deterministic: same spec, same bytes.
func RunScenario(spec ScenarioSpec) (*ScenarioResult, error) {
	m, err := NewMachine(spec.Machine)
	if err != nil {
		return nil, fmt.Errorf("astrasim: scenario machine: %w", err)
	}
	sc, err := spec.buildScenario()
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(m.top.NumNPUs(), m.top.NumDims()); err != nil {
		return nil, fmt.Errorf("astrasim: %w", err)
	}
	w, err := spec.Workload.Workload()
	if err != nil {
		return nil, err
	}
	clean, err := m.Run(w)
	if err != nil {
		return nil, fmt.Errorf("astrasim: scenario baseline: %w", err)
	}
	perturbed, err := m.runScenario(w, sc)
	if err != nil {
		return nil, fmt.Errorf("astrasim: scenario run: %w", err)
	}
	res := &ScenarioResult{
		Name:      sc.Name,
		Machine:   m.TopologySpec(),
		Workload:  w.Name(),
		Events:    len(sc.Events),
		Clean:     clean,
		Perturbed: perturbed,
	}
	if clean.Makespan > 0 {
		res.Slowdown = float64(perturbed.Makespan) / float64(clean.Makespan)
	}
	return res, nil
}

// runScenario simulates the workload under a perturbation schedule, sharing
// the machine's collective memo: the memo's rollback machinery re-runs any
// replayed collective live across a perturbation, so results are
// byte-identical to a memo-free run.
func (m *Machine) runScenario(w Workload, sc *scenario.Scenario) (*Report, error) {
	trace, err := w.trace(m.top)
	if err != nil {
		return nil, err
	}
	cfg := m.core
	cfg.Memo = m.memo
	cfg.Scenario = sc
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	stats, err := sim.Run(trace)
	if err != nil {
		return nil, err
	}
	return reportFromStats(w.Name(), stats), nil
}

// WriteJSON writes the result as an indented JSON document.
func (r *ScenarioResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes a human-readable clean-vs-perturbed summary.
func (r *ScenarioResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "scenario %s: %s on %s, %d events\n\n",
		r.Name, r.Workload, r.Machine, r.Events); err != nil {
		return err
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if _, err := fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "Run", "Makespan", "Exp.Comm", "Compute"); err != nil {
		return err
	}
	for _, row := range []struct {
		label string
		rep   *Report
	}{{"clean", r.Clean}, {"perturbed", r.Perturbed}} {
		if _, err := fmt.Fprintf(w, "%-10s %10.3fms %10.3fms %10.3fms\n",
			row.label, ms(row.rep.Makespan), ms(row.rep.ExposedComm), ms(row.rep.Compute)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nslowdown %.3fx\n", r.Slowdown)
	return err
}

// WriteCSV writes one record per run with the headline metrics in
// microseconds. Deterministic for a given result.
func (r *ScenarioResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "run,workload,machine,events,makespan_us,exposed_comm_us,compute_us,slowdown"); err != nil {
		return err
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, row := range []struct {
		label    string
		rep      *Report
		slowdown float64
	}{{"clean", r.Clean, 1}, {"perturbed", r.Perturbed, r.Slowdown}} {
		if _, err := fmt.Fprintf(w, "%q,%q,%q,%d,%g,%g,%g,%g\n",
			row.label, r.Workload, r.Machine, r.Events,
			us(row.rep.Makespan), us(row.rep.ExposedComm), us(row.rep.Compute), row.slowdown); err != nil {
			return err
		}
	}
	return nil
}
