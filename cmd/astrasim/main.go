// Command astrasim runs one simulation: a machine described by a JSON
// config (or quick flags) executing a built-in workload or an execution
// trace file, printing the runtime report.
//
// Examples:
//
//	astrasim -topology "R(2)_FC(8)_R(8)_SW(4)" -bw 250,200,100,50 \
//	         -workload all_reduce -size 1073741824 -scheduler themis
//
//	astrasim -config machine.json -workload gpt3
//
//	astrasim -topology "R(4)" -bw 300 -trace trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		configPath = flag.String("config", "", "machine config JSON file (astrasim.MachineConfig)")
		topo       = flag.String("topology", "", "topology shape, e.g. R(2)_FC(8)_R(8)_SW(4)")
		bw         = flag.String("bw", "", "per-dimension bandwidths in GB/s, comma separated")
		scheduler  = flag.String("scheduler", "", "collective scheduler: baseline or themis (default: config file or baseline)")
		tflops     = flag.Float64("tflops", 0, "NPU peak TFLOPS (default: config file or 234)")
		workload   = flag.String("workload", "all_reduce", "workload: all_reduce|all_gather|reduce_scatter|all_to_all|gpt3|t1t|dlrm|moe|pipeline")
		size       = flag.Int64("size", 1<<30, "collective size in bytes (collective workloads)")
		tracePath  = flag.String("trace", "", "run an ASTRA-sim ET JSON file instead of a built-in workload")
		pytorch    = flag.Bool("pytorch", false, "treat -trace as a PARAM-style PyTorch execution graph")
		jsonOut    = flag.Bool("json", false, "print the report as JSON")
		timeline   = flag.String("timeline", "", "write a Chrome-trace timeline (chrome://tracing) to this file")
	)
	flag.Parse()

	cfg, err := machineConfig(*configPath, *topo, *bw, *scheduler, *tflops)
	if err != nil {
		fatal(err)
	}
	m, err := astrasim.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}

	w, err := pickWorkload(*workload, *size, *tracePath, *pytorch)
	if err != nil {
		fatal(err)
	}
	var rep *astrasim.Report
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err = m.RunWithTimeline(w, f)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s\n", *timeline)
	} else {
		rep, err = m.Run(w)
		if err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(m, rep)
}

func machineConfig(path, topo, bw, scheduler string, tflops float64) (astrasim.MachineConfig, error) {
	var cfg astrasim.MachineConfig
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return cfg, err
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return cfg, fmt.Errorf("parse %s: %w", path, err)
		}
	}
	if topo != "" {
		cfg.Topology = topo
	}
	if bw != "" {
		parts := strings.Split(bw, ",")
		cfg.BandwidthsGBps = nil
		for _, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return cfg, fmt.Errorf("bad bandwidth %q: %w", p, err)
			}
			cfg.BandwidthsGBps = append(cfg.BandwidthsGBps, v)
		}
	}
	// Flags override the config file only when explicitly set; zero
	// values fall back to the file's settings (and then to the library
	// defaults).
	if scheduler != "" {
		cfg.Scheduler = scheduler
	}
	if tflops != 0 {
		cfg.PeakTFLOPS = tflops
	}
	if cfg.Topology == "" {
		return cfg, fmt.Errorf("no topology: pass -topology or -config")
	}
	return cfg, nil
}

func pickWorkload(name string, size int64, tracePath string, pytorch bool) (astrasim.Workload, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		// The file stays open until the workload generates its trace
		// inside Run; for a CLI one-shot this is fine.
		if pytorch {
			return astrasim.PyTorchTraceJSON(f), nil
		}
		return astrasim.TraceJSON(f), nil
	}
	switch name {
	case "all_reduce", "all_gather", "reduce_scatter", "all_to_all":
		return astrasim.Collective(name, size), nil
	case "gpt3":
		return astrasim.GPT3(), nil
	case "t1t":
		return astrasim.Transformer1T(), nil
	case "dlrm":
		return astrasim.DLRM(), nil
	case "moe":
		return astrasim.MoE1T(false), nil
	case "pipeline":
		return astrasim.Pipeline(4, 8, 1e12, 16<<20, 64<<20), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func printReport(m *astrasim.Machine, rep *astrasim.Report) {
	fmt.Printf("machine:   %s (%d NPUs, %.0f GB/s per NPU)\n",
		m.TopologySpec(), m.NumNPUs(), m.AggregateBandwidthGBps())
	fmt.Printf("workload:  %s\n", rep.Workload)
	fmt.Printf("makespan:  %v\n", rep.Makespan)
	fmt.Printf("breakdown (mean per NPU):\n")
	fmt.Printf("  compute:            %v\n", rep.Compute)
	fmt.Printf("  exposed comm:       %v\n", rep.ExposedComm)
	fmt.Printf("  exposed remote mem: %v\n", rep.ExposedRemoteMem)
	fmt.Printf("  exposed local mem:  %v\n", rep.ExposedLocalMem)
	fmt.Printf("  idle:               %v\n", rep.Idle)
	fmt.Printf("traffic per dim (MB, sent+received per NPU): %v\n", fmtFloats(rep.TrafficPerDimMB))
	fmt.Printf("collectives: %d, events: %d\n", rep.Collectives, rep.Events)
}

func fmtFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = strconv.FormatFloat(f, 'f', 1, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "astrasim:", err)
	os.Exit(1)
}
