// Command astrasim runs one simulation: a machine described by a JSON
// config (or quick flags) executing a built-in workload or an execution
// trace file, printing the runtime report.
//
// Examples:
//
//	astrasim -topology "R(2)_FC(8)_R(8)_SW(4)" -bw 250,200,100,50 \
//	         -workload all_reduce -size 1073741824 -scheduler themis
//
//	astrasim -config machine.json -workload gpt3
//
//	astrasim -topology "R(4)" -bw 300 -trace trace.json
//
// With -sweep it instead runs a declarative machine x workload grid on
// the parallel sweep engine (results are byte-identical for any
// -parallel value; duplicate cells simulate once):
//
//	astrasim -sweep grid.json -parallel 8 -json
//
// where grid.json looks like
//
//	{
//	  "name": "bw-scan",
//	  "machines": [
//	    {"name": "conv-4d", "config": {"Topology": "R(2)_FC(8)_R(8)_SW(4)",
//	                                   "BandwidthsGBps": [250, 200, 100, 50]}}
//	  ],
//	  "workloads": [{"kind": "all_reduce", "size_bytes": 1073741824},
//	                {"kind": "gpt3"}]
//	}
//
// With -optimize it runs a budgeted multi-fidelity design-space search: a
// declarative candidate space (explicit machines and/or a topologies x
// bandwidths cross product) is screened with the closed-form collective
// estimator and only strategy-promoted survivors run the full event
// engine. Same determinism guarantee: a fixed seed gives an identical
// winner and history at any -parallel value.
//
//	astrasim -optimize space.json -parallel 8
//
// where space.json looks like
//
//	{
//	  "name": "fabric-hunt",
//	  "strategy": "halving",
//	  "topologies": ["T2D(16,32)", "R(16)_R(32)", "SW(16)_SW(32,2)"],
//	  "bandwidths": [[500], [250, 250]],
//	  "workloads": [{"kind": "gpt3"}]
//	}
//
// With -cluster it co-simulates N training jobs space-sharing one fabric
// and memory pool on a single timeline, with fair-sharing arbitration on
// the levels jobs co-reside on, and reports per-job slowdown vs. the
// isolated run:
//
//	astrasim -cluster jobs.json
//
// where jobs.json looks like
//
//	{
//	  "name": "tenants",
//	  "fabric": {"Topology": "SW(8)_SW(16,4)", "BandwidthsGBps": [250, 250]},
//	  "placement": "packed",
//	  "jobs": [
//	    {"name": "gpt", "npus": 16, "count": 4, "workload": {"kind": "gpt3"}},
//	    {"name": "ads", "npus": 32, "workload": {"kind": "dlrm"}}
//	  ]
//	}
//
// With -scenario it runs a resilience experiment: the spec's workload is
// simulated clean and again under a schedule of timed infrastructure
// perturbations — link bandwidth degradations and restorations, link and
// NPU failures, compute stragglers — and the report shows the perturbed
// run next to the clean baseline with the headline slowdown:
//
//	astrasim -scenario outage.json
//
// where outage.json looks like
//
//	{
//	  "name": "spine-brownout",
//	  "machine": {"Topology": "T2D(4,4)_SW(8,4)", "BandwidthsGBps": [500, 250]},
//	  "workload": {"kind": "dlrm"},
//	  "events": [
//	    {"kind": "degrade_link", "at_us": 500, "dim": 1, "factor": 0.25},
//	    {"kind": "restore_link", "at_us": 3000, "dim": 1},
//	    {"kind": "fail_npu", "at_us": 1000, "npu": 17, "recovery_us": 250},
//	    {"kind": "straggle_npu", "npu": 5, "factor": 1.3}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/prof"
)

func main() {
	var (
		configPath = flag.String("config", "", "machine config JSON file (astrasim.MachineConfig)")
		topo       = flag.String("topology", "", "topology shape, e.g. R(2)_FC(8)_R(8)_SW(4), T2D(4,4)_SW(8,2); registered blocks: "+strings.Join(astrasim.RegisteredBlocks(), ", "))
		bw         = flag.String("bw", "", "per-dimension bandwidths in GB/s, comma separated")
		scheduler  = flag.String("scheduler", "", "collective scheduler: baseline or themis (default: config file or baseline)")
		tflops     = flag.Float64("tflops", 0, "NPU peak TFLOPS (default: config file or 234)")
		workload   = flag.String("workload", "all_reduce", "workload: all_reduce|all_gather|reduce_scatter|all_to_all|gpt3|t1t|dlrm|moe|pipeline")
		size       = flag.Int64("size", 1<<30, "collective size in bytes (collective workloads)")
		tracePath  = flag.String("trace", "", "run an ASTRA-sim ET JSON file instead of a built-in workload")
		pytorch    = flag.Bool("pytorch", false, "treat -trace as a PARAM-style PyTorch execution graph")
		jsonOut    = flag.Bool("json", false, "print the report (or sweep result) as JSON")
		timeline   = flag.String("timeline", "", "write a Chrome-trace timeline (chrome://tracing) to this file")
		sweepPath  = flag.String("sweep", "", "run a machine x workload sweep grid from this JSON spec instead of a single simulation")
		optPath    = flag.String("optimize", "", "run a budgeted design-space search from this JSON spec (astrasim.SearchSpec; strategies: "+strings.Join(astrasim.SearchStrategies(), ", ")+")")
		clusPath   = flag.String("cluster", "", "co-simulate multiple training jobs sharing one fabric from this JSON spec (astrasim.ClusterSpec; placements: "+strings.Join(astrasim.ClusterPlacements(), ", ")+")")
		scenPath   = flag.String("scenario", "", "run a failure/straggler scenario from this JSON spec (astrasim.ScenarioSpec) and report slowdown vs the clean run")
		baselines  = flag.Bool("slowdowns", true, "with -cluster, also run isolated baselines and report per-job slowdowns")
		parallel   = flag.Int("parallel", 0, "sweep/search worker count; 0 = all cores (results identical for any value)")
		shards     = flag.Int("shards", 0, "event-engine timeline shards; 0/1 = serial (results byte-identical for any value)")
		csvOut     = flag.Bool("csv", false, "print the sweep or search result as CSV")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap allocation profile to this file at exit")
	)
	flag.Parse()

	if err := prof.Start(*cpuprofile, *memprofile); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	if *sweepPath != "" {
		if err := runSweep(*sweepPath, *parallel, *jsonOut, *csvOut); err != nil {
			fatal(err)
		}
		return
	}
	if *optPath != "" {
		if err := runOptimize(*optPath, *parallel, *jsonOut, *csvOut); err != nil {
			fatal(err)
		}
		return
	}
	if *clusPath != "" {
		if err := runCluster(*clusPath, *baselines, *jsonOut, *csvOut); err != nil {
			fatal(err)
		}
		return
	}
	if *scenPath != "" {
		if err := runScenario(*scenPath, *jsonOut, *csvOut); err != nil {
			fatal(err)
		}
		return
	}

	cfg, err := machineConfig(*configPath, *topo, *bw, *scheduler, *tflops)
	if *shards > 1 {
		cfg.Shards = *shards
	}
	if err != nil {
		fatal(err)
	}
	m, err := astrasim.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}

	w, err := pickWorkload(*workload, *size, *tracePath, *pytorch)
	if err != nil {
		fatal(err)
	}
	var rep *astrasim.Report
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err = m.RunWithTimeline(w, f)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s\n", *timeline)
	} else {
		rep, err = m.Run(w)
		if err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(m, rep)
}

func machineConfig(path, topo, bw, scheduler string, tflops float64) (astrasim.MachineConfig, error) {
	var cfg astrasim.MachineConfig
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return cfg, err
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return cfg, fmt.Errorf("parse %s: %w", path, err)
		}
	}
	if topo != "" {
		cfg.Topology = topo
	}
	if bw != "" {
		parts := strings.Split(bw, ",")
		cfg.BandwidthsGBps = nil
		for _, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return cfg, fmt.Errorf("bad bandwidth %q: %w", p, err)
			}
			cfg.BandwidthsGBps = append(cfg.BandwidthsGBps, v)
		}
	}
	// Flags override the config file only when explicitly set; zero
	// values fall back to the file's settings (and then to the library
	// defaults).
	if scheduler != "" {
		cfg.Scheduler = scheduler
	}
	if tflops != 0 {
		cfg.PeakTFLOPS = tflops
	}
	if cfg.Topology == "" {
		return cfg, fmt.Errorf("no topology: pass -topology or -config")
	}
	return cfg, nil
}

func runSweep(path string, workers int, jsonOut, csvOut bool) error {
	res, err := astrasim.RunSweepFile(path, astrasim.SweepOptions{
		Workers:  workers,
		Progress: astrasim.ProgressLine(os.Stderr),
	})
	if err != nil {
		return err
	}
	switch {
	case jsonOut:
		return res.WriteJSON(os.Stdout)
	case csvOut:
		return res.WriteCSV(os.Stdout)
	default:
		return res.WriteTable(os.Stdout)
	}
}

func runOptimize(path string, workers int, jsonOut, csvOut bool) error {
	// The search-wide total grows as the strategy commits to new rungs,
	// so done == total mid-run does not mean finished; the in-place
	// counter line is only terminated once the search returns.
	progressed := false
	res, err := astrasim.RunSearchFile(path, astrasim.SearchOptions{
		Workers: workers,
		Progress: func(done, total int) {
			progressed = true
			fmt.Fprintf(os.Stderr, "\rsearch: %d/%d evaluations", done, total)
		},
	})
	if progressed {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	switch {
	case jsonOut:
		return res.WriteJSON(os.Stdout)
	case csvOut:
		return res.WriteCSV(os.Stdout)
	default:
		return res.WriteTable(os.Stdout)
	}
}

func runCluster(path string, slowdowns, jsonOut, csvOut bool) error {
	res, err := astrasim.RunClusterFile(path, astrasim.ClusterOptions{Slowdowns: slowdowns})
	if err != nil {
		return err
	}
	switch {
	case jsonOut:
		return res.WriteJSON(os.Stdout)
	case csvOut:
		return res.WriteCSV(os.Stdout)
	default:
		return res.WriteTable(os.Stdout)
	}
}

func runScenario(path string, jsonOut, csvOut bool) error {
	res, err := astrasim.RunScenarioFile(path)
	if err != nil {
		return err
	}
	switch {
	case jsonOut:
		return res.WriteJSON(os.Stdout)
	case csvOut:
		return res.WriteCSV(os.Stdout)
	default:
		return res.WriteTable(os.Stdout)
	}
}

// pickWorkload maps the single-run flags onto a declarative WorkloadSpec —
// the same path sweep grids use.
func pickWorkload(name string, size int64, tracePath string, pytorch bool) (astrasim.Workload, error) {
	spec := astrasim.WorkloadSpec{Kind: name, SizeBytes: size}
	if tracePath != "" {
		spec = astrasim.WorkloadSpec{Kind: "trace", Path: tracePath}
		if pytorch {
			spec.Kind = "pytorch_trace"
		}
	} else if name == "pipeline" {
		spec = astrasim.WorkloadSpec{
			Kind: "pipeline", Stages: 4, MicroBatches: 8, FlopsPerStage: 1e12,
			ActivationBytes: 16 << 20, GradBytes: 64 << 20,
		}
	}
	return spec.Workload()
}

func printReport(m *astrasim.Machine, rep *astrasim.Report) {
	fmt.Printf("machine:   %s (%d NPUs, %.0f GB/s per NPU)\n",
		m.TopologySpec(), m.NumNPUs(), m.AggregateBandwidthGBps())
	fmt.Printf("workload:  %s\n", rep.Workload)
	fmt.Printf("makespan:  %v\n", rep.Makespan)
	fmt.Printf("breakdown (mean per NPU):\n")
	fmt.Printf("  compute:            %v\n", rep.Compute)
	fmt.Printf("  exposed comm:       %v\n", rep.ExposedComm)
	fmt.Printf("  exposed remote mem: %v\n", rep.ExposedRemoteMem)
	fmt.Printf("  exposed local mem:  %v\n", rep.ExposedLocalMem)
	fmt.Printf("  idle:               %v\n", rep.Idle)
	fmt.Printf("traffic per dim (MB, sent+received per NPU): %v\n", fmtFloats(rep.TrafficPerDimMB))
	fmt.Printf("collectives: %d, events: %d\n", rep.Collectives, rep.Events)
}

func fmtFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = strconv.FormatFloat(f, 'f', 1, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "astrasim:", err)
	prof.Stop() // os.Exit skips defers; flush any active profile capture
	os.Exit(1)
}
