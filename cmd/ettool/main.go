// Command ettool generates, validates, inspects, and converts execution
// traces (the simulator's workload format).
//
// Subcommands:
//
//	ettool gen -workload gpt3 -topology "R(16)_R(2)" -o trace.json
//	ettool validate trace.json
//	ettool info trace.json
//	ettool convert -pytorch graph.json -o trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/convert"
	"repro/internal/et"
	"repro/internal/etgen"
	"repro/internal/topology"
	"repro/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ettool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ettool <gen|validate|info|convert> [flags]

  gen      -workload <gpt3|t1t|dlrm|moe|pipeline|all_reduce> -topology <spec> [-size N] [-o file]
  validate <trace.json>
  info     <trace.json>
  convert  -pytorch <graph.json> [-o file]`)
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "all_reduce", "workload to generate")
	topoSpec := fs.String("topology", "", "topology shape, e.g. R(16)_R(2)")
	size := fs.Int64("size", 1<<30, "collective size (collective workloads)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoSpec == "" {
		return fmt.Errorf("gen: -topology required")
	}
	top, err := topology.Parse(*topoSpec)
	if err != nil {
		return err
	}
	var trace *et.Trace
	switch *workload {
	case "all_reduce":
		trace = etgen.SingleCollective(top, et.CollAllReduce, units.ByteSize(*size))
	case "all_gather":
		trace = etgen.SingleCollective(top, et.CollAllGather, units.ByteSize(*size))
	case "all_to_all":
		trace = etgen.SingleCollective(top, et.CollAllToAll, units.ByteSize(*size))
	case "gpt3":
		trace, err = etgen.Transformer(top, etgen.GPT3())
	case "t1t":
		trace, err = etgen.Transformer(top, etgen.Transformer1T())
	case "dlrm":
		trace, err = etgen.DLRMTrace(top, etgen.DLRM())
	case "moe":
		trace, err = etgen.MoETrace(top, etgen.MoE1T(false))
	case "pipeline":
		trace, err = etgen.Pipeline(top, etgen.PipelineConfig{
			Name: "pipeline", Stages: 4, MicroBatches: 8,
			FlopsPerStage: 1e12, ActivationBytes: 16 * units.MB, GradBytes: 64 * units.MB,
		})
	default:
		return fmt.Errorf("gen: unknown workload %q", *workload)
	}
	if err != nil {
		return err
	}
	if err := trace.Validate(); err != nil {
		return fmt.Errorf("gen: generated trace invalid: %w", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Encode(w)
}

func loadTrace(path string) (*et.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return et.Decode(f)
}

func runValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("validate: exactly one trace file expected")
	}
	if _, err := loadTrace(args[0]); err != nil {
		return err
	}
	fmt.Println("OK")
	return nil
}

func runInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info: exactly one trace file expected")
	}
	trace, err := loadTrace(args[0])
	if err != nil {
		return err
	}
	kinds := map[et.NodeKind]int{}
	var commBytes, memBytes int64
	var flops float64
	for _, g := range trace.Graphs {
		for _, n := range g.Nodes {
			kinds[n.Kind]++
			commBytes += n.CommBytes
			memBytes += n.TensorBytes
			flops += n.FLOPs
		}
	}
	fmt.Printf("name:      %s\n", trace.Name)
	fmt.Printf("npus:      %d\n", trace.NumNPUs)
	fmt.Printf("nodes:     %d total\n", trace.NodeCount())
	for _, k := range []et.NodeKind{et.KindCompute, et.KindMemory, et.KindComm, et.KindSend, et.KindRecv} {
		if kinds[k] > 0 {
			fmt.Printf("  %-10s %d\n", k, kinds[k])
		}
	}
	fmt.Printf("flops:     %.3g total\n", flops)
	fmt.Printf("comm:      %s total\n", units.ByteSize(commBytes))
	fmt.Printf("mem:       %s total\n", units.ByteSize(memBytes))
	return nil
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	pytorch := fs.String("pytorch", "", "PARAM-style PyTorch execution graph JSON")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pytorch == "" {
		return fmt.Errorf("convert: -pytorch required")
	}
	f, err := os.Open(*pytorch)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := convert.DecodePyTorch(f)
	if err != nil {
		return err
	}
	trace, err := convert.Convert(src)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer g.Close()
		w = g
	}
	return trace.Encode(w)
}
