// Command paper regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	paper -exp fig4      analytical-backend validation (Fig. 4)
//	paper -exp speedup   analytical vs cycle-level backend (Sec. IV-C)
//	paper -exp tableiv   wafer-scaling study (Table IV)
//	paper -exp fig9a     wafer vs conventional, 512 NPUs (Fig. 9a)
//	paper -exp fig9b     scalability study (Fig. 9b)
//	paper -exp fig11     disaggregated memory study (Table V / Fig. 11)
//	paper -exp taxonomy  topology notation round-trips (Fig. 3 / Table I)
//	paper -exp fabrics   pluggable-fabric comparison (Torus vs Ring-stack
//	                     vs oversubscribed Switch, GPT-3 + 1 GB All-Reduce)
//	paper -exp search    multi-fidelity design-space search: recover the
//	                     best GPT-3 fabric from the 24-point fabrics x
//	                     provisioning space with 25% of the simulations
//	paper -exp interference  multi-job interference: 1-8 co-scheduled
//	                     GPT-3/DLRM/MoE jobs on flat vs tapered switch vs
//	                     torus-pod fabrics, per-job slowdown vs isolated
//	paper -exp resilience    failure/straggler study: GPT-3 + DLRM on flat
//	                     vs torus-pod fabrics under mid-run spine
//	                     degradation and 1-5% compute stragglers, slowdown
//	                     vs the clean run
//	paper -exp all       everything above
//
// Every experiment grid runs on the parallel sweep engine; -parallel
// bounds the workers (results are byte-identical for any count), -json
// emits machine-readable documents, and -sweep runs a user-defined
// machine x workload grid instead of a paper artifact:
//
//	paper -sweep grid.json -parallel 8 -json
//
// Pass -reduced to shrink the workload layer counts 8x (ratios preserved);
// the full grids take a few minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/collective"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/units"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig4|speedup|tableiv|fig9a|fig9b|fig11|taxonomy|ablation|pools|fabrics|search|interference|resilience|all)")
	reduced := flag.Bool("reduced", false, "shrink workloads for a quick pass")
	parallel := flag.Int("parallel", 0, "sweep worker count; 0 = all cores (results identical for any value)")
	shards := flag.Int("shards", 0, "event-engine timeline shards per simulation; 0/1 = serial (results byte-identical for any value)")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	sweepPath := flag.String("sweep", "", "run a user-defined machine x workload sweep grid (JSON spec; topology blocks: "+strings.Join(astrasim.RegisteredBlocks(), ", ")+") instead of a paper experiment")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap allocation profile to this file at exit")
	flag.Parse()

	if err := prof.Start(*cpuprofile, *memprofile); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	if *sweepPath != "" {
		if err := runUserSweep(*sweepPath, *parallel, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	// One cache for the whole invocation: grids that overlap (e.g. the
	// Fig. 11 baseline inside its own sweep) simulate shared cells once.
	o := experiments.Options{
		Reduced: *reduced,
		Shards:  *shards,
		Exec:    sweep.Exec{Workers: *parallel, Cache: sweep.NewCache()},
	}
	runners := map[string]func(experiments.Options, bool) error{
		"fig4":         runFig4,
		"speedup":      runSpeedup,
		"tableiv":      runTableIV,
		"fig9a":        runFig9a,
		"fig9b":        runFig9b,
		"fig11":        runFig11,
		"taxonomy":     runTaxonomy,
		"ablation":     runAblation,
		"pools":        runPoolDesigns,
		"fabrics":      runFabrics,
		"search":       runSearch,
		"interference": runInterference,
		"resilience":   runResilience,
	}
	order := []string{"fig4", "speedup", "tableiv", "fig9a", "fig9b", "fig11", "taxonomy", "ablation", "pools", "fabrics", "search", "interference", "resilience"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](o, *jsonOut); err != nil {
				fatal(err)
			}
		}
		return
	}
	r, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := r(o, *jsonOut); err != nil {
		fatal(err)
	}
}

func runUserSweep(path string, workers int, jsonOut bool) error {
	res, err := astrasim.RunSweepFile(path, astrasim.SweepOptions{
		Workers:  workers,
		Progress: astrasim.ProgressLine(os.Stderr),
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	return res.WriteTable(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	prof.Stop() // os.Exit skips defers; flush any active profile capture
	os.Exit(1)
}

func header(s string) {
	fmt.Printf("\n## %s\n\n", s)
}

// emitJSON prints one experiment's result as a JSON document.
func emitJSON(name string, v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": name, "result": v})
}

func runFig4(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Fig4(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("fig4", res)
	}
	header("Fig. 4 — analytical backend validation (All-Reduce on NVLink rings)")
	fmt.Printf("%-6s %-10s %14s %14s %10s\n", "NPUs", "Size", "Reference", "Analytical", "Error")
	for _, r := range res.Rows {
		fmt.Printf("%-6d %-10s %12.1fus %12.1fus %9.1f%%\n",
			r.NPUs, r.Size, r.Reference.Micros(), r.Analytical.Micros(), r.ErrorPct)
	}
	fmt.Printf("\nmean |error| = %.2f%%   (paper: 5%%)\n", res.MeanAbsErrorPct)
	return nil
}

func runSpeedup(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Speedup(units.MB, o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("speedup", res)
	}
	header("Sec. IV-C — analytical vs cycle-level backend (1 MB All-Reduce)")
	fmt.Printf("4x4x4 torus:\n")
	fmt.Printf("  cycle-level:  wall %-14v sim %v (%d cycles)\n", res.CycleWall, res.CycleSimTime, res.CycleCycles)
	fmt.Printf("  analytical:   wall %-14v sim %v\n", res.AnalyticalWall, res.AnalyticalSimTime)
	fmt.Printf("  wall-clock speedup: %.0fx   (paper: 756x)\n", res.SpeedupSmall)
	fmt.Printf("  simulated-time disagreement: %.2f%%\n", res.SimTimeAgreementPct)
	fmt.Printf("16x16x16 torus (4096 NPUs), analytical only:\n")
	fmt.Printf("  wall %v, sim %v   (paper: 3.14 s wall)\n", res.AnalyticalWallLarge, res.AnalyticalSimLarge)
	return nil
}

func runTableIV(o experiments.Options, jsonOut bool) error {
	res, err := experiments.TableIV(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("tableiv", res)
	}
	header("Table IV — 1 GB All-Gather under wafer scaling")
	fmt.Printf("%-10s %6s %8s %8s %8s %8s %14s\n", "System", "NPUs", "Dim1MB", "Dim2MB", "Dim3MB", "Dim4MB", "Collective")
	for _, r := range res.Rows {
		fmt.Printf("%-10s %6d %8.1f %8.1f %8.1f %8.1f %12.2fus\n",
			r.System, r.NPUs,
			r.TrafficPerDim[0], r.TrafficPerDim[1], r.TrafficPerDim[2], r.TrafficPerDim[3],
			r.CollectiveTime.Micros())
	}
	base, _ := res.Row("Base-512")
	best, _ := res.Row("W-2048")
	fmt.Printf("\npeak wafer speedup: %.2fx at W-2048   (paper: 2.51x, bounce at W-4096)\n",
		float64(base.CollectiveTime)/float64(best.CollectiveTime))
	return nil
}

func printCells(cells []experiments.Cell, withPolicy bool) {
	fmt.Printf("%-16s %-10s %-9s %12s %12s %12s\n", "Workload", "System", "Scheduler", "Compute", "ExposedComm", "Total")
	for _, c := range cells {
		pol := c.Policy.String()
		if !withPolicy {
			pol = "-"
		}
		fmt.Printf("%-16s %-10s %-9s %10.2fms %10.2fms %10.2fms\n",
			c.Workload, c.System, pol,
			c.Compute.Seconds()*1e3, c.ExposedComm.Seconds()*1e3, c.Total.Seconds()*1e3)
	}
}

func runFig9a(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Fig9a(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("fig9a", res)
	}
	header("Fig. 9(a) — wafer vs conventional systems, 512 NPUs")
	if o.Reduced {
		fmt.Println("(reduced workloads: layer counts / 8; ratios preserved)")
	}
	printCells(res.Cells, true)
	return nil
}

func runFig9b(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Fig9b(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("fig9b", res)
	}
	header("Fig. 9(b) — conventional scale-out vs wafer scale-up")
	if o.Reduced {
		fmt.Println("(reduced workloads: layer counts / 8; ratios preserved)")
	}
	printCells(res.Cells, false)
	return nil
}

func runFig11(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Fig11(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("fig11", res)
	}
	header("Table V / Fig. 11 — disaggregated memory systems (MoE-1T)")
	fmt.Printf("%-20s %10s %12s %12s %12s %10s %10s\n",
		"System", "Compute", "Exp.Comm", "Exp.Remote", "Exp.Local", "Idle", "Total")
	for _, b := range res.Bars {
		fmt.Printf("%-20s %8.1fms %10.1fms %10.1fms %10.1fms %8.1fms %8.1fms\n",
			b.System,
			b.Compute.Seconds()*1e3, b.ExposedComm.Seconds()*1e3,
			b.ExposedRemoteMem.Seconds()*1e3, b.ExposedLocalMem.Seconds()*1e3,
			b.ExposedIdle.Seconds()*1e3, b.Total.Seconds()*1e3)
	}
	fmt.Printf("\nZeRO-Infinity vs HierMem(baseline): %.2f%% apart   (paper: 0.1%%)\n", res.ZeroVsBaselinePct)
	fmt.Printf("HierMem(opt) speedup over baseline: %.2fx          (paper: 4.6x)\n", res.SpeedupOptVsBaseline)
	fmt.Printf("\nDesign-space sweep (in-node fabric GB/s x remote group GB/s):\n")
	for _, p := range res.Sweep {
		fmt.Printf("  in=%5.0f rem=%4.0f  total=%8.1fms\n", p.InNodeFabricGBps, p.RemoteGroupGBps, p.Total.Seconds()*1e3)
	}
	return nil
}

func runTaxonomy(o experiments.Options, jsonOut bool) error {
	examples := []struct{ spec, system string }{
		{"R(4)_R(2)", "Google TPUv2/v3"},
		{"SW(3)_SW(2)", "NVIDIA DGX-2 / DGX-A100"},
		{"FC(4)_SW(2)", "Intel Habana"},
		{"R(4)_SW(2)", "Meta Zion / NVIDIA DGX-1"},
		{"FC(4)_FC(2)_FC(2)", "DragonFly (fully populated)"},
		{"R(4)_R(2)_R(2)", "Google TPUv4 (3D torus)"},
		{"T2D(4,4)_SW(2)", "TPU-style 2D torus pods"},
		{"M(4)_SW(4,2)", "NoC mesh, 2:1 tapered uplinks"},
	}
	if jsonOut {
		type row struct {
			Notation string `json:"notation"`
			NPUs     int    `json:"npus"`
			Platform string `json:"platform"`
		}
		var rows []row
		for _, e := range examples {
			top, err := topology.Parse(e.spec)
			if err != nil {
				return err
			}
			rows = append(rows, row{Notation: top.String(), NPUs: top.NumNPUs(), Platform: e.system})
		}
		return emitJSON("taxonomy", rows)
	}
	header("Fig. 3 / Table I — topology taxonomy")
	fmt.Printf("%-20s %6s %-28s %s\n", "Notation", "NPUs", "Platform", "Per-dim collectives (Table I)")
	for _, e := range examples {
		top, err := topology.Parse(e.spec)
		if err != nil {
			return err
		}
		algs := ""
		for i, d := range top.Dims {
			if i > 0 {
				algs += " / "
			}
			algs += d.Kind.CollectiveName()
		}
		fmt.Printf("%-20s %6d %-28s %s\n", top.String(), top.NumNPUs(), e.system, algs)
	}
	// Demonstrate the closed-form estimator across the examples.
	fmt.Printf("\n64 MB All-Reduce estimates at 100 GB/s per dim:\n")
	for _, e := range examples {
		top, _ := topology.Parse(e.spec)
		for i := range top.Dims {
			top.Dims[i].Bandwidth = units.GBps(100)
		}
		est := collective.Estimate(top, collective.AllReduce, 64*units.MB, collective.FullMachine(top), collective.Baseline, 64)
		fmt.Printf("  %-20s %10.1fus\n", top.String(), est.Micros())
	}
	return nil
}

func runAblation(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Ablation(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("ablation", res)
	}
	header("Ablation — chunk pipelining depth x scheduler (1 GB All-Reduce)")
	fmt.Printf("%-10s %7s %-9s %14s %10s\n", "System", "Chunks", "Scheduler", "Collective", "Events")
	for _, r := range res.Rows {
		fmt.Printf("%-10s %7d %-9s %12.2fus %10d\n",
			r.System, r.Chunks, r.Policy, r.Duration.Micros(), r.SimEvents)
	}
	fmt.Println("\n1 chunk = no cross-dimension pipelining (sum of phases); the default")
	fmt.Println("64 chunks reaches the bottleneck-bound regime the paper's Table IV shows,")
	fmt.Println("and gives Themis enough granularity to balance dimension loads.")
	return nil
}

func runPoolDesigns(o experiments.Options, jsonOut bool) error {
	res, err := experiments.PoolDesigns(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("pools", res)
	}
	header("Extension — Fig. 5 pool architectures under one bulk transfer")
	fmt.Printf("%-28s %12s %14s\n", "Design", "Per-GPU", "Transfer")
	for _, r := range res.Rows {
		fmt.Printf("%-28s %12s %12.2fms\n", r.Design, r.PerGPU, r.Transfer.Seconds()*1e3)
	}
	fmt.Println("\nThe paper evaluates only the hierarchical design (Section V-B); this")
	fmt.Println("grid quantifies the fabric-architecture effect Fig. 5 sketches, at equal")
	fmt.Println("per-resource bandwidths.")
	return nil
}

func runFabrics(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Fabrics(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("fabrics", res)
	}
	header("Extension — pluggable fabric comparison (512 NPUs, 500 GB/s configured per NPU)")
	if o.Reduced {
		fmt.Println("(reduced workloads: layer counts / 8; ratios preserved)")
	}
	printCells(res.Cells, false)
	fmt.Println("\nClosed-form 1 GB All-Reduce screening estimates:")
	est := experiments.FabricEstimates()
	for _, s := range experiments.FabricSystems() {
		fmt.Printf("  %-10s %-18s %10.1fus\n", s.Name, s.Top.String(), est[s.Name].Micros())
	}
	fmt.Println("\nTorus vs ring-stack shows the single-fabric advantage; SW-Taper rows")
	fmt.Println("price leaf-switch oversubscription against the flat switch hierarchy.")
	return nil
}

func runInterference(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Interference(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("interference", res)
	}
	header("Extension — multi-job interference (128-NPU fabrics, 16-NPU jobs, packed placement)")
	if o.Reduced {
		fmt.Println("(reduced workloads: layer counts / 8; ratios preserved)")
	}
	counts := experiments.InterferenceJobCounts()
	fmt.Printf("%-12s %-12s %12s", "Fabric", "Workload", "Isolated")
	for _, n := range counts {
		fmt.Printf(" %9s", fmt.Sprintf("x%d jobs", n))
	}
	fmt.Println("   (mean slowdown vs isolated)")
	for _, sys := range []string{"SW-Flat", "SW-Taper4", "Torus-Pods"} {
		for _, wl := range experiments.InterferenceWorkloads() {
			first, err := res.Cell(sys, wl, counts[0])
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-12s %10.3fms", sys, wl, first.Isolated.Micros()/1000)
			for _, n := range counts {
				c, err := res.Cell(sys, wl, n)
				if err != nil {
					return err
				}
				fmt.Printf(" %8.3fx", c.MeanSlowdown)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nDLRM's All-to-All saturates the 4:1 spine as jobs pile on; GPT-3's")
	fmt.Println("hierarchical All-Reduce barely touches it. Torus pods isolate the")
	fmt.Println("network entirely — only the shared memory pool slows MoE down.")
	return nil
}

func runResilience(o experiments.Options, jsonOut bool) error {
	res, err := experiments.Resilience(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("resilience", res)
	}
	header("Extension — failure/straggler resilience (128-NPU fabrics, slowdown vs clean run)")
	if o.Reduced {
		fmt.Println("(reduced workloads: layer counts / 8; ratios preserved)")
	}
	scens := experiments.ResilienceScenarios()
	fmt.Printf("%-12s %-12s %12s", "Fabric", "Workload", "Clean")
	for _, sc := range scens {
		fmt.Printf(" %13s", sc)
	}
	fmt.Println()
	for _, sys := range []string{"SW-Flat", "Torus-Pods"} {
		for _, wl := range experiments.ResilienceWorkloads() {
			first, err := res.Cell(sys, wl, scens[0])
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-12s %10.3fms", sys, wl, first.Clean.Micros()/1000)
			for _, sc := range scens {
				c, err := res.Cell(sys, wl, sc)
				if err != nil {
					return err
				}
				fmt.Printf(" %12.3fx", c.Slowdown)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe clean column is the built-in regression check: an attached scenario")
	fmt.Println("with zero events reproduces the unperturbed run byte for byte (exactly")
	fmt.Println("1.000x). Degrading the spine taxes DLRM's All-to-All hardest, and a")
	fmt.Println("single 1.3x straggler costs as much as 5% of them: synchronous training")
	fmt.Println("gates every step on the slowest member, not on how many lag.")
	return nil
}

func runSearch(o experiments.Options, jsonOut bool) error {
	res, err := experiments.FabricSearch(o)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON("search", res)
	}
	header("Extension — multi-fidelity design-space search (fabrics x provisioning, GPT-3; scores in us)")
	if o.Reduced {
		fmt.Println("(reduced workloads: layer counts / 8; ratios preserved)")
	}
	if err := res.Halving.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nexhaustive baseline: %d full simulations, best %s\n",
		res.Exhaustive.Simulations, res.Exhaustive.Best.Label)
	verdict := "RECOVERED"
	if !res.Recovered {
		verdict = "MISSED"
	}
	fmt.Printf("budgeted search %s the exhaustive optimum simulating %.0f%% of the %d-point space\n",
		verdict, 100*res.SimFraction, res.Space)
	fmt.Println("\nThe halving strategy screens every candidate with the closed-form")
	fmt.Println("All-Reduce estimate and runs the event engine only on the top quartile —")
	fmt.Println("the guided-search workflow the sweep grids exist to support.")
	return nil
}
